"""Figure 11: PCA of architectural metrics across Rodinia, SHOC, and
Cubie — Cubie must span the widest region (Observation 9)."""

import numpy as np
import pytest

from repro.analysis import pca, standardize
from repro.harness import format_table
from repro.kernels import all_workloads
from repro.suites import suite_metric_points


@pytest.fixture(scope="module")
def scored(devices):
    points = suite_metric_points(all_workloads(), devices["H200"])
    x = np.stack([p.values for p in points])
    z, _, _ = standardize(x)
    res = pca(z, 2)
    return points, res


def spread(points, res, suite: str) -> float:
    """Bounding-box area of one suite's PC1/PC2 scores."""
    idx = [i for i, p in enumerate(points) if p.suite == suite]
    sc = res.scores[idx]
    return float(np.prod(np.ptp(sc, axis=0)))


def build_figure11(points, res) -> str:
    rows = []
    for i, p in enumerate(points):
        rows.append([p.suite, p.kernel, f"{res.scores[i, 0]:.2f}",
                     f"{res.scores[i, 1]:.2f}"])
    table = format_table(["Suite", "Kernel", "PC1", "PC2"], rows,
                         title="Figure 11: PCA of architectural metrics")
    areas = [[s, f"{spread(points, res, s):.2f}"]
             for s in ("Rodinia", "SHOC", "Cubie")]
    table += "\n\n" + format_table(
        ["Suite", "PC bounding-box area"], areas,
        title="Figure 11 summary: dispersion per suite")
    table += ("\nExplained variance: "
              + ", ".join(f"PC{i + 1} {r:.0%}"
                          for i, r in enumerate(res.explained_ratio)))
    return table


def test_fig11_pca_suites(benchmark, scored, emit):
    points, res = scored
    text = benchmark.pedantic(lambda: build_figure11(points, res),
                              rounds=1, iterations=1)
    emit("fig11_pca_suites", text)
    cubie = spread(points, res, "Cubie")
    assert cubie > spread(points, res, "Rodinia")
    assert cubie > spread(points, res, "SHOC")
