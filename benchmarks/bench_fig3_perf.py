"""Figure 3: absolute performance of all workloads, variants, cases, and
GPUs — the suite's master performance sweep."""

import pytest

from repro.harness import format_table, run_performance


@pytest.fixture(scope="module")
def records():
    return run_performance()


def build_figure3(records) -> str:
    rows = []
    for r in records:
        perf = (f"{r.flops / 1e12:.3f} TFLOP/s" if r.flops > 0
                else f"{1.0 / r.time_s:,.0f} trav/s")
        rows.append([r.gpu, r.workload, r.case, r.variant,
                     f"{r.time_s * 1e6:.2f} us", perf, r.bottleneck])
    return format_table(
        ["GPU", "Workload", "Case", "Variant", "Time", "Performance",
         "Bound by"],
        rows, title="Figure 3: absolute performance (modeled, paper-scale)")


def test_fig3_perf(benchmark, records, emit):
    text = benchmark.pedantic(lambda: build_figure3(records),
                              rounds=1, iterations=1)
    emit("fig3_perf", text)
    # 3 GPUs x (9 workloads x 5 cases x >=3 variants + pic x 2 variants)
    assert text.count("\n") > 400
