"""Figure 5: speedups of the CC (CUDA-core MMA replacement) over TC."""

import pytest

from repro.harness import format_speedups, run_performance, speedup_summary
from repro.kernels import Variant


@pytest.fixture(scope="module")
def records():
    return run_performance()


def test_fig5_cc_vs_tc(benchmark, records, emit):
    speedups = benchmark.pedantic(
        lambda: speedup_summary(records, Variant.CC, Variant.TC),
        rounds=1, iterations=1)
    text = format_speedups(
        speedups, "Figure 5: CC speedup over TC (mean of 5 cases)")
    emit("fig5_cc_vs_tc", text)
    # Observation 4: replacing MMUs costs 10%-200% of performance
    assert speedups[("H200", "scan")] < 0.5
    assert 0.3 < speedups[("A100", "gemm")] < 0.75
    assert speedups[("B200", "gemm")] > speedups[("H200", "gemm")]
