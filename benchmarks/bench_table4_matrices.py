"""Table 4: the matrices evaluated in SpMV and SpGEMM."""

from repro.datasets import SPMV_MATRICES, generate_matrix
from repro.harness import format_table
from repro.sparse import MbsrMatrix


def build_table4() -> str:
    rows = []
    for info in SPMV_MATRICES:
        a = generate_matrix(info.name)
        fill = MbsrMatrix.from_csr(a).fill_ratio
        rows.append([info.name, f"{info.rows:,}", f"{info.nnz:,}",
                     info.group, f"{a.n_rows:,}", f"{a.nnz:,}",
                     f"{fill:.2f}"])
    return format_table(
        ["Matrix", "#Rows", "#Nonzeros", "Group",
         "#Rows (gen)", "#Nonzeros (gen)", "4x4 block fill"],
        rows, title="Table 4: SpMV/SpGEMM matrices (paper vs stand-ins)")


def test_table4_matrices(benchmark, emit):
    text = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    emit("table4_matrices", text)
    assert "conf5_4-8x8-10" in text
