"""Table 3: the graphs evaluated in BFS (original and generated sizes)."""

from repro.datasets import BFS_GRAPHS, generate_graph
from repro.harness import format_table


def build_table3() -> str:
    rows = []
    for info in BFS_GRAPHS:
        src, dst, n = generate_graph(info.name)
        rows.append([info.name, f"{info.vertices:,}", f"{info.edges:,}",
                     info.group, f"{n:,}", f"{len(src):,}",
                     info.scale_note])
    return format_table(
        ["Graph", "#Vertices", "#Edges", "Group",
         "#Vertices (gen)", "#Edges (gen)", "Scale note"],
        rows, title="Table 3: BFS graphs (paper vs generated stand-ins)")


def test_table3_graphs(benchmark, emit):
    text = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    emit("table3_graphs", text)
    assert "mycielskian17" in text
