"""Ablation: can low-precision MMAs + iterative refinement replace FP64
tensor cores?

The paper's conclusion contests the roadmap view that FP64 MMUs are
dispensable.  This ablation runs the strongest version of that view — a
tensor-core Cholesky factored in FP16/BF16/TF32 and refined to FP64
accuracy — measuring (a) the real iteration counts on emulated-precision
factorizations, and (b) the modeled time-to-solution per GPU.  The result
quantifies both sides: mixed precision wins big for well-conditioned dense
solves (especially on Blackwell), but refinement iteration counts grow as
conditioning worsens — the reliability gap the paper's Observation 7
worries about."""

import numpy as np
import pytest

from repro.analysis.mixed_precision import (
    iterative_refinement,
    modeled_factorization_time,
)
from repro.gpu import Device
from repro.gpu.isa import Precision
from repro.harness import format_table

PRECISIONS = (Precision.FP64, Precision.FP32, Precision.BF16,
              Precision.FP16)


def _spd(n, cond_shift, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.uniform(-1, 1, (n, n))
    return m @ m.T + cond_shift * np.eye(n)


@pytest.fixture(scope="module")
def refinement_rows():
    rows = []
    b = np.random.default_rng(1).uniform(-1, 1, 96)
    for shift, label in ((96.0, "well-conditioned"),
                         (9.6, "moderately conditioned"),
                         (1.5, "ill-conditioned")):
        a = _spd(96, shift)
        for p in PRECISIONS[1:]:
            r = iterative_refinement(a, b, precision=p, tol=1e-12,
                                     max_iter=60)
            rows.append([label, p.value, r.iterations,
                         f"{r.residuals[-1]:.1e}",
                         "yes" if r.converged else "NO"])
    return rows


@pytest.fixture(scope="module")
def timing_rows():
    rows = []
    for gpu in ("A100", "H200", "B200"):
        dev = Device(gpu)
        t64 = modeled_factorization_time(8192, dev, Precision.FP64)
        for p in PRECISIONS[1:]:
            t = modeled_factorization_time(8192, dev, p,
                                           refinement_iters=5)
            rows.append([gpu, p.value, f"{t * 1e3:.2f} ms",
                         f"{t64 / t:.1f}x vs FP64 TC"])
    return rows


def build_ablation(refinement_rows, timing_rows) -> str:
    t1 = format_table(
        ["System", "Factor precision", "Refinement iters",
         "Final residual", "FP64-accurate"],
        refinement_rows,
        title="Ablation: refinement cost vs conditioning (n=96, measured)")
    t2 = format_table(
        ["GPU", "Factor precision", "Modeled solve (n=8192)", "Speedup"],
        timing_rows,
        title="Ablation: modeled time-to-solution, factor + 5 refinements")
    return t1 + "\n\n" + t2


def test_ablation_mixed_precision(benchmark, refinement_rows, timing_rows,
                                  emit):
    text = benchmark.pedantic(
        lambda: build_ablation(refinement_rows, timing_rows),
        rounds=1, iterations=1)
    emit("ablation_mixed_precision", text)
    # refinement iteration counts grow as conditioning degrades (FP16)
    fp16 = [int(r[2]) for r in refinement_rows if r[1] == "f16"]
    assert fp16 == sorted(fp16)
    # on B200, FP16 + refinement is the fastest path (the roadmap claim)
    b200 = {r[1]: float(r[2].split()[0]) for r in timing_rows
            if r[0] == "B200"}
    assert b200["f16"] < b200["tf32"]
