"""Table 2: the Cubie suite — workloads, test cases, baselines."""

from repro.harness import format_table
from repro.kernels import all_workloads


def build_table2() -> str:
    rows = []
    for w in all_workloads():
        cases = ", ".join(c.label for c in w.cases())
        rows.append([w.name, w.quadrant.value, w.dwarf, cases,
                     w.baseline_name])
    return format_table(
        ["Kernel", "Quadrant", "Dwarf", "Five Test Cases", "Baseline"],
        rows, title="Table 2: Cubie benchmark suite")


def test_table2_suite(benchmark, emit):
    text = benchmark(build_table2)
    emit("table2_suite", text)
    assert text.count("\n") >= 11  # header + separator + ten workloads
