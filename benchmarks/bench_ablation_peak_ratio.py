"""Ablation: what if Blackwell had kept Hopper's 2:1 FP64 TC:CC ratio?

The conclusion section argues the B200 FP64 tensor-core regression
undermines scientific computing.  This ablation quantifies it: a
hypothetical B200 with 80 TFLOPS FP64 TC (2:1 over its CUDA cores)
restores the GEMM speedup that the real part loses."""

import dataclasses

import pytest

from repro.gpu import B200, Device
from repro.harness import format_table
from repro.kernels import GemmWorkload, Variant


@pytest.fixture(scope="module")
def sweep():
    w = GemmWorkload()
    case = w.cases()[-1]
    stats = {v: w.analytic_stats(v, case)
             for v in (Variant.TC, Variant.BASELINE)}
    rows = []
    for ratio in (0.5, 1.0, 1.5, 2.0, 3.0):
        spec = dataclasses.replace(
            B200, name=f"B200@{ratio}x", tc_fp64=B200.cc_fp64 * ratio)
        dev = Device(spec)
        t_tc = dev.resolve(stats[Variant.TC]).time_s
        t_base = dev.resolve(stats[Variant.BASELINE]).time_s
        rows.append((ratio, t_base / t_tc))
    return rows


def build_ablation(sweep) -> str:
    return format_table(
        ["FP64 TC:CC peak ratio", "GEMM TC speedup over baseline"],
        [[f"{r:.1f}:1", f"{s:.2f}x"] for r, s in sweep],
        title="Ablation: hypothetical Blackwell FP64 tensor-core ratios")


def test_ablation_peak_ratio(benchmark, sweep, emit):
    text = benchmark.pedantic(lambda: build_ablation(sweep),
                              rounds=1, iterations=1)
    emit("ablation_peak_ratio", text)
    by = dict(sweep)
    # restoring the 2:1 ratio roughly doubles the GEMM speedup the real
    # 1:1 part achieves — the quantified cost of the Figure 12 regression
    assert by[2.0] > 1.6 * by[1.0]
    assert all(b >= a for (_, a), (_, b) in zip(sweep, sweep[1:]))
