"""Table 5: specifications of the three simulated GPUs."""

from repro.gpu import ALL_GPUS
from repro.harness import format_table


def build_table5() -> str:
    rows = []
    for g in ALL_GPUS:
        rows.append([
            f"{g.name} ({g.architecture})",
            f"{g.dram_capacity / 1e9:.0f} GB, {g.dram_bw / 1e12:.3g} TB/s",
            f"Tensor Core: {g.tc_fp64 / 1e12:.1f} TFLOPs",
            f"CUDA Core: {g.cc_fp64 / 1e12:.1f} TFLOPs",
            f"TDP {g.tdp_w:.0f} W",
        ])
    return format_table(
        ["NVIDIA GPU", "Memory", "FP64 TC peak", "FP64 CC peak", "Power"],
        rows, title="Table 5: specifications of the three GPUs tested")


def test_table5_gpus(benchmark, emit):
    text = benchmark(build_table5)
    emit("table5_gpus", text)
    assert "H200" in text and "66.9" in text
