"""Ablation: Ozaki-scheme FP64 GEMM on FP16 MMAs vs native FP64 tensor
cores.

The paper cites the Ozaki scheme [74] as the road the vendors imply when
regressing FP64 MMUs (Figure 12).  This ablation measures its two sides
on the emulated MMA path: the accuracy ladder per slice count (measured
arithmetic) and the modeled time against native FP64 tensor cores per
GPU — showing on which architectures the scheme actually compensates for
the missing FP64 throughput."""

import pytest

from repro.analysis.ozaki import compare_schemes, modeled_ozaki_time
from repro.gpu import Device
from repro.harness import format_table


@pytest.fixture(scope="module")
def accuracy():
    return compare_schemes(n=64, max_slices=6)


@pytest.fixture(scope="module")
def timing():
    rows = []
    n = 8192
    for gpu in ("A100", "H200", "B200"):
        dev = Device(gpu)
        t_fp64 = 2.0 * n ** 3 / (dev.spec.tc_fp64 * 0.55) \
            + dev.spec.launch_overhead_s
        for slices in (3, 6):
            t = modeled_ozaki_time(n, dev, n_slices=slices)
            rows.append([gpu, slices, f"{t * 1e3:.2f} ms",
                         f"{t_fp64 / t:.2f}x vs FP64 TC"])
    return rows


def build_ablation(accuracy, timing) -> str:
    fp16_err, fp64_err, reports = accuracy
    acc_rows = [["plain FP16 MMA", "-", f"{fp16_err:.2e}"]]
    acc_rows += [[f"Ozaki {r.n_slices} slices", r.mma_sweeps,
                  f"{r.max_error:.2e}"] for r in reports]
    acc_rows.append(["native FP64 chain", 1, f"{fp64_err:.2e}"])
    t1 = format_table(["Scheme", "MMA sweeps", "Max error (n=64)"],
                      acc_rows,
                      title="Ablation: Ozaki accuracy ladder (measured)")
    t2 = format_table(["GPU", "Slices", "Modeled GEMM n=8192", "Speedup"],
                      timing,
                      title="Ablation: Ozaki time vs native FP64 TC")
    return t1 + "\n\n" + t2


def test_ablation_ozaki(benchmark, accuracy, timing, emit):
    text = benchmark.pedantic(lambda: build_ablation(accuracy, timing),
                              rounds=1, iterations=1)
    emit("ablation_ozaki", text)
    fp16_err, fp64_err, reports = accuracy
    # the ladder converges to FP64-class accuracy
    assert reports[-1].max_error < 100 * fp64_err
    # full-accuracy Ozaki pays off on B200 (weak FP64 TC), not on H200
    by = {(r[0], r[1]): float(r[3].split("x")[0]) for r in timing}
    assert by[("B200", 6)] > by[("H200", 6)]
