"""Ablation: MMA redundancy (executed/essential flops) per quadrant.

Observation 5 says the redundant computations that make kernels MMU-shaped
are worth keeping.  This ablation tabulates each workload's measured
redundancy factor next to the CC-E-vs-TC outcome, showing that redundancy
alone does not predict when removal pays — memory behavior does."""

import pytest

from repro.gpu import Device
from repro.harness import format_table
from repro.kernels import Variant, all_workloads


@pytest.fixture(scope="module")
def rows(devices):
    dev: Device = devices["H200"]
    out = []
    for w in all_workloads():
        case = w.representative_case()
        tc = w.analytic_stats(Variant.TC, case)
        if tc.essential_flops <= 0:
            continue  # BFS carries bit ops, not flops
        t_tc = dev.resolve(tc).time_s
        if w.has_cce:
            t_cce = dev.resolve(w.analytic_stats(Variant.CCE, case)).time_s
            cce_speedup = t_tc / t_cce
        else:
            cce_speedup = float("nan")
        out.append((w.name, w.quadrant.value, tc.redundancy, cce_speedup))
    return out


def build_ablation(rows) -> str:
    return format_table(
        ["Workload", "Quadrant", "Executed/essential flops",
         "CC-E speedup vs TC"],
        [[n, q, f"{r:.1f}x",
          "n/a (Quadrant I)" if s != s else f"{s:.2f}x"]
         for n, q, r, s in rows],
        title="Ablation: MMA redundancy vs the payoff of removing it")


def test_ablation_redundancy(benchmark, rows, emit):
    text = benchmark.pedantic(lambda: build_ablation(rows),
                              rounds=1, iterations=1)
    emit("ablation_redundancy", text)
    by = {n: (q, r, s) for n, q, r, s in rows}
    # GEMV carries 8x redundancy yet CC-E does not beat TC, while SpMV's
    # comparable redundancy is the one profitable removal (Observation 5)
    assert by["gemv"][1] > 6.0
    assert by["gemv"][2] <= 1.02
    assert by["spmv"][2] >= 1.0
    # Quadrant I kernels carry modest redundancy by construction
    assert by["gemm"][1] == pytest.approx(1.0)
