"""Figure 10: PCA of the matrix/graph populations vs the five chosen
representatives.

The paper analyzes 2893 SuiteSparse matrices and 499 graphs; the synthetic
populations default to the same counts (pass smaller ones via the
environment variable ``CUBIE_POPULATION_SCALE`` to speed this up)."""

import os

import numpy as np
import pytest

from repro.analysis import (
    coverage_stats,
    graph_features,
    matrix_features,
    pca,
    standardize,
)
from repro.datasets import (
    BFS_GRAPHS,
    SPMV_MATRICES,
    generate_graph,
    generate_matrix,
    graph_population,
    matrix_population,
)
from repro.harness import format_table

SCALE = float(os.environ.get("CUBIE_POPULATION_SCALE", "0.25"))
N_MATRICES = max(int(2893 * SCALE), 60)
N_GRAPHS = max(int(499 * SCALE), 40)


@pytest.fixture(scope="module")
def matrix_pca():
    feats = [matrix_features(m)
             for m in matrix_population(count=N_MATRICES)]
    # representatives generated at a scale whose sizes overlap the
    # population's (the PCA compares structure, not raw dataset bulk)
    sel = [matrix_features(generate_matrix(info.name, scale=0.05))
           for info in SPMV_MATRICES]
    x = np.vstack(feats + sel)
    z, _, _ = standardize(x)
    res = pca(z, 2)
    return res.scores[:len(feats)], res.scores[len(feats):]


#: structural graph features only — the generated stand-ins are orders of
#: magnitude larger than the population graphs, so absolute-size axes
#: (log vertices/edges, avg degree) would measure scale, not structure
_GRAPH_STRUCT = [3, 4, 5, 6, 7]


@pytest.fixture(scope="module")
def graph_pca():
    feats = [graph_features(s, d, n)[_GRAPH_STRUCT]
             for s, d, n in graph_population(count=N_GRAPHS)]
    sel = [graph_features(*generate_graph(info.name))[_GRAPH_STRUCT]
           for info in BFS_GRAPHS]
    x = np.vstack(feats + sel)
    z, _, _ = standardize(x)
    res = pca(z, 2)
    return res.scores[:len(feats)], res.scores[len(feats):]


def build_figure10(matrix_pca, graph_pca) -> str:
    parts = []
    for label, (pop, sel) in (("matrices (Fig 10b)", matrix_pca),
                              ("graphs (Fig 10a)", graph_pca)):
        stats = coverage_stats(pop, sel)
        rows = [[k, f"{v:.3f}"] for k, v in stats.items()]
        rows.append(["population size", str(len(pop))])
        parts.append(format_table(
            ["Coverage metric", "Value"], rows,
            title=f"Figure 10: PCA coverage of the five selected {label}"))
    return "\n\n".join(parts)


def test_fig10_pca_datasets(benchmark, matrix_pca, graph_pca, emit):
    text = benchmark.pedantic(
        lambda: build_figure10(matrix_pca, graph_pca),
        rounds=1, iterations=1)
    emit("fig10_pca_datasets", text)
    m_stats = coverage_stats(*matrix_pca)
    g_stats = coverage_stats(*graph_pca)
    # matrices: the chosen five are far more dispersed than their nearest
    # neighbors (paper: 0.18 vs 0.05)
    assert m_stats["selected_dispersion"] > m_stats["nn_dispersion"]
    assert m_stats["selected_dispersion"] > 0.1
    # graphs: the five cover most of the structural value ranges
    # (paper: 81-96%) with a meaningful share of the population nearby
    assert g_stats["range_coverage"] > 0.8
    assert g_stats["selected_dispersion"] > g_stats["nn_dispersion"]
