"""Figure 8: power consumption over time on H200 (NVML-style traces)."""

import pytest

from repro.analysis import power_trace_study
from repro.harness import format_table
from repro.kernels import all_workloads


@pytest.fixture(scope="module")
def traces(devices):
    out = {}
    for w in all_workloads():
        out[w.name] = power_trace_study(w, devices["H200"])
    return out


def build_figure8(traces) -> str:
    rows = []
    for name, per_variant in traces.items():
        for variant, tr in per_variant.items():
            # five-point sparkline of the sampled curve
            idx = [0, len(tr.power_w) // 4, len(tr.power_w) // 2,
                   3 * len(tr.power_w) // 4, len(tr.power_w) - 1]
            spark = " ".join(f"{tr.power_w[i]:.0f}" for i in idx)
            rows.append([name, variant, f"{tr.duration_s:.3f} s",
                         f"{tr.average_power_w:.0f} W",
                         f"{tr.energy_j:.4g} J", spark])
    return format_table(
        ["Workload", "Variant", "Window", "Avg power", "Energy",
         "P(t) samples (W)"],
        rows, title="Figure 8: power over time on H200")


def test_fig8_power(benchmark, traces, emit):
    text = benchmark.pedantic(lambda: build_figure8(traces),
                              rounds=1, iterations=1)
    emit("fig8_power", text)
    # Quadrant I TC runs hot (paper: often exceeding 400 W on H200)
    gemm_tc = traces["gemm"]["tc"]
    assert gemm_tc.average_power_w > 350
    # Scan TC runs cool (paper: ~244 W)
    scan_tc = traces["scan"]["tc"]
    assert scan_tc.average_power_w < 400
