"""Figure 6: speedups of CC-E (essential computations only) over TC for
Quadrants II-IV."""

import pytest

from repro.harness import format_speedups, run_performance, speedup_summary
from repro.kernels import Quadrant, Variant, all_workloads


@pytest.fixture(scope="module")
def records():
    quad234 = [w for w in all_workloads() if w.quadrant is not Quadrant.I]
    return run_performance(workloads=quad234)


def test_fig6_cce_vs_tc(benchmark, records, emit):
    speedups = benchmark.pedantic(
        lambda: speedup_summary(records, Variant.CCE, Variant.TC),
        rounds=1, iterations=1)
    text = format_speedups(
        speedups, "Figure 6: CC-E speedup over TC (Quadrants II-IV)")
    emit("fig6_cce_vs_tc", text)
    # Observation 5: redundancy is worth keeping except for SpMV
    assert speedups[("H200", "spmv")] >= 1.0
    assert speedups[("H200", "scan")] < 0.5
    assert 0.85 < speedups[("H200", "spgemm")] < 1.15
