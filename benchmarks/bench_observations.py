"""The nine key observations (Table 1 / Section 11), verified live.

Not a single paper figure but the paper's headline deliverable: each
observation is recomputed from the models and workloads and must hold."""

import pytest

from repro.analysis.observations import verify_all
from repro.harness import format_table


@pytest.fixture(scope="module")
def results():
    return verify_all()


def build_observations(results) -> str:
    rows = []
    for r in results:
        ev = "; ".join(f"{k}: {v}" for k, v in list(r.evidence.items())[:4])
        if len(r.evidence) > 4:
            ev += f"; ... ({len(r.evidence)} items)"
        rows.append([f"O{r.number}", "holds" if r.holds else "FAILS",
                     r.statement, ev])
    return format_table(["Obs", "Verdict", "Statement", "Evidence (head)"],
                        rows, title="The nine key observations, verified")


def test_observations(benchmark, results, emit):
    text = benchmark.pedantic(lambda: build_observations(results),
                              rounds=1, iterations=1)
    emit("observations", text)
    for r in results:
        assert r.holds, (r.number, r.statement, r.evidence)
