"""Figure 9: cache-aware roofline for Cubie on H200."""

import pytest

from repro.analysis import suite_roofline
from repro.harness import format_table
from repro.kernels import all_workloads


@pytest.fixture(scope="module")
def roof(devices):
    return suite_roofline(all_workloads(), devices["H200"])


def build_figure9(roof) -> str:
    header = (
        f"Ceilings on {roof.spec.name}: "
        f"TC {roof.tc_ceiling / 1e12:.1f} TFLOP/s, "
        f"CC {roof.cc_ceiling / 1e12:.1f} TFLOP/s, "
        f"DRAM {roof.spec.dram_bw / 1e12:.1f} TB/s, "
        f"L1 {roof.spec.l1_bw / 1e12:.1f} TB/s "
        f"(BW_L1 = N_SM x N_LSU x W_access x f_clock); "
        f"TC ridge at {roof.ridge_point('tc'):.1f} flop/B")
    rows = [[p.workload, p.variant, f"{p.intensity:.3g}",
             f"{p.performance / 1e12:.4g}", p.bottleneck,
             "yes" if p.performance > roof.dram_roof(p.intensity) * 0.999
             else "no"]
            for p in roof.points]
    table = format_table(
        ["Workload", "Variant", "AI (flop/B)", "Perf (TFLOP/s)",
         "Bound by", "Above DRAM roof"],
        rows, title="Figure 9: cache-aware roofline points (H200)")
    return header + "\n\n" + table


def test_fig9_roofline(benchmark, roof, emit):
    text = benchmark.pedantic(lambda: build_figure9(roof),
                              rounds=1, iterations=1)
    emit("fig9_roofline", text)
    by = {(p.workload, p.variant): p for p in roof.points}
    # GEMM is compute bound but below the TC peak (Section 9)
    gemm = by[("gemm", "tc")]
    assert gemm.bottleneck == "tensor"
    assert gemm.performance < roof.tc_ceiling
    # Quadrant IV TC points approach the bandwidth limit
    spmv = by[("spmv", "tc")]
    assert spmv.bottleneck == "dram"
    # BFS excluded
    assert not any(p.workload == "bfs" for p in roof.points)
