"""Table 7: Berkeley-dwarf coverage of Rodinia, SHOC, and Cubie."""

from repro.analysis import coverage_table
from repro.analysis.dwarfs import DWARF_ORDER, FEATURE_ORDER
from repro.harness import format_table
from repro.kernels import all_workloads


def build_table7() -> str:
    suites = coverage_table(all_workloads())
    rows = []
    for dwarf in DWARF_ORDER:
        rows.append([dwarf] + [str(s.dwarf_counts.get(dwarf, "-") or "-")
                               for s in suites])
    for feature in FEATURE_ORDER:
        rows.append([feature] + ["x" if feature in s.features else ""
                                 for s in suites])
    rows.append(["dwarfs covered"] + [str(s.dwarfs_covered)
                                      for s in suites])
    return format_table(
        ["Dwarf / Feature"] + [s.name for s in suites], rows,
        title="Table 7: dwarf and feature coverage per suite")


def test_table7_dwarfs(benchmark, emit):
    text = benchmark(build_table7)
    emit("table7_dwarfs", text)
    suites = {s.name: s for s in coverage_table(all_workloads())}
    assert suites["Cubie"].dwarfs_covered == 7
    assert suites["Rodinia"].dwarfs_covered == 5
    assert suites["SHOC"].dwarfs_covered == 5
