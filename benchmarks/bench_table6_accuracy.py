"""Table 6: FP64 numerical errors of all variants vs the CPU-serial
reference, on H200 and B200 (functional execution — real rounding)."""

import pytest

from repro.analysis import accuracy_table
from repro.harness import format_table
from repro.kernels import all_workloads


@pytest.fixture(scope="module")
def entries(devices):
    out = {}
    for gpu in ("H200", "B200"):
        rows = []
        for w in all_workloads():
            if not w.floating_point:
                continue  # BFS excluded, as in the paper
            rows.extend(accuracy_table(w, devices[gpu]))
        out[gpu] = rows
    return out


def build_table6(entries) -> str:
    parts = []
    for gpu, rows in entries.items():
        table_rows = [[e.workload, e.variant, f"{e.avg_error:.3E}",
                       f"{e.max_error:.3E}", f"{e.samples:,}"]
                      for e in rows]
        parts.append(format_table(
            ["Workload", "Variant", "Avg. error", "Max. error", "n"],
            table_rows,
            title=f"Table 6: FP64 numerical errors on {gpu}"))
    return "\n\n".join(parts)


def test_table6_accuracy(benchmark, entries, emit):
    text = benchmark.pedantic(lambda: build_table6(entries),
                              rounds=1, iterations=1)
    emit("table6_accuracy", text)
    # Observation 7 structure: TC and CC identical for every workload
    for gpu, rows in entries.items():
        by = {(e.workload, e.variant): e for e in rows}
        for (w, v), e in by.items():
            if v == "tc":
                cc = by[(w, "cc")]
                assert e.avg_error == cc.avg_error, (gpu, w)
                assert e.max_error == cc.max_error, (gpu, w)
    # CC-E deviates from TC/CC for SpMV (the paper's example)
    h200 = {(e.workload, e.variant): e for e in entries["H200"]}
    assert h200[("spmv", "cce")].avg_error != h200[("spmv", "tc")].avg_error
