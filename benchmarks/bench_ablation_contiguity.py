"""Ablation: sensitivity of Observation 8 to the memory model's sector
size.

The claim that MMU-driven data layouts win by *regularizing* memory access
rests on sector-granular DRAM transfers.  Sweeping the sector size shows
the SpMV TC-vs-baseline gap collapsing as sectors shrink (byte-granular
DRAM would make scattered gathers free) and growing as they widen."""

import pytest

from repro.gpu import Device, MemoryModel
from repro.harness import format_table
from repro.kernels import SpmvWorkload, Variant


@pytest.fixture(scope="module")
def sweep():
    w = SpmvWorkload(scale=0.3)
    case = w.cases()[4]  # bcsstk39
    stats = {v: w.analytic_stats(v, case)
             for v in (Variant.TC, Variant.BASELINE)}
    rows = []
    for sector in (8, 16, 32, 64, 128):
        dev = Device("H200", memory=MemoryModel(sector_bytes=sector))
        t_tc = dev.resolve(stats[Variant.TC]).time_s
        t_base = dev.resolve(stats[Variant.BASELINE]).time_s
        rows.append((sector, t_base / t_tc))
    return rows


def build_ablation(sweep) -> str:
    return format_table(
        ["Sector bytes", "SpMV TC speedup over baseline"],
        [[s, f"{r:.2f}x"] for s, r in sweep],
        title="Ablation: DRAM sector size vs Observation 8")


def test_ablation_contiguity(benchmark, sweep, emit):
    text = benchmark.pedantic(lambda: build_ablation(sweep),
                              rounds=1, iterations=1)
    emit("ablation_contiguity", text)
    speedups = dict(sweep)
    # coarser sectors punish the scattered baseline more
    assert speedups[128] > speedups[8]
    assert speedups[32] > 1.0
