"""Figure 12: peak throughput of the three GPU generations, FP16 vs FP64,
tensor cores vs CUDA cores — including the FP64 regression on Blackwell."""

from repro.gpu import ALL_GPUS
from repro.harness import format_table


def build_figure12() -> str:
    rows = []
    for g in ALL_GPUS:
        rows.append([g.architecture,
                     f"{g.tc_fp16 / 1e12:.1f}",
                     f"{g.cc_fp16 / 1e12:.1f}",
                     f"{g.tc_fp64 / 1e12:.1f}",
                     f"{g.cc_fp64 / 1e12:.1f}",
                     f"{g.tc_cc_ratio:.1f}x"])
    return format_table(
        ["Architecture", "FP16 TC (TFLOPS)", "FP16 CC", "FP64 TC",
         "FP64 CC", "FP64 TC:CC"],
        rows, title="Figure 12: peak throughput across GPU generations")


def test_fig12_peaks(benchmark, emit):
    text = benchmark(build_figure12)
    emit("fig12_peaks", text)
    ampere, hopper, blackwell = ALL_GPUS
    # FP16 keeps scaling...
    assert ampere.tc_fp16 < hopper.tc_fp16 < blackwell.tc_fp16
    # ...while FP64 TC regresses on Blackwell (the paper's concern)
    assert blackwell.tc_fp64 < hopper.tc_fp64
    assert blackwell.tc_fp64 < 0.5 * hopper.tc_fp64 * 1.2
    assert blackwell.tc_cc_ratio == 1.0
