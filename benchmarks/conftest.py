"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures: it times
the computation with pytest-benchmark and writes the regenerated
rows/series to ``benchmarks/out/<name>.txt`` (also echoed when running
with ``-s``).
"""

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def emit():
    """emit(name, text): persist + echo one regenerated artifact."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> Path:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")
        return path

    return _emit


@pytest.fixture(scope="session")
def devices():
    from repro.gpu import Device

    return {name: Device(name) for name in ("A100", "H200", "B200")}
