"""Section 5.1's representativeness claim, checked: the five test cases
per workload 'cover the major GPU performance regimes'."""

import pytest

from repro.analysis.representativeness import Regime, workload_regimes
from repro.gpu import Device
from repro.harness import format_table
from repro.kernels import all_workloads


@pytest.fixture(scope="module")
def profiles(devices):
    out = []
    for w in all_workloads():
        out.extend(workload_regimes(w, devices["H200"]))
    return out


def build_regimes(profiles) -> str:
    rows = [[p.workload, p.case, p.regime.value, p.bottleneck,
             f"{p.overhead_fraction:.0%}"] for p in profiles]
    table = format_table(
        ["Workload", "Case", "Regime", "Bottleneck", "Overhead"],
        rows, title="Section 5.1: per-case performance regimes (H200, TC)")
    regimes = sorted({p.regime.value for p in profiles})
    table += "\nregimes touched by the suite: " + ", ".join(regimes)
    return table


def test_case_regimes(benchmark, profiles, emit):
    text = benchmark.pedantic(lambda: build_regimes(profiles),
                              rounds=1, iterations=1)
    emit("case_regimes", text)
    regimes = {p.regime for p in profiles}
    # the suite as a whole touches every major regime
    assert regimes == {Regime.LATENCY, Regime.MEMORY, Regime.COMPUTE}
    # GEMM's size sweep alone spans more than one regime
    gemm = {p.regime for p in profiles if p.workload == "gemm"}
    assert len(gemm) >= 2
