"""Ablation: where the TC-vs-baseline crossover falls per workload.

Figure 3's per-case panels imply but never tabulate the break-even size —
below it, launch latency and underfilled tiles keep the MMU version from
winning.  This ablation sweeps each size-parameterized workload across a
geometric grid on all three GPUs and reports the crossover point."""

import pytest

from repro.gpu import Device
from repro.harness import format_table
from repro.harness.sweep import SIZE_SWEEPS, find_crossover, sweep_sizes


@pytest.fixture(scope="module")
def sweeps():
    out = {}
    for gpu in ("A100", "H200", "B200"):
        dev = Device(gpu)
        for name in SIZE_SWEEPS:
            out[(gpu, name)] = sweep_sizes(name, dev)
    return out


def build_ablation(sweeps) -> str:
    rows = []
    for (gpu, name), points in sorted(sweeps.items()):
        x = find_crossover(points)
        sizes = sorted({p.size for p in points})
        rows.append([name, gpu,
                     f"{x:,}" if x is not None else "never",
                     f"{sizes[0]:,} .. {sizes[-1]:,}"])
    return format_table(
        ["Workload", "GPU", "TC beats baseline from size", "Sweep range"],
        rows, title="Ablation: TC-vs-baseline crossover sizes")


def test_ablation_crossover(benchmark, sweeps, emit):
    text = benchmark.pedantic(lambda: build_ablation(sweeps),
                              rounds=1, iterations=1)
    emit("ablation_crossover", text)
    # GEMM on H200: the MMU wins from mid sizes on, never at 32^3
    gemm = sweeps[("H200", "gemm")]
    x = find_crossover(gemm)
    assert x is not None and 32 < x <= 4096
    # FFT never crosses over (TC stays behind cuFFT — Figure 4)
    assert find_crossover(sweeps[("H200", "fft")]) is None
