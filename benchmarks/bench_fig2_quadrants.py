"""Figure 2: measured MMU utilization quadrants."""

from repro.analysis import classify
from repro.harness import format_table
from repro.kernels import all_workloads


def build_figure2() -> str:
    rows = []
    for w in all_workloads():
        p = classify(w)
        rows.append([w.name,
                     f"{p.input_utilization:.2f}",
                     "full" if p.input_full else "partial",
                     f"{p.output_utilization:.2f}",
                     "full" if p.output_full else "partial",
                     p.quadrant.value])
    return format_table(
        ["Workload", "Input util", "Input", "Output util", "Output",
         "Quadrant"],
        rows, title="Figure 2: MMU utilization quadrants (measured)")


def test_fig2_quadrants(benchmark, emit):
    text = benchmark.pedantic(build_figure2, rounds=1, iterations=1)
    emit("fig2_quadrants", text)
    # the measured grouping must match the paper's Figure 2
    assert "scan" in text and "II" in text
