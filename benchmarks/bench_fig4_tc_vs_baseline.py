"""Figure 4: speedups of TC implementations over their baselines."""

import pytest

from repro.harness import format_speedups, run_performance, speedup_summary
from repro.kernels import Variant


@pytest.fixture(scope="module")
def records():
    return run_performance()


def test_fig4_tc_vs_baseline(benchmark, records, emit):
    speedups = benchmark.pedantic(
        lambda: speedup_summary(records, Variant.TC, Variant.BASELINE),
        rounds=1, iterations=1)
    text = format_speedups(
        speedups, "Figure 4: TC speedup over baseline (mean of 5 cases)")
    emit("fig4_tc_vs_baseline", text)
    # headline shapes: GEMM accelerates, FFT does not (Observation 3)
    assert speedups[("H200", "gemm")] > 1.5
    assert speedups[("H200", "fft")] < 1.0
    assert speedups[("H200", "spgemm")] > 2.2
