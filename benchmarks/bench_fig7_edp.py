"""Figure 7: energy-delay product on H200, per workload and variant, with
per-quadrant geometric means (Quadrants II and III reported together)."""

import pytest

from repro.analysis import edp_study, quadrant_geomeans
from repro.harness import format_table
from repro.kernels import all_workloads


@pytest.fixture(scope="module")
def entries(devices):
    out = []
    for w in all_workloads():
        out.extend(edp_study(w, devices["H200"]))
    return out


def build_figure7(entries) -> str:
    rows = [[e.workload, e.quadrant.value, e.variant, f"{e.repeats:,}",
             f"{e.loop_time_s:.3f} s", f"{e.avg_power_w:.0f} W",
             f"{e.edp:.4g} J*s"]
            for e in entries]
    table = format_table(
        ["Workload", "Quadrant", "Variant", "Repeats", "Loop time",
         "Avg power", "EDP"],
        rows, title="Figure 7: EDP on H200 (kernel loop per Section 7)")
    gm = quadrant_geomeans(entries)
    gm_rows = []
    for q, per_variant in sorted(gm.items(), key=lambda kv: kv[0].value):
        label = "II+III" if q.value == "II" else q.value
        for v, edp in sorted(per_variant.items()):
            gm_rows.append([label, v, f"{edp:.4g} J*s"])
    table += "\n\n" + format_table(
        ["Quadrant", "Variant", "Geomean EDP"], gm_rows,
        title="Figure 7 (right): per-quadrant geometric means")
    return table


def test_fig7_edp(benchmark, entries, emit):
    text = benchmark.pedantic(lambda: build_figure7(entries),
                              rounds=1, iterations=1)
    emit("fig7_edp", text)
    gm = quadrant_geomeans(entries)
    # Observation 6: TC lowers geomean EDP vs baseline in every quadrant
    for q, per_variant in gm.items():
        if "baseline" in per_variant:
            reduction = 1.0 - per_variant["tc"] / per_variant["baseline"]
            assert reduction > 0.2, (q, reduction)
