"""Property-based tests over the sparse-format substrates: every format
must preserve all nonzeros of arbitrary CSR inputs, and the SpMV paths
must agree with the dense product."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.mma import mma_m8n8k4_batched
from repro.sparse.bitmap import SLICE_ROWS, TILE_COLS, BitmapGraph
from repro.sparse.csr import CsrMatrix
from repro.sparse.dasp import DaspMatrix
from repro.sparse.ell import EllMatrix
from repro.sparse.mbsr import MbsrMatrix


@st.composite
def csr_matrices(draw, max_n=48):
    n_rows = draw(st.integers(1, max_n))
    n_cols = draw(st.integers(1, max_n))
    nnz = draw(st.integers(0, n_rows * n_cols // 2 + 1))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n_rows, nnz)
    cols = rng.integers(0, n_cols, nnz)
    vals = rng.uniform(-2, 2, nnz)
    return CsrMatrix.from_coo(rows, cols, vals, (n_rows, n_cols))


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_dasp_preserves_every_nonzero(a):
    d = DaspMatrix.from_csr(a)
    assert d.nnz == a.nnz
    assert int(d.mask.sum()) == a.nnz
    np.testing.assert_allclose(np.sort(d.values[d.mask]), np.sort(a.data))


@given(csr_matrices(max_n=32))
@settings(max_examples=30, deadline=None)
def test_dasp_mma_spmv_matches_dense(a):
    if a.n_rows != a.n_cols:
        a = CsrMatrix.from_coo(a.row_of_entry(), a.indices, a.data,
                               (max(a.shape), max(a.shape)))
    rng = np.random.default_rng(1)
    x = rng.uniform(-2, 2, a.n_cols)
    d = DaspMatrix.from_csr(a)
    b = d.gather_b_tiles(x)
    acc = np.zeros((d.n_groups, 8, 8))
    starts = d.group_offsets[:-1]
    for s in range(int(d.group_steps.max()) if d.n_groups else 0):
        has = d.group_steps > s
        acc[has] = mma_m8n8k4_batched(d.values[starts[has] + s],
                                      b[starts[has] + s], acc[has])
    y = np.zeros(a.n_rows)
    y[d.row_perm] = acc[:, np.arange(8), np.arange(8)].reshape(-1)[
        :a.n_rows]
    np.testing.assert_allclose(y, a.to_dense() @ x, atol=1e-10)


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_mbsr_roundtrip(a):
    np.testing.assert_array_equal(MbsrMatrix.from_csr(a).to_csr().to_dense(),
                                  a.to_dense())


@given(csr_matrices())
@settings(max_examples=40, deadline=None)
def test_ell_roundtrip_and_spmv(a):
    e = EllMatrix.from_csr(a)
    np.testing.assert_array_equal(e.to_csr().to_dense(), a.to_dense())
    rng = np.random.default_rng(2)
    x = rng.uniform(-2, 2, a.n_cols)
    np.testing.assert_allclose(e.spmv(x), a.to_dense() @ x, atol=1e-10)


@given(csr_matrices())
@settings(max_examples=30, deadline=None)
def test_spmv_orders_agree_numerically(a):
    rng = np.random.default_rng(3)
    x = rng.uniform(-2, 2, a.n_cols)
    dense = a.to_dense() @ x
    np.testing.assert_allclose(a.spmv_serial(x), dense, atol=1e-10)
    np.testing.assert_allclose(a.spmv_warp_tree(x), dense, atol=1e-10)


@given(st.integers(2, 400), st.integers(0, 3000), st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_bitmap_preserves_every_edge(n, m, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, m)
    dst = rng.integers(0, n, m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    g = BitmapGraph.from_edges(src, dst, n)
    # count set bits and compare with distinct edges
    distinct = len(np.unique(src * n + dst))
    bits = np.unpackbits(
        g.tiles.view(np.uint8).reshape(g.n_tiles, SLICE_ROWS, 16),
        axis=-1, bitorder="little") if g.n_tiles else np.zeros((0,))
    assert int(bits.sum()) == distinct
    # every stored tile is non-empty and correctly indexed
    if g.n_tiles:
        per_tile = bits.reshape(g.n_tiles, -1).sum(axis=1)
        assert per_tile.min() >= 1
        assert g.tile_slice.max() < (n + SLICE_ROWS - 1) // SLICE_ROWS
        assert g.tile_cblock.max() < (n + TILE_COLS - 1) // TILE_COLS


@given(csr_matrices(max_n=24))
@settings(max_examples=20, deadline=None)
def test_transpose_involution(a):
    np.testing.assert_array_equal(a.transpose().transpose().to_dense(),
                                  a.to_dense())
