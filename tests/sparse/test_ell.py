"""Tests for the ELL format and its padding comparison with DASP."""

import numpy as np
import pytest

from repro.sparse.csr import CsrMatrix
from repro.sparse.dasp import DaspMatrix
from repro.sparse.ell import EllMatrix


def random_csr(n=40, density=0.15, seed=0):
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, n)) < density,
                     rng.uniform(-2, 2, (n, n)), 0.0)
    return CsrMatrix.from_dense(dense), dense


class TestEll:
    def test_roundtrip(self):
        a, dense = random_csr()
        e = EllMatrix.from_csr(a)
        np.testing.assert_array_equal(e.to_csr().to_dense(), dense)

    def test_width_is_max_row_length(self):
        a, _ = random_csr(seed=1)
        e = EllMatrix.from_csr(a)
        assert e.width == int(a.row_lengths().max())
        assert int(e.mask.sum()) == a.nnz

    def test_spmv_matches_dense(self):
        a, dense = random_csr(seed=2)
        x = np.random.default_rng(3).uniform(-2, 2, a.n_cols)
        np.testing.assert_allclose(EllMatrix.from_csr(a).spmv(x),
                                   dense @ x, atol=1e-12)

    def test_spmv_validates_x(self):
        a, _ = random_csr()
        with pytest.raises(ValueError):
            EllMatrix.from_csr(a).spmv(np.ones(3))

    def test_empty_matrix(self):
        a = CsrMatrix.from_coo([], [], [], (5, 5))
        e = EllMatrix.from_csr(a)
        assert e.width == 0
        np.testing.assert_array_equal(e.spmv(np.ones(5)), np.zeros(5))

    def test_max_width_guard(self):
        dense = np.zeros((8, 64))
        dense[0, :] = 1.0   # one pathological row
        dense[1:, 0] = 1.0
        a = CsrMatrix.from_dense(dense)
        with pytest.raises(ValueError, match="max_width"):
            EllMatrix.from_csr(a, max_width=8)

    def test_skewed_rows_pad_worse_than_dasp(self):
        # the motivating comparison: one hub row forces ELL to pad every
        # row to the hub width, while DASP groups sorted rows
        n = 64
        dense = np.zeros((n, n))
        dense[0, :] = 1.0            # hub row: 64 nonzeros
        for i in range(1, n):
            dense[i, i] = 1.0        # all other rows: 1 nonzero
        a = CsrMatrix.from_dense(dense)
        ell = EllMatrix.from_csr(a)
        dasp = DaspMatrix.from_csr(a)
        assert ell.padding_fraction > 0.9
        assert dasp.padding_fraction < ell.padding_fraction
