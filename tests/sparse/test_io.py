"""Tests for Matrix Market IO."""

import io

import numpy as np
import pytest

from repro.sparse.csr import CsrMatrix
from repro.sparse.io import read_matrix_market, write_matrix_market


def roundtrip(a: CsrMatrix) -> CsrMatrix:
    buf = io.StringIO()
    write_matrix_market(buf, a, comment="test matrix")
    buf.seek(0)
    return read_matrix_market(buf)


class TestRoundtrip:
    def test_general_real(self):
        rng = np.random.default_rng(0)
        dense = np.where(rng.random((12, 9)) < 0.3,
                         rng.uniform(-2, 2, (12, 9)), 0.0)
        a = CsrMatrix.from_dense(dense)
        b = roundtrip(a)
        np.testing.assert_array_equal(b.to_dense(), dense)

    def test_file_path(self, tmp_path):
        a = CsrMatrix.from_coo([0, 1], [1, 0], [2.5, -1.0], (2, 2))
        p = tmp_path / "m.mtx"
        write_matrix_market(p, a)
        b = read_matrix_market(p)
        np.testing.assert_array_equal(b.to_dense(), a.to_dense())

    def test_empty_matrix(self):
        a = CsrMatrix.from_coo([], [], [], (3, 4))
        b = roundtrip(a)
        assert b.shape == (3, 4) and b.nnz == 0


class TestParsing:
    def test_pattern_field(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n" \
               "2 2 2\n1 1\n2 2\n"
        a = read_matrix_market(io.StringIO(text))
        np.testing.assert_array_equal(a.to_dense(), np.eye(2))

    def test_symmetric_expansion(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n" \
               "% a comment\n" \
               "3 3 2\n2 1 5.0\n3 3 1.0\n"
        a = read_matrix_market(io.StringIO(text))
        dense = a.to_dense()
        assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
        assert dense[2, 2] == 1.0
        assert a.nnz == 3  # diagonal entry not duplicated

    def test_integer_field(self):
        text = "%%MatrixMarket matrix coordinate integer general\n" \
               "1 2 1\n1 2 7\n"
        a = read_matrix_market(io.StringIO(text))
        assert a.to_dense()[0, 1] == 7.0

    @pytest.mark.parametrize("header", [
        "not a header\n1 1 0\n",
        "%%MatrixMarket matrix array real general\n",
        "%%MatrixMarket matrix coordinate complex general\n",
        "%%MatrixMarket matrix coordinate real skew-symmetric\n",
        "%%MatrixMarket matrix\n",
    ])
    def test_rejects_unsupported(self, header):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(header + "1 1 0\n"))

    def test_truncated_file(self):
        text = "%%MatrixMarket matrix coordinate real general\n" \
               "2 2 2\n1 1 3.0\n"
        with pytest.raises(ValueError, match="truncated"):
            read_matrix_market(io.StringIO(text))

    def test_values_roundtrip_exactly(self):
        # repr-based writing must preserve doubles bit-for-bit
        vals = np.array([1/3, np.pi, 1e-300, -2.0000000000000004])
        a = CsrMatrix.from_coo([0, 1, 2, 3], [0, 1, 2, 3], vals, (4, 4))
        b = roundtrip(a)
        np.testing.assert_array_equal(b.data, vals)
