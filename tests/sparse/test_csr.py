"""Tests for the CSR substrate, cross-checked against scipy.sparse."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CsrMatrix


def random_csr(n_rows=50, n_cols=40, density=0.1, seed=0):
    rng = np.random.default_rng(seed)
    mask = rng.random((n_rows, n_cols)) < density
    dense = np.where(mask, rng.uniform(-2, 2, (n_rows, n_cols)), 0.0)
    return CsrMatrix.from_dense(dense), dense


class TestConstruction:
    def test_from_dense_roundtrip(self):
        a, dense = random_csr()
        np.testing.assert_array_equal(a.to_dense(), dense)

    def test_from_coo_sums_duplicates(self):
        a = CsrMatrix.from_coo([0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0], (2, 2))
        assert a.nnz == 2
        assert a.to_dense()[0, 1] == 3.0

    def test_from_coo_matches_scipy(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 30, 200)
        cols = rng.integers(0, 25, 200)
        vals = rng.uniform(-1, 1, 200)
        ours = CsrMatrix.from_coo(rows, cols, vals, (30, 25))
        theirs = sp.coo_matrix((vals, (rows, cols)), shape=(30, 25)).tocsr()
        np.testing.assert_allclose(ours.to_dense(), theirs.toarray(),
                                   atol=1e-15)

    def test_empty_matrix(self):
        a = CsrMatrix.from_coo([], [], [], (5, 5))
        assert a.nnz == 0
        np.testing.assert_array_equal(a.to_dense(), np.zeros((5, 5)))

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (5, 5))
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0, 2, 1]), np.array([0, 0]),
                      np.array([1.0, 1.0]), (2, 2))
        with pytest.raises(ValueError):
            CsrMatrix.from_coo([0], [9], [1.0], (3, 3))
        with pytest.raises(ValueError):
            CsrMatrix.from_coo([5], [0], [1.0], (3, 3))
        with pytest.raises(ValueError):
            CsrMatrix.from_coo([0, 1], [0], [1.0], (3, 3))

    def test_row_lengths_and_entry_rows(self):
        a = CsrMatrix.from_coo([0, 0, 2], [0, 1, 2], [1, 1, 1], (3, 3))
        np.testing.assert_array_equal(a.row_lengths(), [2, 0, 1])
        np.testing.assert_array_equal(a.row_of_entry(), [0, 0, 2])


class TestTranspose:
    def test_transpose_matches_scipy(self):
        a, dense = random_csr(seed=4)
        np.testing.assert_allclose(a.transpose().to_dense(), dense.T,
                                   atol=1e-15)

    def test_double_transpose_identity(self):
        a, dense = random_csr(seed=5)
        np.testing.assert_array_equal(a.transpose().transpose().to_dense(),
                                      dense)


class TestSpmvOrders:
    def test_serial_matches_python_loop(self):
        # np.add.reduceat must reproduce a strict left-to-right sum
        a, dense = random_csr(n_rows=30, n_cols=30, density=0.3, seed=6)
        x = np.random.default_rng(7).uniform(-2, 2, 30)
        expected = np.zeros(30)
        for r in range(30):
            acc = 0.0
            for p in range(a.indptr[r], a.indptr[r + 1]):
                acc = acc + a.data[p] * x[a.indices[p]]
            expected[r] = acc
        np.testing.assert_array_equal(a.spmv_serial(x), expected)

    def test_warp_tree_matches_reference_value(self):
        a, dense = random_csr(n_rows=64, n_cols=64, density=0.4, seed=8)
        x = np.random.default_rng(9).uniform(-2, 2, 64)
        np.testing.assert_allclose(a.spmv_warp_tree(x), dense @ x,
                                   rtol=1e-12)

    def test_warp_tree_order_differs_from_serial(self):
        # with enough elements per row the rounding orders must diverge
        rng = np.random.default_rng(10)
        dense = rng.uniform(-2, 2, (16, 512))
        a = CsrMatrix.from_dense(dense)
        x = rng.uniform(-2, 2, 512)
        serial = a.spmv_serial(x)
        tree = a.spmv_warp_tree(x)
        np.testing.assert_allclose(serial, tree, rtol=1e-10)
        assert not np.array_equal(serial, tree)

    def test_warp_tree_explicit_small_case(self):
        # row of 3 with width 2: lanes get [p0+p2, p1], tree adds them
        a = CsrMatrix.from_coo([0, 0, 0], [0, 1, 2],
                               [1e16, 1.0, -1e16], (1, 3))
        x = np.ones(3)
        assert a.spmv_warp_tree(x, width=2)[0] == (1e16 + (-1e16)) + 1.0
        assert a.spmv_serial(x)[0] == (1e16 + 1.0) + -1e16  # = 0.0

    def test_empty_rows(self):
        a = CsrMatrix.from_coo([1], [1], [3.0], (4, 4))
        x = np.ones(4)
        np.testing.assert_array_equal(a.spmv_serial(x), [0, 3, 0, 0])
        np.testing.assert_array_equal(a.spmv_warp_tree(x), [0, 3, 0, 0])

    def test_x_shape_validated(self):
        a, _ = random_csr()
        with pytest.raises(ValueError):
            a.spmv_serial(np.ones(3))

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_spmv_matches_dense(self, seed):
        a, dense = random_csr(n_rows=20, n_cols=20, density=0.25, seed=seed)
        x = np.random.default_rng(seed + 1).uniform(-2, 2, 20)
        np.testing.assert_allclose(a.spmv_serial(x), dense @ x, atol=1e-12)
        np.testing.assert_allclose(a.spmv_warp_tree(x), dense @ x, atol=1e-12)


class TestSpgemm:
    def test_matches_scipy(self):
        a, da = random_csr(30, 40, 0.15, seed=11)
        b, db = random_csr(40, 35, 0.15, seed=12)
        c = a.spgemm(b)
        np.testing.assert_allclose(c.to_dense(), da @ db, atol=1e-12)

    def test_chunking_invariant(self):
        a, da = random_csr(100, 100, 0.1, seed=13)
        c1 = a.spgemm(a, chunk_rows=7)
        c2 = a.spgemm(a, chunk_rows=10000)
        np.testing.assert_array_equal(c1.to_dense(), c2.to_dense())

    def test_identity(self):
        a, da = random_csr(20, 20, 0.3, seed=14)
        eye = CsrMatrix.from_dense(np.eye(20))
        np.testing.assert_allclose(a.spgemm(eye).to_dense(), da, atol=1e-15)

    def test_empty_result(self):
        a = CsrMatrix.from_coo([0], [1], [1.0], (2, 2))
        b = CsrMatrix.from_coo([0], [0], [1.0], (2, 2))  # b row 1 empty
        c = a.spgemm(b)
        assert c.nnz == 0

    def test_dimension_mismatch(self):
        a, _ = random_csr(5, 6)
        b, _ = random_csr(5, 6)
        with pytest.raises(ValueError):
            a.spgemm(b)

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_property_spgemm_matches_dense(self, seed):
        a, da = random_csr(15, 18, 0.2, seed=seed)
        b, db = random_csr(18, 12, 0.2, seed=seed + 1)
        np.testing.assert_allclose(a.spgemm(b).to_dense(), da @ db,
                                   atol=1e-12)
