"""Tests for the DASP, mBSR, and bitmap storage formats."""

import numpy as np
import pytest

from repro.gpu import mma
from repro.sparse.bitmap import SLICE_ROWS, TILE_COLS, BitmapGraph
from repro.sparse.csr import CsrMatrix
from repro.sparse.dasp import DaspMatrix
from repro.sparse.mbsr import MbsrMatrix


def random_csr(n_rows=50, n_cols=50, density=0.1, seed=0):
    rng = np.random.default_rng(seed)
    mask = rng.random((n_rows, n_cols)) < density
    dense = np.where(mask, rng.uniform(-2, 2, (n_rows, n_cols)), 0.0)
    return CsrMatrix.from_dense(dense), dense


class TestDasp:
    def test_preserves_all_nonzeros(self):
        a, _ = random_csr(seed=1)
        d = DaspMatrix.from_csr(a)
        assert d.nnz == a.nnz
        assert int(d.mask.sum()) == a.nnz
        np.testing.assert_allclose(np.sort(d.values[d.mask]),
                                   np.sort(a.data))

    def test_spmv_via_mma_diagonal(self):
        # the defining DASP property: per group and k-step,
        # C = A_tile @ B_tile accumulates the row results on the diagonal
        a, dense = random_csr(n_rows=24, n_cols=24, density=0.4, seed=2)
        d = DaspMatrix.from_csr(a)
        x = np.random.default_rng(3).uniform(-2, 2, 24)
        b = d.gather_b_tiles(x)
        c = mma.mma_m8n8k4_batched(d.values, b)
        diag = c[:, np.arange(8), np.arange(8)]
        # sum k-steps within each group
        y_sorted = np.zeros(d.n_groups * 8)
        for g in range(d.n_groups):
            lo, hi = d.group_offsets[g], d.group_offsets[g + 1]
            y_sorted[g * 8:(g + 1) * 8] = diag[lo:hi].sum(axis=0)
        y = np.zeros(24)
        y[d.row_perm] = y_sorted[:24]
        np.testing.assert_allclose(y, dense @ x, atol=1e-12)

    def test_rows_sorted_descending_by_length(self):
        a, _ = random_csr(n_rows=40, density=0.3, seed=4)
        d = DaspMatrix.from_csr(a)
        lengths = a.row_lengths()[d.row_perm]
        assert np.all(np.diff(lengths) <= 0)

    def test_group_steps_cover_longest_row(self):
        a, _ = random_csr(n_rows=17, density=0.5, seed=5)
        d = DaspMatrix.from_csr(a)
        lengths = a.row_lengths()[d.row_perm]
        for g in range(d.n_groups):
            rows = lengths[g * 8:(g + 1) * 8]
            if len(rows):
                assert d.group_steps[g] >= (rows.max() + 3) // 4

    def test_padding_fraction(self):
        # a matrix with exactly 4 nnz in every row has minimal padding
        dense = np.zeros((16, 16))
        dense[:, :4] = 1.0
        d = DaspMatrix.from_csr(CsrMatrix.from_dense(dense))
        assert d.padding_fraction == pytest.approx(0.0)

    def test_empty_matrix(self):
        a = CsrMatrix.from_coo([], [], [], (10, 10))
        d = DaspMatrix.from_csr(a)
        assert d.nnz == 0
        assert d.total_tiles >= 1  # one padded step per group minimum

    def test_category_histogram(self):
        a, _ = random_csr(n_rows=32, density=0.2, seed=6)
        h = DaspMatrix.from_csr(a).category_histogram()
        assert sum(h.values()) == 32  # padded rows counted as short


class TestMbsr:
    def test_roundtrip(self):
        a, dense = random_csr(seed=7)
        m = MbsrMatrix.from_csr(a)
        np.testing.assert_array_equal(m.to_csr().to_dense(), dense)

    def test_block_count_and_fill(self):
        dense = np.zeros((8, 8))
        dense[0:4, 0:4] = 1.0  # one full block
        dense[4, 4] = 1.0      # one nearly empty block
        m = MbsrMatrix.from_csr(CsrMatrix.from_dense(dense))
        assert m.n_blocks == 2
        assert m.fill_ratio == pytest.approx(17 / 32)

    def test_fringe_blocks(self):
        # non-multiple-of-4 dimensions must still round-trip
        a, dense = random_csr(n_rows=13, n_cols=11, density=0.3, seed=8)
        m = MbsrMatrix.from_csr(a)
        np.testing.assert_array_equal(m.to_csr().to_dense(), dense)

    def test_empty(self):
        a = CsrMatrix.from_coo([], [], [], (9, 9))
        m = MbsrMatrix.from_csr(a)
        assert m.n_blocks == 0
        assert m.to_csr().nnz == 0

    def test_block_rows_sorted(self):
        a, _ = random_csr(seed=9)
        m = MbsrMatrix.from_csr(a)
        brow = m.block_row_of_block()
        assert np.all(np.diff(brow) >= 0)
        # within a block row, block columns strictly increase
        for r in range(m.n_block_rows):
            cols = m.block_indices[m.block_indptr[r]:m.block_indptr[r + 1]]
            assert np.all(np.diff(cols) > 0)


class TestBitmapGraph:
    def _graph(self, n=300, m=2000, seed=10):
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        # deduplicate: bitmap storage collapses parallel edges to one bit
        uniq = np.unique(src * n + dst)
        return uniq // n, uniq % n, n

    def test_edge_bits_set(self):
        src, dst, n = self._graph()
        g = BitmapGraph.from_edges(src, dst, n)
        assert g.n_edges == len(src)
        # unpack all tiles and confirm each edge bit
        unpacked = np.unpackbits(
            g.tiles.view(np.uint8).reshape(g.n_tiles, SLICE_ROWS, 16),
            axis=-1, bitorder="little")
        tile_lookup = {(int(s), int(c)): i for i, (s, c) in
                       enumerate(zip(g.tile_slice, g.tile_cblock))}
        for u, v in zip(src[:200], dst[:200]):
            t = tile_lookup[(u // SLICE_ROWS, v // TILE_COLS)]
            assert unpacked[t, u % SLICE_ROWS, v % TILE_COLS] == 1

    def test_from_csr_equivalent(self):
        src, dst, n = self._graph(seed=11)
        a = CsrMatrix.from_coo(src, dst, np.ones(len(src)), (n, n))
        g1 = BitmapGraph.from_edges(src, dst, n)
        g2 = BitmapGraph.from_csr(a)
        assert g1.n_tiles == g2.n_tiles
        np.testing.assert_array_equal(g1.tiles, g2.tiles)

    def test_tiles_for_cblocks(self):
        src, dst, n = self._graph(seed=12)
        g = BitmapGraph.from_edges(src, dst, n)
        all_cb = np.arange(g.n_cblocks)
        idx, slices, cbs = g.tiles_for_cblocks(all_cb)
        assert len(idx) == g.n_tiles
        # restricting to one cblock returns exactly its tiles
        one = g.tile_cblock[0]
        idx1, _, cbs1 = g.tiles_for_cblocks(np.array([one]))
        assert np.all(cbs1 == one)
        assert len(idx1) == int((g.tile_cblock == one).sum())

    def test_empty_selection(self):
        src, dst, n = self._graph(seed=13)
        g = BitmapGraph.from_edges(src, dst, n)
        idx, _, _ = g.tiles_for_cblocks(np.empty(0, dtype=np.int64))
        assert len(idx) == 0

    def test_bits_per_edge_positive(self):
        src, dst, n = self._graph(seed=14)
        g = BitmapGraph.from_edges(src, dst, n)
        assert g.bits_per_edge >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BitmapGraph.from_edges([0, 1], [1], 4)
        with pytest.raises(ValueError):
            BitmapGraph.from_edges([0], [9], 4)
        with pytest.raises(ValueError):
            BitmapGraph.from_csr(CsrMatrix.from_coo([0], [1], [1.0], (2, 3)))

    def test_bit_mma_counts_frontier_neighbors(self):
        # integration: tile x frontier via bit-MMA == neighbor counts
        src, dst, n = self._graph(n=128, m=800, seed=15)
        g = BitmapGraph.from_edges(src, dst, n)
        frontier = np.zeros(n, dtype=bool)
        frontier[::3] = True
        # adjacency row u counts neighbors in frontier
        expected = np.zeros(n, dtype=np.int64)
        for u, v in zip(src, dst):
            if frontier[v]:
                expected[u] += 1
        got = np.zeros(n, dtype=np.int64)
        fbits = np.zeros(((n + TILE_COLS - 1) // TILE_COLS, TILE_COLS),
                         dtype=bool)
        fbits.reshape(-1)[:n] = frontier
        for t in range(g.n_tiles):
            chunk = fbits[g.tile_cblock[t]]
            b_tile = np.repeat(chunk[:, np.newaxis], 8, axis=1)  # 128x8
            a_bits = np.unpackbits(
                g.tiles[t].view(np.uint8).reshape(SLICE_ROWS, 16),
                axis=-1, bitorder="little").astype(bool)
            counts = mma.mma_m8n8k128_b1(a_bits, b_tile)
            rows = g.tile_slice[t] * SLICE_ROWS + np.arange(SLICE_ROWS)
            valid = rows < n
            got[rows[valid]] += np.diag(counts)[valid]
        np.testing.assert_array_equal(got, expected)
