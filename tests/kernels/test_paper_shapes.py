"""Calibration tests: the modeled speedup *shapes* must match the paper.

Each test asserts a band around the numbers the paper reports in Figures
4-6 and Section 6.  Bands are deliberately generous — the paper itself
warns that 'exact numbers and curves may vary across GPUs' — but tight
enough that a regression in op counting, the memory model, or the spec
table trips them.  EXPERIMENTS.md records the exact measured values.
"""

import numpy as np
import pytest

from repro.gpu import Device
from repro.kernels import Variant, all_workloads

DEVICES = {name: Device(name) for name in ("A100", "H200", "B200")}


def mean_speedup(workload, num: Variant, den: Variant, gpu: str) -> float:
    """Average over the five cases of time(den)/time(num)."""
    dev = DEVICES[gpu]
    ratios = []
    for case in workload.cases():
        t_num = dev.resolve(workload.analytic_stats(num, case)).time_s
        t_den = dev.resolve(workload.analytic_stats(den, case)).time_s
        ratios.append(t_den / t_num)
    return float(np.mean(ratios))


@pytest.fixture(scope="module")
def wl():
    return {w.name: w for w in all_workloads()}


class TestFigure4TcVsBaseline:
    """TC speedup over the baseline (Figure 4 / Section 6.1)."""

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_gemm_strong_acceleration(self, wl, gpu):
        s = mean_speedup(wl["gemm"], Variant.TC, Variant.BASELINE, gpu)
        if gpu == "B200":
            assert 0.9 < s < 2.0   # TC:CC peak parity compresses the gap
        else:
            assert 1.8 < s < 3.2

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_fft_underperforms_baseline(self, wl, gpu):
        s = mean_speedup(wl["fft"], Variant.TC, Variant.BASELINE, gpu)
        assert s < 1.0  # 'FFT performs worse than the cuFFT baseline'

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_stencil_acceleration(self, wl, gpu):
        s = mean_speedup(wl["stencil"], Variant.TC, Variant.BASELINE, gpu)
        assert 1.6 < s < 3.2

    @pytest.mark.parametrize("gpu,lo,hi", [("A100", 1.2, 2.2),
                                           ("H200", 1.1, 1.8),
                                           ("B200", 1.1, 1.8)])
    def test_scan_speedup(self, wl, gpu, lo, hi):
        # paper: 1.8x / 1.3x / 1.3x
        s = mean_speedup(wl["scan"], Variant.TC, Variant.BASELINE, gpu)
        assert lo < s < hi

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_reduction_speedup(self, wl, gpu):
        # paper: 1.3-1.6x on the three GPUs
        s = mean_speedup(wl["reduction"], Variant.TC, Variant.BASELINE, gpu)
        assert 1.2 < s < 1.7

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_bfs_speedup(self, wl, gpu):
        # paper: 2.6x / 3.0x / 2.7x; the scaled graphs widen the band
        s = mean_speedup(wl["bfs"], Variant.TC, Variant.BASELINE, gpu)
        assert 1.5 < s < 4.5

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_spgemm_speedup(self, wl, gpu):
        # paper: 2.5-3.2x over cuSPARSE
        s = mean_speedup(wl["spgemm"], Variant.TC, Variant.BASELINE, gpu)
        assert 2.2 < s < 3.5

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_spmv_speedup(self, wl, gpu):
        # paper: TC faster than baseline by 1.7-2.8x (Section 6.3)
        s = mean_speedup(wl["spmv"], Variant.TC, Variant.BASELINE, gpu)
        assert 1.5 < s < 2.9

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_gemv_speedup(self, wl, gpu):
        s = mean_speedup(wl["gemv"], Variant.TC, Variant.BASELINE, gpu)
        assert 1.0 < s < 2.5


class TestFigure5CcVsTc:
    """CC replacement speedup over TC (Figure 5 / Section 6.2)."""

    @pytest.mark.parametrize("name", ["gemm", "pic", "stencil", "fft"])
    def test_quadrant1_cc_drops_to_about_half(self, wl, name):
        # 'performance of the CC versions generally drops around 50%';
        # PiC lowest (~0.4), FFT least degraded; B200's 1:1 peak ratio
        # lifts all of them, so assert on A100/H200
        for gpu in ("A100", "H200"):
            s = mean_speedup(wl[name], Variant.CC, Variant.TC, gpu)
            assert 0.3 < s < 0.75, (name, gpu, s)

    def test_pic_is_the_most_degraded_quadrant1(self, wl):
        pic = mean_speedup(wl["pic"], Variant.CC, Variant.TC, "A100")
        fft = mean_speedup(wl["fft"], Variant.CC, Variant.TC, "A100")
        assert pic < fft

    @pytest.mark.parametrize("name", ["scan", "reduction"])
    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_constant_operand_kernels_below_40_percent(self, wl, name, gpu):
        # 'CC versions of Scan and Reduction deliver less than 40%...
        # this gap exceeds the peak-performance ratio'
        s = mean_speedup(wl[name], Variant.CC, Variant.TC, gpu)
        assert s < 0.50, (name, gpu, s)
        assert s < DEVICES[gpu].spec.cc_fp64 / DEVICES[gpu].spec.tc_fp64 \
            + 0.01

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_spmv_cc_retains_60_to_85_percent(self, wl, gpu):
        # paper: 60-70%; our band allows the scaled matrices' spread
        s = mean_speedup(wl["spmv"], Variant.CC, Variant.TC, gpu)
        assert 0.55 < s < 0.88, (gpu, s)

    @pytest.mark.parametrize("name", ["bfs", "gemv", "spgemm"])
    def test_quadrant4_memory_bound_small_gaps(self, wl, name):
        # memory-bound kernels: CC slower but with smaller gaps than QI
        for gpu in ("A100", "H200"):
            s = mean_speedup(wl[name], Variant.CC, Variant.TC, gpu)
            assert 0.55 < s < 1.0, (name, gpu, s)


class TestFigure6CceVsTc:
    """CC-E essential-computation speedup over TC (Figure 6 / Section 6.3)."""

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_scan_cce_034_to_045(self, wl, gpu):
        s = mean_speedup(wl["scan"], Variant.CCE, Variant.TC, gpu)
        assert 0.30 < s < 0.50, (gpu, s)

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_reduction_cce_066_to_079(self, wl, gpu):
        s = mean_speedup(wl["reduction"], Variant.CCE, Variant.TC, gpu)
        assert 0.62 < s < 0.83, (gpu, s)

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_spmv_cce_is_the_exception_faster_than_tc(self, wl, gpu):
        # Observation 5: removing redundancy helps only SpMV (1.0-1.2x)
        s = mean_speedup(wl["spmv"], Variant.CCE, Variant.TC, gpu)
        assert 1.0 <= s < 1.25, (gpu, s)

    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_gemv_cce_slightly_slower(self, wl, gpu):
        s = mean_speedup(wl["gemv"], Variant.CCE, Variant.TC, gpu)
        assert 0.75 < s <= 1.02, (gpu, s)

    @pytest.mark.parametrize("name", ["bfs", "spgemm"])
    @pytest.mark.parametrize("gpu", ["A100", "H200", "B200"])
    def test_bfs_spgemm_cce_similar_to_tc(self, wl, name, gpu):
        s = mean_speedup(wl[name], Variant.CCE, Variant.TC, gpu)
        assert 0.85 < s < 1.15, (name, gpu, s)


class TestArchitecturalTrends:
    """Cross-GPU effects the spec table must induce (Obs. 3, Fig. 12)."""

    def test_b200_compresses_quadrant1_cc_gap(self, wl):
        # with TC:CC peak parity, the CC penalty shrinks on Blackwell
        for name in ("gemm", "pic", "stencil"):
            h = mean_speedup(wl[name], Variant.CC, Variant.TC, "H200")
            b = mean_speedup(wl[name], Variant.CC, Variant.TC, "B200")
            assert b > h, name

    def test_memory_bound_kernels_scale_with_bandwidth(self, wl):
        # absolute TC time for SpMV drops with DRAM bandwidth across gens
        w = wl["spmv"]
        case = w.cases()[0]
        times = [DEVICES[g].resolve(w.analytic_stats(Variant.TC, case)).time_s
                 for g in ("A100", "H200", "B200")]
        assert times[0] > times[1] > times[2]

    def test_compute_bound_gemm_fastest_on_h200(self, wl):
        # H200 has the highest FP64 TC peak (Figure 12's regression story)
        w = wl["gemm"]
        case = w.cases()[-1]
        t = {g: DEVICES[g].resolve(
                w.analytic_stats(Variant.TC, case)).time_s
             for g in ("A100", "H200", "B200")}
        assert t["H200"] < t["B200"] < t["A100"]
