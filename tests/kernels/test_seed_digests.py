"""Bit-identity regression anchor for the launch-plan engine.

``seed_digests.json`` records a SHA-256 digest of every workload variant's
functional output, captured from the loop-per-tile implementations that
predate the fused :mod:`repro.gpu.launch` engine.  The test recomputes the
outputs through whatever execution path the kernels use today and asserts
the digests are unchanged — i.e. the fused batched sweeps are bit-identical
to the original per-tile chains for every workload and variant.

Regenerate (only when an *intentional* numerical change lands) with::

    PYTHONPATH=src:. python -c \
        "from tests.kernels.test_seed_digests import write_digests; \
         write_digests()"
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.sparse.csr import CsrMatrix

from .conftest import small_workloads

DIGEST_PATH = Path(__file__).with_name("seed_digests.json")

#: case indices digested per workload (two for the sparse kernels so both a
#: banded and a block-dense raggedness profile are pinned)
CASE_INDICES = {"spmv": (0, 2), "spgemm": (0, 2)}


def _update_array(h: "hashlib._Hash", arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    h.update(arr.dtype.str.encode())
    h.update(repr(arr.shape).encode())
    h.update(arr.tobytes())


def _digest(obj) -> str:
    h = hashlib.sha256()
    if isinstance(obj, CsrMatrix):
        h.update(b"csr")
        h.update(repr(obj.shape).encode())
        _update_array(h, obj.indptr)
        _update_array(h, obj.indices)
        _update_array(h, obj.data)
    elif isinstance(obj, np.ndarray):
        _update_array(h, obj)
    else:
        raise TypeError(f"undigestable output type {type(obj)!r}")
    return h.hexdigest()


def compute_digests() -> dict[str, str]:
    """Digest every (workload, case, variant) output on the small suite."""
    device = Device("H200")
    out: dict[str, str] = {}
    for w in small_workloads():
        for ci in CASE_INDICES.get(w.name, (0,)):
            case = w.exec_case(w.cases()[ci])
            data = w.prepare(case)
            for variant in w.variants():
                result = w.execute(w.resolve_variant(variant), data, device)
                out[f"{w.name}/{case.label}/{variant}"] = \
                    _digest(result.output)
    return out


def write_digests() -> None:
    DIGEST_PATH.write_text(json.dumps(compute_digests(), indent=2) + "\n")
    print(f"wrote {DIGEST_PATH}")


@pytest.fixture(scope="module")
def recorded() -> dict[str, str]:
    return json.loads(DIGEST_PATH.read_text())


def test_all_outputs_bit_identical_to_seed(recorded):
    fresh = compute_digests()
    assert fresh.keys() == recorded.keys()
    mismatched = [k for k in recorded if fresh[k] != recorded[k]]
    assert not mismatched, (
        "outputs drifted from the recorded pre-launch-engine digests: "
        f"{mismatched}")
