"""Bit-identity regression anchor for the launch-plan engine.

``seed_digests.json`` records a SHA-256 digest of every workload variant's
functional output, captured from the loop-per-tile implementations that
predate the fused :mod:`repro.gpu.launch` engine.  The test recomputes the
outputs through whatever execution path the kernels use today and asserts
the digests are unchanged — i.e. the fused batched sweeps are bit-identical
to the original per-tile chains for every workload and variant.

Regenerate (only when an *intentional* numerical change lands) with::

    PYTHONPATH=src:. python -c \
        "from tests.kernels.test_seed_digests import write_digests; \
         write_digests()"
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.sparse.csr import CsrMatrix

from .conftest import small_workloads

DIGEST_PATH = Path(__file__).with_name("seed_digests.json")
ACCURACY_DIGEST_PATH = Path(__file__).with_name("accuracy_digests.json")

#: case indices digested per workload (two for the sparse kernels so both a
#: banded and a block-dense raggedness profile are pinned)
CASE_INDICES = {"spmv": (0, 2), "spgemm": (0, 2)}


def _update_array(h: "hashlib._Hash", arr: np.ndarray) -> None:
    arr = np.ascontiguousarray(arr)
    h.update(arr.dtype.str.encode())
    h.update(repr(arr.shape).encode())
    h.update(arr.tobytes())


def _digest(obj) -> str:
    h = hashlib.sha256()
    if isinstance(obj, CsrMatrix):
        h.update(b"csr")
        h.update(repr(obj.shape).encode())
        _update_array(h, obj.indptr)
        _update_array(h, obj.indices)
        _update_array(h, obj.data)
    elif isinstance(obj, np.ndarray):
        _update_array(h, obj)
    else:
        raise TypeError(f"undigestable output type {type(obj)!r}")
    return h.hexdigest()


def compute_digests() -> dict[str, str]:
    """Digest every (workload, case, variant) output on the small suite."""
    device = Device("H200")
    out: dict[str, str] = {}
    for w in small_workloads():
        for ci in CASE_INDICES.get(w.name, (0,)):
            case = w.exec_case(w.cases()[ci])
            data = w.prepare(case)
            for variant in w.variants():
                result = w.execute(w.resolve_variant(variant), data, device)
                out[f"{w.name}/{case.label}/{variant}"] = \
                    _digest(result.output)
    return out


def write_digests() -> None:
    DIGEST_PATH.write_text(json.dumps(compute_digests(), indent=2) + "\n")
    print(f"wrote {DIGEST_PATH}")


# --------------------------------------------------- accuracy-path digests
#
# ``accuracy_digests.json`` pins the numerical outputs of the accuracy
# engine — Table 6 error metrics, mixed-precision refinement residuals,
# and Ozaki-scheme errors — as captured *before* the vectorized accuracy
# engine landed.  The vectorized paths (batched slice-pair sweeps,
# scratch-based mixed-precision k-loops, buffer-reusing error metrics)
# must reproduce these bit-for-bit.

def _float_digest(h: "hashlib._Hash", *values: float) -> None:
    h.update(np.asarray(values, dtype=np.float64).tobytes())


def compute_accuracy_digests(full_scale: bool = True) -> dict[str, str]:
    """Digest the accuracy engine's numerical outputs.

    ``full_scale=True`` digests the real Table 6 audit (the nine
    floating-point workloads at their exec scale, as ``verify_all`` runs
    them); the mixed-precision and Ozaki sections are always small.
    """
    from repro.analysis.accuracy import _accuracy_table_uncached
    from repro.analysis.mixed_precision import iterative_refinement
    from repro.analysis.ozaki import compare_schemes, ozaki_gemm
    from repro.gpu.isa import Precision
    from repro.kernels import all_workloads

    out: dict[str, str] = {}

    if full_scale:
        device = Device("H200")
        for w in all_workloads():
            if not w.floating_point:
                continue
            h = hashlib.sha256()
            for e in _accuracy_table_uncached(w, device):
                h.update(f"{e.workload}/{e.variant}/{e.samples}".encode())
                _float_digest(h, e.avg_error, e.max_error)
            out[f"accuracy/{w.name}"] = h.hexdigest()

    rng = np.random.default_rng(1325)
    m = rng.uniform(-1, 1, (96, 96))
    b = rng.uniform(-1, 1, 96)
    for shift, label in ((96.0, "well"), (9.6, "moderate")):
        a = m @ m.T + shift * np.eye(96)
        for p in (Precision.FP16, Precision.BF16, Precision.FP32):
            r = iterative_refinement(a, b, precision=p, tol=1e-12,
                                     max_iter=40)
            h = hashlib.sha256()
            h.update(f"{r.iterations}/{int(r.converged)}".encode())
            _update_array(h, np.asarray(r.residuals))
            _update_array(h, r.x)
            out[f"mixed/{label}/{p.value}"] = h.hexdigest()

    fp16_err, fp64_err, reports = compare_schemes(n=64, max_slices=5)
    h = hashlib.sha256()
    _float_digest(h, fp16_err, fp64_err,
                  *[r.max_error for r in reports])
    out["ozaki/compare_schemes"] = h.hexdigest()

    ga = rng.uniform(-2, 2, (64, 48))
    gb = rng.uniform(-2, 2, (48, 32))
    for s in (1, 3):
        h = hashlib.sha256()
        _update_array(h, ozaki_gemm(ga, gb, n_slices=s))
        out[f"ozaki/gemm/{s}-slices"] = h.hexdigest()
    return out


def write_accuracy_digests() -> None:
    ACCURACY_DIGEST_PATH.write_text(
        json.dumps(compute_accuracy_digests(), indent=2) + "\n")
    print(f"wrote {ACCURACY_DIGEST_PATH}")


@pytest.fixture(scope="module")
def recorded() -> dict[str, str]:
    return json.loads(DIGEST_PATH.read_text())


def test_all_outputs_bit_identical_to_seed(recorded):
    fresh = compute_digests()
    assert fresh.keys() == recorded.keys()
    mismatched = [k for k in recorded if fresh[k] != recorded[k]]
    assert not mismatched, (
        "outputs drifted from the recorded pre-launch-engine digests: "
        f"{mismatched}")


@pytest.fixture(scope="module")
def recorded_accuracy() -> dict[str, str]:
    return json.loads(ACCURACY_DIGEST_PATH.read_text())


def test_mixed_and_ozaki_bit_identical(recorded_accuracy):
    """The fast sections: refinement residuals and Ozaki error ladders."""
    fresh = compute_accuracy_digests(full_scale=False)
    mismatched = [k for k in fresh if fresh[k] != recorded_accuracy[k]]
    assert not mismatched, (
        "mixed-precision/Ozaki outputs drifted from the recorded "
        f"pre-vectorization digests: {mismatched}")


@pytest.mark.slow
def test_accuracy_table_bit_identical(recorded_accuracy):
    """The full Table 6 audit on all nine floating-point workloads."""
    fresh = compute_accuracy_digests(full_scale=True)
    assert fresh.keys() == recorded_accuracy.keys()
    mismatched = [k for k in recorded_accuracy if fresh[k] != recorded_accuracy[k]]
    assert not mismatched, (
        "accuracy outputs drifted from the recorded pre-vectorization "
        f"digests: {mismatched}")
