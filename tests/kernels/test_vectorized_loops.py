"""Bit-identity pins for the vectorized inner loops: each rewritten loop
must perform the same adds in the same order as the scalar loop it
replaced, so outputs match bit-for-bit — not merely to tolerance."""

import numpy as np
import pytest

from repro.kernels.gemv import GemvWorkload
from repro.kernels.reduction import ReductionWorkload
from repro.kernels.scan import ScanWorkload


def _lane_tree_dot_scalar(a, x, lanes):
    """The original scalar reference: lane l accumulates columns
    l, l+lanes, ... one at a time, then a binary tree combine."""
    m, n = a.shape
    partial = np.zeros((m, lanes))
    for col in range(n):
        partial[:, col % lanes] += a[:, col] * x[col]
    w = lanes
    while w > 1:
        half = w // 2
        partial[:, :half] += partial[:, half:w]
        w = half
    return partial[:, 0].copy()


def _cub_block_reduce_scalar(x, lanes=32):
    nseg, seg = x.shape
    partial = np.zeros((nseg, lanes))
    for col in range(seg):
        partial[:, col % lanes] += x[:, col]
    w = lanes
    while w > 1:
        half = w // 2
        partial[:, :half] += partial[:, half:w]
        w = half
    return partial[:, 0].copy()


def _serial_block_carry(blk):
    """The original per-block serial carry chain of the MMA scan."""
    nseg, blocks = blk.shape[:2]
    out = blk.copy()
    carry = np.zeros(nseg)
    for b in range(blocks):
        out[:, b] += carry[:, np.newaxis, np.newaxis]
        carry = carry + blk[:, b, 7, 7]
    return out


RNG = np.random.default_rng(99)


class TestLaneTreeDot:
    @pytest.mark.parametrize("lanes", [2, 4])
    @pytest.mark.parametrize("n", [16, 17, 31, 32, 33])
    def test_matches_scalar_loop(self, lanes, n):
        a = RNG.uniform(-2, 2, (37, n))
        x = RNG.uniform(-2, 2, n)
        np.testing.assert_array_equal(
            GemvWorkload._lane_tree_dot(a, x, lanes),
            _lane_tree_dot_scalar(a, x, lanes))

    def test_short_rows(self):
        # n < lanes: only the tail slice contributes
        a = RNG.uniform(-2, 2, (5, 3))
        x = RNG.uniform(-2, 2, 3)
        np.testing.assert_array_equal(
            GemvWorkload._lane_tree_dot(a, x, 4),
            _lane_tree_dot_scalar(a, x, 4))


class TestCubBlockReduce:
    @pytest.mark.parametrize("seg", [32, 64, 65, 100, 1024])
    def test_matches_scalar_loop(self, seg):
        x = RNG.uniform(-2, 2, (11, seg))
        np.testing.assert_array_equal(
            ReductionWorkload._cub_block_reduce(x),
            _cub_block_reduce_scalar(x))


class TestScanCarry:
    @pytest.mark.parametrize("seg", [64, 128, 512, 1024])
    def test_mma_scan_carry_matches_serial_chain(self, seg):
        # run the full MMA scan and re-derive the block-carry step by the
        # serial chain it replaced: cumsum is ufunc accumulate (strictly
        # left-to-right), so both must agree bit-for-bit
        x = RNG.uniform(0, 1, (9, seg))
        got = ScanWorkload._mma_scan(x)
        nseg, blocks = x.shape[0], seg // 64
        v = x.reshape(nseg, blocks, 8, 8)
        from repro.gpu.mma import mma_fp64_batched
        from repro.kernels.scan import (
            ALL_ONES,
            LOWER_STRICT_ONES,
            UPPER_ONES,
        )
        p = mma_fp64_batched(v, np.broadcast_to(UPPER_ONES, v.shape))
        rowsum = mma_fp64_batched(v, np.broadcast_to(ALL_ONES, v.shape))
        offs = mma_fp64_batched(
            np.broadcast_to(LOWER_STRICT_ONES, v.shape), rowsum)
        blk = p + offs
        expect = _serial_block_carry(blk).reshape(nseg, seg)
        np.testing.assert_array_equal(got, expect)
