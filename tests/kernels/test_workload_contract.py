"""Contract tests every Cubie workload must satisfy.

These encode the paper's structural claims: five test cases per workload
(Table 2), TC and CC bit-identical outputs (Table 6), CC-E and baseline
rounding differently, counters populated on both evaluation paths, and the
quadrant utilization signatures of Figure 2.
"""

import numpy as np
import pytest

from repro.gpu import Device
from repro.kernels import Quadrant, Variant, all_workloads, get_workload

DEV = Device("H200")


def _outputs_equal(a, b) -> bool:
    """Bitwise comparison that understands CSR outputs."""
    if hasattr(a, "to_dense"):  # CsrMatrix
        return (np.array_equal(a.data, b.data)
                and np.array_equal(a.indices, b.indices))
    return np.array_equal(np.asarray(a), np.asarray(b))


def _max_err(a, b) -> float:
    if hasattr(a, "to_dense"):
        return float(np.abs(a.to_dense() - b.to_dense()).max())
    return float(np.abs(np.asarray(a) - np.asarray(b)).max())


class TestSuiteStructure:
    def test_ten_workloads_registered(self):
        names = [w.name for w in all_workloads()]
        assert names == ["gemm", "pic", "fft", "stencil", "scan",
                         "reduction", "bfs", "gemv", "spmv", "spgemm"]

    def test_get_workload(self):
        assert get_workload("SPMV").name == "spmv"
        with pytest.raises(ValueError):
            get_workload("dgemm")

    def test_quadrant_assignment_matches_figure2(self):
        expect = {
            "gemm": Quadrant.I, "pic": Quadrant.I, "fft": Quadrant.I,
            "stencil": Quadrant.I, "scan": Quadrant.II,
            "reduction": Quadrant.III, "bfs": Quadrant.IV,
            "gemv": Quadrant.IV, "spmv": Quadrant.IV,
            "spgemm": Quadrant.IV,
        }
        for w in all_workloads():
            assert w.quadrant is expect[w.name]

    def test_quadrant_one_has_no_cce(self):
        for w in all_workloads():
            if w.quadrant is Quadrant.I:
                assert not w.has_cce
                assert w.resolve_variant(Variant.CCE) is Variant.CC
            else:
                assert w.has_cce

    def test_five_cases_each(self, workload):
        assert len(workload.cases()) == 5
        labels = [c.label for c in workload.cases()]
        assert len(set(labels)) == 5

    def test_pic_has_no_baseline(self):
        pic = get_workload("pic")
        assert Variant.BASELINE not in pic.variants()
        assert pic.baseline_name == "-"

    def test_bfs_not_floating_point(self):
        assert not get_workload("bfs").floating_point
        assert get_workload("gemm").floating_point


class TestFunctionalExecution:
    @pytest.fixture(scope="class")
    def results(self, workload):
        case = workload.exec_case(workload.representative_case())
        data = workload.prepare(case)
        ref = workload.reference(data)
        out = {v: workload.execute(v, data, DEV) for v in workload.variants()}
        return workload, ref, out

    def test_all_variants_close_to_reference(self, results):
        w, ref, out = results
        for v, r in out.items():
            if w.name == "bfs":
                assert np.array_equal(r.output, ref), v
            else:
                assert _max_err(r.output, ref) < 1e-8, (w.name, v)

    def test_tc_cc_bitwise_identical(self, results):
        w, _, out = results
        if Variant.CC in out:
            assert _outputs_equal(out[Variant.TC].output,
                                  out[Variant.CC].output)

    def test_cce_rounds_differently(self, results):
        w, _, out = results
        if w.has_cce and w.floating_point:
            assert not _outputs_equal(out[Variant.CCE].output,
                                      out[Variant.TC].output), w.name

    def test_baseline_rounds_differently_unless_same_order(self, results):
        # FFT's Stockham baseline happens to share the reference order;
        # every other floating-point baseline must differ from TC
        w, _, out = results
        if Variant.BASELINE in out and w.floating_point \
                and w.name not in ("fft",):
            assert not _outputs_equal(out[Variant.BASELINE].output,
                                      out[Variant.TC].output), w.name

    def test_deterministic_rerun(self, results):
        w, _, out = results
        case = w.exec_case(w.representative_case())
        data = w.prepare(case)
        again = w.execute(Variant.TC, data, DEV)
        assert _outputs_equal(again.output, out[Variant.TC].output)

    def test_positive_time_and_counters(self, results):
        w, _, out = results
        for v, r in out.items():
            assert r.time_s > 0
            assert r.stats.dram_bytes > 0, (w.name, v)
            work = (r.stats.total_flops + r.stats.tc_b1_ops
                    + r.stats.cc_int_ops)
            assert work > 0, (w.name, v)

    def test_tc_uses_tensor_pipe_cc_does_not(self, results):
        w, _, out = results
        tc = out[Variant.TC].stats
        assert tc.tc_flops > 0 or tc.tc_b1_ops > 0
        assert tc.cc_flops == 0
        if Variant.CC in out:
            cc = out[Variant.CC].stats
            assert cc.tc_flops == 0 and cc.tc_b1_ops == 0
            assert cc.cc_flops > 0 or cc.cc_int_ops > 0

    def test_essential_flops_not_exceeding_executed(self, results):
        w, _, out = results
        tc = out[Variant.TC].stats
        if w.floating_point:
            assert tc.essential_flops > 0
            assert tc.redundancy >= 1.0


class TestAnalyticStats:
    def test_analytic_matches_execution_at_same_size(self, workload):
        """The analytic path must reproduce the executed counters when the
        case needs no downscaling (graph/sparse workloads evaluate the
        analytic path by running the same traversal)."""
        w = workload
        case = w.exec_case(w.representative_case())
        data = w.prepare(case)
        for v in w.variants():
            executed = w.execute(v, data, DEV).stats
            analytic = (w.analytic_stats(v, case))
            assert executed.tc_flops == pytest.approx(analytic.tc_flops,
                                                      rel=1e-6)
            assert executed.cc_flops == pytest.approx(analytic.cc_flops,
                                                      rel=1e-6)
            assert executed.dram_bytes == pytest.approx(
                analytic.dram_bytes, rel=1e-6)

    def test_paper_scale_stats_scale_up(self, workload):
        """For size-swept workloads, counters at the largest paper case
        dominate the smallest.  (Scan/Reduction sweep the *segment* size
        over a fixed array, and the graph/matrix workloads sweep datasets,
        so monotonicity only applies to the dense size sweeps.)"""
        w = workload
        if w.name not in ("gemm", "pic", "fft", "gemv", "stencil"):
            pytest.skip("cases are not a monotone size sweep")
        first, last = w.cases()[0], w.cases()[-1]
        small = w.analytic_stats(Variant.TC, first)
        big = w.analytic_stats(Variant.TC, last)
        assert big.total_flops >= small.total_flops


class TestQuadrantSignatures:
    """Figure 2: input/output fragment utilization per quadrant."""

    def test_quadrant1_full_input_full_output(self):
        for name in ("gemm",):
            st = get_workload(name).analytic_stats(
                Variant.TC, get_workload(name).cases()[0])
            assert st.input_utilization == pytest.approx(1.0)
            assert st.output_utilization == pytest.approx(1.0)

    def test_scan_partial_input_full_output(self):
        w = get_workload("scan")
        st = w.analytic_stats(Variant.TC, w.cases()[0])
        assert st.input_utilization < 0.75
        assert st.output_utilization == pytest.approx(1.0)

    def test_reduction_partial_input_partial_output(self):
        w = get_workload("reduction")
        st = w.analytic_stats(Variant.TC, w.cases()[0])
        assert st.input_utilization < 0.75
        assert st.output_utilization < 0.25

    def test_gemv_full_input_partial_output(self):
        w = get_workload("gemv")
        st = w.analytic_stats(Variant.TC, w.cases()[0])
        assert st.input_utilization == pytest.approx(1.0)
        assert st.output_utilization == pytest.approx(1 / 8)
