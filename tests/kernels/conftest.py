"""Shared fixtures: small-scale workload instances for fast functional
tests.  Scaled instances exercise the same code paths as the registered
paper-scale ones."""

import pytest

from repro.kernels import (
    BfsWorkload,
    FftWorkload,
    GemmWorkload,
    GemvWorkload,
    PicWorkload,
    ReductionWorkload,
    ScanWorkload,
    SpgemmWorkload,
    SpmvWorkload,
    StencilWorkload,
)


def small_workloads():
    return [
        GemmWorkload(),
        PicWorkload(),
        FftWorkload(),
        StencilWorkload(),
        ScanWorkload(n_total=1 << 18, n_exec=1 << 15),
        ReductionWorkload(n_total=1 << 18, n_exec=1 << 15),
        BfsWorkload(),
        GemvWorkload(),
        SpmvWorkload(scale=0.08),
        SpgemmWorkload(scale=0.08, exec_scale=0.08),
    ]


@pytest.fixture(scope="session", params=small_workloads(),
                ids=lambda w: w.name)
def workload(request):
    return request.param
