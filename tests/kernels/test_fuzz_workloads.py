"""Randomized workload execution: every variant must agree with the
serial reference at arbitrary (small) sizes and seeds."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Device
from repro.kernels import (
    FftWorkload,
    GemmWorkload,
    GemvWorkload,
    PicWorkload,
    ReductionWorkload,
    ScanWorkload,
    StencilWorkload,
    Variant,
)
from repro.kernels.base import WorkloadCase

DEV = Device("H200")


class TestGemmFuzz:
    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12),
           st.integers(0, 10000))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_shapes(self, mt, nt, kt, seed):
        m, n, k = 8 * mt, 8 * nt, 4 * kt
        w = GemmWorkload()
        case = WorkloadCase(label="fuzz", params={"m": m, "n": n, "k": k})
        data = w.prepare(case, seed=seed)
        ref = w.reference(data)
        for v in (Variant.TC, Variant.BASELINE):
            out = w.execute(v, data, DEV).output
            np.testing.assert_allclose(out, ref, atol=1e-10 * k)


class TestGemvFuzz:
    @given(st.integers(1, 64), st.integers(1, 6), st.integers(0, 10000))
    @settings(max_examples=15, deadline=None)
    def test_arbitrary_shapes(self, mt, nt, seed):
        m, n = 8 * mt, 4 * nt
        w = GemvWorkload()
        case = WorkloadCase(label="fuzz", params={"m": m, "n": n})
        data = w.prepare(case, seed=seed)
        ref = w.reference(data)
        for v in w.variants():
            out = w.execute(v, data, DEV).output
            np.testing.assert_allclose(out, ref, atol=1e-12 * n)


class TestScanReductionFuzz:
    @given(st.sampled_from([64, 128, 256, 512, 1024]),
           st.integers(1, 64), st.integers(0, 10000))
    @settings(max_examples=12, deadline=None)
    def test_scan_any_segment_combo(self, seg, nseg, seed):
        w = ScanWorkload()
        case = WorkloadCase(label="fuzz",
                            params={"segment": seg, "n": seg * nseg})
        data = w.prepare(case, seed=seed)
        ref = w.reference(data)
        for v in w.variants():
            out = w.execute(v, data, DEV).output
            np.testing.assert_allclose(out, ref, atol=1e-9)

    @given(st.sampled_from([64, 128, 256, 512, 1024]),
           st.integers(1, 64), st.integers(0, 10000))
    @settings(max_examples=12, deadline=None)
    def test_reduction_any_segment_combo(self, seg, nseg, seed):
        w = ReductionWorkload()
        case = WorkloadCase(label="fuzz",
                            params={"segment": seg, "n": seg * nseg})
        data = w.prepare(case, seed=seed)
        ref = w.reference(data)
        for v in w.variants():
            out = w.execute(v, data, DEV).output
            np.testing.assert_allclose(out, ref, atol=1e-10)


class TestFftFuzz:
    @given(st.sampled_from([16, 64, 256, 1024]), st.integers(1, 32),
           st.integers(0, 10000))
    @settings(max_examples=10, deadline=None)
    def test_power_of_two_lengths(self, n, batch, seed):
        w = FftWorkload()
        case = WorkloadCase(label="fuzz",
                            params={"n1": n, "n2": 1, "batch": batch})
        data = w.prepare(case, seed=seed)
        ref = w.reference(data)
        for v in w.variants():
            out = w.execute(v, data, DEV).output
            np.testing.assert_allclose(out, ref, atol=1e-9 * n)

    @given(st.sampled_from([32, 128, 512]))
    @settings(max_examples=6, deadline=None)
    def test_non_power_of_four_uses_radix2_tail(self, n):
        # 32, 128, 512 are powers of two but not of four
        w = FftWorkload()
        case = WorkloadCase(label="fuzz",
                            params={"n1": n, "n2": 1, "batch": 4})
        data = w.prepare(case)
        out = w.execute(Variant.TC, data, DEV).output
        np.testing.assert_allclose(out, np.fft.fft(data["x"], axis=-1),
                                   atol=1e-9 * n)


class TestStencilPicFuzz:
    @given(st.integers(3, 40), st.integers(0, 10000))
    @settings(max_examples=10, deadline=None)
    def test_stencil_2d_any_grid(self, n, seed):
        w = StencilWorkload()
        case = WorkloadCase(label="fuzz",
                            params={"kind": "star2d1r", "nx": n, "ny": n,
                                    "nz": 1})
        data = w.prepare(case, seed=seed)
        ref = w.reference(data)
        out = w.execute(Variant.TC, data, DEV).output
        np.testing.assert_allclose(out, ref, atol=1e-13)

    @given(st.integers(1, 9), st.integers(0, 10000))
    @settings(max_examples=10, deadline=None)
    def test_pic_any_ensemble(self, n_shift, seed):
        w = PicWorkload()
        case = WorkloadCase(label="fuzz", params={"n": 8 << n_shift})
        data = w.prepare(case, seed=seed)
        ref = w.reference(data)
        out = w.execute(Variant.TC, data, DEV).output
        np.testing.assert_allclose(out, ref, atol=1e-12)
