"""Edge-case and failure-injection tests for the workloads and device."""

import numpy as np
import pytest

from repro.gpu import Device, KernelStats
from repro.kernels import (
    GemvWorkload,
    ScanWorkload,
    SpmvWorkload,
    Variant,
)
from repro.kernels.base import WorkloadCase
from repro.sparse.csr import CsrMatrix
from repro.sparse.dasp import DaspMatrix

DEV = Device("H200")


class TestDegenerateInputs:
    def test_spmv_on_empty_matrix(self):
        a = CsrMatrix.from_coo([], [], [], (16, 16))
        d = DaspMatrix.from_csr(a)
        w = SpmvWorkload()
        data = {"a": a, "dasp": d, "x": np.ones(16)}
        for v in w.variants():
            out = w.execute(v, data, DEV).output
            np.testing.assert_array_equal(out, np.zeros(16))

    def test_spmv_single_entry(self):
        a = CsrMatrix.from_coo([3], [5], [2.5], (8, 8))
        w = SpmvWorkload()
        data = {"a": a, "dasp": DaspMatrix.from_csr(a),
                "x": np.arange(8.0)}
        for v in w.variants():
            out = w.execute(v, data, DEV).output
            np.testing.assert_array_equal(out[3], 12.5)
            assert np.count_nonzero(out) == 1

    def test_gemv_single_row(self):
        w = GemvWorkload()
        case = WorkloadCase(label="1row", params={"m": 8, "n": 4})
        data = w.prepare(case)
        for v in w.variants():
            out = w.execute(v, data, DEV).output
            np.testing.assert_allclose(out, w.reference(data), atol=1e-14)

    def test_scan_single_segment(self):
        w = ScanWorkload()
        case = WorkloadCase(label="one", params={"segment": 64, "n": 64})
        data = w.prepare(case)
        out = w.execute(Variant.TC, data, DEV).output
        np.testing.assert_allclose(out, w.reference(data), atol=1e-12)


class TestNanPropagation:
    """NaN inputs must flow to NaN outputs, never crash or vanish."""

    def test_spmv_nan_value(self):
        a = CsrMatrix.from_coo([0, 1], [0, 1], [np.nan, 1.0], (8, 8))
        w = SpmvWorkload()
        data = {"a": a, "dasp": DaspMatrix.from_csr(a), "x": np.ones(8)}
        out = w.execute(Variant.TC, data, DEV).output
        assert np.isnan(out[0])
        assert out[1] == 1.0

    def test_scan_nan_blast_radius_differs_by_variant(self):
        # a real MMU-transformation hazard: the constant-matrix MMA
        # multiplies NaN by its *zero* entries too (NaN x 0 = NaN), so one
        # NaN poisons the entire 8x8 block, while the vector baseline only
        # poisons the mathematical suffix
        w = ScanWorkload()
        case = WorkloadCase(label="nan", params={"segment": 64, "n": 64})
        data = w.prepare(case)
        data["x"][0, 10] = np.nan
        tc = w.execute(Variant.TC, data, DEV).output
        base = w.execute(Variant.BASELINE, data, DEV).output
        assert np.isnan(tc[0]).all()           # whole block blasted
        assert np.isnan(base[0, 10:]).all()    # suffix poisoned
        assert np.isfinite(base[0, :8]).any()  # prefix survives

    def test_gemv_nan_in_x(self):
        w = GemvWorkload()
        case = WorkloadCase(label="nan", params={"m": 16, "n": 8})
        data = w.prepare(case)
        data["x"][3] = np.nan
        out = w.execute(Variant.TC, data, DEV).output
        assert np.isnan(out).all()  # every row touches x[3]


class TestModelGuards:
    def test_zero_work_kernel_costs_launch_only(self):
        r = DEV.resolve(KernelStats())
        assert r.time_s == pytest.approx(DEV.spec.launch_overhead_s)
        assert r.flops == 0.0

    def test_huge_kernel_does_not_overflow(self):
        st = KernelStats()
        st.add_mma_fp64(1e15)
        st.read_dram(1e18, 1 << 20)
        r = DEV.resolve(st)
        assert np.isfinite(r.time_s) and r.time_s > 1.0
        assert np.isfinite(r.edp)

    def test_negative_inputs_rejected_in_counters(self):
        st = KernelStats()
        with pytest.raises(ValueError):
            st.read_dram(-5.0, 8)
        with pytest.raises(ValueError):
            st.read_dram(5.0, 0)

    def test_workload_case_params_immutable_mapping(self):
        case = WorkloadCase(label="x", params={"m": 8})
        assert case["m"] == 8
        with pytest.raises(KeyError):
            case["missing"]
