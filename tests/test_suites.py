"""Tests for the benchmark-suite comparison substrate (Figure 11)."""

import numpy as np

from repro.gpu import Device, KernelStats
from repro.kernels import GemmWorkload, GemvWorkload, ScanWorkload
from repro.suites import (
    METRIC_NAMES,
    RODINIA_KERNELS,
    SHOC_KERNELS,
    metrics_for_stats,
    suite_metric_points,
)

DEV = Device("H200")


class TestMiniKernels:
    def test_ten_kernels_per_suite(self):
        assert len(RODINIA_KERNELS) == 10
        assert len(SHOC_KERNELS) == 10
        assert all(k.suite == "Rodinia" for k in RODINIA_KERNELS)
        assert all(k.suite == "SHOC" for k in SHOC_KERNELS)

    def test_names_unique_within_suite(self):
        for suite in (RODINIA_KERNELS, SHOC_KERNELS):
            names = [k.name for k in suite]
            assert len(names) == len(set(names))

    def test_all_stats_resolvable(self):
        for k in RODINIA_KERNELS + SHOC_KERNELS:
            r = DEV.resolve(k.stats())
            assert r.time_s > 0
            assert DEV.spec.idle_w <= r.power_w <= DEV.spec.tdp_w

    def test_vector_suites_never_touch_tensor_pipe(self):
        for k in RODINIA_KERNELS + SHOC_KERNELS:
            st = k.stats()
            assert st.tc_flops == 0 and st.tc_b1_ops == 0

    def test_characteristic_profiles(self):
        by = {k.name: k.stats() for k in RODINIA_KERNELS + SHOC_KERNELS}
        # sgemm is the most compute-rich; triad is pure streaming
        assert by["sgemm"].arithmetic_intensity() \
            > by["triad"].arithmetic_intensity()
        # spmv/sort have scattered access (small segments)
        assert min(s.segment_bytes for s in by["spmv"].dram) <= 8
        assert min(s.segment_bytes for s in by["triad"].dram) >= 1 << 16


class TestMetrics:
    def test_metric_vector_shape_and_ranges(self):
        st = KernelStats()
        st.add_mma_fp64(1e6)
        st.read_dram(1e8, 1 << 16)
        v = metrics_for_stats(st, DEV)
        assert v.shape == (len(METRIC_NAMES),)
        assert 0.0 <= v[0] <= 1.0   # memory efficiency
        assert 0.0 <= v[1] <= 1.0   # compute throughput fraction
        assert 0.0 <= v[2] <= 1.0 and 0.0 <= v[3] <= 1.0

    def test_tensor_axis_separates_cubie(self):
        tc = KernelStats()
        tc.add_mma_fp64(1e9)
        vec = KernelStats()
        vec.add_fma(5.12e11)
        v_tc = metrics_for_stats(tc, DEV)
        v_vec = metrics_for_stats(vec, DEV)
        assert v_tc[3] > 0.5        # tensor pipe utilization
        assert v_vec[3] == 0.0

    def test_suite_metric_points_labels(self):
        pts = suite_metric_points(
            [GemmWorkload(), ScanWorkload(), GemvWorkload()], DEV)
        suites = {p.suite for p in pts}
        assert suites == {"Rodinia", "SHOC", "Cubie"}
        cubie = [p for p in pts if p.suite == "Cubie"]
        # gemm 3 variants + scan 4 + gemv 4
        assert len(cubie) == 11
        assert all(np.isfinite(p.values).all() for p in pts)
