"""Tests for the CG and AMG application layers."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla
import scipy.sparse as sp

from repro.apps.amg import (
    build_hierarchy,
    modeled_setup_cost,
    modeled_vcycle_cost,
    solve as amg_solve,
    v_cycle,
)
from repro.apps.cg import conjugate_gradient, modeled_iteration_cost
from repro.gpu import Device
from repro.kernels import Variant
from repro.sparse.csr import CsrMatrix

DEV = Device("H200")


def poisson_2d(side: int) -> CsrMatrix:
    """Standard 5-point Poisson matrix on a side x side grid (SPD)."""
    n = side * side
    rows, cols, vals = [], [], []
    for i in range(side):
        for j in range(side):
            k = i * side + j
            rows.append(k); cols.append(k); vals.append(4.0)
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < side and 0 <= jj < side:
                    rows.append(k); cols.append(ii * side + jj)
                    vals.append(-1.0)
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


@pytest.fixture(scope="module")
def poisson():
    return poisson_2d(24)


@pytest.fixture(scope="module")
def rhs(poisson):
    rng = np.random.default_rng(0)
    return rng.uniform(-1, 1, poisson.n_rows)


class TestCg:
    def test_converges_on_poisson(self, poisson, rhs):
        res = conjugate_gradient(poisson, rhs, tol=1e-10, max_iter=2000)
        assert res.converged
        assert res.final_residual < 1e-10
        # residual history is (weakly) trending down
        assert res.residuals[-1] < res.residuals[0]

    def test_matches_scipy(self, poisson, rhs):
        res = conjugate_gradient(poisson, rhs, tol=1e-12, max_iter=4000)
        direct = spla.spsolve(
            sp.csr_matrix((poisson.data, poisson.indices, poisson.indptr),
                          shape=poisson.shape).tocsc(), rhs)
        np.testing.assert_allclose(res.x, direct, atol=1e-8)

    def test_zero_rhs_immediate(self, poisson):
        res = conjugate_gradient(poisson, np.zeros(poisson.n_rows))
        assert res.converged
        assert res.iterations == 0 or res.final_residual < 1e-12

    def test_validation(self, poisson):
        with pytest.raises(ValueError):
            conjugate_gradient(poisson, np.ones(3))
        rect = CsrMatrix.from_coo([0], [1], [1.0], (2, 3))
        with pytest.raises(ValueError):
            conjugate_gradient(rect, np.ones(3))

    def test_non_spd_bails_cleanly(self):
        a = CsrMatrix.from_dense(np.array([[1.0, 0.0], [0.0, -1.0]]))
        res = conjugate_gradient(a, np.array([0.0, 1.0]), max_iter=10)
        assert not res.converged

    def test_modeled_iteration_cost(self, poisson):
        cost_tc = modeled_iteration_cost(poisson, DEV, Variant.TC)
        cost_base = modeled_iteration_cost(poisson, DEV, Variant.BASELINE)
        assert cost_tc["iteration_s"] > 0
        assert cost_tc["iteration_s"] == pytest.approx(
            cost_tc["spmv_s"] + 2 * cost_tc["dot_s"]
            + 3 * cost_tc["axpy_s"])
        assert cost_tc["spmv_s"] < cost_base["spmv_s"]


class TestAmg:
    def test_hierarchy_coarsens(self, poisson):
        h = build_hierarchy(poisson)
        assert h.n_levels >= 2
        sizes = [lv.a.n_rows for lv in h.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert 1.0 <= h.operator_complexity < 3.0

    def test_galerkin_operator_correct(self, poisson):
        h = build_hierarchy(poisson, max_levels=2)
        if h.n_levels < 2:
            pytest.skip("did not coarsen")
        p = h.levels[1].p
        dense_p = p.to_dense()
        expected = dense_p.T @ poisson.to_dense() @ dense_p
        np.testing.assert_allclose(h.levels[1].a.to_dense(), expected,
                                   atol=1e-10)

    def test_vcycle_reduces_residual(self, poisson, rhs):
        h = build_hierarchy(poisson)
        x = np.zeros(poisson.n_rows)
        r0 = np.linalg.norm(rhs - poisson.spmv_serial(x))
        x = v_cycle(h, rhs, x)
        r1 = np.linalg.norm(rhs - poisson.spmv_serial(x))
        assert r1 < 0.7 * r0

    def test_solve_converges(self, poisson, rhs):
        x, history, h = amg_solve(poisson, rhs, tol=1e-8, max_cycles=100)
        assert history[-1] < 1e-8
        np.testing.assert_allclose(poisson.spmv_serial(x), rhs,
                                   atol=1e-6 * np.linalg.norm(rhs))

    def test_modeled_costs_positive(self, poisson):
        h = build_hierarchy(poisson)
        assert modeled_setup_cost(h, DEV, Variant.TC) > 0
        assert modeled_vcycle_cost(h, DEV, Variant.TC) > 0

    def test_amgt_premise_on_block_operator(self):
        # the AmgT premise — tensor-core SpGEMM accelerates the setup —
        # holds for block-structured FEM operators (scalar Poisson has
        # 1-entry mBSR blocks and genuinely does not profit; see the
        # Table 4 fill ratios)
        scalar = poisson_2d(20)
        node_rows = scalar.row_of_entry()
        dof = 4
        li = np.tile(np.repeat(np.arange(dof), dof), scalar.nnz)
        lj = np.tile(np.tile(np.arange(dof), dof), scalar.nnz)
        rows = np.repeat(node_rows * dof, dof * dof) + li
        cols = np.repeat(scalar.indices * dof, dof * dof) + lj
        vals = np.repeat(scalar.data, dof * dof)
        block = CsrMatrix.from_coo(rows, cols, vals,
                                   (scalar.n_rows * dof,
                                    scalar.n_cols * dof))
        h = build_hierarchy(block, max_levels=2)
        setup_tc = modeled_setup_cost(h, DEV, Variant.TC)
        setup_base = modeled_setup_cost(h, DEV, Variant.BASELINE)
        assert setup_tc < setup_base

    def test_rejects_rectangular(self):
        rect = CsrMatrix.from_coo([0], [1], [1.0], (2, 3))
        with pytest.raises(ValueError):
            build_hierarchy(rect)
