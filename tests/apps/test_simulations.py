"""Tests for the wave and plasma simulation applications."""

import numpy as np
import pytest

from repro.apps.plasma import PlasmaSimulation
from repro.apps.wave import WaveSimulation, cfl_limit
from repro.gpu import Device
from repro.kernels import Variant

DEV = Device("H200")


class TestWave:
    def test_cfl_limit(self):
        assert cfl_limit(1.0, 1.0) == pytest.approx(1 / np.sqrt(2))
        with pytest.raises(ValueError):
            cfl_limit(0.0, 1.0)

    def test_rejects_unstable_dt(self):
        with pytest.raises(ValueError, match="CFL"):
            WaveSimulation(n=32, c=1.0, dx=1.0, dt=1.0)

    def test_wave_propagates_outward(self):
        sim = WaveSimulation(n=64)
        sim.add_source(32, 32, amplitude=1.0, radius=2)
        near_before = np.abs(sim.u[30:35, 30:35]).max()
        far_before = np.abs(sim.u[10, 10])
        sim.step(40)
        far_after = np.abs(sim.u[12:20, 12:20]).max()
        assert near_before > 0.9          # source present
        assert far_before < 1e-6          # initially quiet far away
        assert far_after > 1e-4           # disturbance arrived

    def test_stable_energy(self):
        sim = WaveSimulation(n=48)
        sim.add_source(24, 24)
        sim.step(5)
        e0 = sim.energy()
        sim.step(100)
        e1 = sim.energy()
        # open borders leak energy; it must never blow up
        assert e1 < 2.0 * e0

    def test_laplacian_of_constant_interior_zero(self):
        sim = WaveSimulation(n=16)
        lap = sim.laplacian(np.ones((16, 16)))
        np.testing.assert_allclose(lap[1:-1, 1:-1], 0.0, atol=1e-14)

    def test_modeled_step_cost_tc_faster(self):
        sim = WaveSimulation(n=512)
        t_tc = sim.modeled_step_cost(DEV, Variant.TC)
        t_base = sim.modeled_step_cost(DEV, Variant.BASELINE)
        assert 0 < t_tc < t_base


class TestPlasma:
    def test_boris_rotation_preserves_speed(self):
        sim = PlasmaSimulation(n_particles=256)
        drift = sim.gyration_check(b_mag=1.0, steps=50)
        assert drift < 1e-12  # Boris is norm-preserving in pure B

    def test_e_field_accelerates(self):
        sim = PlasmaSimulation(n_particles=256)
        sim.set_uniform_fields((1.0, 0.0, 0.0), (0.0, 0.0, 0.0))
        ke0 = sim.kinetic_energy()
        sim.step(20)
        assert sim.kinetic_energy() > ke0

    def test_positions_stay_in_grid(self):
        sim = PlasmaSimulation(n_particles=128)
        sim.step(10)
        from repro.kernels.pic import GRID
        assert sim.data["pos"].min() >= 0
        assert sim.data["pos"].max() < GRID

    def test_steps_counted(self):
        sim = PlasmaSimulation(n_particles=64)
        sim.step(3)
        assert sim.steps_taken == 3

    def test_modeled_step_cost(self):
        sim = PlasmaSimulation(n_particles=1 << 16)
        tc = sim.modeled_step_cost(DEV, Variant.TC)
        cc = sim.modeled_step_cost(DEV, Variant.CC)
        assert tc["step_s"] < cc["step_s"]
        assert tc["particles_per_s"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PlasmaSimulation(n_particles=2)
