"""Tests for the what-if architecture exploration and the CLI
observations command."""

import pytest

from repro.gpu import B200, H200
from repro.harness.whatif import evaluate_whatif, hypothetical
from repro.kernels import (
    GemmWorkload,
    GemvWorkload,
    ScanWorkload,
    Variant,
)


class TestHypothetical:
    def test_scaling_applies(self):
        h = hypothetical("B200", tc_fp64=2.0)
        assert h.tc_fp64 == pytest.approx(B200.tc_fp64 * 2.0)
        assert h.cc_fp64 == B200.cc_fp64       # untouched
        assert "B200" in h.name and "tc_fp64" in h.name

    def test_custom_name(self):
        h = hypothetical(H200, name="H200-fast-mem", dram_bw=1.5)
        assert h.name == "H200-fast-mem"
        assert h.dram_bw == pytest.approx(H200.dram_bw * 1.5)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="cannot scale"):
            hypothetical("H200", sms=2.0)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            hypothetical("H200", tc_fp64=0.0)


class TestEvaluateWhatif:
    def test_restored_fp64_ratio_helps_compute_bound_only(self):
        wl = [GemmWorkload(), GemvWorkload()]
        restored = hypothetical("B200", tc_fp64=2.0)
        results = {r.workload: r for r in
                   evaluate_whatif(wl, "B200", restored, Variant.TC)}
        assert results["gemm"].speedup > 1.3       # compute bound: big win
        assert results["gemv"].speedup == pytest.approx(1.0, abs=0.05)

    def test_bandwidth_scaling_helps_memory_bound(self):
        wl = [GemmWorkload(), GemvWorkload(), ScanWorkload()]
        fast_mem = hypothetical("H200", dram_bw=2.0)
        results = {r.workload: r for r in
                   evaluate_whatif(wl, "H200", fast_mem, Variant.TC)}
        # scan streams gigabytes: bandwidth scaling shows fully; GEMV's
        # Table 2 shapes are tiny and launch-bound, so only a sliver shows
        assert results["scan"].speedup > 1.5
        assert 1.02 < results["gemv"].speedup < 1.5
        assert results["gemm"].speedup < results["gemv"].speedup

    def test_identity_whatif_is_neutral(self):
        wl = [GemmWorkload()]
        same = hypothetical("A100", name="A100-copy")
        (r,) = evaluate_whatif(wl, "A100", same)
        assert r.speedup == pytest.approx(1.0)


class TestWhatifRunnerIdentity:
    def test_base_times_match_runner_records_exactly(self):
        """A what-if answer is anchored to the same numbers the perf
        runner reports: base_time_s must equal the PerfRecord time_s of
        the representative case, bit for bit (both are the TimingModel's
        breakdown total)."""
        from repro.gpu.device import Device
        from repro.harness.runner import run_performance

        workloads = [GemmWorkload(), GemvWorkload(), ScanWorkload()]
        identity = hypothetical("H200", name="H200-identity")
        whatifs = evaluate_whatif(workloads, "H200", identity, Variant.TC)
        records = run_performance(workloads, [Device("H200")], n_jobs=1)
        by_key = {(r.workload, r.variant, r.case): r.time_s
                  for r in records}
        assert len(whatifs) == len(workloads)
        for w, res in zip(workloads, whatifs):
            case = w.representative_case().label
            assert res.base_time_s == by_key[(res.workload, res.variant,
                                              case)]
            assert res.whatif_time_s == res.base_time_s

    def test_serve_whatif_rows_match_evaluate_whatif(self):
        """The served whatif query reports exactly what the library
        computes."""
        from repro.kernels import all_workloads
        from repro.serve.protocol import normalize_params
        from repro.serve.queries import resolve_query

        params = normalize_params(
            "whatif", {"base": "B200", "scales": {"tc_fp64": 2.0}})
        payload = resolve_query("whatif", params)
        restored = hypothetical("B200", tc_fp64=2.0)
        direct = evaluate_whatif(all_workloads(), "B200", restored,
                                 Variant.TC)
        assert len(payload["results"]) == len(direct)
        for row, res in zip(payload["results"], direct):
            assert row["workload"] == res.workload
            assert row["base_time_s"] == res.base_time_s
            assert row["whatif_time_s"] == res.whatif_time_s
            assert row["speedup"] == res.speedup


class TestObservationsCli:
    @pytest.mark.slow
    def test_observations_command_exits_zero(self, capsys):
        # run on the full registry: the audit must hold end to end
        from repro.cli import main
        assert main(["observations"]) == 0
        out = capsys.readouterr().out
        assert "O9" in out and "FAILS" not in out
