"""Resumable sweeps: journal durability and the kill-and-resume contract.

The in-process tests cover the journal format and the resume equality;
the subprocess test actually dies (``sweep.kill`` → ``os._exit(9)``)
mid-sweep and proves the resumed payload is byte-identical to an
uninterrupted one — the same check chaos CI runs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults
from repro.gpu.device import Device
from repro.harness.checkpoint import (
    SweepJournal,
    point_key,
    resumable_sweep,
    serialize_payload,
)
from repro.harness.sweep import SIZE_SWEEPS
from repro.kernels.base import Variant

VARIANTS = (Variant.BASELINE, Variant.TC)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset_fault_state()
    yield
    faults.clear_plan()


class TestSweepJournal:
    def test_round_trip_last_wins(self, tmp_path):
        j = SweepJournal(tmp_path / "j.jsonl")
        j.append("k1", [{"size": 1}])
        j.append("k2", [{"size": 2}])
        j.append("k1", [{"size": 3}])  # rewrite: last occurrence wins
        assert j.load() == {"k1": [{"size": 3}], "k2": [{"size": 2}]}

    def test_torn_tail_is_skipped(self, tmp_path):
        j = SweepJournal(tmp_path / "j.jsonl")
        j.append("k1", [{"size": 1}])
        with open(j.path, "a") as fh:
            fh.write('{"key": "k2", "points": [{"si')  # killed mid-write
        assert j.load() == {"k1": [{"size": 1}]}

    def test_malformed_records_are_skipped(self, tmp_path):
        j = SweepJournal(tmp_path / "j.jsonl")
        j.path.write_text('"just a string"\n{"key": 5, "points": []}\n'
                          '{"key": "ok", "points": [{"size": 9}]}\n')
        assert j.load() == {"ok": [{"size": 9}]}

    def test_missing_file_loads_empty_and_clear_is_idempotent(self, tmp_path):
        j = SweepJournal(tmp_path / "absent.jsonl")
        assert j.load() == {}
        j.clear()
        j.clear()

    def test_point_key_depends_on_every_coordinate(self):
        base = point_key("gemm", 256, VARIANTS, "H200")
        assert point_key("gemm", 256, VARIANTS, "H200") == base
        assert point_key("gemv", 256, VARIANTS, "H200") != base
        assert point_key("gemm", 512, VARIANTS, "H200") != base
        assert point_key("gemm", 256, VARIANTS, "A100") != base
        assert point_key("gemm", 256, (Variant.BASELINE,), "H200") != base


class TestResumableSweep:
    def test_resume_equals_uninterrupted(self, tmp_path):
        dev = Device("H200")
        plain = resumable_sweep("gemm", dev, VARIANTS)
        # journal only a prefix of the grid, then resume over it
        journal = SweepJournal(tmp_path / "j.jsonl")
        sizes = SIZE_SWEEPS["gemm"][2]
        per_point = len(plain["points"]) // len(sizes)
        for i, s in enumerate(sizes[:2]):
            key = point_key("gemm", s, VARIANTS, dev.spec.name)
            journal.append(
                key, plain["points"][i * per_point:(i + 1) * per_point])
        resumed = resumable_sweep("gemm", dev, VARIANTS,
                                  journal=journal, resume=True)
        assert serialize_payload(resumed) == serialize_payload(plain)

    def test_without_resume_journal_is_cleared(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.append("stale-key", [{"size": 0}])
        payload = resumable_sweep("gemm", Device("H200"), VARIANTS,
                                  journal=journal)
        records = journal.load()
        assert "stale-key" not in records
        assert len(records) == len(SIZE_SWEEPS["gemm"][2])
        assert payload["workload"] == "gemm"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="no size sweep"):
            resumable_sweep("nope", Device("H200"))

    def test_payload_serialization_is_canonical(self):
        payload = {"b": 2, "a": [1.5, {"z": 1, "y": 2}]}
        line = serialize_payload(payload)
        assert line == '{"a":[1.5,{"y":2,"z":1}],"b":2}\n'
        assert json.loads(line) == payload


class TestKillAndResume:
    """The chaos-CI contract, end to end through the real CLI."""

    def _run_sweep(self, out: Path, journal: Path | None = None,
                   resume: bool = False, env_extra: dict | None = None):
        cmd = [sys.executable, "-m", "repro", "sweep", "gemm",
               "--out", str(out)]
        if journal is not None:
            cmd += ["--journal", str(journal)]
        if resume:
            cmd += ["--resume"]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).parents[2] / "src")
        env.pop(faults.ENV_VAR, None)
        env.update(env_extra or {})
        return subprocess.run(cmd, capture_output=True, text=True,
                              env=env, timeout=300)

    def test_killed_sweep_resumes_byte_identical(self, tmp_path):
        base = self._run_sweep(tmp_path / "base.json")
        assert base.returncode == 0, base.stderr
        journal = tmp_path / "sweep.jsonl"
        # seed 11 is a known killer for this grid (also used by chaos CI)
        killed = self._run_sweep(
            tmp_path / "killed.json", journal=journal,
            env_extra={faults.ENV_VAR: "sweep.kill=0.35,seed=11"})
        assert killed.returncode == 9, (killed.returncode, killed.stderr)
        assert not (tmp_path / "killed.json").exists()
        assert journal.exists() and journal.stat().st_size > 0
        resumed = self._run_sweep(tmp_path / "resumed.json",
                                  journal=journal, resume=True)
        assert resumed.returncode == 0, resumed.stderr
        assert "resumed" in resumed.stderr
        assert (tmp_path / "resumed.json").read_bytes() \
            == (tmp_path / "base.json").read_bytes()
