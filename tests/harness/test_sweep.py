"""Tests for the size-sweep and crossover analysis."""

import pytest

from repro.gpu import Device
from repro.harness.sweep import (
    SIZE_SWEEPS,
    SweepPoint,
    find_crossover,
    sweep_sizes,
)
from repro.kernels import Variant

DEV = Device("H200")


class TestSweep:
    def test_registry_covers_size_parameterized_workloads(self):
        assert set(SIZE_SWEEPS) == {"gemm", "gemv", "fft", "stencil",
                                    "scan", "reduction"}

    def test_sweep_produces_point_per_size_and_variant(self):
        pts = sweep_sizes("gemm", DEV)
        sizes = SIZE_SWEEPS["gemm"][2]
        assert len(pts) == 2 * len(sizes)
        assert all(isinstance(p, SweepPoint) and p.time_s > 0 for p in pts)

    def test_times_grow_with_size(self):
        pts = [p for p in sweep_sizes("gemm", DEV) if p.variant == "tc"]
        times = [p.time_s for p in sorted(pts, key=lambda p: p.size)]
        assert times == sorted(times)

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="no size sweep"):
            sweep_sizes("bfs", DEV)

    def test_variant_filter(self):
        pts = sweep_sizes("gemv", DEV, variants=(Variant.CCE,))
        assert {p.variant for p in pts} == {"cce"}


class TestCrossover:
    def _mk(self, entries):
        return [SweepPoint("w", s, v, t, 0.0) for s, v, t in entries]

    def test_simple_crossover(self):
        pts = self._mk([(1, "baseline", 1.0), (1, "tc", 2.0),
                        (2, "baseline", 2.0), (2, "tc", 1.5),
                        (4, "baseline", 4.0), (4, "tc", 2.0)])
        assert find_crossover(pts) == 2

    def test_never_crosses(self):
        pts = self._mk([(1, "baseline", 1.0), (1, "tc", 2.0),
                        (2, "baseline", 1.0), (2, "tc", 2.0)])
        assert find_crossover(pts) is None

    def test_must_stay_ahead(self):
        # wins at 2, falls behind at 4, wins again at 8 -> crossover is 8
        pts = self._mk([(2, "baseline", 2.0), (2, "tc", 1.0),
                        (4, "baseline", 1.0), (4, "tc", 2.0),
                        (8, "baseline", 2.0), (8, "tc", 1.0)])
        assert find_crossover(pts) == 8

    def test_gemm_crossover_is_not_at_the_smallest_size(self):
        pts = sweep_sizes("gemm", DEV)
        x = find_crossover(pts)
        assert x is not None
        assert x > SIZE_SWEEPS["gemm"][2][0]

    def test_launch_latency_dominates_tiny_problems(self):
        # at the smallest GEMM size both variants are within 2x — the
        # launch overhead floor compresses any compute advantage
        pts = [p for p in sweep_sizes("gemm", DEV)
               if p.size == SIZE_SWEEPS["gemm"][2][0]]
        t = {p.variant: p.time_s for p in pts}
        assert t["baseline"] / t["tc"] < 2.0
