"""Tests for the text report helpers the figure regenerators print
through."""

import pytest

from repro.harness.report import (
    format_seconds,
    format_si,
    format_speedups,
    format_stage_timings,
    format_table,
)
from repro.perf.instrument import StageTiming


class TestFormatSi:
    @pytest.mark.parametrize("value,expected", [
        (1_234_567.0, "1.23 MFLOP/s"),
        (2.5e9, "2.5 GFLOP/s"),
        (9.87e12, "9.87 TFLOP/s"),
        (1500.0, "1.5 KFLOP/s"),
    ])
    def test_engineering_prefixes(self, value, expected):
        assert format_si(value, "FLOP/s") == expected

    def test_small_values_unprefixed(self):
        assert format_si(12.0, "B") == "12 B"
        assert format_si(0.5) == "0.5"

    def test_negative_values_keep_prefix(self):
        assert format_si(-2e6, "B") == "-2 MB"


class TestFormatSeconds:
    def test_unit_ladder(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0042) == "4.200 ms"
        assert format_seconds(3.7e-6) == "3.70 us"


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["name", "v"], [["gemv", 1], ["bfs", 22]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}
        # columns padded to the widest cell
        assert lines[3].index("1") == lines[4].index("2")

    def test_no_title_omits_line(self):
        out = format_table(["a"], [["x"]])
        assert out.splitlines()[0] == "a"


class TestFormatStageTimings:
    def test_sorted_by_wall_with_shares(self):
        timings = [StageTiming(name="fast", seconds=1.0, calls=2),
                   StageTiming(name="slow", seconds=3.0, calls=1)]
        out = format_stage_timings(timings)
        lines = out.splitlines()
        assert lines[0] == "Pipeline stage timings"
        assert lines.index([ln for ln in lines if "slow" in ln][0]) < \
            lines.index([ln for ln in lines if "fast" in ln][0])
        assert "75%" in out and "25%" in out

    def test_zero_total_has_no_share(self):
        out = format_stage_timings(
            [StageTiming(name="idle", seconds=0.0, calls=1)])
        assert "-" in out.splitlines()[-1]


class TestFormatSpeedups:
    def test_grouped_by_workload_with_gpu_columns(self):
        speedups = {("A100", "gemm"): 2.0, ("H200", "gemm"): 3.5,
                    ("A100", "scan"): 1.0}
        out = format_speedups(speedups, title="TC vs baseline")
        lines = out.splitlines()
        assert lines[0] == "TC vs baseline"
        assert "A100" in lines[1] and "H200" in lines[1]
        gemm_row = next(ln for ln in lines if ln.startswith("gemm"))
        assert "2.00x" in gemm_row and "3.50x" in gemm_row
        scan_row = next(ln for ln in lines if ln.startswith("scan"))
        assert "nanx" in scan_row           # missing (H200, scan) cell
