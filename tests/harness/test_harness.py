"""Tests for the runner, report formatting, and artifact flows."""

import numpy as np
import pytest

from repro.gpu import Device
from repro.harness.artifact import QUICK_TEST_WORKLOADS, evaluate
from repro.harness.report import (
    format_seconds,
    format_si,
    format_speedups,
    format_table,
)
from repro.harness.runner import run_performance, speedup_summary
from repro.kernels import (
    GemmWorkload,
    GemvWorkload,
    ReductionWorkload,
    ScanWorkload,
    Variant,
)

FAST = [GemmWorkload(), GemvWorkload(), ScanWorkload(), ReductionWorkload()]


class TestReport:
    def test_format_si(self):
        assert format_si(1.23e12, "FLOP/s") == "1.23 TFLOP/s"
        assert format_si(4.5e9) == "4.5 G"
        assert format_si(999.0) == "999"

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(3.2e-3) == "3.200 ms"
        assert format_seconds(7.5e-6) == "7.50 us"

    def test_format_table_alignment(self):
        t = format_table(["a", "longheader"], [[1, 2], [333, 4]],
                         title="T")
        lines = t.splitlines()
        assert lines[0] == "T"
        assert len({len(ln) for ln in lines[1:]}) <= 2  # aligned columns

    def test_format_speedups_groups_by_workload(self):
        sp = {("A100", "gemm"): 2.0, ("H200", "gemm"): 2.5,
              ("A100", "scan"): 1.3, ("H200", "scan"): 1.4}
        text = format_speedups(sp, "title")
        assert "2.00x" in text and "1.40x" in text
        assert text.splitlines()[0] == "title"


class TestRunner:
    @pytest.fixture(scope="class")
    def records(self):
        return run_performance(workloads=FAST,
                               devices=[Device("A100"), Device("H200")])

    def test_record_count(self, records):
        # 2 GPUs x (gemm 3 variants + gemv/scan/reduction 4) x 5 cases
        assert len(records) == 2 * (3 + 4 + 4 + 4) * 5

    def test_records_have_positive_times(self, records):
        assert all(r.time_s > 0 for r in records)
        assert all(r.power_w > 0 for r in records)

    def test_speedup_summary_mean_of_cases(self, records):
        sp = speedup_summary(records, Variant.TC, Variant.BASELINE)
        manual = np.mean([
            next(r.time_s for r in records
                 if (r.gpu, r.workload, r.variant, r.case)
                 == ("H200", "gemm", "baseline", c))
            / next(r.time_s for r in records
                   if (r.gpu, r.workload, r.variant, r.case)
                   == ("H200", "gemm", "tc", c))
            for c in {r.case for r in records if r.workload == "gemm"}])
        assert sp[("H200", "gemm")] == pytest.approx(manual)

    def test_speedup_summary_skips_missing_denominator(self, records):
        sp = speedup_summary(records, Variant.CCE, Variant.TC)
        assert ("H200", "gemm") not in sp     # gemm has no CC-E
        assert ("H200", "gemv") in sp


class TestArtifact:
    def test_evaluate_writes_expected_files(self, tmp_path):
        written = evaluate(["gemv", "scan"], tmp_path, gpu="H200")
        assert {"Figure3_perf", "Figure4_TCvsBaseline", "Figure5_CCvsTC",
                "Figure6_CCEvsTC", "Figure7_edp", "Figure8_power",
                "all_error"} == set(written)
        for path in written.values():
            assert path.exists()
            assert path.stat().st_size > 0

    def test_error_csv_structure(self, tmp_path):
        written = evaluate(["gemv"], tmp_path, gpu="H200")
        lines = written["all_error"].read_text().strip().splitlines()
        assert lines[0] == "workload,variant,average_error,max_error,samples"
        assert len(lines) == 1 + 4  # gemv has four variants

    def test_quick_test_workload_set_matches_appendix(self):
        assert QUICK_TEST_WORKLOADS == ("spmv", "reduction", "scan", "fft")
