"""Tests for the memory, timing, and power models and the device facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import (
    A100,
    B200,
    H200,
    Device,
    KernelStats,
    MemoryModel,
    TimingModel,
    get_gpu,
)
from repro.gpu.counters import AccessStream
from repro.gpu.power import PowerModel, geomean_edp


class TestSpecs:
    def test_tc_cc_ratio_two_on_ampere_hopper(self):
        assert A100.tc_cc_ratio == pytest.approx(2.0, rel=0.01)
        assert H200.tc_cc_ratio == pytest.approx(2.0, rel=0.01)

    def test_blackwell_fp64_regression(self):
        # Figure 12: B200 FP64 TC peak below H200's, and TC:CC ratio of 1
        assert B200.tc_fp64 < H200.tc_fp64
        assert B200.tc_cc_ratio == pytest.approx(1.0)

    def test_fp16_keeps_scaling(self):
        assert A100.tc_fp16 < H200.tc_fp16 < B200.tc_fp16

    def test_bandwidth_ordering(self):
        assert A100.dram_bw < H200.dram_bw < B200.dram_bw

    def test_get_gpu_case_insensitive(self):
        assert get_gpu("h200") is H200

    def test_get_gpu_unknown(self):
        with pytest.raises(ValueError, match="unknown GPU"):
            get_gpu("V100")

    def test_l1_formula(self):
        # BW_L1 = N_SM * N_LSU * W_access * f_clock (paper Figure 9)
        assert H200.l1_bw_from_lsu() == pytest.approx(132 * 32 * 8 * 1.83e9)


class TestMemoryModel:
    def test_streaming_access_near_logical(self):
        m = MemoryModel()
        s = AccessStream(1 << 20, 1 << 20)
        assert m.effective_stream_bytes(s) == pytest.approx(1 << 20, rel=0.001)

    def test_scattered_doubles_waste_sectors(self):
        m = MemoryModel(sector_bytes=32)
        s = AccessStream(8000, 8)  # 1000 scattered doubles
        # each 8B gather moves one 32B sector plus misalignment spill
        assert m.effective_stream_bytes(s) == pytest.approx(1000 * 1.5 * 32)

    def test_aligned_sector_multiple_no_spill(self):
        m = MemoryModel(sector_bytes=32)
        s = AccessStream(3200, 64)
        assert m.effective_stream_bytes(s) == pytest.approx(3200)

    def test_coalescing_efficiency_monotone_in_segment(self):
        m = MemoryModel()
        effs = []
        for seg in (8, 32, 64, 256, 4096):
            st_ = KernelStats()
            st_.read_dram(1 << 16, seg)
            effs.append(m.resolve(st_).coalescing_efficiency)
        assert effs == sorted(effs)
        assert effs[-1] == pytest.approx(1.0, rel=0.01)

    def test_dram_time_scales_with_waste(self):
        m = MemoryModel()
        a, b = KernelStats(), KernelStats()
        a.read_dram(1e6, 8)
        b.read_dram(1e6, 1 << 20)
        assert m.dram_time(a, 1e12) > m.dram_time(b, 1e12)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MemoryModel(sector_bytes=0)
        with pytest.raises(ValueError):
            MemoryModel(streaming_efficiency=0.0)

    @given(st.floats(16, 1e9), st.floats(8, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_effective_at_least_logical(self, total, seg):
        m = MemoryModel()
        eff = m.effective_stream_bytes(AccessStream(total, seg))
        assert eff >= total * 0.999


class TestTimingModel:
    def test_compute_bound_time(self):
        tm = TimingModel(H200)
        st_ = KernelStats(tc_efficiency=0.5)
        st_.add_mma_fp64(1e9)  # 512 Gflop on TC
        expected = 512e9 / (66.9e12 * 0.5)
        assert tm.tensor_time(st_) == pytest.approx(expected)
        assert tm.breakdown(st_).bottleneck == "tensor"

    def test_memory_bound_time(self):
        tm = TimingModel(H200)
        st_ = KernelStats()
        st_.add_mma_fp64(10)
        st_.read_dram(1e9, 1 << 20)
        assert tm.breakdown(st_).bottleneck == "dram"

    def test_same_work_tc_vs_cc_ratio(self):
        # identical flops on TC vs CC pipe: TC twice as fast on H200 given
        # equal efficiencies, equal on B200
        for spec, ratio in ((H200, 2.0), (B200, 1.0)):
            tm = TimingModel(spec)
            tc, cc = KernelStats(tc_efficiency=0.5, cc_efficiency=0.5), \
                     KernelStats(tc_efficiency=0.5, cc_efficiency=0.5)
            tc.add_mma_fp64(1e9)  # enough work to amortize launch overhead
            cc.add_mma_as_fma(1e9)
            assert tm.time(cc) / tm.time(tc) == pytest.approx(ratio, rel=0.05)

    def test_launch_overhead_floor(self):
        tm = TimingModel(H200)
        assert tm.time(KernelStats()) == pytest.approx(H200.launch_overhead_s)

    def test_throughput_uses_essential_flops(self):
        tm = TimingModel(H200)
        st_ = KernelStats()
        st_.add_mma_fp64(1e6)
        st_.essential_flops = st_.tc_flops / 8  # GEMV-style redundancy
        assert tm.throughput(st_) == pytest.approx(
            st_.essential_flops / tm.time(st_))

    def test_l1_ceiling(self):
        tm = TimingModel(H200)
        st_ = KernelStats()
        st_.l1_bytes = 1e9
        assert tm.l1_time(st_) == pytest.approx(1e9 / H200.l1_bw)
        assert tm.breakdown(st_).bottleneck == "l1"


class TestPowerModel:
    def _stats_compute(self):
        st_ = KernelStats(tc_efficiency=0.5)
        st_.add_mma_fp64(1e9)
        return st_

    def test_steady_power_between_idle_and_tdp(self):
        pm = PowerModel(H200)
        p = pm.steady_power(self._stats_compute())
        assert H200.idle_w < p <= H200.tdp_w

    def test_tensor_heavy_kernel_hotter_than_idlelike(self):
        pm = PowerModel(H200)
        busy = self._stats_compute()
        light = KernelStats()
        light.read_dram(100, 100)
        assert pm.steady_power(busy) > pm.steady_power(light)

    def test_trace_reproducible_and_bounded(self):
        pm = PowerModel(H200)
        st_ = self._stats_compute()
        t1 = pm.trace(st_, repeats=1000)
        t2 = pm.trace(st_, repeats=1000)
        np.testing.assert_array_equal(t1.power_w, t2.power_w)
        assert t1.power_w.max() <= H200.tdp_w
        assert t1.power_w.min() >= 0.8 * H200.idle_w * 0.999

    def test_trace_energy_close_to_steady_product(self):
        pm = PowerModel(H200)
        st_ = self._stats_compute()
        tr = pm.trace(st_, repeats=100000, jitter_w=0.0)
        steady = pm.steady_power(st_)
        # long loop => ramp amortized away
        assert tr.average_power_w == pytest.approx(steady, rel=0.02)

    def test_edp_definition(self):
        pm = PowerModel(H200)
        st_ = self._stats_compute()
        t = pm.timing.time(st_)
        assert pm.edp(st_, repeats=10) == pytest.approx(
            pm.steady_power(st_) * (10 * t) ** 2)

    def test_geomean_edp(self):
        assert geomean_edp([1.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geomean_edp([])
        with pytest.raises(ValueError):
            geomean_edp([1.0, -1.0])


class TestDevice:
    def test_resolve_consistency(self):
        dev = Device("H200")
        st_ = KernelStats()
        st_.add_mma_fp64(1e6)
        st_.read_dram(1e6, 4096)
        r = dev.resolve(st_, output="x")
        assert r.output == "x"
        assert r.time_s == pytest.approx(dev.timing.time(st_))
        assert r.energy_j == pytest.approx(r.power_w * r.time_s)
        assert r.edp == pytest.approx(r.power_w * r.time_s ** 2)
        assert r.edp_repeated(100) == pytest.approx(
            r.power_w * (100 * r.time_s) ** 2)

    def test_constructor_from_string_and_classmethods(self):
        assert Device("a100").spec is A100
        assert Device.h200().spec is H200
        assert Device.b200().spec is B200

    def test_b200_bandwidth_advantage_for_memory_bound(self):
        st_ = KernelStats()
        st_.add_mma_fp64(100)
        st_.read_dram(1e9, 1 << 20)
        t_h = Device("H200").resolve(st_).time_s
        t_b = Device("B200").resolve(st_).time_s
        assert t_b < t_h  # 8 TB/s beats 4 TB/s when memory-bound
