"""Property tests for the launch-plan execution engine: every fused sweep
must be bit-identical to the loop-per-tile primitive calls it replaces."""

import numpy as np
import pytest

from repro.gpu import launch, mma, warp_events
from repro.gpu.launch import (
    LaunchPlan,
    clear_plan_cache,
    execute_plan,
    plan_cache_stats,
    run_chain,
    run_ragged,
)

RNG = np.random.default_rng(1325)


def _loop_chain(a_steps, b_steps, c=None):
    """Reference: one primitive call per chain step."""
    t = a_steps.shape[-3]
    batch = np.broadcast_shapes(a_steps.shape[:-3], b_steps.shape[:-3])
    m, n = a_steps.shape[-2], b_steps.shape[-1]
    acc = np.zeros(batch + (m, n)) if c is None else np.array(c, dtype=float)
    a_steps = np.broadcast_to(a_steps, batch + a_steps.shape[-3:])
    b_steps = np.broadcast_to(b_steps, batch + b_steps.shape[-3:])
    for step in range(t):
        acc = mma.mma_fp64_batched(a_steps[..., step, :, :],
                                   b_steps[..., step, :, :], acc)
    return acc


def _loop_ragged(a_tiles, b_tiles, lengths, offsets, c=None):
    """Reference: per-item Python chains over the flat tile stacks."""
    m, n = a_tiles.shape[-2], b_tiles.shape[-1]
    out = np.zeros((len(lengths), m, n)) if c is None \
        else np.array(c, dtype=float)
    for i, (length, off) in enumerate(zip(lengths, offsets)):
        for s in range(int(length)):
            out[i] = mma.mma_fp64_batched(a_tiles[off + s],
                                          b_tiles[off + s], out[i])
    return out


class TestChain:
    @pytest.mark.parametrize("batch", [(), (3,), (2, 5)])
    @pytest.mark.parametrize("t", [1, 4, 7])
    def test_bit_identical_to_loop(self, batch, t):
        a = RNG.uniform(-2, 2, batch + (t, 8, 4))
        b = RNG.uniform(-2, 2, batch + (t, 4, 8))
        np.testing.assert_array_equal(run_chain(a, b), _loop_chain(a, b))

    def test_with_accumulator(self):
        a = RNG.uniform(-2, 2, (3, 5, 8, 4))
        b = RNG.uniform(-2, 2, (3, 5, 4, 8))
        c = RNG.uniform(-2, 2, (3, 8, 8))
        np.testing.assert_array_equal(run_chain(a, b, c),
                                      _loop_chain(a, b, c))

    def test_broadcast_b_steps(self):
        # gemv-style: one B chain broadcast across the A batch
        a = RNG.uniform(-2, 2, (6, 4, 8, 4))
        b = np.broadcast_to(RNG.uniform(-2, 2, (4, 4, 8)), (6, 4, 4, 8))
        np.testing.assert_array_equal(run_chain(a, b), _loop_chain(a, b))

    def test_exact_zero_padding_steps(self):
        # appending all-zero steps must leave the result bit-unchanged
        a = RNG.uniform(0.0, 2.0, (3, 4, 8, 4))
        b = RNG.uniform(0.0, 2.0, (3, 4, 4, 8))
        a_pad = np.concatenate([a, np.zeros((3, 2, 8, 4))], axis=1)
        b_pad = np.concatenate([b, np.zeros((3, 2, 4, 8))], axis=1)
        np.testing.assert_array_equal(run_chain(a_pad, b_pad),
                                      run_chain(a, b))

    def test_nonstandard_tile_shape(self):
        # gemm uses one full-matrix chain step
        a = RNG.uniform(-2, 2, (1, 1, 16, 12))
        b = RNG.uniform(-2, 2, (1, 1, 12, 9))
        np.testing.assert_array_equal(run_chain(a, b), _loop_chain(a, b))


class TestRagged:
    def _case(self, lengths, m=8, k=4, n=8, seed=0):
        lengths = np.asarray(lengths, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        total = int(lengths.sum())
        rng = np.random.default_rng(seed)
        a = rng.uniform(-2, 2, (total, m, k))
        b = rng.uniform(-2, 2, (total, k, n))
        return a, b, lengths, offsets

    @pytest.mark.parametrize("lengths", [[1], [3, 3, 3], [5, 1, 2, 7],
                                         [2, 0, 4]])
    def test_bit_identical_to_loop(self, lengths):
        a, b, lengths, offsets = self._case(lengths)
        np.testing.assert_array_equal(
            run_ragged(a, b, lengths, offsets),
            _loop_ragged(a, b, lengths, offsets))

    def test_zero_length_keeps_initial_accumulator(self):
        a, b, lengths, offsets = self._case([2, 0, 3], seed=4)
        c = RNG.uniform(-2, 2, (3, 8, 8))
        got = run_ragged(a, b, lengths, offsets, c)
        np.testing.assert_array_equal(got[1], c[1])
        np.testing.assert_array_equal(
            got, _loop_ragged(a, b, lengths, offsets, c))

    def test_spgemm_block_shape(self):
        a, b, lengths, offsets = self._case([4, 2, 2, 1], m=4, k=4, n=4,
                                            seed=9)
        np.testing.assert_array_equal(
            run_ragged(a, b, lengths, offsets),
            _loop_ragged(a, b, lengths, offsets))

    def test_bucket_cache_hits_on_same_structure(self):
        clear_plan_cache()
        a, b, lengths, offsets = self._case([3, 1, 3], seed=2)
        run_ragged(a, b, lengths, offsets)
        first = plan_cache_stats()
        assert first["misses"] == 1
        # same segment structure, new values: planning is cached
        a2 = a + 1.0
        run_ragged(a2, b, lengths, offsets)
        second = plan_cache_stats()
        assert second["misses"] == 1
        assert second["hits"] == first["hits"] + 1


class TestProductStacking:
    def test_stacked_products_bit_identical(self):
        a1 = RNG.uniform(-2, 2, (10, 4, 4))
        a2 = RNG.uniform(-2, 2, (10, 4, 4))
        b = RNG.uniform(-2, 2, (10, 4, 1))
        plan = LaunchPlan()
        h1 = plan.product(a1, b)
        h2 = plan.product(a2, b)
        out = execute_plan(plan)
        np.testing.assert_array_equal(out[h1], mma.mma_fp64_batched(a1, b))
        np.testing.assert_array_equal(out[h2], mma.mma_fp64_batched(a2, b))

    def test_mixed_shapes_not_stacked(self):
        a1 = RNG.uniform(-2, 2, (4, 8, 4))
        b1 = RNG.uniform(-2, 2, (4, 4, 8))
        a2 = RNG.uniform(-2, 2, (3, 4, 4))
        b2 = RNG.uniform(-2, 2, (3, 4, 2))
        plan = LaunchPlan()
        h1 = plan.product(a1, b1)
        h2 = plan.product(a2, b2)
        out = execute_plan(plan)
        np.testing.assert_array_equal(out[h1], mma.mma_fp64_batched(a1, b1))
        np.testing.assert_array_equal(out[h2], mma.mma_fp64_batched(a2, b2))

    def test_product_with_accumulator_not_stacked(self):
        a = RNG.uniform(-2, 2, (5, 8, 4))
        b = RNG.uniform(-2, 2, (5, 4, 8))
        c = RNG.uniform(-2, 2, (5, 8, 8))
        plan = LaunchPlan()
        h1 = plan.product(a, b, c)
        h2 = plan.product(a, b)
        out = execute_plan(plan)
        np.testing.assert_array_equal(out[h1],
                                      mma.mma_fp64_batched(a, b, c))
        np.testing.assert_array_equal(out[h2], mma.mma_fp64_batched(a, b))


class TestBitOp:
    def test_matches_primitive(self):
        a = RNG.integers(0, 2 ** 63, (6, 8, 2), dtype=np.uint64)
        b = RNG.integers(0, 2 ** 63, (6, 8, 2), dtype=np.uint64)
        plan = LaunchPlan()
        h = plan.bit(a, b)
        np.testing.assert_array_equal(execute_plan(plan)[h],
                                      mma.mma_b1_batched(a, b))


class TestSampledReplay:
    def test_fused_sweep_emits_sampled_warp_when_traced(self):
        events = []

        class Tracer:
            def begin_scope(self, name):
                events.append(("begin", name))

            def end_scope(self):
                events.append(("end",))

            def sync(self, label=""):
                events.append(("sync", label))

            def fragment_access(self, *a, **kw):
                events.append(("fragment",))

        tracer = Tracer()
        warp_events.install(tracer)
        try:
            a = RNG.uniform(-1, 1, (2, 3, 8, 4))
            b = RNG.uniform(-1, 1, (2, 3, 4, 8))
            run_chain(a, b)   # fused shape (8, 12, 8): primitive won't sample
        finally:
            warp_events.uninstall(tracer)
        assert any(e[0] == "fragment" for e in events), \
            "fused sweep did not replay a sampled warp"


def test_handles_returned_in_record_order():
    a = RNG.uniform(-1, 1, (2, 8, 4))
    b = RNG.uniform(-1, 1, (2, 4, 8))
    plan = LaunchPlan()
    handles = [plan.product(a, b) for _ in range(3)]
    assert handles == [0, 1, 2]
    assert len(execute_plan(plan)) == 3


def test_unknown_op_rejected():
    plan = LaunchPlan()
    plan._ops.append(("bogus",))
    with pytest.raises(ValueError, match="unknown launch op"):
        execute_plan(plan)
