"""Tests for the functional MMA emulation, including the accumulation-order
contract that underpins the paper's Table 6."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gpu import mma

RNG = np.random.default_rng(42)


def _tiles(batch=(), m=8, k=4, n=8, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.uniform(-2, 2, batch + (m, k))
    b = rng.uniform(-2, 2, batch + (k, n))
    c = rng.uniform(-2, 2, batch + (m, n))
    return a, b, c


class TestMmaFp64:
    def test_matches_matmul(self):
        a, b, c = _tiles()
        d = mma.mma_m8n8k4(a, b, c)
        np.testing.assert_allclose(d, a @ b + c, rtol=1e-14)

    def test_zero_c_default(self):
        a, b, _ = _tiles()
        np.testing.assert_allclose(mma.mma_m8n8k4(a, b), a @ b, rtol=1e-14)

    def test_batched_matches_single(self):
        a, b, c = _tiles(batch=(5,))
        d = mma.mma_m8n8k4_batched(a, b, c)
        for i in range(5):
            np.testing.assert_array_equal(d[i], mma.mma_m8n8k4(a[i], b[i], c[i]))

    def test_accumulation_order_is_k_sequential(self):
        # reproduce the documented order by hand and demand bit-equality
        a, b, c = _tiles(seed=7)
        d = c.copy()
        for k in range(4):
            d = d + a[:, k:k + 1] * b[k:k + 1, :]
        np.testing.assert_array_equal(mma.mma_m8n8k4(a, b, c), d)

    def test_chained_mma_equals_fused_k(self):
        # accumulating two m8n8k4 MMAs == one fused k=8 call (same order)
        rng = np.random.default_rng(3)
        a = rng.uniform(-2, 2, (8, 8))
        b = rng.uniform(-2, 2, (8, 8))
        step = mma.mma_m8n8k4(a[:, :4], b[:4], None)
        step = mma.mma_m8n8k4(a[:, 4:], b[4:], step)
        fused = mma.mma_fp64_batched(a[np.newaxis], b[np.newaxis])[0]
        np.testing.assert_array_equal(step, fused)

    def test_broadcast_batch_dims(self):
        a = RNG.uniform(-1, 1, (3, 1, 8, 4))
        b = RNG.uniform(-1, 1, (1, 5, 4, 8))
        d = mma.mma_m8n8k4_batched(a, b)
        assert d.shape == (3, 5, 8, 8)
        np.testing.assert_allclose(d, a @ b, atol=1e-14)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mma.mma_m8n8k4_batched(np.zeros((4, 8)), np.zeros((4, 8)))
        with pytest.raises(ValueError):
            mma.mma_m8n8k4_batched(np.zeros((8, 4)), np.zeros((8, 4)))
        with pytest.raises(ValueError):
            mma.mma_fp64_batched(np.zeros((8, 4)), np.zeros((3, 8)))
        with pytest.raises(ValueError):
            mma.mma_fp64_batched(np.zeros((8, 4)), np.zeros((4, 8)),
                                 np.zeros((7, 8)))

    def test_does_not_mutate_c(self):
        a, b, c = _tiles(seed=11)
        c_before = c.copy()
        mma.mma_m8n8k4(a, b, c)
        np.testing.assert_array_equal(c, c_before)

    @given(hnp.arrays(np.float64, (8, 4),
                      elements=st.floats(-2, 2, allow_nan=False)),
           hnp.arrays(np.float64, (4, 8),
                      elements=st.floats(-2, 2, allow_nan=False)))
    @settings(max_examples=25, deadline=None)
    def test_property_close_to_matmul(self, a, b):
        d = mma.mma_m8n8k4(a, b)
        np.testing.assert_allclose(d, a @ b, atol=1e-13)

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_property_deterministic(self, seed):
        a, b, c = _tiles(seed=seed)
        np.testing.assert_array_equal(mma.mma_m8n8k4(a, b, c),
                                      mma.mma_m8n8k4(a, b, c))


class TestWarpGemm:
    def test_matches_batched_primitive_bitwise(self):
        a, b, _ = _tiles(seed=9)
        np.testing.assert_array_equal(mma.warp_gemm_m8n8k4(a, b),
                                      mma.mma_m8n8k4(a, b))


class TestBitMma:
    def test_matches_integer_matmul(self):
        rng = np.random.default_rng(5)
        a = rng.random((8, 128)) < 0.25
        b = rng.random((128, 8)) < 0.25
        d = mma.mma_m8n8k128_b1(a, b)
        np.testing.assert_array_equal(d, a.astype(np.int64) @ b.astype(np.int64))

    def test_accumulator(self):
        rng = np.random.default_rng(6)
        a = rng.random((8, 128)) < 0.5
        b = rng.random((128, 8)) < 0.5
        c = rng.integers(0, 100, (8, 8))
        d = mma.mma_m8n8k128_b1(a, b, c)
        np.testing.assert_array_equal(
            d, a.astype(np.int64) @ b.astype(np.int64) + c)

    def test_all_ones_gives_k(self):
        a = np.ones((8, 128), dtype=bool)
        b = np.ones((128, 8), dtype=bool)
        np.testing.assert_array_equal(mma.mma_m8n8k128_b1(a, b),
                                      np.full((8, 8), 128))

    def test_pack_bits_roundtrip_popcount(self):
        rng = np.random.default_rng(8)
        bits = rng.random((8, 128)) < 0.37
        words = mma.pack_bits_rows(bits)
        assert words.shape == (8, 2)
        total = int(bits.sum())
        packed_total = sum(bin(int(w)).count("1") for w in words.ravel())
        assert packed_total == total

    def test_pack_bits_rejects_bad_width(self):
        with pytest.raises(ValueError):
            mma.pack_bits_rows(np.zeros((8, 64), dtype=bool))

    def test_batched_bit_mma(self):
        rng = np.random.default_rng(12)
        a = rng.random((10, 8, 128)) < 0.3
        b = rng.random((10, 8, 128)) < 0.3  # packed as columns of B
        aw = mma.pack_bits_rows(a)
        bw = mma.pack_bits_rows(b)
        d = mma.mma_b1_batched(aw, bw)
        assert d.shape == (10, 8, 8)
        for i in range(10):
            ref = a[i].astype(np.int64) @ b[i].T.astype(np.int64)
            np.testing.assert_array_equal(d[i], ref)

    def test_bad_packed_shape_rejected(self):
        with pytest.raises(ValueError):
            mma.mma_b1_batched(np.zeros((8, 3), dtype=np.uint64),
                               np.zeros((8, 2), dtype=np.uint64))


class TestPopcount:
    def test_native_matches_swar_on_random_words(self):
        rng = np.random.default_rng(2024)
        words = rng.integers(0, np.iinfo(np.uint64).max, 4096,
                             dtype=np.uint64, endpoint=True)
        swar = mma._popcount_u64_swar(words)
        np.testing.assert_array_equal(mma._popcount_u64(words), swar)
        assert swar.dtype == np.int64

    def test_edge_words(self):
        words = np.array([0, 1, np.iinfo(np.uint64).max,
                          0xAAAAAAAAAAAAAAAA, 0x8000000000000000],
                         dtype=np.uint64)
        expect = np.array([0, 1, 64, 32, 1], dtype=np.int64)
        np.testing.assert_array_equal(mma._popcount_u64(words), expect)
        np.testing.assert_array_equal(mma._popcount_u64_swar(words), expect)

    def test_preserves_shape(self):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2 ** 63, (3, 8, 2), dtype=np.uint64)
        assert mma._popcount_u64(words).shape == (3, 8, 2)


class TestScratchAccumulation:
    def test_scratch_bit_identical_to_per_step_temporaries(self):
        # the preallocated-scratch k loop must round exactly like the
        # naive `d = d + a_k * b_k` per-step-temporary loop
        rng = np.random.default_rng(77)
        a = rng.uniform(-2, 2, (5, 8, 4))
        b = rng.uniform(-2, 2, (5, 4, 8))
        c = rng.uniform(-2, 2, (5, 8, 8))
        d = c.copy()
        for kk in range(4):
            d = d + a[:, :, kk:kk + 1] * b[:, kk:kk + 1, :]
        np.testing.assert_array_equal(mma.mma_fp64_batched(a, b, c), d)

    def test_zero_k_returns_accumulator(self):
        c = np.arange(64, dtype=np.float64).reshape(1, 8, 8)
        d = mma.mma_fp64_batched(np.zeros((1, 8, 0)), np.zeros((1, 0, 8)), c)
        np.testing.assert_array_equal(d, c)

    def test_scratch_with_broadcast_batches(self):
        rng = np.random.default_rng(78)
        a = rng.uniform(-2, 2, (3, 1, 8, 4))
        b = rng.uniform(-2, 2, (1, 4, 4, 8))
        got = mma.mma_fp64_batched(a, b)
        ab = np.broadcast_to(a, (3, 4, 8, 4))
        bb = np.broadcast_to(b, (3, 4, 4, 8))
        d = np.zeros((3, 4, 8, 8))
        for kk in range(4):
            d = d + ab[..., :, kk:kk + 1] * bb[..., kk:kk + 1, :]
        np.testing.assert_array_equal(got, d)
