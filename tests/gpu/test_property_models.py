"""Property-based tests on the timing/memory/power models: physical
monotonicities that must hold for any kernel profile."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Device, KernelStats
from repro.gpu.specs import ALL_GPUS

DEV = Device("H200")


def _stats(tc_flops=0.0, cc_flops=0.0, bytes_=0.0, seg=4096.0,
           mlp=1.0, stages=1):
    st_ = KernelStats()
    if tc_flops:
        st_.add_mma_fp64(tc_flops / 512.0)
    if cc_flops:
        st_.add_fma(cc_flops)
    if bytes_:
        st_.read_dram(bytes_, segment_bytes=seg)
    st_.mlp = mlp
    st_.serial_stages = stages
    return st_


class TestTimingMonotonicity:
    @given(st.floats(1e6, 1e12), st.floats(1.1, 8.0))
    @settings(max_examples=40, deadline=None)
    def test_more_flops_never_faster(self, flops, factor):
        t1 = DEV.timing.time(_stats(tc_flops=flops))
        t2 = DEV.timing.time(_stats(tc_flops=flops * factor))
        assert t2 >= t1

    @given(st.floats(1e3, 1e10), st.floats(1.1, 8.0))
    @settings(max_examples=40, deadline=None)
    def test_more_bytes_never_faster(self, b, factor):
        t1 = DEV.timing.time(_stats(bytes_=b))
        t2 = DEV.timing.time(_stats(bytes_=b * factor))
        assert t2 >= t1

    @given(st.floats(1e4, 1e9), st.floats(0.1, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_lower_mlp_never_faster(self, b, mlp):
        t_full = DEV.timing.time(_stats(bytes_=b, mlp=1.0))
        t_low = DEV.timing.time(_stats(bytes_=b, mlp=mlp))
        assert t_low >= t_full

    @given(st.floats(8, 1e5), st.floats(1e4, 1e8))
    @settings(max_examples=40, deadline=None)
    def test_smaller_segments_never_meaningfully_faster(self, seg, b):
        # the half-sector misalignment spill makes the model only *almost*
        # monotone near sector multiples; compare across a 16x gap with a
        # hair of tolerance
        t_big = DEV.timing.time(_stats(bytes_=b, seg=seg * 16))
        t_small = DEV.timing.time(_stats(bytes_=b, seg=seg))
        assert t_small >= t_big * 0.999

    @given(st.integers(1, 100))
    @settings(max_examples=20, deadline=None)
    def test_stages_add_latency_linearly(self, stages):
        t1 = DEV.timing.time(_stats(bytes_=1e6, stages=1))
        tn = DEV.timing.time(_stats(bytes_=1e6, stages=stages))
        assert tn == pytest.approx(
            t1 + (stages - 1) * DEV.spec.stage_latency_s)

    @given(st.floats(1e6, 1e12))
    @settings(max_examples=20, deadline=None)
    def test_time_at_least_launch_overhead(self, flops):
        assert DEV.timing.time(_stats(tc_flops=flops)) \
            >= DEV.spec.launch_overhead_s


class TestPowerBounds:
    @given(st.floats(0, 1e12), st.floats(0, 1e12), st.floats(0, 1e10))
    @settings(max_examples=60, deadline=None)
    def test_power_between_idle_and_tdp_on_all_gpus(self, tf, cf, b):
        st_ = _stats(tc_flops=tf, cc_flops=cf, bytes_=b)
        for spec in ALL_GPUS:
            dev = Device(spec.name)
            p = dev.power.steady_power(st_)
            assert spec.idle_w <= p <= spec.tdp_w

    @given(st.floats(1e11, 1e13), st.floats(2.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_uniform_scaling_preserves_power(self, flops, factor):
        # scaling compute and traffic together leaves every resource's
        # utilization (and hence steady power) unchanged, modulo the
        # launch-overhead amortization
        small = _stats(tc_flops=flops, bytes_=flops / 10)
        big = _stats(tc_flops=flops * factor, bytes_=flops * factor / 10)
        assert DEV.power.steady_power(big) == pytest.approx(
            DEV.power.steady_power(small), rel=0.03)

    def test_compute_added_to_memory_bound_kernel_heats_it(self):
        mem_only = _stats(bytes_=1e9)
        with_compute = _stats(tc_flops=1e11, bytes_=1e9)
        assert DEV.power.steady_power(with_compute) \
            > DEV.power.steady_power(mem_only)


class TestEnergyConsistency:
    @given(st.floats(1e6, 1e11), st.floats(1e4, 1e9), st.integers(1, 1000))
    @settings(max_examples=30, deadline=None)
    def test_edp_scales_quadratically_with_repeats(self, f, b, reps):
        st_ = _stats(tc_flops=f, bytes_=b)
        r = DEV.resolve(st_)
        assert r.edp_repeated(reps) == pytest.approx(r.edp * reps * reps,
                                                     rel=1e-9)

    @given(st.floats(1e6, 1e11), st.floats(1e4, 1e9))
    @settings(max_examples=30, deadline=None)
    def test_resolve_consistent_fields(self, f, b):
        st_ = _stats(tc_flops=f, bytes_=b)
        r = DEV.resolve(st_)
        assert r.energy_j == pytest.approx(r.power_w * r.time_s)
        assert r.time_s == pytest.approx(r.breakdown.total_s)
        assert np.isfinite(r.flops)
