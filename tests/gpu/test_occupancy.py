"""Tests for the SM occupancy model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.occupancy import (
    DEFAULT_SM,
    KernelResources,
    SmResources,
    device_parallelism,
    occupancy,
)
from repro.gpu.specs import H200


class TestKernelResources:
    def test_warps_per_block(self):
        assert KernelResources(256).warps_per_block == 8

    @pytest.mark.parametrize("kwargs", [
        dict(threads_per_block=16),
        dict(threads_per_block=100),
        dict(threads_per_block=2048),
        dict(threads_per_block=256, registers_per_thread=8),
        dict(threads_per_block=256, registers_per_thread=300),
        dict(threads_per_block=256, shared_per_block=-1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            KernelResources(**kwargs)


class TestOccupancy:
    def test_light_kernel_fully_occupies(self):
        occ = occupancy(KernelResources(256, registers_per_thread=32))
        assert occ.fraction == 1.0
        assert occ.warps_per_sm == DEFAULT_SM.max_warps

    def test_register_pressure_limits(self):
        occ = occupancy(KernelResources(256, registers_per_thread=255))
        assert occ.limiter == "registers"
        assert occ.fraction < 0.5

    def test_shared_memory_limits(self):
        occ = occupancy(KernelResources(
            128, shared_per_block=100 * 1024))
        assert occ.limiter == "shared_memory"
        assert occ.blocks_per_sm == 1

    def test_block_slots_limit_tiny_blocks(self):
        occ = occupancy(KernelResources(32, registers_per_thread=16))
        # 32 blocks x 1 warp each = 32 warps, half the 64-warp ceiling
        assert occ.limiter == "blocks"
        assert occ.warps_per_sm == 32

    def test_mlp_estimate_monotone_and_capped(self):
        full = occupancy(KernelResources(256))
        starved = occupancy(KernelResources(256, registers_per_thread=255))
        assert full.mlp_estimate() == 1.0
        assert starved.mlp_estimate() < full.mlp_estimate()
        with pytest.raises(ValueError):
            full.mlp_estimate(0)

    def test_device_parallelism(self):
        k = KernelResources(256)
        assert device_parallelism(H200, k) == \
            occupancy(k).warps_per_sm * H200.sms

    @given(st.sampled_from([64, 128, 256, 512, 1024]),
           st.integers(16, 255), st.integers(0, 160 * 1024))
    @settings(max_examples=60, deadline=None)
    def test_property_within_hardware_bounds(self, tpb, regs, smem):
        occ = occupancy(KernelResources(tpb, regs, smem))
        assert 0 <= occ.warps_per_sm <= DEFAULT_SM.max_warps
        assert 0 <= occ.blocks_per_sm <= DEFAULT_SM.max_blocks
        if occ.blocks_per_sm:
            total_smem = occ.blocks_per_sm * smem
            assert total_smem <= DEFAULT_SM.shared_memory

    def test_custom_sm(self):
        small = SmResources(max_warps=32, max_blocks=16,
                            registers=32768, shared_memory=48 * 1024)
        occ = occupancy(KernelResources(256), small)
        assert occ.max_warps == 32
        assert occ.warps_per_sm <= 32
