"""Tests for the execution timeline and Chrome-trace export."""

import json

import pytest

from repro.gpu import Device, KernelStats, Timeline


def _result(dev, flops=1e9, bytes_=1e6):
    st = KernelStats()
    st.add_mma_fp64(flops / 512.0)
    st.read_dram(bytes_, 1 << 16)
    return dev.resolve(st)


class TestTimeline:
    @pytest.fixture
    def dev(self):
        return Device("H200")

    def test_record_advances_cursor(self, dev):
        tl = Timeline(dev)
        r = _result(dev)
        e1 = tl.record("k1", r)
        e2 = tl.record("k2", r, repeats=3)
        assert e1.start_s == 0.0
        assert e2.start_s == pytest.approx(e1.end_s)
        assert e2.duration_s == pytest.approx(3 * r.time_s)
        assert tl.total_s == pytest.approx(e2.end_s)

    def test_gap_counts_against_utilization(self, dev):
        tl = Timeline(dev)
        r = _result(dev)
        tl.record("k", r)
        tl.gap(r.time_s)  # equal idle time -> 50% utilization
        assert tl.utilization == pytest.approx(0.5)

    def test_energy_includes_idle(self, dev):
        tl = Timeline(dev)
        r = _result(dev)
        tl.record("k", r)
        busy_only = tl.energy_j()
        tl.gap(1.0)
        assert tl.energy_j() == pytest.approx(
            busy_only + dev.spec.idle_w, rel=1e-6)

    def test_time_by_bottleneck(self, dev):
        tl = Timeline(dev)
        compute = _result(dev, flops=1e12, bytes_=1e3)
        memory = _result(dev, flops=1e3, bytes_=1e9)
        tl.record("c", compute)
        tl.record("m", memory)
        by = tl.time_by_bottleneck()
        assert set(by) == {"tensor", "dram"}

    def test_chrome_trace_is_valid_json(self, dev):
        tl = Timeline(dev)
        tl.record("k", _result(dev), repeats=2)
        doc = json.loads(tl.to_chrome_trace())
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["dur"] > 0
        assert ev["args"]["power_w"] > 0

    def test_text_gantt(self, dev):
        tl = Timeline(dev)
        tl.record("alpha", _result(dev))
        tl.record("beta", _result(dev))
        text = tl.to_text(width=30)
        assert "alpha" in text and "beta" in text and "#" in text
        assert Timeline(dev).to_text() == "(empty timeline)"

    def test_validation(self, dev):
        tl = Timeline(dev)
        with pytest.raises(ValueError):
            tl.record("k", _result(dev), repeats=0)
        with pytest.raises(ValueError):
            tl.gap(-1.0)

    def test_empty_utilization(self, dev):
        assert Timeline(dev).utilization == 0.0
