"""Tests for KernelStats accounting."""

import pytest

from repro.gpu.counters import AccessStream, KernelStats


class TestAccessStream:
    def test_valid(self):
        s = AccessStream(1024, 32, "read")
        assert s.total_bytes == 1024

    @pytest.mark.parametrize("kwargs", [
        dict(total_bytes=-1, segment_bytes=32),
        dict(total_bytes=10, segment_bytes=0),
        dict(total_bytes=10, segment_bytes=8, kind="scan"),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            AccessStream(**kwargs)


class TestMmaAccounting:
    def test_fp64_mma_flops(self):
        st = KernelStats()
        st.add_mma_fp64(10)
        assert st.tc_flops == 2 * 8 * 8 * 4 * 10
        assert st.mma_instructions == 10
        assert st.cc_flops == 0

    def test_cc_replacement_same_flops_other_pipe(self):
        tc, cc = KernelStats(), KernelStats()
        tc.add_mma_fp64(100)
        cc.add_mma_as_fma(100)
        assert tc.tc_flops == cc.cc_flops
        assert cc.tc_flops == 0

    def test_full_utilization_by_default(self):
        st = KernelStats()
        st.add_mma_fp64(5)
        assert st.input_utilization == 1.0
        assert st.output_utilization == 1.0

    def test_partial_output_utilization(self):
        st = KernelStats()
        # GEMV-style: only the 8-element diagonal of each 8x8 output is used
        st.add_mma_fp64(4, output_useful=4 * 8)
        assert st.output_utilization == pytest.approx(8 / 64)

    def test_partial_input_utilization(self):
        st = KernelStats()
        # Scan-style: constant operand not loaded => half the input useful
        st.add_mma_fp64(2, input_useful=2 * 32)
        assert st.input_utilization == pytest.approx(0.5)

    def test_bit_mma(self):
        st = KernelStats()
        st.add_mma_b1(3)
        assert st.tc_b1_ops == 2 * 8 * 8 * 128 * 3
        assert st.total_flops == 0

    def test_zero_utilization_when_no_mma(self):
        st = KernelStats()
        assert st.input_utilization == 0.0
        assert st.output_utilization == 0.0


class TestRedundancy:
    def test_redundancy_ratio(self):
        st = KernelStats()
        st.add_mma_fp64(1)          # 512 flops executed
        st.essential_flops = 64.0   # only diagonal essential
        assert st.redundancy == pytest.approx(512 / 64)

    def test_redundancy_defaults_to_one(self):
        assert KernelStats().redundancy == 1.0


class TestMemoryAndMerge:
    def test_dram_bytes_sums_streams(self):
        st = KernelStats()
        st.read_dram(1000, 8)
        st.write_dram(500, 128)
        assert st.dram_bytes == 1500
        assert len(st.dram) == 2

    def test_zero_byte_streams_skipped(self):
        st = KernelStats()
        st.read_dram(0)
        assert st.dram == []

    def test_merge_accumulates_everything(self):
        a, b = KernelStats(), KernelStats()
        a.add_mma_fp64(1)
        a.read_dram(100, 8)
        b.add_fma(64)
        b.write_dram(50, 8)
        b.l1_bytes = 10
        a.merge(b)
        assert a.tc_flops == 512 and a.cc_flops == 64
        assert a.dram_bytes == 150 and a.l1_bytes == 10

    def test_arithmetic_intensity(self):
        st = KernelStats()
        st.add_mma_fp64(1)
        st.read_dram(256, 256)
        assert st.arithmetic_intensity() == pytest.approx(512 / 256)

    def test_arithmetic_intensity_infinite_without_traffic(self):
        st = KernelStats()
        st.add_fma(10)
        assert st.arithmetic_intensity() == float("inf")

    def test_arithmetic_intensity_bit_ops(self):
        st = KernelStats()
        st.add_mma_b1(1)
        st.read_dram(1024, 1024)
        assert st.arithmetic_intensity() == pytest.approx(2 * 8 * 8 * 128 / 1024)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            KernelStats().arithmetic_intensity("l3")
