"""Tests for the PTX fragment layout maps."""

import numpy as np
import pytest

from repro.gpu import fragments


class TestFragmentIndices:
    def test_a_fragment_covers_tile_exactly_once(self):
        seen = {fragments.a_fragment_index(t) for t in range(32)}
        assert seen == {(r, c) for r in range(8) for c in range(4)}

    def test_b_fragment_covers_tile_exactly_once(self):
        seen = {fragments.b_fragment_index(t) for t in range(32)}
        assert seen == {(r, c) for r in range(4) for c in range(8)}

    def test_c_fragment_covers_tile_exactly_once(self):
        seen = {fragments.c_fragment_index(t, r) for t in range(32) for r in (0, 1)}
        assert seen == {(r, c) for r in range(8) for c in range(8)}
        assert len(seen) == 64

    def test_a_fragment_lane0_owns_origin(self):
        assert fragments.a_fragment_index(0) == (0, 0)

    def test_b_fragment_is_column_major(self):
        # lanes 0..3 walk down the first column of B
        assert [fragments.b_fragment_index(t)[0] for t in range(4)] == [0, 1, 2, 3]
        assert all(fragments.b_fragment_index(t)[1] == 0 for t in range(4))

    def test_c_fragment_pairs_are_adjacent_columns(self):
        for lane in range(32):
            r0, c0 = fragments.c_fragment_index(lane, 0)
            r1, c1 = fragments.c_fragment_index(lane, 1)
            assert r0 == r1
            assert c1 == c0 + 1

    @pytest.mark.parametrize("lane", [-1, 32, 100])
    def test_out_of_range_lane_rejected(self, lane):
        with pytest.raises(ValueError):
            fragments.a_fragment_index(lane)

    def test_bad_c_register_rejected(self):
        with pytest.raises(ValueError):
            fragments.c_fragment_index(0, 2)


class TestDistributeCollect:
    def test_distribute_collect_c_roundtrip(self):
        rng = np.random.default_rng(1)
        c = rng.standard_normal((8, 8))
        assert np.array_equal(fragments.collect_c(fragments.distribute_c(c)), c)

    def test_distribute_a_values(self):
        a = np.arange(32, dtype=float).reshape(8, 4)
        regs = fragments.distribute_a(a)
        for lane in range(32):
            r, c = fragments.a_fragment_index(lane)
            assert regs[lane] == a[r, c]

    def test_distribute_b_values(self):
        b = np.arange(32, dtype=float).reshape(4, 8)
        regs = fragments.distribute_b(b)
        for lane in range(32):
            r, c = fragments.b_fragment_index(lane)
            assert regs[lane] == b[r, c]

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            fragments.distribute_a(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            fragments.distribute_b(np.zeros((8, 4)))
        with pytest.raises(ValueError):
            fragments.collect_c(np.zeros((32, 3)))
