"""Small coverage tests for helpers not exercised elsewhere."""

import numpy as np
import pytest

from repro.gpu import Device, KernelStats, all_devices
from repro.gpu.power import PowerTrace


class TestAllDevices:
    def test_three_devices_in_paper_order(self):
        devs = all_devices()
        assert [d.spec.name for d in devs] == ["A100", "H200", "B200"]


class TestPowerTraceEdge:
    def test_empty_trace(self):
        tr = PowerTrace(times_s=np.empty(0), power_w=np.empty(0))
        assert tr.duration_s == 0.0
        assert tr.average_power_w == 0.0
        assert tr.energy_j == 0.0

    def test_single_sample(self):
        tr = PowerTrace(times_s=np.array([0.0]), power_w=np.array([100.0]))
        assert tr.average_power_w == 100.0
        assert tr.energy_j == 0.0

    def test_constant_trace_energy(self):
        tr = PowerTrace(times_s=np.array([0.0, 1.0, 2.0]),
                        power_w=np.array([50.0, 50.0, 50.0]))
        assert tr.energy_j == pytest.approx(100.0)
        assert tr.edp == pytest.approx(50.0 * 4.0)


class TestKernelResultDerived:
    def test_achieved_bandwidth(self):
        dev = Device("H200")
        st = KernelStats()
        st.read_dram(1e9, 1 << 20)
        r = dev.resolve(st)
        assert r.achieved_bandwidth == pytest.approx(1e9 / r.time_s)
        # achieved <= streaming-efficiency-scaled peak
        assert r.achieved_bandwidth <= dev.spec.dram_bw

    def test_tflops_property(self):
        dev = Device("H200")
        st = KernelStats()
        st.add_mma_fp64(1e9)
        r = dev.resolve(st)
        assert r.tflops == pytest.approx(r.flops / 1e12)


class TestCountersMergeSemantics:
    def test_merge_keeps_receiver_efficiencies(self):
        a = KernelStats(tc_efficiency=0.6, mlp=0.8, serial_stages=4)
        b = KernelStats(tc_efficiency=0.1, mlp=0.1, serial_stages=99)
        a.merge(b)
        # merge accumulates work, not execution-context knobs
        assert a.tc_efficiency == 0.6
        assert a.mlp == 0.8
        assert a.serial_stages == 4
