"""Tests for the MMA instruction-set registry."""

import pytest

from repro.gpu.isa import (
    MMA_SHAPES,
    Precision,
    find_shape,
    instruction_name,
    shapes_for,
)


class TestPrecision:
    def test_bit_widths(self):
        assert Precision.FP64.bits == 64
        assert Precision.FP16.bits == 16
        assert Precision.B1.bits == 1
        assert Precision.FP32.bits == 19  # TF32's reduced mantissa form


class TestShapes:
    def test_fp64_workhorse_shape(self):
        s = find_shape(Precision.FP64, 8, 8, 4)
        assert s.since == "Ampere"
        assert s.ops_per_instruction == 512
        assert s.a_elements == 32 and s.b_elements == 32
        assert s.c_elements == 64
        assert s.elements_per_lane == (1.0, 1.0, 2.0)

    def test_berrybees_bit_shape(self):
        s = find_shape(Precision.B1, 8, 8, 128)
        assert s.since == "Turing"
        assert s.ops_per_instruction == 2 * 8 * 8 * 128

    def test_instruction_names(self):
        s = find_shape(Precision.FP64, 8, 8, 4)
        assert instruction_name(s) == "mma.sync.m8n8k4.f64"
        assert s.name() == "mma.sync.m8n8k4.f64"

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            find_shape(Precision.FP64, 16, 16, 16)

    def test_catalog_unique(self):
        keys = [(s.precision, s.m, s.n, s.k) for s in MMA_SHAPES]
        assert len(keys) == len(set(keys))


class TestGenerationSupport:
    def test_volta_has_only_fp16(self):
        shapes = shapes_for("Volta")
        assert {s.precision for s in shapes} == {Precision.FP16}

    def test_fp64_arrives_with_ampere(self):
        assert not shapes_for("Turing", Precision.FP64)
        assert shapes_for("Ampere", Precision.FP64)
        assert shapes_for("Hopper", Precision.FP64)

    def test_support_is_cumulative(self):
        prev: set[tuple] = set()
        for arch in ("Volta", "Turing", "Ampere", "Hopper", "Blackwell"):
            cur = {(s.precision, s.m, s.n, s.k) for s in shapes_for(arch)}
            assert prev <= cur
            prev = cur

    def test_unknown_architecture(self):
        with pytest.raises(ValueError):
            shapes_for("Pascal")

    def test_bit_mma_available_where_bfs_needs_it(self):
        # the paper evaluates BerryBees on Ampere/Hopper/Blackwell
        for arch in ("Ampere", "Hopper", "Blackwell"):
            assert any(s.k == 128 for s in shapes_for(arch, Precision.B1))
