"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.gpu == ["A100", "H200", "B200"]
        assert args.workload is None

    def test_suitability_requires_flops_and_bytes(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suitability", "--flops", "1"])


class TestCommands:
    def test_quadrants(self, capsys):
        assert main(["quadrants", "--workload", "gemm", "gemv"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "IV" in out

    def test_perf_subset(self, capsys):
        assert main(["perf", "--workload", "gemm", "--gpu", "H200"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Figure 5" in out

    def test_accuracy_subset(self, capsys):
        assert main(["accuracy", "--workload", "gemv",
                     "--gpu", "H200"]) == 0
        out = capsys.readouterr().out
        assert "gemv" in out and "baseline" in out

    def test_roofline_subset(self, capsys):
        assert main(["roofline", "--workload", "gemm",
                     "--gpu", "H200"]) == 0
        assert "tensor" in capsys.readouterr().out

    def test_power_subset(self, capsys):
        assert main(["power", "--workload", "gemm", "--gpu", "H200"]) == 0
        assert "EDP" in capsys.readouterr().out

    def test_suitability(self, capsys):
        assert main(["suitability", "--flops", "1e12", "--bytes", "1e9",
                     "--gpu", "H200"]) == 0
        assert "strongly beneficial" in capsys.readouterr().out

    def test_quicktest_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "qt"
        assert main(["quicktest", "--out", str(out_dir)]) == 0
        assert (out_dir / "all_error.csv").exists()
        assert (out_dir / "Figure4_TCvsBaseline.txt").exists()
