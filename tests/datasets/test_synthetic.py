"""Tests for the LINPACK-style LCG generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import _A, _C, _MASK, Lcg, default_rng


def scalar_reference(seed, n):
    """Straightforward scalar implementation of the same LCG."""
    s = (seed ^ _A) & _MASK
    out = np.empty(n)
    for i in range(n):
        s = (_A * s + _C) & _MASK
        out[i] = s / float(1 << 48)
    return out


class TestLcgExactness:
    def test_uniform48_matches_scalar_reference(self):
        g = Lcg(1325)
        got = g.uniform48(5000)
        np.testing.assert_array_equal(got, scalar_reference(1325, 5000))

    def test_state_advances_across_calls(self):
        g = Lcg(7)
        a = g.uniform48(1500)
        b = g.uniform48(700)
        ref = scalar_reference(7, 2200)
        np.testing.assert_array_equal(np.concatenate([a, b]), ref)

    def test_uniform_combines_two_draws(self):
        g = Lcg(7)
        got = g.uniform(100, 0.0, 1.0)
        raw = scalar_reference(7, 200)
        ref = raw[0::2] + raw[1::2] / float(1 << 48)
        np.testing.assert_array_equal(got, ref)

    def test_uniform_fills_mantissa(self):
        # sums in different orders must be able to differ (Table 6 depends
        # on it); 48-bit dyadic values would sum exactly in any order
        v = Lcg(3).uniform(4096)
        seq = 0.0
        for t in v:
            seq += t
        pair = v.reshape(-1, 2).sum(axis=1)
        tree = float(pair.sum())
        assert seq != tree

    @given(st.integers(0, 2**31), st.integers(1, 3000))
    @settings(max_examples=10, deadline=None)
    def test_property_leapfrog_exact(self, seed, n):
        g = Lcg(seed)
        np.testing.assert_array_equal(g.uniform48(n),
                                      scalar_reference(seed, n))

    def test_same_seed_same_sequence(self):
        np.testing.assert_array_equal(Lcg(3).uniform(100), Lcg(3).uniform(100))

    def test_different_seeds_differ(self):
        assert not np.array_equal(Lcg(3).uniform(100), Lcg(4).uniform(100))


class TestLcgApi:
    def test_default_range_paper(self):
        v = default_rng().uniform(100000)
        assert v.min() >= -2.0 and v.max() < 2.0
        assert abs(v.mean()) < 0.05  # roughly centred

    def test_shape(self):
        assert Lcg(1).uniform(12, shape=(3, 4)).shape == (3, 4)

    def test_zero_length(self):
        assert len(Lcg(1).uniform(0)) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Lcg(1).uniform(-1)

    def test_integers_range(self):
        v = Lcg(1).integers(10000, 3, 9)
        assert v.min() >= 3 and v.max() < 9
        assert set(np.unique(v)) == set(range(3, 9))

    def test_integers_validation(self):
        with pytest.raises(ValueError):
            Lcg(1).integers(5, 3, 3)

    def test_choice_mask_probability(self):
        m = Lcg(1).choice_mask(100000, 0.3)
        assert abs(m.mean() - 0.3) < 0.01

    def test_choice_mask_validation(self):
        with pytest.raises(ValueError):
            Lcg(1).choice_mask(5, 1.5)

    def test_permutation_is_permutation(self):
        p = Lcg(5).permutation(1000)
        assert np.array_equal(np.sort(p), np.arange(1000))
