"""Tests for the SuiteSparse stand-in and population generators."""

import numpy as np
import networkx as nx
import pytest

from repro.datasets.graphs import (
    BFS_GRAPHS,
    generate_graph,
    graph_info,
    graph_to_csr,
    kronecker_edges,
    mycielskian,
)
from repro.datasets.populations import graph_population, matrix_population
from repro.datasets.suitesparse import (
    SPMV_MATRICES,
    generate_matrix,
    matrix_info,
)
from repro.datasets.synthetic import Lcg
from repro.perf.cache import ResultCache, set_default_cache


class TestGenerationMemoized:
    def test_single_generation_per_key(self, tmp_path, monkeypatch):
        """Each (name, scale, seed) triple is generated at most once —
        repeats hit the memory cache, and even a cold memory cache only
        deserializes from disk instead of regenerating."""
        from repro.datasets import suitesparse

        cache = ResultCache(tmp_path / "cache")
        previous = set_default_cache(cache)
        try:
            calls = []
            real = suitesparse._generate_matrix_uncached

            def counting(name, scale, seed):
                calls.append((name, scale, seed))
                return real(name, scale, seed)

            monkeypatch.setattr(suitesparse, "_generate_matrix_uncached",
                                counting)
            name = SPMV_MATRICES[0].name
            a = generate_matrix(name, scale=0.05)
            b = generate_matrix(name, scale=0.05)
            assert len(calls) == 1
            assert b is a  # memory-cache hit returns the same object
            # a different key generates again, exactly once
            generate_matrix(name, scale=0.05, seed=7)
            assert len(calls) == 2
            # cold memory cache: disk hit, still no regeneration
            cache.clear_memory()
            c = generate_matrix(name, scale=0.05)
            assert len(calls) == 2
            np.testing.assert_array_equal(c.data, a.data)
            np.testing.assert_array_equal(c.indices, a.indices)
        finally:
            set_default_cache(previous)


class TestMatrixStandins:
    @pytest.mark.parametrize("info", SPMV_MATRICES, ids=lambda m: m.name)
    def test_scaled_generation_properties(self, info):
        a = generate_matrix(info.name, scale=0.1)
        assert a.n_rows == a.n_cols
        assert a.nnz > 0
        # average row length within a factor of ~2 of the original's
        orig_per_row = info.nnz / info.rows
        got_per_row = a.nnz / a.n_rows
        assert 0.5 * orig_per_row < got_per_row < 2.0 * orig_per_row

    @pytest.mark.slow
    def test_full_scale_row_counts_exact(self):
        # row counts are part of Table 4; only the QCD lattice may round
        # to preserve its 12-component block structure
        for info in SPMV_MATRICES:
            a = generate_matrix(info.name)
            if info.family != "qcd-lattice":
                assert a.n_rows == info.rows
            assert a.nnz == pytest.approx(info.nnz, rel=0.1)

    def test_qcd_lattice_exact(self):
        info = matrix_info("conf5_4-8x8-10")
        a = generate_matrix(info.name)
        assert a.n_rows == info.rows
        assert a.nnz == info.nnz
        # constant row length, a defining QCD property
        assert np.all(a.row_lengths() == 39)

    def test_stiffness_is_symmetric(self):
        a = generate_matrix("bcsstk39", scale=0.05)
        np.testing.assert_allclose(a.to_dense(), a.to_dense().T, atol=1e-15)

    def test_deterministic(self):
        a = generate_matrix("Chevron1", scale=0.1, seed=9)
        # bypass the cache to confirm determinism of the generator itself
        from repro.datasets import suitesparse as ss
        b = ss._generate_matrix_uncached("Chevron1", 0.1, 9)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_cache_returns_same_object(self):
        assert generate_matrix("Chevron1", scale=0.1) is \
            generate_matrix("Chevron1", scale=0.1)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            matrix_info("nd24k")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            generate_matrix("Chevron1", scale=0.0)


class TestGraphStandins:
    def test_mycielskian_counts(self):
        # |V(M_k)| = 3 * 2^(k-2) - 1; edge recurrence E' = 3E + V
        v, e = 2, 1
        for order in range(3, 13):
            e, v = 3 * e + v, 2 * v + 1
            src, dst, n = mycielskian(order)
            assert n == v == 3 * 2 ** (order - 2) - 1
            assert len(src) == 2 * e  # both directions stored

    def test_mycielskian_is_triangle_free_small(self):
        src, dst, n = mycielskian(4)  # Grötzsch graph, 11 vertices
        g = nx.Graph(zip(src.tolist(), dst.tolist()))
        assert len(nx.triangles(g)) == 11
        assert sum(nx.triangles(g).values()) == 0

    def test_mycielskian_chromatic_growth(self):
        # degree of the apex vertex equals |V| of the previous level
        src, dst, n = mycielskian(5)
        g = nx.Graph(zip(src.tolist(), dst.tolist()))
        assert g.degree[n - 1] == 11  # |V(M4)| = 11

    def test_mycielskian_validation(self):
        with pytest.raises(ValueError):
            mycielskian(1)

    def test_kronecker_sizes(self):
        src, dst, n = kronecker_edges(10, 8, Lcg(1))
        assert n == 1024
        assert len(src) == 8192
        assert src.max() < n and dst.max() < n

    def test_kronecker_degree_skew(self):
        src, dst, n = kronecker_edges(12, 16, Lcg(2))
        deg = np.bincount(src, minlength=n)
        # R-MAT graphs are heavy tailed: max degree far above the mean
        assert deg.max() > 10 * deg.mean()

    @pytest.mark.parametrize("info", BFS_GRAPHS, ids=lambda g: g.name)
    def test_generated_graph_matches_catalog(self, info):
        src, dst, n = generate_graph(info.name)
        assert n == info.gen_vertices or info.family in ("mycielskian",
                                                         "kronecker")
        # self-loop removal trims a few percent (R-MAT concentrates mass
        # on the diagonal, so the web graphs lose the most)
        assert len(src) == pytest.approx(info.gen_edges, rel=0.10)
        assert src.min() >= 0 and dst.max() < n
        assert np.all(src != dst)

    def test_graph_largest_component_reasonable(self):
        # BFS from a random source must reach a sizable component
        src, dst, n = generate_graph("kron_g500-logn21")
        g = nx.DiGraph(zip(src.tolist(), dst.tolist()))
        biggest = max(len(c) for c in nx.weakly_connected_components(g))
        assert biggest > 0.3 * g.number_of_nodes()

    def test_graph_to_csr_unit_weights(self):
        src, dst, n = generate_graph("mycielskian17")
        a = graph_to_csr(src, dst, n)
        assert np.all(a.data == 1.0)
        assert a.shape == (n, n)

    def test_unknown_graph(self):
        with pytest.raises(ValueError):
            graph_info("road_usa")


class TestPopulations:
    def test_matrix_population_count_and_variety(self):
        mats = list(matrix_population(count=24, max_rows=256))
        assert len(mats) == 24
        rows = {m.n_rows for m in mats}
        assert len(rows) > 5  # sizes vary
        densities = [m.nnz / m.n_rows ** 2 for m in mats]
        assert max(densities) > 3 * min(densities)

    def test_graph_population_families_differ(self):
        graphs = list(graph_population(count=8, max_vertices=512))
        assert len(graphs) == 8
        # power-law family should show higher max out-degree than uniform
        degs = []
        for src, dst, n in graphs:
            d = np.bincount(src, minlength=n)
            degs.append(d.max() / max(d.mean(), 1e-9))
        assert max(degs) > 2 * min(degs)

    def test_populations_deterministic(self):
        a = [m.nnz for m in matrix_population(count=6, seed=3)]
        b = [m.nnz for m in matrix_population(count=6, seed=3)]
        assert a == b
