"""The cross-process size ledger behind :meth:`ResultCache.prune`.

Concurrent pruners (fabric shards sharing one store directory) must not
each re-stat the whole disk tier per pass: the first prune scans once
and writes ``_ledger.json``; later prunes merge their in-memory pending
notes under the file lock.  A missing, corrupt, or stale ledger always
degrades to a rescan, never to wrong evictions.
"""

import json
import os

import pytest

from repro.perf.cache import ResultCache


def make_cache(tmp_path, **kwargs):
    return ResultCache(tmp_path / "cache", disk=True, **kwargs)


def fill(cache, n, kind="blobs", size=100):
    for i in range(n):
        cache.put(kind, f"k{i:03d}", "x" * size)


def space_mtimes(cache, kind="blobs"):
    """Give the entries strictly increasing mtimes (k000 oldest) so the
    LRU eviction order under test is deterministic, not clock-tied."""
    for i, path in enumerate(sorted(cache.directory.glob(f"{kind}/*.pkl"))):
        os.utime(path, (1000.0 + i, 1000.0 + i))


def ledger_entries(cache):
    payload = json.loads(
        (cache.directory / "_ledger.json").read_text())
    return payload["entries"]


class TestLedgerLifecycle:
    def test_first_prune_scans_and_writes_a_matching_ledger(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 5)
        cache.prune()
        entries = ledger_entries(cache)
        on_disk = {f"{p.parent.name}/{p.name}"
                   for p in cache.directory.glob("*/*.pkl")}
        assert set(entries) == on_disk
        for rel, (size, mtime) in entries.items():
            assert size == (cache.directory / rel).stat().st_size
            assert mtime > 0

    def test_second_prune_uses_the_ledger_not_a_rescan(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 4)
        cache.prune()

        def boom():  # the whole point: no more full directory stats
            raise AssertionError("prune re-scanned the disk tier")

        cache._disk_entries = boom
        result = cache.prune()
        assert result.remaining_entries == 4

    def test_pending_writes_merge_without_rescan(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 2)
        cache.prune()
        fill(cache, 2, kind="late")  # noted in _pending_ledger only
        cache._disk_entries = lambda: pytest.fail("rescanned")
        cache.prune()
        assert len(ledger_entries(cache)) == 4

    def test_corrupt_ledger_degrades_to_rescan(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 3)
        cache.prune()
        (cache.directory / "_ledger.json").write_text("{not json")
        result = cache.prune()
        assert result.remaining_entries == 3
        assert len(ledger_entries(cache)) == 3

    def test_rebuild_resyncs_after_out_of_band_deletion(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 3)
        cache.prune()
        victim = next(iter(sorted(cache.directory.glob("*/*.pkl"))))
        victim.unlink()
        # without rebuild the ledger still lists the ghost ...
        assert len(ledger_entries(cache)) == 3
        result = cache.prune(rebuild_ledger=True)
        # ... with it the scan is authoritative again
        assert result.remaining_entries == 2
        assert len(ledger_entries(cache)) == 2


class TestLedgerEviction:
    def test_eviction_uses_ledger_sizes_and_lru_order(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 6, size=100)
        space_mtimes(cache)
        cache.prune()  # seed the ledger from the scan
        entry_bytes = next(
            iter(cache.directory.glob("*/*.pkl"))).stat().st_size
        cache._disk_entries = lambda: pytest.fail("rescanned")
        result = cache.prune(max_bytes=entry_bytes * 3)
        assert result.removed_entries == 3
        assert result.remaining_entries == 3
        survivors = sorted(p.name for p in cache.directory.glob("*/*.pkl"))
        # k000 got the oldest mtime: LRU evicts the oldest three
        assert survivors == ["k003.pkl", "k004.pkl", "k005.pkl"]

    def test_peek_touch_refreshes_recency_in_the_ledger(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 3)
        space_mtimes(cache)            # k000 is the eviction candidate
        cache.prune()
        cache.clear_memory()           # force the next peek to hit disk
        hit, _ = cache.peek("blobs", "k000")  # touch: now most recent
        assert hit
        entry_bytes = (cache.directory / "blobs" / "k001.pkl") \
            .stat().st_size
        result = cache.prune(max_bytes=entry_bytes * 2)
        assert result.removed_entries == 1
        survivors = {p.name for p in cache.directory.glob("*/*.pkl")}
        assert "k000.pkl" in survivors  # the touch saved it
        assert "k001.pkl" not in survivors

    def test_ghost_entries_are_dropped_not_counted(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 3)
        space_mtimes(cache)
        cache.prune()
        (cache.directory / "blobs" / "k000.pkl").unlink()
        entry_bytes = (cache.directory / "blobs" / "k001.pkl") \
            .stat().st_size
        # cap of one entry: the ghost k000 is oldest but already gone —
        # it must not count as removed, and k001 goes instead
        result = cache.prune(max_bytes=entry_bytes)
        assert result.removed_entries == 1
        assert result.remaining_entries == 1
        assert len(ledger_entries(cache)) == 1


class TestSharedDirectory:
    def test_two_instances_share_one_ledger(self, tmp_path):
        """Two cache objects over one directory (two shard processes):
        each prunes with its own pending notes; the ledger converges to
        the union without either rescanning after the first pass."""
        a = make_cache(tmp_path)
        b = ResultCache(a.directory, disk=True)
        fill(a, 2)
        a.prune()
        fill(b, 2, kind="other")
        b._disk_entries = lambda: pytest.fail("b rescanned")
        b.prune()
        assert len(ledger_entries(a)) == 4

    def test_drop_notes_remove_quarantined_entries(self, tmp_path):
        cache = make_cache(tmp_path)
        fill(cache, 2)
        cache.prune()
        path = cache.directory / "blobs" / "k000.pkl"
        blob = path.read_bytes()
        path.write_bytes(blob[:-4] + b"\x00\x00\x00\x00")  # break checksum
        cache.clear_memory()
        hit, _ = cache.peek("blobs", "k000")  # quarantines the entry
        assert not hit
        assert cache.stats.quarantined == 1
        cache.prune()
        assert "blobs/k000.pkl" not in ledger_entries(cache)
