"""Content-addressed cache: keys, tiers, accounting, corruption, and the
bit-identity contract between cached and fresh artifacts."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.gpu.device import Device
from repro.analysis.accuracy import _accuracy_table_uncached, accuracy_table
from repro.datasets.graphs import _generate_graph_uncached, generate_graph
from repro.datasets.suitesparse import (
    _generate_matrix_uncached,
    generate_matrix,
)
from repro.kernels.scan import ScanWorkload
from repro.perf.cache import (
    ResultCache,
    content_key,
    package_source_token,
    source_token,
)


def _bits(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(a, dtype=np.float64)) \
        .view(np.uint64)


def _key_in_subprocess(_: int) -> str:
    return content_key("probe", {"n": 17, "scale": 0.25},
                       np.arange(5, dtype=np.float64), ("a", 2.5))


class TestContentKey:
    def test_stable_across_processes(self):
        here = _key_in_subprocess(0)
        with ProcessPoolExecutor(max_workers=1) as pool:
            there = pool.submit(_key_in_subprocess, 0).result()
        assert here == there

    def test_value_sensitivity(self):
        base = content_key("k", 1.0, [1, 2])
        assert content_key("k", 1.0, [1, 2]) == base
        assert content_key("k", 1.0, [2, 1]) != base
        assert content_key("k", 2.0, [1, 2]) != base

    def test_dict_order_does_not_matter(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_array_dtype_and_shape_matter(self):
        a = np.arange(6)
        assert content_key(a) != content_key(a.astype(np.float64))
        assert content_key(a) != content_key(a.reshape(2, 3))

    def test_unkeyable_object_raises(self):
        with pytest.raises(TypeError):
            content_key(object())

    def test_source_tokens_are_hex_digests(self):
        from repro.datasets import synthetic
        tok = source_token(synthetic)
        assert len(tok) == 64 and int(tok, 16) >= 0
        assert len(package_source_token()) == 64


class TestResultCacheTiers:
    def test_hit_miss_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return np.arange(4.0)

        key = content_key("x", 1)
        cache.get_or_compute("t", key, compute)
        assert (cache.stats.misses, cache.stats.hits) == (1, 0)
        cache.get_or_compute("t", key, compute)
        assert cache.stats.memory_hits == 1
        cache.clear_memory()
        cache.get_or_compute("t", key, compute)
        assert cache.stats.disk_hits == 1
        assert len(calls) == 1

    def test_memory_tier_returns_same_object(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("same")
        first = cache.get_or_compute("t", key, lambda: np.arange(3.0))
        assert cache.get_or_compute("t", key, lambda: None) is first

    def test_disk_round_trip_is_bit_identical(self, tmp_path):
        value = np.linspace(0.0, 1.0, 97) * np.pi
        key = content_key("rt")
        ResultCache(tmp_path).get_or_compute("t", key, lambda: value)
        fresh = ResultCache(tmp_path)  # new memory tier: disk must serve
        loaded = fresh.get_or_compute("t", key, lambda: pytest.fail("miss"))
        assert (_bits(loaded) == _bits(value)).all()
        assert fresh.stats.disk_hits == 1

    def test_truncated_entry_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("corrupt")
        cache.get_or_compute("t", key, lambda: np.arange(64.0))
        path = cache._entry_path("t", key)
        path.write_bytes(path.read_bytes()[:10])
        fresh = ResultCache(tmp_path)
        got = fresh.get_or_compute("t", key, lambda: np.arange(64.0))
        assert (got == np.arange(64.0)).all()
        # truncation breaks the checksum trailer => integrity failure
        assert fresh.stats.integrity_failures == 1
        assert fresh.stats.quarantined == 1
        assert fresh.stats.misses == 1
        # the rewritten entry loads cleanly again
        again = ResultCache(tmp_path)
        again.get_or_compute("t", key, lambda: pytest.fail("miss"))
        assert again.stats.disk_hits == 1

    def test_disk_tier_disabled(self, tmp_path):
        cache = ResultCache(tmp_path, disk=False)
        key = content_key("nodisk")
        cache.get_or_compute("t", key, lambda: 1)
        assert not list(tmp_path.rglob("*.pkl"))

    def test_memory_lru_evicts_oldest(self, tmp_path):
        cache = ResultCache(tmp_path, memory_items=2, disk=False)
        for i in range(3):
            cache.get_or_compute("t", content_key(i), lambda i=i: i)
        cache.get_or_compute("t", content_key(0), lambda: 0)
        assert cache.stats.misses == 4  # entry 0 was evicted


class TestDiskCapAndPruning:
    def fill(self, cache, n, size=1000, kind="blob"):
        for i in range(n):
            cache.get_or_compute(kind, content_key(kind, i),
                                 lambda i=i: bytes(size))

    def test_disk_stats_counts_per_kind(self, tmp_path):
        cache = ResultCache(tmp_path, disk=True, max_disk_bytes=None)
        self.fill(cache, 2, kind="a")
        self.fill(cache, 3, kind="b")
        stats = cache.disk_stats()
        assert stats.total_entries == 5
        assert set(stats.kinds) == {"a", "b"}
        assert stats.kinds["a"][0] == 2 and stats.kinds["b"][0] == 3
        assert stats.total_bytes == sum(b for _, b in stats.kinds.values())
        assert stats.max_disk_bytes is None

    def test_prune_is_noop_without_cap(self, tmp_path):
        cache = ResultCache(tmp_path, disk=True, max_disk_bytes=None)
        self.fill(cache, 4)
        result = cache.prune()
        assert result.removed_entries == 0
        assert result.remaining_entries == 4

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        import os
        cache = ResultCache(tmp_path, disk=True, max_disk_bytes=None)
        self.fill(cache, 3)
        # age the entries explicitly, newest-to-oldest = 2, 1, 0
        for i, age in ((0, 300), (1, 200), (2, 100)):
            path = cache._entry_path("blob", content_key("blob", i))
            st = path.stat()
            os.utime(path, (st.st_atime - age, st.st_mtime - age))
        entry = cache.disk_stats().total_bytes // 3
        result = cache.prune(max_bytes=2 * entry)
        assert result.removed_entries == 1
        assert result.remaining_entries == 2
        # the oldest (entry 0) went; 1 and 2 survive on disk
        cache.clear_memory()
        assert CacheStats_probe(cache, 3) == {"kept": [1, 2],
                                              "evicted": [0]}

    def test_disk_hit_refreshes_recency(self, tmp_path):
        import os
        cache = ResultCache(tmp_path, disk=True, max_disk_bytes=None)
        self.fill(cache, 2)
        # make entry 0 older, then touch it via a disk hit
        for i, age in ((0, 300), (1, 100)):
            path = cache._entry_path("blob", content_key("blob", i))
            st = path.stat()
            os.utime(path, (st.st_atime - age, st.st_mtime - age))
        cache.clear_memory()
        cache.get_or_compute("blob", content_key("blob", 0),
                             lambda: pytest.fail("should hit disk"))
        entry = cache.disk_stats().total_bytes // 2
        cache.prune(max_bytes=entry)
        cache.clear_memory()
        assert CacheStats_probe(cache, 2) == {"kept": [0], "evicted": [1]}

    def test_writes_trigger_periodic_prune(self, tmp_path):
        cache = ResultCache(tmp_path, disk=True, max_disk_bytes=1)
        self.fill(cache, ResultCache.PRUNE_EVERY)
        # the PRUNE_EVERY-th write pruned down toward the 1-byte cap;
        # only the newest entry (just written, never scanned) may remain
        assert cache.disk_stats().total_entries <= 1

    def test_env_cap_parsing(self, monkeypatch):
        from repro.perf.cache import default_max_disk_bytes
        cases = {"": None, "0": None, "weird": None, "1024": 1024,
                 "4k": 4096, "2M": 2 * (1 << 20), "1.5G": int(1.5 * (1 << 30))}
        for raw, want in cases.items():
            monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", raw)
            assert default_max_disk_bytes() == want, raw
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert default_max_disk_bytes() is None

    def test_cap_picked_up_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "8k")
        cache = ResultCache(tmp_path, disk=True)
        assert cache.max_disk_bytes == 8192
        assert cache.disk_stats().max_disk_bytes == 8192


class TestIntegrityAndFaults:
    @pytest.fixture(autouse=True)
    def _clean_plan(self, monkeypatch):
        from repro import faults
        monkeypatch.delenv(faults.ENV_VAR, raising=False)
        faults.reset_fault_state()
        yield
        faults.clear_plan()

    def test_flipped_byte_is_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key("bitrot")
        cache.get_or_compute("t", key, lambda: np.arange(32.0))
        path = cache._entry_path("t", key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        fresh = ResultCache(tmp_path)
        got = fresh.get_or_compute("t", key, lambda: np.arange(32.0))
        assert (got == np.arange(32.0)).all()
        assert fresh.stats.integrity_failures == 1
        quarantined = list((tmp_path / "_quarantine").glob("*.quar"))
        assert len(quarantined) == 1
        assert quarantined[0].name == f"t__{key}.quar"

    def test_quarantine_is_outside_the_size_ledger(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.get_or_compute("t", content_key("q", i),
                                 lambda: np.arange(16.0))
        victim = cache._entry_path("t", content_key("q", 0))
        victim.write_bytes(victim.read_bytes()[:8])
        cache.clear_memory()
        cache.get_or_compute("t", content_key("q", 0),
                             lambda: np.arange(16.0))
        stats = cache.disk_stats()
        assert stats.total_entries == 3  # the rewritten entry counts again
        assert stats.quarantined_entries == 1
        assert stats.quarantined_bytes > 0
        # and the quarantined bytes are NOT in the entry ledger
        on_disk = sum(p.stat().st_size
                      for p in tmp_path.glob("*/*.pkl"))
        assert stats.total_bytes == on_disk

    def test_read_corrupt_fault_recomputes_correctly(self, tmp_path):
        from repro import faults
        cache = ResultCache(tmp_path)
        key = content_key("inject-read")
        value = np.linspace(0.0, 1.0, 33)
        cache.get_or_compute("t", key, lambda: value)
        faults.install_plan("cache.read_corrupt=1.0,seed=2")
        fresh = ResultCache(tmp_path)
        got = fresh.get_or_compute("t", key, lambda: value)
        assert (got == value).all()
        assert fresh.stats.integrity_failures == 1
        assert fresh.stats.quarantined == 1
        assert fresh.stats.misses == 1

    def test_write_fail_fault_drops_entry_silently(self, tmp_path):
        from repro import faults
        faults.install_plan("cache.write_fail=1.0,seed=2")
        cache = ResultCache(tmp_path)
        key = content_key("inject-write")
        calls = []

        def compute():
            calls.append(1)
            return np.arange(8.0)

        got = cache.get_or_compute("t", key, compute)
        assert (got == np.arange(8.0)).all()
        assert not list(tmp_path.glob("*/*.pkl"))  # write was dropped
        cache.clear_memory()
        again = cache.get_or_compute("t", key, compute)
        assert (again == np.arange(8.0)).all()
        assert len(calls) == 2  # recompute, still correct

    def test_prune_sweeps_stale_tmp_files(self, tmp_path):
        import os
        import time
        cache = ResultCache(tmp_path)
        cache.get_or_compute("t", content_key("tmp"), lambda: 1)
        old = tmp_path / "t" / "dead-writer.tmp"
        old.write_bytes(b"partial")
        past = time.time() - 7200
        os.utime(old, (past, past))
        young = tmp_path / "t" / "live-writer.tmp"
        young.write_bytes(b"racing")
        cache.prune()
        assert not old.exists()  # crash debris swept
        assert young.exists()  # in-flight write never raced

    def test_quarantine_rotation_keeps_newest(self, tmp_path):
        import os
        from repro.perf.cache import _QUARANTINE_KEEP
        cache = ResultCache(tmp_path)
        qdir = tmp_path / "_quarantine"
        qdir.mkdir()
        n = _QUARANTINE_KEEP + 5
        for i in range(n):
            p = qdir / f"t__{i:03d}.quar"
            p.write_bytes(b"x")
            past = p.stat().st_mtime - (n - i) * 10.0
            os.utime(p, (past, past))
        cache.prune()
        left = sorted(p.name for p in qdir.glob("*.quar"))
        assert len(left) == _QUARANTINE_KEEP
        assert left[0] == "t__005.quar"  # the 5 oldest rotated out


def CacheStats_probe(cache, n: int) -> dict:
    """Which of the first ``n`` 'blob' entries survive on disk."""
    kept, evicted = [], []
    for i in range(n):
        path = cache._entry_path("blob", content_key("blob", i))
        (kept if path.exists() else evicted).append(i)
    return {"kept": kept, "evicted": evicted}


class TestCachedArtifactsBitIdentical:
    def test_matrix(self, isolated_cache):
        cached = generate_matrix("spmsrtls", scale=0.05)
        fresh = _generate_matrix_uncached("spmsrtls", 0.05, 1325)
        assert (cached.indptr == fresh.indptr).all()
        assert (cached.indices == fresh.indices).all()
        assert (_bits(cached.data) == _bits(fresh.data)).all()
        # and through the disk tier (fresh memory tier)
        isolated_cache.clear_memory()
        disk = generate_matrix("spmsrtls", scale=0.05)
        assert disk is not cached
        assert (_bits(disk.data) == _bits(cached.data)).all()
        assert isolated_cache.stats.disk_hits == 1

    def test_graph(self, isolated_cache):
        src, dst, n = generate_graph("mycielskian17")
        fsrc, fdst, fn = _generate_graph_uncached("mycielskian17", 1325)
        assert n == fn
        assert (src == fsrc).all() and (dst == fdst).all()
        isolated_cache.clear_memory()
        dsrc, ddst, dn = generate_graph("mycielskian17")
        assert (dsrc == src).all() and (ddst == dst).all() and dn == n

    def test_functional_execution(self, isolated_cache):
        w, dev = ScanWorkload(), Device("H200")
        cached = accuracy_table(w, dev)
        fresh = _accuracy_table_uncached(w, dev)
        assert cached == fresh  # ErrorEntry equality is exact float equality
        isolated_cache.clear_memory()
        assert accuracy_table(w, dev) == fresh
        assert isolated_cache.stats.disk_hits == 1
