"""Serial/parallel equivalence of every pipeline routed through the
ParallelExecutor: identical records in identical order for any n_jobs."""

import numpy as np

from repro.analysis.observations import verify_all
from repro.gpu.device import Device
from repro.harness.runner import run_performance
from repro.harness.sweep import sweep_sizes
from repro.datasets.populations import graph_population, matrix_population
from repro.kernels import (
    GemmWorkload,
    GemvWorkload,
    ReductionWorkload,
    ScanWorkload,
    SpmvWorkload,
)

FAST_WL = [GemmWorkload(), ScanWorkload(), ReductionWorkload(),
           GemvWorkload(), SpmvWorkload(scale=0.08)]
DEVICES = [Device("A100"), Device("H200"), Device("B200")]


def _bits(a: np.ndarray) -> np.ndarray:
    return np.asarray(a, dtype=np.float64).view(np.uint64)


class TestRunPerformance:
    def test_parallel_equals_serial_in_order(self):
        serial = run_performance(FAST_WL, DEVICES, n_jobs=1)
        parallel = run_performance(FAST_WL, DEVICES, n_jobs=2)
        assert serial == parallel  # PerfRecord is frozen: exact equality

    def test_device_major_record_order(self):
        records = run_performance(FAST_WL[:2], DEVICES[:2], n_jobs=1)
        gpus = [r.gpu for r in records]
        assert gpus == sorted(gpus, key=gpus.index)  # grouped by device
        wl = [r.workload for r in records if r.gpu == gpus[0]]
        # workloads stay contiguous and in suite order within a device
        assert wl == ["gemm"] * wl.count("gemm") + ["scan"] * wl.count("scan")


class TestVerifyAll:
    def test_parallel_equals_serial(self, isolated_cache):
        serial = verify_all(FAST_WL, DEVICES, n_jobs=1)
        parallel = verify_all(FAST_WL, DEVICES, n_jobs=2)
        assert [r.number for r in serial] == list(range(1, 10))
        assert serial == parallel


class TestSweep:
    def test_parallel_equals_serial(self):
        dev = Device("H200")
        serial = sweep_sizes("gemm", dev, n_jobs=1)
        parallel = sweep_sizes("gemm", dev, n_jobs=2)
        assert serial == parallel
        sizes = [p.size for p in serial]
        assert sizes == sorted(sizes)


class TestPopulations:
    def test_matrix_population_identical_any_jobs(self):
        a = list(matrix_population(count=70, max_rows=128, n_jobs=1))
        b = list(matrix_population(count=70, max_rows=128, n_jobs=2))
        assert len(a) == len(b) == 70
        for x, y in zip(a, b):
            assert (x.indptr == y.indptr).all()
            assert (x.indices == y.indices).all()
            assert (_bits(x.data) == _bits(y.data)).all()

    def test_graph_population_identical_any_jobs(self):
        a = list(graph_population(count=70, max_vertices=256, n_jobs=1))
        b = list(graph_population(count=70, max_vertices=256, n_jobs=2))
        assert len(a) == len(b) == 70
        for (s1, d1, n1), (s2, d2, n2) in zip(a, b):
            assert n1 == n2
            assert (s1 == s2).all() and (d1 == d2).all()
