"""Executor recovery: crashes, hangs, retries, and the serial degrade.

The contract under test (docs/ROBUSTNESS.md): a broken pool or hung
chunk never changes the output — completed chunks are reused, pending
chunks are retried or finished serially, and the assembled result is
bit-identical to a fault-free run.  Worker crashes are injected two
ways: deterministically via helper functions that die only inside pool
workers, and via the ``executor.worker_crash`` fault plan.
"""

import math
import multiprocessing
import os
import time

import pytest

from repro import faults
from repro.perf.executor import ParallelExecutor, WorkerTaskError


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset_fault_state()
    yield
    faults.clear_plan()


def _square(x):
    return x * x


def _crash_in_workers(x):
    """Dies abruptly in any pool worker; runs fine in the main process."""
    if multiprocessing.parent_process() is not None:
        os._exit(21)
    return x * x


class _CrashFirstChunkOnce:
    """Chunk 0 items sleep then crash the worker — but only until the
    marker file exists; other items log themselves and return."""

    def __init__(self, marker, log):
        self.marker = str(marker)
        self.log = str(log)

    def __call__(self, x):
        if x < 4 and not os.path.exists(self.marker):
            open(self.marker, "w").close()
            time.sleep(0.5)  # let the other chunk finish first
            os._exit(23)
        with open(self.log, "a") as fh:
            fh.write(f"{x}\n")
        return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError(f"bad item {x}")
    return x * x


def _interrupt_on_two(x):
    if x == 2:
        raise KeyboardInterrupt
    return x


class TestSerialDegrade:
    def test_serial_fallback_matches_parallel_output(self):
        """Satellite fix: pool failure degrades to serial with identical
        results — every worker dies, every chunk finishes in-process."""
        ex = ParallelExecutor(2, max_retries=0, backoff_base_s=0.0)
        items = list(range(12))
        out = ex.map(_crash_in_workers, items, chunk_size=3)
        assert out == [x * x for x in items]
        assert ex.last_degraded_chunks == 4

    def test_degrade_runs_only_pending_chunks(self, tmp_path):
        """Completed chunk results are reused, never recomputed."""
        fn = _CrashFirstChunkOnce(tmp_path / "crashed", tmp_path / "log")
        ex = ParallelExecutor(2, max_retries=3, backoff_base_s=0.01)
        out = ex.map(fn, list(range(8)), chunk_size=4)
        assert out == [x * x for x in range(8)]
        logged = sorted(int(v) for v in
                        (tmp_path / "log").read_text().split())
        # chunk 1 (items 4-7) completed before the round-1 crash; it must
        # appear exactly once — recomputation would double-log it
        assert logged == list(range(8))
        assert ex.last_failed_rounds >= 1


class TestInjectedFaults:
    def test_crash_plan_output_bit_identical(self):
        faults.install_plan("executor.worker_crash=0.4,seed=3")
        ex = ParallelExecutor(3, max_retries=4, backoff_base_s=0.01)
        out = ex.map(math.sqrt, list(range(40)), chunk_size=4)
        serial = [math.sqrt(x) for x in range(40)]
        assert out == serial  # == is bitwise for floats from identical ops

    def test_hang_plan_times_out_and_recovers(self):
        faults.install_plan("executor.worker_hang=1.0,seed=1")
        ex = ParallelExecutor(2, chunk_timeout_s=0.4, max_retries=1,
                              backoff_base_s=0.01)
        out = ex.map(_square, list(range(8)), chunk_size=2)
        assert out == [x * x for x in range(8)]
        # every pool attempt hung (rate 1.0) => the serial path finished
        assert ex.last_degraded_chunks == 4
        assert ex.last_failed_rounds == 2

    def test_task_error_label_survives_chaos(self):
        """A deterministic task failure names its item even when pool
        crashes and retries happen around it."""
        faults.install_plan("executor.worker_crash=0.3,seed=9")
        ex = ParallelExecutor(2, max_retries=3, backoff_base_s=0.01)
        with pytest.raises(WorkerTaskError) as info:
            ex.map(_raise_on_three, list(range(8)), chunk_size=2,
                   labels=[f"item-{i}" for i in range(8)])
        assert info.value.label == "item-3"
        assert "ValueError" in str(info.value)


class TestInterrupt:
    def test_keyboard_interrupt_cancels_cleanly(self):
        before = {id(p) for p in multiprocessing.active_children()
                  if p.is_alive()}
        ex = ParallelExecutor(2, backoff_base_s=0.01)
        with pytest.raises(KeyboardInterrupt, match="cancelled pending"):
            ex.map(_interrupt_on_two, list(range(8)), chunk_size=2)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leaked = [p for p in multiprocessing.active_children()
                      if p.is_alive() and id(p) not in before]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, f"leaked pool processes: {leaked}"
