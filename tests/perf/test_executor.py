"""ParallelExecutor: ordering, determinism, chunking, fallback."""

import pytest

from repro.perf.executor import (
    ParallelExecutor,
    WorkerTaskError,
    _chunk_bounds,
    resolve_n_jobs,
)


def _square(x: int) -> int:
    return x * x


def _addmul(a: int, b: int) -> int:
    return a + 10 * b


class TestResolveNJobs:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_n_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_n_jobs() == 5

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_n_jobs() >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestWorkerSizing:
    def test_explicit_jobs_beats_cpu_count(self, monkeypatch):
        """--jobs wins over the detected core count: a 1-core box still
        gets the requested pool width, and the effective worker count is
        recorded for --timings."""
        import repro.perf.executor as executor_mod
        from repro.perf import instrument

        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 1)
        assert resolve_n_jobs(4) == 4
        instrument.reset_stage_timings()
        ex = ParallelExecutor(4)
        assert ex.n_jobs == 4
        out = ex.map(_square, range(8), chunk_size=2)
        assert out == [i * i for i in range(8)]
        assert instrument.stage_meta().get("max_workers") == 4
        instrument.reset_stage_timings()

    def test_worker_count_capped_by_items(self):
        from repro.perf import instrument

        instrument.reset_stage_timings()
        ParallelExecutor(8).map(_square, range(3))
        assert instrument.stage_meta().get("max_workers") == 3
        instrument.reset_stage_timings()

    def test_cpu_count_is_only_a_fallback(self, monkeypatch):
        import repro.perf.executor as executor_mod

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 1)
        assert resolve_n_jobs() == 1


class TestChunking:
    def test_bounds_cover_exactly(self):
        assert _chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert _chunk_bounds(0, 4) == []
        assert _chunk_bounds(3, 8) == [(0, 3)]

    def test_bounds_are_deterministic(self):
        assert _chunk_bounds(101, 7) == _chunk_bounds(101, 7)


class TestMap:
    def test_serial_path_preserves_order(self):
        ex = ParallelExecutor(1)
        assert ex.map(_square, range(9)) == [i * i for i in range(9)]

    def test_parallel_matches_serial(self):
        items = list(range(23))
        serial = ParallelExecutor(1).map(_square, items)
        parallel = ParallelExecutor(2).map(_square, items, chunk_size=3)
        assert parallel == serial

    def test_starmap(self):
        pairs = [(i, i + 1) for i in range(8)]
        assert ParallelExecutor(2).starmap(_addmul, pairs) == \
            [a + 10 * b for a, b in pairs]

    def test_empty_input(self):
        assert ParallelExecutor(2).map(_square, []) == []

    def test_worker_exception_propagates(self):
        with pytest.raises(WorkerTaskError, match="item 1"):
            # chunk_size=4: item 5 is index 1 of its chunk
            ParallelExecutor(2).map(_fail_on_five, list(range(10)),
                                    chunk_size=4)

    def test_worker_exception_names_label(self):
        labels = [f"wl-{i}" for i in range(10)]
        with pytest.raises(WorkerTaskError, match="wl-5.*ZeroDivisionError"):
            ParallelExecutor(2).map(_fail_on_five, list(range(10)),
                                    labels=labels, chunk_size=3)

    def test_label_callable_and_serial_path(self):
        with pytest.raises(WorkerTaskError, match="wl-5"):
            ParallelExecutor(1).map(_fail_on_five, list(range(10)),
                                    labels=lambda x: f"wl-{x}")

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            ParallelExecutor(2).map(_square, range(4), labels=["a"])


def _fail_on_five(x: int) -> float:
    return 1.0 / (x - 5)
