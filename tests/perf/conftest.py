import pytest

from repro.perf.cache import ResultCache, set_default_cache


@pytest.fixture
def isolated_cache(tmp_path):
    """Point the process-wide cache at a throwaway directory."""
    cache = ResultCache(tmp_path / "cache")
    previous = set_default_cache(cache)
    yield cache
    set_default_cache(previous)
