"""Stage-timing registry."""

import pytest

from repro.perf.instrument import (
    record_stage,
    reset_stage_timings,
    stage,
    stage_timings,
)
from repro.harness.report import format_stage_timings


@pytest.fixture(autouse=True)
def clean_registry():
    reset_stage_timings()
    yield
    reset_stage_timings()


class TestInstrument:
    def test_record_accumulates(self):
        record_stage("a", 1.0)
        record_stage("a", 0.5)
        record_stage("b", 2.0)
        by = {t.name: t for t in stage_timings()}
        assert by["a"].seconds == pytest.approx(1.5)
        assert by["a"].calls == 2
        assert by["b"].calls == 1

    def test_stage_context_manager_times_body(self):
        with stage("body"):
            pass
        (t,) = stage_timings()
        assert t.name == "body" and t.seconds >= 0.0 and t.calls == 1

    def test_stage_records_on_exception(self):
        with pytest.raises(RuntimeError):
            with stage("boom"):
                raise RuntimeError()
        assert stage_timings()[0].calls == 1

    def test_insertion_order_and_reset(self):
        record_stage("z", 1.0)
        record_stage("a", 1.0)
        assert [t.name for t in stage_timings()] == ["z", "a"]
        reset_stage_timings()
        assert stage_timings() == []

    def test_format_stage_timings(self):
        record_stage("fast", 1.0)
        record_stage("slow", 3.0)
        text = format_stage_timings(stage_timings())
        lines = text.splitlines()  # title, header, rule, rows by wall desc
        assert "slow" in lines[3] and "75%" in lines[3]
        assert "fast" in lines[4] and "25%" in lines[4]
