"""The bench perf gate: stage-profile grouping, the regression check, and
the ``REPRO_STAGE_JSON`` dump hook the profiler rides on."""

import json

import pytest

from repro.cli import main
from repro.perf.bench import (_group_stages, check_regression,
                              profile_coverage)
from repro.perf.instrument import reset_stage_timings


def _baseline(tmp_path, benches):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"schema": 1, "benches": benches}))
    return path


class TestCheckRegression:
    def test_within_tolerance_passes(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        results = {"observations": {"cold_s": 12.0}}
        assert check_regression(results, base, tolerance=0.25) == []

    def test_regression_flagged(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        results = {"observations": {"cold_s": 13.0}}
        issues = check_regression(results, base, tolerance=0.25)
        assert len(issues) == 1
        assert "observations" in issues[0]
        assert "12.5s" in issues[0]

    def test_boundary_is_inclusive(self, tmp_path):
        base = _baseline(tmp_path, {"b": {"cold_s": 8.0}})
        assert check_regression({"b": {"cold_s": 10.0}}, base,
                                tolerance=0.25) == []

    def test_new_bench_without_baseline_entry_passes(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        results = {"brand_new": {"cold_s": 99.0}}
        assert check_regression(results, base) == []

    def test_missing_baseline_file_is_an_issue(self, tmp_path):
        issues = check_regression({"observations": {"cold_s": 1.0}},
                                  tmp_path / "nope.json")
        assert len(issues) == 1
        assert "not found" in issues[0]

    def test_improvement_passes(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        assert check_regression({"observations": {"cold_s": 2.0}},
                                base) == []


class TestGroupStages:
    def test_groups_by_leaf_prefix(self):
        stages = {
            "plan-build:gemv": {"seconds": 1.0, "calls": 3},
            "plan-build:spmv": {"seconds": 0.5, "calls": 2},
            "sweep-execute:gemv": {"seconds": 2.0, "calls": 3},
            "model-resolve": {"seconds": 0.25, "calls": 40},
            # nested: the leaf name decides the group, not the path head
            "analysis.verify_all/datasets.generate_matrix":
                {"seconds": 4.0, "self_seconds": 4.0, "calls": 1},
            "unnamed-thing": {"seconds": 0.5, "calls": 1},
        }
        groups = _group_stages(stages)
        assert groups == {"plan-build": 1.5, "sweep-execute": 2.0,
                          "model-resolve": 0.25, "dataset-gen": 4.0,
                          "misc": 0.5}

    def test_self_seconds_preferred_and_other_is_wall_remainder(self):
        stages = {
            "analysis.verify_all":
                {"seconds": 10.0, "self_seconds": 1.0, "calls": 1},
            "analysis.verify_all/analysis.accuracy_table":
                {"seconds": 9.0, "self_seconds": 9.0, "calls": 9},
        }
        groups = _group_stages(stages, wall=12.0)
        # self-seconds partition: 1 + 9 attributed, 2 unattributed
        assert groups["observation-audit"] == pytest.approx(1.0)
        assert groups["accuracy-audit"] == pytest.approx(9.0)
        assert groups["other"] == pytest.approx(2.0)

    def test_coverage_ratio(self):
        stages = {
            "a": {"seconds": 6.0, "self_seconds": 4.0, "calls": 1},
            "a/b": {"seconds": 2.0, "self_seconds": 2.0, "calls": 1},
        }
        assert profile_coverage(stages, 8.0) == pytest.approx(0.75)
        assert profile_coverage(stages, 0.0) == 0.0
        # attributed can overshoot wall by timer noise; clamp to 1
        assert profile_coverage(stages, 5.0) == 1.0

    def test_empty(self):
        assert _group_stages({}, wall=1.0) == {"other": 1.0}


class TestBudgets:
    def _baseline(self, tmp_path, budgets):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({
            "schema": 2,
            "benches": {"observations": {"cold_s": 10.0}},
            "budgets": budgets}))
        return path

    def test_cold_budget_enforced(self, tmp_path):
        base = self._baseline(
            tmp_path, {"observations": {"cold_max_s": 8.0}})
        issues = check_regression(
            {"observations": {"cold_s": 9.0, "warm_s": 1.0}}, base)
        assert any("budget" in i for i in issues)

    def test_warm_budget_enforced(self, tmp_path):
        base = self._baseline(
            tmp_path, {"observations": {"warm_max_s": 1.5}})
        issues = check_regression(
            {"observations": {"cold_s": 5.0, "warm_s": 2.0}}, base)
        assert any("warm" in i and "budget" in i for i in issues)

    def test_coverage_floor_enforced_only_with_profile(self, tmp_path):
        base = self._baseline(
            tmp_path, {"observations": {"min_coverage": 0.9}})
        with_prof = {"observations": {
            "cold_s": 5.0, "warm_s": 1.0,
            "profile": {"coverage": 0.5}}}
        issues = check_regression(with_prof, base)
        assert any("coverage" in i for i in issues)
        # no profile attached -> the floor cannot be evaluated, passes
        without = {"observations": {"cold_s": 5.0, "warm_s": 1.0}}
        assert check_regression(without, base) == []

    def test_within_budgets_passes(self, tmp_path):
        base = self._baseline(
            tmp_path, {"observations": {"cold_max_s": 8.0,
                                        "warm_max_s": 1.5,
                                        "min_coverage": 0.9}})
        results = {"observations": {
            "cold_s": 7.0, "warm_s": 1.0,
            "profile": {"coverage": 0.95}}}
        assert check_regression(results, base) == []


class TestWriteBenchJson:
    def test_budgets_survive_rewrite(self, tmp_path):
        from repro.perf.bench import write_bench_json
        out = tmp_path / "BENCH_perf.json"
        budgets = {"observations": {"cold_max_s": 8.0}}
        write_bench_json(out, {"observations": {"cold_s": 5.0}},
                         budgets=budgets)
        # a later refresh without explicit budgets keeps the block
        write_bench_json(out, {"observations": {"cold_s": 4.0}})
        doc = json.loads(out.read_text())
        assert doc["budgets"] == budgets
        assert doc["benches"]["observations"]["cold_s"] == 4.0


class TestStageJsonDump:
    def test_cli_dumps_stage_registry(self, tmp_path, monkeypatch, capsys,
                                      isolated_cache):
        # empty cache: the accuracy audit actually executes the kernels,
        # so the launch-engine stages are recorded
        out = tmp_path / "stages.json"
        monkeypatch.setenv("REPRO_STAGE_JSON", str(out))
        reset_stage_timings()
        rc = main(["accuracy", "--workload", "gemv", "--gpu", "H200"])
        assert rc == 0
        payload = json.loads(out.read_text())
        stages = payload["stages"]
        leaves = {name.rsplit("/", 1)[-1] for name in stages}
        assert "model-resolve" in leaves
        assert any(leaf.startswith("sweep-execute:gemv")
                   for leaf in leaves)
        # every stage nests under the command root
        assert all(name == "cli.startup"
                   or name.startswith("cli.accuracy")
                   for name in stages)
        for rec in stages.values():
            assert rec["seconds"] >= 0.0
            assert 0.0 <= rec["self_seconds"] <= rec["seconds"] + 1e-9
            assert rec["calls"] >= 1

    def test_no_dump_without_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STAGE_JSON", raising=False)
        rc = main(["quadrants", "--workload", "gemv"])
        assert rc == 0
        assert not (tmp_path / "stages.json").exists()


class TestBenchCliFlags:
    def test_parser_accepts_gate_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["bench", "--bench", "run_performance", "--profile", "--check",
             "--tolerance", "0.3", "--baseline", "b.json"])
        assert args.profile and args.check
        assert args.tolerance == pytest.approx(0.3)
        assert args.baseline == "b.json"

    def test_gate_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["bench"])
        assert args.tolerance == pytest.approx(0.25)
        assert args.baseline == "BENCH_perf.json"
        assert not args.profile and not args.check


class TestBudgetDiagnostics:
    def _baseline(self, tmp_path, budgets):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({
            "schema": 2,
            "benches": {"observations": {"cold_s": 10.0}},
            "budgets": budgets}))
        return path

    def test_messages_carry_budget_measured_delta(self, tmp_path):
        base = self._baseline(
            tmp_path, {"observations": {"cold_max_s": 8.0,
                                        "warm_max_s": 1.5}})
        issues = check_regression(
            {"observations": {"cold_s": 9.5, "warm_s": 2.0}}, base)
        cold = next(i for i in issues if "cold" in i)
        assert "9.5s" in cold and "8.0s" in cold and "+1.5s" in cold
        warm = next(i for i in issues if "warm" in i)
        assert "2.0s" in warm and "1.5s" in warm and "+0.5s" in warm

    def test_missing_budgets_flagged_when_required(self, tmp_path):
        base = self._baseline(tmp_path, {})
        results = {"observations": {"cold_s": 5.0}}
        # the library default stays permissive (budget-less baselines)
        assert check_regression(results, base) == []
        issues = check_regression(results, base, require_budgets=True)
        assert len(issues) == 1
        assert "no budgets defined" in issues[0]
        assert "budgets.observations" in issues[0]

    def test_required_budgets_satisfied_by_any_entry(self, tmp_path):
        base = self._baseline(
            tmp_path, {"observations": {"cold_max_s": 30.0}})
        assert check_regression({"observations": {"cold_s": 5.0}}, base,
                                require_budgets=True) == []


class TestOverlapBudget:
    def _baseline(self, tmp_path, min_overlap=1.05):
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({
            "schema": 2,
            "benches": {"observations": {"cold_s": 10.0}},
            "budgets": {"observations":
                        {"min_overlap_ratio": min_overlap}}}))
        return path

    def _result(self, overlap=None, workers=None):
        r = {"cold_s": 5.0, "warm_s": 0.5}
        if overlap is not None:
            r["overlap_ratio"] = overlap
        if workers is not None:
            r["graph_workers"] = workers
        return {"observations": r}

    def test_low_overlap_flagged_with_multiple_workers(self, tmp_path):
        base = self._baseline(tmp_path)
        issues = check_regression(self._result(overlap=1.0, workers=2),
                                  base)
        assert len(issues) == 1
        assert "overlap 1.00x" in issues[0]
        assert "1.05x floor" in issues[0]
        assert "-0.05" in issues[0] and "2 workers" in issues[0]

    def test_serial_run_cannot_fail_the_overlap_floor(self, tmp_path):
        """A one-worker schedule cannot overlap; the floor only binds
        multi-worker runs."""
        base = self._baseline(tmp_path)
        assert check_regression(self._result(overlap=1.0, workers=1),
                                base) == []

    def test_run_without_graph_meta_passes(self, tmp_path):
        # e.g. REPRO_GRAPH=0 staged runs record no overlap at all
        base = self._baseline(tmp_path)
        assert check_regression(self._result(), base) == []

    def test_healthy_overlap_passes(self, tmp_path):
        base = self._baseline(tmp_path)
        assert check_regression(self._result(overlap=1.8, workers=2),
                                base) == []
