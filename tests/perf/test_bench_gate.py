"""The bench perf gate: stage-profile grouping, the regression check, and
the ``REPRO_STAGE_JSON`` dump hook the profiler rides on."""

import json

import pytest

from repro.cli import main
from repro.perf.bench import _group_stages, check_regression
from repro.perf.instrument import reset_stage_timings


def _baseline(tmp_path, benches):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"schema": 1, "benches": benches}))
    return path


class TestCheckRegression:
    def test_within_tolerance_passes(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        results = {"observations": {"cold_s": 12.0}}
        assert check_regression(results, base, tolerance=0.25) == []

    def test_regression_flagged(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        results = {"observations": {"cold_s": 13.0}}
        issues = check_regression(results, base, tolerance=0.25)
        assert len(issues) == 1
        assert "observations" in issues[0]
        assert "12.5s" in issues[0]

    def test_boundary_is_inclusive(self, tmp_path):
        base = _baseline(tmp_path, {"b": {"cold_s": 8.0}})
        assert check_regression({"b": {"cold_s": 10.0}}, base,
                                tolerance=0.25) == []

    def test_new_bench_without_baseline_entry_passes(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        results = {"brand_new": {"cold_s": 99.0}}
        assert check_regression(results, base) == []

    def test_missing_baseline_file_is_an_issue(self, tmp_path):
        issues = check_regression({"observations": {"cold_s": 1.0}},
                                  tmp_path / "nope.json")
        assert len(issues) == 1
        assert "not found" in issues[0]

    def test_improvement_passes(self, tmp_path):
        base = _baseline(tmp_path, {"observations": {"cold_s": 10.0}})
        assert check_regression({"observations": {"cold_s": 2.0}},
                                base) == []


class TestGroupStages:
    def test_groups_by_prefix(self):
        stages = {
            "plan-build:gemv": {"seconds": 1.0, "calls": 3},
            "plan-build:spmv": {"seconds": 0.5, "calls": 2},
            "sweep-execute:gemv": {"seconds": 2.0, "calls": 3},
            "model-resolve": {"seconds": 0.25, "calls": 40},
            "dataset-generation": {"seconds": 4.0, "calls": 1},
        }
        groups = _group_stages(stages)
        assert groups == {"plan-build": 1.5, "sweep-execute": 2.0,
                          "model-resolve": 0.25, "other": 4.0}

    def test_empty(self):
        assert _group_stages({}) == {"plan-build": 0.0,
                                     "sweep-execute": 0.0,
                                     "model-resolve": 0.0, "other": 0.0}


class TestStageJsonDump:
    def test_cli_dumps_stage_registry(self, tmp_path, monkeypatch, capsys,
                                      isolated_cache):
        # empty cache: the accuracy audit actually executes the kernels,
        # so the launch-engine stages are recorded
        out = tmp_path / "stages.json"
        monkeypatch.setenv("REPRO_STAGE_JSON", str(out))
        reset_stage_timings()
        rc = main(["accuracy", "--workload", "gemv", "--gpu", "H200"])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "model-resolve" in payload
        assert any(name.startswith("sweep-execute:gemv")
                   for name in payload)
        for rec in payload.values():
            assert rec["seconds"] >= 0.0
            assert rec["calls"] >= 1

    def test_no_dump_without_env(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_STAGE_JSON", raising=False)
        rc = main(["quadrants", "--workload", "gemv"])
        assert rc == 0
        assert not (tmp_path / "stages.json").exists()


class TestBenchCliFlags:
    def test_parser_accepts_gate_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["bench", "--bench", "run_performance", "--profile", "--check",
             "--tolerance", "0.3", "--baseline", "b.json"])
        assert args.profile and args.check
        assert args.tolerance == pytest.approx(0.3)
        assert args.baseline == "b.json"

    def test_gate_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["bench"])
        assert args.tolerance == pytest.approx(0.25)
        assert args.baseline == "BENCH_perf.json"
        assert not args.profile and not args.check
