"""Graph scheduler fault recovery: crash rounds, node reuse, degrade.

The contract mirrors the executor's (docs/ROBUSTNESS.md), per node
instead of per chunk: a crashed or hung pool round never changes the
assembled results — completed node values are harvested and reused,
survivors are resubmitted under a new attempt key, and after
``max_retries`` failed rounds the remainder finishes in-process in
deterministic topological order.
"""

import multiprocessing
import os
import time

import pytest

from repro import faults
from repro.graph import GraphScheduler, TaskGraph, TaskNode
from repro.perf.executor import WorkerTaskError


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset_fault_state()
    yield
    faults.clear_plan()


def _square(x):
    return x * x


def _crash_in_workers(x):
    """Dies abruptly in any pool worker; runs fine in the main process."""
    if multiprocessing.parent_process() is not None:
        os._exit(21)
    return x * x


class _CrashOnceNode:
    """The first call without the marker sleeps, then kills its worker;
    every completed call appends its value to the log exactly once."""

    def __init__(self, marker, log, victim):
        self.marker = str(marker)
        self.log = str(log)
        self.victim = victim

    def __call__(self, x):
        if x == self.victim and not os.path.exists(self.marker):
            open(self.marker, "w").close()
            time.sleep(0.4)  # let sibling nodes complete first
            os._exit(23)
        with open(self.log, "a") as fh:
            fh.write(f"{x}\n")
        return x * x


def _graph(fn, n=8):
    g = TaskGraph()
    for i in range(n):
        g.add(TaskNode(key=f"sq:{i:02d}", kind="square", fn=fn, args=(i,)))
    return g


def _expected(n=8):
    return {f"sq:{i:02d}": i * i for i in range(n)}


class TestCrashRecovery:
    def test_fault_plan_crashes_yield_identical_results(self):
        """The chaos-CI property: under the executor.worker_crash plan
        (fault keys ``graph:<key>:<attempt>``), retries converge on the
        fault-free answer."""
        faults.install_plan("executor.worker_crash=0.4,seed=3")
        sched = GraphScheduler(2, max_retries=6, backoff_base_s=0.01)
        assert sched.run(_graph(_square)) == _expected()
        # rate 0.4 over 8 nodes with this seed definitely fires
        assert sched.last_stats.failed_rounds >= 1
        assert sched.last_stats.retried_nodes >= 1

    def test_attempt_key_advances_past_deterministic_crash(self):
        """A node whose fault draw crashes at attempt 0 succeeds on a
        retry because the attempt number is part of the fault key."""
        faults.install_plan("executor.worker_crash=0.4,seed=3")
        sched = GraphScheduler(2, max_retries=6, backoff_base_s=0.01)
        results = sched.run(_graph(_square, n=4))
        assert results == _expected(n=4)

    def test_completed_nodes_reused_never_recomputed(self, tmp_path):
        """A crashed round harvests finished siblings: every node logs
        exactly once, even though the pool was rebuilt mid-run."""
        fn = _CrashOnceNode(tmp_path / "crashed", tmp_path / "log",
                            victim=0)
        sched = GraphScheduler(2, max_retries=4, backoff_base_s=0.01)
        assert sched.run(_graph(fn, n=6)) == _expected(n=6)
        logged = sorted(int(v) for v in
                        (tmp_path / "log").read_text().split())
        assert logged == list(range(6)), (
            "a completed node was recomputed after the pool rebuild")
        stats = sched.last_stats
        assert stats.failed_rounds >= 1
        assert stats.reused_nodes >= 1


class TestSerialDegrade:
    def test_persistent_crashes_degrade_to_serial(self):
        """Every worker dies on every attempt: the scheduler gives up on
        the pool and finishes all nodes in-process, bit-identically."""
        sched = GraphScheduler(2, max_retries=1, backoff_base_s=0.01)
        assert sched.run(_graph(_crash_in_workers)) == _expected()
        assert sched.last_stats.degraded_nodes == 8

    def test_hang_plan_degrades_to_serial(self):
        """Hung nodes time out the round; the degrade path runs in the
        parent where the hang site never fires."""
        faults.install_plan("executor.worker_hang=1.0,seed=1")
        sched = GraphScheduler(2, chunk_timeout_s=0.4, max_retries=1,
                               backoff_base_s=0.01)
        assert sched.run(_graph(_square, n=4)) == _expected(n=4)
        stats = sched.last_stats
        assert stats.failed_rounds >= 1
        assert stats.degraded_nodes >= 1


class TestDeterministicErrors:
    def test_task_error_is_not_retried(self):
        """A deterministic exception propagates immediately even under
        an active crash plan — it is not a fault to recover from."""
        faults.install_plan("executor.worker_crash=0.0,seed=1")
        g = _graph(_square, n=3)
        g.add(TaskNode(key="bad", kind="square", fn=_bad, args=(9,)))
        sched = GraphScheduler(2, max_retries=3, backoff_base_s=0.01)
        with pytest.raises(WorkerTaskError, match="bad item 9"):
            sched.run(g)


def _bad(x):
    raise ValueError(f"bad item {x}")
