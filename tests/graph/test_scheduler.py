"""GraphScheduler semantics: determinism, policy, stats, and errors.

The scheduler's contract (docs/PERF.md): results depend only on the
node set and each node's arguments — identical across worker counts,
insertion orders, and completion races — and the concurrency policy
serializes exactly the nodes the determinism facts cannot prove pure.
"""

import random

import pytest

from repro.analysis.observations import _node_accuracy, _node_dataset
from repro.graph import (
    ConcurrencyPolicy,
    GraphScheduler,
    TaskGraph,
    TaskNode,
    graph_enabled,
)
from repro.graph.policy import function_fid
from repro.perf.executor import WorkerTaskError
from repro.perf.instrument import (
    reset_stage_timings,
    stage_meta,
    stage_timings,
)


def _square(x):
    return x * x


def _tag(key, base):
    return f"{key}:{base * 2}"


def _boom(x):
    raise ValueError(f"bad node {x}")


def _chain_graph(n=12):
    """Independent squares plus a short dependency chain."""
    g = TaskGraph()
    for i in range(n):
        g.add(TaskNode(key=f"sq:{i:02d}", kind="square", fn=_square,
                       args=(i,)))
    g.add(TaskNode(key="tag:a", kind="tag", fn=_tag, args=("a", 3)))
    g.add(TaskNode(key="tag:b", kind="tag", fn=_tag, args=("b", 4),
                   deps=("tag:a", "sq:00")))
    return g


def _expected(n=12):
    out = {f"sq:{i:02d}": i * i for i in range(n)}
    out["tag:a"] = "a:6"
    out["tag:b"] = "b:8"
    return out


class _KindPolicy(ConcurrencyPolicy):
    """Test double: serialize every node of the given kinds."""

    def __init__(self, exclusive_kinds):
        super().__init__(facts={})
        self.exclusive_kinds = set(exclusive_kinds)

    def concurrent(self, node):
        return node.kind not in self.exclusive_kinds


class TestDeterminism:
    def test_serial_equals_pooled(self):
        graph = _chain_graph()
        serial = GraphScheduler(1).run(graph)
        pooled = GraphScheduler(3, max_retries=2,
                                backoff_base_s=0.01).run(graph)
        assert serial == _expected()
        assert pooled == serial

    def test_results_independent_of_insertion_order(self):
        rng = random.Random(11)
        baseline = None
        for _ in range(4):
            nodes = list(_chain_graph())
            rng.shuffle(nodes)
            g = TaskGraph()
            g.extend(nodes)
            results = GraphScheduler(2, max_retries=2,
                                     backoff_base_s=0.01).run(g)
            if baseline is None:
                baseline = results
            assert results == baseline

    def test_empty_graph(self):
        assert GraphScheduler(4).run(TaskGraph()) == {}


class TestPolicy:
    def test_exclusive_nodes_run_in_parent_with_correct_results(self):
        graph = _chain_graph()
        sched = GraphScheduler(3, policy=_KindPolicy({"tag"}),
                               max_retries=2, backoff_base_s=0.01)
        assert sched.run(graph) == _expected()
        assert sched.last_stats.exclusive_nodes == 2

    def test_unknown_callables_default_concurrent(self):
        # test doubles live outside the repro package: no facts id, so
        # the policy cannot (and need not) constrain them
        node = TaskNode(key="k", kind="unit", fn=_square, args=(1,))
        assert function_fid(_square) is None
        assert ConcurrencyPolicy(facts={"purity": {}}).concurrent(node)

    def test_facts_drive_concurrency(self):
        fid = function_fid(_node_dataset)
        assert fid == "analysis/observations.py::_node_dataset"
        node = TaskNode(key="dataset:gemm", kind="dataset-gen",
                        fn=_node_dataset, args=("gemm",))
        pure = ConcurrencyPolicy(
            facts={"purity": {fid: {"pure": True, "ambient": []}}})
        impure = ConcurrencyPolicy(
            facts={"purity": {fid: {"pure": False}}})
        ambient = ConcurrencyPolicy(
            facts={"purity": {fid: {"pure": True, "ambient": ["env"]}}})
        assert pure.concurrent(node)
        assert not impure.concurrent(node)
        assert not ambient.concurrent(node)

    def test_shipped_facts_prove_pipeline_nodes_concurrent(self):
        """The checked-in artifact must keep the graph builders' node
        callables pure and ambient-free — otherwise every pipeline node
        serializes and the overlap gate in CI fails."""
        policy = ConcurrencyPolicy()
        assert policy.facts is not None, "determinism_facts.json missing"
        for fn, name in ((_node_dataset, "gemm"), (_node_accuracy, "gemm")):
            node = TaskNode(key=f"x:{name}", kind="dataset-gen", fn=fn,
                            args=(name,))
            entry = policy.facts["purity"][function_fid(fn)]
            assert entry["pure"] is True and not entry.get("ambient")
            assert policy.concurrent(node)


class TestObservability:
    def test_stats_and_stage_meta(self):
        reset_stage_timings()
        graph = _chain_graph(n=6)
        sched = GraphScheduler(2, max_retries=2, backoff_base_s=0.01)
        sched.run(graph)
        stats = sched.last_stats
        assert stats.nodes == 8 and stats.workers == 2
        assert stats.makespan_s > 0 and stats.node_wall_s > 0
        assert stats.overlap_ratio == pytest.approx(
            stats.node_wall_s / stats.makespan_s)
        assert set(stats.per_kind_wall_s) == {"square", "tag"}
        meta = stage_meta()["graph"]
        assert meta["runs"] == 1 and meta["nodes"] == 8
        assert meta["workers"] == 2
        assert meta["overlap_ratio"] == pytest.approx(stats.overlap_ratio,
                                                      abs=1e-3)
        # worker-side node timing files under graph/<kind> in the parent
        names = {t.name for t in stage_timings()}
        assert "graph" in names and "graph/square" in names

    def test_serial_path_records_graph_stage_pair(self):
        reset_stage_timings()
        GraphScheduler(1).run(_chain_graph(n=3))
        names = {t.name for t in stage_timings()}
        assert {"graph", "graph/square", "graph/tag"} <= names


class TestErrors:
    def test_task_error_propagates_serial(self):
        g = TaskGraph()
        g.add(TaskNode(key="bad", kind="unit", fn=_boom, args=(3,)))
        with pytest.raises(WorkerTaskError, match="bad node 3"):
            GraphScheduler(1).run(g)

    def test_task_error_propagates_pooled(self):
        g = _chain_graph(n=4)
        g.add(TaskNode(key="bad", kind="unit", fn=_boom, args=(3,)))
        with pytest.raises(WorkerTaskError, match="bad node 3"):
            GraphScheduler(2, max_retries=1, backoff_base_s=0.01).run(g)


class TestModeSwitch:
    def test_graph_enabled_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_GRAPH", raising=False)
        assert graph_enabled(None) is True
        assert graph_enabled("graph") is True
        assert graph_enabled("staged") is False
        monkeypatch.setenv("REPRO_GRAPH", "0")
        assert graph_enabled(None) is False
        # an explicit mode outranks the environment
        assert graph_enabled("graph") is True
