"""Graph execution is bit-identical to the staged loops it replaced.

Each rewired pipeline (``verify_all``, ``run_performance``,
``sweep_sizes``) is run both ways — graph default vs ``mode="staged"``
legacy — and the results compared field-for-field.  Every node callable
is a deterministic function of its arguments (the determinism facts
prove it), so equality here is exact, not approximate.
"""

from repro.analysis.accuracy import accuracy_table
from repro.analysis.observations import (
    OBSERVATIONS,
    _node_accuracy,
    build_observations_graph,
    verify_all,
)
from repro.gpu import Device
from repro.harness.runner import run_performance
from repro.harness.sweep import sweep_sizes
from repro.kernels import (
    GemmWorkload,
    GemvWorkload,
    ReductionWorkload,
    ScanWorkload,
    SpmvWorkload,
    get_workload,
)

FAST_WL = [GemmWorkload(), ScanWorkload(), ReductionWorkload(),
           GemvWorkload(), SpmvWorkload(scale=0.08)]
DEVICES = [Device("A100"), Device("H200"), Device("B200")]


class TestObservationsIdentity:
    def test_graph_matches_staged_on_subset(self):
        staged = verify_all(FAST_WL, DEVICES, mode="staged")
        graphed = verify_all(FAST_WL, DEVICES, n_jobs=2, mode="graph")
        assert len(staged) == len(graphed) == len(OBSERVATIONS)
        for s, g in zip(staged, graphed):
            assert s == g  # ObservationResult eq: verdict AND evidence

    def test_env_kill_switch_selects_staged(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRAPH", "0")
        fallback = verify_all(FAST_WL, DEVICES)
        monkeypatch.delenv("REPRO_GRAPH")
        assert fallback == verify_all(FAST_WL, DEVICES, mode="staged")


class TestObservationsGraphShape:
    def test_subset_graph_is_observation_only(self):
        g = build_observations_graph(FAST_WL, DEVICES)
        keys = sorted(n.key for n in g)
        assert keys == [f"observation:{i:02d}"
                        for i in range(1, len(OBSERVATIONS) + 1)]
        assert all(n.deps == () for n in g)

    def test_full_graph_wires_datasets_accuracy_observations(self):
        g = build_observations_graph()
        kinds = {n.key: n.kind for n in g}
        datasets = [k for k in kinds if k.startswith("dataset:")]
        audits = [k for k in kinds if k.startswith("accuracy:")]
        assert len(datasets) == len(audits) == 9  # fp workloads
        for k in audits:
            name = k.split(":", 1)[1]
            assert g.node(k).deps == (f"dataset:{name}",)
        # observation 7 (Table 6 fidelity) consumes every accuracy audit;
        # the other eight run free
        o7 = g.node("observation:07")
        assert sorted(o7.deps) == sorted(audits)
        for i in (1, 2, 3, 4, 5, 6, 8, 9):
            assert g.node(f"observation:{i:02d}").deps == ()
        g.order()  # and the whole thing is a valid DAG

    def test_accuracy_node_matches_direct_call(self):
        """The graph's accuracy node is the same computation the staged
        audit runs — byte-for-byte the values the seed digests pin."""
        direct = accuracy_table(get_workload("gemv"), Device("H200"))
        assert _node_accuracy("gemv") == direct


class TestHarnessIdentity:
    def test_run_performance_graph_matches_staged(self):
        wl = [GemmWorkload(), GemvWorkload()]
        devs = [Device("A100"), Device("H200")]
        staged = run_performance(wl, devs, mode="staged")
        graphed = run_performance(wl, devs, n_jobs=2, mode="graph")
        assert graphed == staged
        # device-major order is part of the contract
        assert [r.gpu for r in graphed][:1] == ["A100"]

    def test_sweep_graph_matches_staged(self):
        dev = Device("H200")
        staged = sweep_sizes("gemm", dev, mode="staged")
        graphed = sweep_sizes("gemm", dev, n_jobs=2, mode="graph")
        assert graphed == staged
        sizes = [p.size for p in graphed]
        assert sizes == sorted(sizes)
