"""TaskNode/TaskGraph validation and the deterministic topological order.

The graph's contract (docs/PERF.md): ``add`` rejects anything the
scheduler could not ship to a pool worker or file under a stage path,
and ``order`` depends only on the node set and edges — never on
insertion order — because that tie-break is what makes graph execution
bit-identical to the staged loops it replaces.
"""

import random

import pytest

from repro.graph import TaskGraph, TaskNode


def _value(x):
    return x * x


class _CallableNode:
    """Instance callables are allowed: they pickle like executor fns."""

    def __call__(self, x):
        return x + 1


def _node(key, deps=(), kind="unit"):
    return TaskNode(key=key, kind=kind, fn=_value, args=(1,), deps=deps)


def _diamond():
    """a -> {b, c} -> d plus a free-floating e."""
    return [_node("a"), _node("b", deps=("a",)), _node("c", deps=("a",)),
            _node("d", deps=("b", "c")), _node("e")]


class TestAddValidation:
    def test_duplicate_key_rejected(self):
        g = TaskGraph()
        g.add(_node("a"))
        with pytest.raises(ValueError, match="duplicate node key"):
            g.add(_node("a"))

    def test_kind_must_be_stage_safe(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="kind"):
            g.add(TaskNode(key="a", kind="", fn=_value))
        with pytest.raises(ValueError, match="kind"):
            g.add(TaskNode(key="b", kind="perf/grid", fn=_value))

    def test_fn_must_be_callable(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="not callable"):
            g.add(TaskNode(key="a", kind="unit", fn=42))

    def test_lambda_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError, match="module-level"):
            g.add(TaskNode(key="a", kind="unit", fn=lambda x: x))

    def test_nested_function_rejected(self):
        def inner(x):
            return x

        g = TaskGraph()
        with pytest.raises(ValueError, match="module-level"):
            g.add(TaskNode(key="a", kind="unit", fn=inner))

    def test_module_level_and_instance_callables_accepted(self):
        g = TaskGraph()
        g.add(TaskNode(key="a", kind="unit", fn=_value, args=(2,)))
        g.add(TaskNode(key="b", kind="unit", fn=_CallableNode(), args=(2,)))
        assert len(g) == 2
        assert "a" in g and g.node("b").kind == "unit"

    def test_display_prefers_label(self):
        assert TaskNode(key="k", kind="unit", fn=_value).display == "k"
        assert TaskNode(key="k", kind="unit", fn=_value,
                        label="pretty").display == "pretty"


class TestOrder:
    def test_topological_and_smallest_key_first(self):
        g = TaskGraph()
        g.extend(_diamond())
        # a and e are both ready at the start: 'a' wins the tie-break;
        # b/c unlock next, then d outranks e the moment it is ready.
        assert g.order() == ["a", "b", "c", "d", "e"]

    def test_order_independent_of_insertion(self):
        """The property the scheduler's determinism rests on: any
        insertion permutation yields the same execution order."""
        baseline = None
        rng = random.Random(7)
        for _ in range(10):
            nodes = _diamond()
            rng.shuffle(nodes)
            g = TaskGraph()
            g.extend(nodes)
            if baseline is None:
                baseline = g.order()
            assert g.order() == baseline

    def test_dangling_dependency_rejected(self):
        g = TaskGraph()
        g.add(_node("a", deps=("ghost",)))
        with pytest.raises(ValueError, match="unknown node 'ghost'"):
            g.order()

    def test_cycle_rejected(self):
        g = TaskGraph()
        g.add(_node("a", deps=("b",)))
        g.add(_node("b", deps=("a",)))
        g.add(_node("c"))
        with pytest.raises(ValueError, match="cycle"):
            g.order()

    def test_dependents_mapping(self):
        g = TaskGraph()
        g.extend(_diamond())
        deps = g.dependents()
        assert deps["a"] == ["b", "c"]
        assert deps["b"] == ["d"] and deps["c"] == ["d"]
        assert deps["d"] == [] and deps["e"] == []
