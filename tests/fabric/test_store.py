"""The persistent served-result store and shard warm restarts."""

import asyncio

from repro.fabric.store import ServedResultStore
from repro.serve import CharacterizationService, ServeConfig
from repro.serve.protocol import Request, normalize_params


def run(coro):
    return asyncio.run(coro)


def make_request(kind, params=None, **kwargs):
    return Request(kind=kind, params=normalize_params(kind, params),
                   **kwargs)


class CountingResolver:
    def __init__(self):
        self.calls = 0

    def __call__(self, kind, params):
        self.calls += 1
        return {"kind": kind, "params": dict(params), "call": self.calls}


class TestStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ServedResultStore(tmp_path / "store")
        found, _ = store.load("qk1")
        assert not found
        store.store("qk1", {"answer": 42})
        found, payload = store.load("qk1")
        assert found and payload == {"answer": 42}
        assert store.counters() == {"loads": 2, "hits": 1, "stores": 1}

    def test_keys_are_namespaced_by_query_key(self, tmp_path):
        store = ServedResultStore(tmp_path / "store")
        store.store("qk1", "a")
        store.store("qk2", "b")
        assert store.load("qk1") == (True, "a")
        assert store.load("qk2") == (True, "b")

    def test_survives_process_boundary_simulation(self, tmp_path):
        """A second store instance over the same directory sees the
        first one's answers (what a restarted shard does)."""
        ServedResultStore(tmp_path / "store").store("qk", [1, 2, 3])
        fresh = ServedResultStore(tmp_path / "store")
        assert fresh.load("qk") == (True, [1, 2, 3])


class TestWarmRestart:
    def test_restarted_service_answers_from_store_without_recompute(
            self, tmp_path):
        """Acceptance drill: kill a persistent shard, restart it, and the
        first repeated query is served from the store — the resolver runs
        exactly once across both service lifetimes."""
        config = ServeConfig(pool_mode="thread", workers=1,
                             batch_window_s=0.01, shard_id="s0",
                             persist=True,
                             store_dir=str(tmp_path / "store"))
        resolver = CountingResolver()
        req = make_request("quadrant", {"workload": "gemv"})

        async def one_query():
            service = CharacterizationService(config, resolver=resolver)
            try:
                return await service.handle(req)
            finally:
                await service.stop()

        first = run(one_query())
        assert first.ok and first.served_by == "model"
        assert first.shard_id == "s0"

        second = run(one_query())  # fresh service: empty LRU, same store
        assert second.ok and second.served_by == "store"
        assert second.result == first.result
        assert resolver.calls == 1

    def test_fresh_queries_bypass_the_store(self, tmp_path):
        config = ServeConfig(pool_mode="thread", workers=1,
                             batch_window_s=0.01, persist=True,
                             store_dir=str(tmp_path / "store"))
        resolver = CountingResolver()

        async def scenario():
            service = CharacterizationService(config, resolver=resolver)
            try:
                await service.handle(
                    make_request("quadrant", {"workload": "gemv"}))
            finally:
                await service.stop()
            service = CharacterizationService(config, resolver=resolver)
            try:
                return await service.handle(
                    make_request("quadrant", {"workload": "gemv"},
                                 fresh=True))
            finally:
                await service.stop()

        resp = run(scenario())
        assert resp.ok and resp.served_by == "model"
        assert resolver.calls == 2
