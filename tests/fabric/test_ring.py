"""HashRing placement: determinism, minimal disruption, validation."""

import pytest

from repro.fabric.ring import HashRing

SHARDS = ["s0", "s1", "s2"]
KEYS = [f"key-{i}" for i in range(300)]


class TestPlacement:
    def test_owner_deterministic_across_instances_and_input_order(self):
        a = HashRing(SHARDS)
        b = HashRing(list(reversed(SHARDS)))
        for key in KEYS:
            assert a.owner(key) == b.owner(key)

    def test_owners_is_failover_order_covering_every_shard(self):
        ring = HashRing(SHARDS)
        for key in KEYS[:50]:
            order = ring.owners(key)
            assert order[0] == ring.owner(key)
            assert sorted(order) == SHARDS  # each shard exactly once

    def test_dead_shard_moves_only_its_own_keys(self):
        """The consistent-hashing contract: removing one shard re-owns
        that shard's keys and leaves every other placement untouched."""
        ring = HashRing(SHARDS)
        before = {key: ring.owner(key) for key in KEYS}
        dead = ring.owner(KEYS[0])
        alive = tuple(s for s in SHARDS if s != dead)
        for key in KEYS:
            after = ring.owner(key, alive)
            if before[key] == dead:
                assert after in alive
            else:
                assert after == before[key]

    def test_virtual_nodes_spread_load(self):
        ring = HashRing(SHARDS, replicas=64)
        counts = ring.ownership(f"k{i}" for i in range(3000))
        assert set(counts) == set(SHARDS)
        # 64 replicas keep the skew well under 2x of the fair share
        assert min(counts.values()) > 3000 / len(SHARDS) / 2

    def test_alive_filter_ignores_unknown_ids_and_empty_set(self):
        ring = HashRing(SHARDS)
        assert ring.owner("k", ["s1", "ghost"]) == "s1"
        assert ring.owner("k", ["ghost"]) is None
        assert ring.owners("k", []) == []


class TestValidation:
    def test_rejects_empty_duplicate_and_bad_replicas(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a", "a"])
        with pytest.raises(ValueError):
            HashRing(["a"], replicas=0)
