"""The fabric router end to end: placement, failover, auth.

Drives a :class:`HostedFabric` (three in-process shard services behind
an in-process router) through the real TCP wire with the ordinary
:class:`ServeClient` — the same code paths ``repro fabric start`` runs
across processes.
"""

import json
import socket
import time

import pytest

from repro.fabric.cluster import HostedFabric
from repro.serve import ProtocolError, ServeClient, ServeConnectionError


def make_fabric(**kwargs):
    kwargs.setdefault("probe_interval_s", 0.1)
    kwargs.setdefault("shard_workers", 1)
    return HostedFabric(3, **kwargs)


class TestRouting:
    def test_same_key_routes_to_same_shard_and_reuses_its_cache(self):
        with make_fabric() as fabric:
            host, port = fabric.address
            with ServeClient(host, port) as client:
                first = client.query("quadrant", {"workload": "gemv"})
                second = client.query("quadrant", {"workload": "gemv"})
        owner = fabric.owner_of("quadrant", {"workload": "gemv"})
        assert first.ok and second.ok
        assert first.shard_id == second.shard_id == owner
        assert first.served_by == "model"
        assert second.served_by == "cache"  # the shard's LRU, via the wire
        assert second.result == first.result

    def test_distinct_keys_spread_over_shards(self):
        mix = [{"workload": w} for w in
               ("gemv", "spmv", "gemm", "scan", "fft", "stencil",
                "reduction")]
        with make_fabric() as fabric:
            host, port = fabric.address
            with ServeClient(host, port) as client:
                answering = {client.query("quadrant", p).shard_id
                             for p in mix}
            expected = {fabric.owner_of("quadrant", p) for p in mix}
        assert answering == expected
        assert len(answering) > 1  # the mix actually shards

    def test_ping_and_metrics_are_answered_by_the_router(self):
        with make_fabric() as fabric:
            host, port = fabric.address
            with ServeClient(host, port) as client:
                pong = client.query("ping")
                metrics = client.query("metrics")
        assert pong.ok and pong.result == "pong"
        assert pong.shard_id == "router"
        assert metrics.ok
        shards = metrics.result["shards"]
        assert sorted(shards) == ["s0", "s1", "s2"]
        assert all(info["healthy"] for info in shards.values())
        assert metrics.result["ring"]["shards"] == 3


class TestFailover:
    def test_killed_owner_fails_over_bit_identically(self):
        params = {"workload": "spmv"}
        with make_fabric() as fabric:
            host, port = fabric.address
            with ServeClient(host, port) as client:
                before = client.query("quadrant", params)
                victim = fabric.owner_of("quadrant", params)
                assert before.shard_id == victim
                fabric.kill_shard(victim)
                # the same request line replays against the next owner;
                # fresh=True forces a recompute there, proving the answer
                # is bit-identical by determinism, not by cache copy
                after = client.query("quadrant", params, fresh=True)
        assert after.ok
        assert after.shard_id != victim
        assert json.dumps(after.result, sort_keys=True) \
            == json.dumps(before.result, sort_keys=True)

    def test_probe_marks_dead_shard_unhealthy(self):
        with make_fabric() as fabric:
            host, port = fabric.address
            with ServeClient(host, port) as client:
                client.query("ping")
                fabric.kill_shard("s2")
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    snapshot = client.query("metrics").result
                    if not snapshot["shards"]["s2"]["healthy"]:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("probe never noticed the dead shard")
        counters = snapshot["router"]["counters"]
        assert counters.get("shard_down_total", 0) >= 1

    def test_all_shards_dead_yields_shard_unavailable(self):
        with make_fabric() as fabric:
            host, port = fabric.address
            for sid in ("s0", "s1", "s2"):
                fabric.kill_shard(sid)
            with ServeClient(host, port) as client:
                resp = client.query("quadrant", {"workload": "gemv"})
        assert not resp.ok
        assert resp.error["code"] == "shard_unavailable"
        assert resp.shard_id == "router"


class TestAuth:
    def test_query_before_handshake_is_refused_unparsed(self):
        """An unauthenticated line never reaches the request parser —
        even a syntactically bogus query gets ``auth_required``."""
        with make_fabric(token="secret") as fabric:
            host, port = fabric.address
            with socket.create_connection((host, port), timeout=10) as s:
                s.sendall(b'{"kind": "no-such-kind", "params": 7}\n')
                reply = s.makefile("rb").readline()
        payload = json.loads(reply)
        assert payload["ok"] is False
        assert payload["error"]["code"] == "auth_required"

    def test_wrong_token_raises_bad_token_without_retry(self):
        with make_fabric(token="secret") as fabric:
            host, port = fabric.address
            client = ServeClient(host, port, token="nope", retries=5)
            with pytest.raises(ProtocolError) as excinfo:
                client.connect()
        assert excinfo.value.code == "bad_token"
        # an explicit refusal is not a connection drop: no retries burned
        assert not isinstance(excinfo.value, ServeConnectionError)
        assert client.retry_count == 0

    def test_right_token_works_end_to_end(self):
        with make_fabric(token="secret") as fabric:
            host, port = fabric.address
            with ServeClient(host, port, token="secret") as client:
                assert client.shard_id == "router"  # learned at handshake
                resp = client.query("quadrant", {"workload": "gemv"})
        assert resp.ok
        assert resp.shard_id in ("s0", "s1", "s2")
