"""Fixtures for the Workload contract and MMA call-graph rules."""

import ast
import textwrap

import pytest

from repro.check.contracts import contract_findings, contracts_tree


def _findings(src: str, relpath: str = "kernels/example.py"):
    tree = ast.parse(textwrap.dedent(src), filename=relpath)
    return contract_findings(tree, relpath)


_HEAD = """
from ..gpu.mma import mma_b1_batched, mma_fp64_batched, mma_m8n8k4_batched
from .base import Variant, Workload
"""

_CONTRACT = """
    def cases(self):
        return []
    def prepare(self, case, seed=1325):
        return {}
    def reference(self, data):
        return None
    def analytic_stats(self, variant, case):
        return None
"""

_ATTRS = """
    name = "example"
    quadrant = "I"
    dwarf = "Dense"
    baseline_name = "ref"
"""


# --------------------------------------------------------------------- R004

def test_missing_methods_and_attrs_flagged():
    findings = _findings(_HEAD + """
class HalfWorkload(Workload):
    name = "half"
    def execute(self, variant, data, device):
        return mma_fp64_batched(data["a"], data["b"])
""")
    r004 = [f for f in findings if f.rule == "R004"]
    assert len(r004) == 1
    msg = r004[0].message
    for missing in ("cases", "prepare", "reference", "analytic_stats",
                    "quadrant", "dwarf", "baseline_name"):
        assert missing in msg


def test_complete_contract_passes():
    findings = _findings(_HEAD + """
class ExampleWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        return mma_fp64_batched(data["a"], data["b"])
""")
    assert not findings


def test_non_workload_class_ignored():
    assert not _findings(_HEAD + """
class Helper:
    pass
""")


# --------------------------------------------------------------------- R005

def test_variant_branches_reaching_same_primitive_pass():
    findings = _findings(_HEAD + """
class ExampleWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        if variant in (Variant.TC, Variant.CC):
            return mma_m8n8k4_batched(data["a"], data["b"])
        return data["a"] @ data["b"]
""")
    assert not [f for f in findings if f.rule == "R005"]


def test_plain_loop_path_flagged_for_both_variants():
    findings = _findings(_HEAD + """
class ExampleWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        if variant in (Variant.TC, Variant.CC):
            y = data["a"] @ data["b"]
        else:
            y = data["a"] + data["b"]
        return y
""")
    r005 = [f for f in findings if f.rule == "R005"]
    assert len(r005) == 2
    assert any("TC execute path" in f.message for f in r005)
    assert any("CC execute path" in f.message for f in r005)


def test_one_variant_off_primitive_flagged():
    findings = _findings(_HEAD + """
class ExampleWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        if variant is Variant.TC:
            return mma_m8n8k4_batched(data["a"], data["b"])
        return data["a"] @ data["b"]
""")
    r005 = [f for f in findings if f.rule == "R005"]
    assert len(r005) == 1
    assert "CC execute path" in r005[0].message


def test_reach_through_helper_method_with_variant_dispatch():
    findings = _findings(_HEAD + """
class ExampleWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        return self._sweep(variant, data)

    def _sweep(self, variant, data):
        if variant is Variant.BASELINE:
            return data["a"] + data["b"]
        return mma_fp64_batched(data["a"], data["b"])
""")
    assert not [f for f in findings if f.rule == "R005"]


def test_reach_through_module_function():
    findings = _findings(_HEAD + """
def _tile_mma(a, b):
    return mma_fp64_batched(a, b)

class ExampleWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        return _tile_mma(data["a"], data["b"])
""")
    assert not [f for f in findings if f.rule == "R005"]


def test_disjoint_tc_cc_primitives_flagged():
    findings = _findings(_HEAD + """
class SplitWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        if variant is Variant.TC:
            return mma_fp64_batched(data["a"], data["b"])
        if variant is Variant.CC:
            return mma_b1_batched(data["a"], data["b"])
        return None
""")
    r005 = [f for f in findings if f.rule == "R005"]
    assert len(r005) == 1
    assert "disjoint" in r005[0].message


def test_locally_defined_primitive_name_is_not_trusted():
    findings = _findings("""
from .base import Variant, Workload

def mma_fp64_batched(a, b):
    return a @ b

class ShadowWorkload(Workload):
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        return mma_fp64_batched(data["a"], data["b"])
""")
    assert len([f for f in findings if f.rule == "R005"]) == 2


# --------------------------------------------------------------------- R006

_QUAD_I_HEAD = _HEAD + """
class QuadIWorkload(Workload):
    name = "quadi"
    quadrant = "I"
    dwarf = "Dense"
    baseline_name = "ref"
    has_cce = False
    def cases(self):
        return []
    def prepare(self, case, seed=1325):
        return {}
    def reference(self, data):
        return None
"""


def test_quadrant_i_without_resolve_variant_flagged():
    findings = _findings(_QUAD_I_HEAD + """
    def execute(self, variant, data, device):
        return mma_fp64_batched(data["a"], data["b"])
    def analytic_stats(self, variant, case):
        return None
""")
    r006 = [f for f in findings if f.rule == "R006"]
    assert {f.symbol for f in r006} == {"QuadIWorkload.execute",
                                        "QuadIWorkload.analytic_stats"}


def test_quadrant_i_with_resolve_variant_passes():
    findings = _findings(_QUAD_I_HEAD + """
    def execute(self, variant, data, device):
        variant = self.resolve_variant(variant)
        return mma_fp64_batched(data["a"], data["b"])
    def analytic_stats(self, variant, case):
        variant = self.resolve_variant(variant)
        return None
""")
    assert not [f for f in findings if f.rule == "R006"]


def test_has_cce_true_workloads_are_exempt():
    findings = _findings(_HEAD + """
class ExampleWorkload(Workload):
    has_cce = True
""" + _ATTRS + _CONTRACT + """
    def execute(self, variant, data, device):
        return mma_fp64_batched(data["a"], data["b"])
""")
    assert not [f for f in findings if f.rule == "R006"]


# ---------------------------------------------------------------- dogfood

def test_repo_contracts_have_only_the_baselined_stencil_finding():
    from repro.check.runner import package_root
    findings = contracts_tree(package_root())
    assert {f.fingerprint for f in findings} == {
        ("R005", "kernels/stencil.py", "StencilWorkload")}


def test_contracts_tree_on_tree_without_kernels(tmp_path):
    assert contracts_tree(tmp_path) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
