"""The whole-package call graph (check/dataflow.py)."""

import pytest

from repro.check.dataflow import PackageGraph
from repro.check.runner import package_root


def _graph(sources):
    return PackageGraph.from_sources(sources)


def _call_in(graph, relpath, qualname, lineno=None):
    """Resolve the first (or line-selected) call inside one function."""
    import ast

    from repro.check.dataflow import iter_scope
    minfo = graph.modules[relpath]
    finfo = minfo.functions[qualname]
    for node in iter_scope(finfo.node):
        if isinstance(node, ast.Call) \
                and (lineno is None or node.lineno == lineno):
            return graph.resolve_call(minfo, node, finfo)
    raise AssertionError("no call found")


class TestIndexing:
    def test_functions_methods_nested_and_lambdas(self):
        g = _graph({"m.py": (
            "def top():\n"
            "    def inner():\n"
            "        pass\n"
            "    f = lambda x: x\n"
            "    return inner, f\n"
            "\n"
            "class C:\n"
            "    def meth(self):\n"
            "        pass\n")})
        quals = set(g.modules["m.py"].functions)
        assert {"top", "top.inner", "C.meth"} <= quals
        assert any(q.startswith("top.<lambda:") for q in quals)

    def test_dispatch_tables_of_local_functions(self):
        g = _graph({"m.py": (
            "def a():\n    pass\n"
            "def b():\n    pass\n"
            "TABLE = (a, b)\n"
            "BY_NAME = {'a': a}\n"
            "NOT_A_TABLE = (1, 2)\n")})
        tables = g.modules["m.py"].dispatch_tables
        assert tables["TABLE"] == ["a", "b"]
        assert tables["BY_NAME"] == ["a"]
        assert "NOT_A_TABLE" not in tables

    def test_mutated_globals_require_global_statement(self):
        g = _graph({"m.py": (
            "COUNT = 0\n"
            "MEMO = {}\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT += 1\n"
            "def remember(k, v):\n"
            "    MEMO[k] = v\n")})
        m = g.modules["m.py"]
        assert m.mutated_globals == {"COUNT"}
        assert {"COUNT", "MEMO"} <= m.module_globals

    def test_syntax_error_module_is_skipped(self):
        g = _graph({"bad.py": "def broken(:\n", "ok.py": "def f():\n    pass\n"})
        assert "bad.py" not in g.modules
        assert "ok.py" in g.modules


class TestResolution:
    def test_local_and_class_constructor_calls(self):
        g = _graph({"m.py": (
            "class C:\n"
            "    def __init__(self):\n"
            "        pass\n"
            "def f():\n"
            "    pass\n"
            "def caller():\n"
            "    C()\n"
            "    f()\n")})
        hits = _call_in(g, "m.py", "caller", lineno=7)
        assert [h.qualname for h in hits] == ["C.__init__"]
        hits = _call_in(g, "m.py", "caller", lineno=8)
        assert [h.qualname for h in hits] == ["f"]

    def test_cross_module_absolute_import(self):
        g = _graph({
            "a.py": "from repro.b import helper\n"
                    "def caller():\n"
                    "    helper()\n",
            "b.py": "def helper():\n    pass\n"})
        hits = _call_in(g, "a.py", "caller")
        assert [h.fid for h in hits] == ["b.py::helper"]

    def test_relative_import_resolves_against_module_dir(self):
        g = _graph({
            "pkg/a.py": "from .b import helper\n"
                        "def caller():\n"
                        "    helper()\n",
            "pkg/b.py": "def helper():\n    pass\n"})
        hits = _call_in(g, "pkg/a.py", "caller")
        assert [h.fid for h in hits] == ["pkg/b.py::helper"]

    def test_reexport_through_package_init(self):
        g = _graph({
            "pkg/__init__.py": "from .impl import helper\n",
            "pkg/impl.py": "def helper():\n    pass\n",
            "a.py": "from repro.pkg import helper\n"
                    "def caller():\n"
                    "    helper()\n"})
        hits = _call_in(g, "a.py", "caller")
        assert [h.fid for h in hits] == ["pkg/impl.py::helper"]

    def test_self_method_with_base_class_fallback(self):
        g = _graph({"m.py": (
            "class Base:\n"
            "    def shared(self):\n"
            "        pass\n"
            "class Child(Base):\n"
            "    def go(self):\n"
            "        self.shared()\n")})
        hits = _call_in(g, "m.py", "Child.go")
        assert [h.qualname for h in hits] == ["Base.shared"]

    def test_table_subscript_dispatch_returns_all_members(self):
        g = _graph({"m.py": (
            "def a():\n    pass\n"
            "def b():\n    pass\n"
            "TABLE = (a, b)\n"
            "def caller(i):\n"
            "    TABLE[i]()\n")})
        hits = _call_in(g, "m.py", "caller")
        assert sorted(h.qualname for h in hits) == ["a", "b"]

    def test_external_calls_resolve_to_nothing(self):
        g = _graph({"m.py": (
            "import numpy as np\n"
            "def caller():\n"
            "    np.zeros(3)\n")})
        assert _call_in(g, "m.py", "caller") == []

    def test_nested_def_resolves_through_local_scope(self):
        g = _graph({"m.py": (
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
            "    inner()\n")})
        hits = _call_in(g, "m.py", "outer")
        assert [h.qualname for h in hits] == ["outer.inner"]


class TestRealPackage:
    def test_builds_over_src_repro(self):
        g = PackageGraph.build(package_root())
        assert len(g.modules) > 80
        assert len(g.sorted_functions()) > 700

    def test_sorted_functions_is_canonical(self):
        g = PackageGraph.build(package_root())
        fids = [f.fid for f in g.sorted_functions()]
        assert fids == sorted(fids)
        assert len(fids) == len(set(fids))

    def test_known_cross_module_edge(self):
        # harness/runner.py dispatches _workload_records through the pool;
        # the graph must resolve the executor-mapped callee by name
        g = PackageGraph.build(package_root())
        m = g.modules["harness/runner.py"]
        assert "_workload_records" in m.functions


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
