"""Per-rule positive/negative fixtures for the static lint layer."""

import textwrap

import pytest

from repro.check.lint import lint_source, lint_tree


def _lint(src: str, relpath: str = "kernels/example.py"):
    return lint_source(textwrap.dedent(src), relpath)


def _rules(findings):
    return sorted({f.rule for f in findings})


# ---------------------------------------------------------------- R001/R002

class TestNoUnseededRng:
    def test_flags_global_numpy_rng(self):
        findings = _lint("""
            import numpy as np
            def noise(n):
                return np.random.rand(n)
        """)
        assert _rules(findings) == ["R001"]
        assert findings[0].symbol == "numpy.random.rand"
        assert findings[0].line == 4

    def test_flags_unseeded_default_rng(self):
        findings = _lint("""
            from numpy.random import default_rng
            def noise(n):
                return default_rng().random(n)
        """)
        assert _rules(findings) == ["R001"]

    def test_allows_seeded_default_rng(self):
        assert not _lint("""
            import numpy as np
            def noise(n, seed):
                return np.random.default_rng(seed).random(n)
        """)

    def test_flags_stdlib_random_module(self):
        findings = _lint("""
            import random
            def pick(xs):
                return random.choice(xs)
        """)
        assert _rules(findings) == ["R001"]

    def test_out_of_scope_package_is_exempt(self):
        findings = _lint("""
            import numpy as np
            def noise(n):
                return np.random.rand(n)
        """, relpath="perf/instrument.py")
        assert not findings

    def test_local_name_collision_does_not_confuse_resolver(self):
        # the repo's own ``default_rng``-free LCG helpers must not trip R001
        assert not _lint("""
            from ..datasets.synthetic import Lcg
            def noise(n):
                return Lcg(1325).uniform(n)
        """)


class TestNoWallClock:
    def test_flags_perf_counter(self):
        findings = _lint("""
            import time
            def stamp():
                return time.perf_counter()
        """)
        assert _rules(findings) == ["R002"]

    def test_flags_datetime_now(self):
        findings = _lint("""
            from datetime import datetime
            def stamp():
                return datetime.now()
        """)
        assert _rules(findings) == ["R002"]

    def test_measurement_package_may_read_timers(self):
        assert not _lint("""
            import time
            def stamp():
                return time.perf_counter()
        """, relpath="perf/instrument.py")


# --------------------------------------------------------------------- R003

class TestFp64Purity:
    def test_flags_float32_attr(self):
        findings = _lint("""
            import numpy as np
            def downcast(a):
                return a.astype(np.float32)
        """)
        assert _rules(findings) == ["R003"]

    def test_flags_dtype_string(self):
        findings = _lint("""
            import numpy as np
            def downcast(a):
                return a.astype("float16")
        """)
        assert _rules(findings) == ["R003"]

    def test_mma_mixed_is_allowlisted(self):
        findings = _lint("""
            import numpy as np
            def quantize(a):
                return a.astype(np.float16)
        """, relpath="gpu/mma_mixed.py")
        assert not findings

    def test_float64_is_fine(self):
        assert not _lint("""
            import numpy as np
            def keep(a):
                return np.asarray(a, dtype=np.float64)
        """)

    def test_docstring_mentioning_float32_is_fine(self):
        assert not _lint('''
            def f():
                """Not float32: stays FP64 (unlike float16 hardware)."""
                return 1.0
        ''')


# --------------------------------------------------------------------- R007

class TestKernelStatsApi:
    def test_flags_direct_counter_assignment(self):
        findings = _lint("""
            def stats(st, n):
                st.l1_bytes = 8.0 * n
        """)
        assert _rules(findings) == ["R007"]

    def test_flags_augmented_counter_assignment(self):
        findings = _lint("""
            def stats(st, n):
                st.cc_int_ops += 3.0 * n
        """)
        assert _rules(findings) == ["R007"]

    def test_flags_dram_list_mutation(self):
        findings = _lint("""
            def stats(st, stream):
                st.dram.append(stream)
        """)
        assert _rules(findings) == ["R007"]

    def test_counter_api_is_fine(self):
        assert not _lint("""
            def stats(st, n):
                st.add_l1(8.0 * n)
                st.add_int_ops(3.0 * n)
                st.read_dram(8.0 * n)
        """)

    def test_knob_assignment_is_fine(self):
        assert not _lint("""
            def stats(st):
                st.mlp = 0.62
                st.serial_stages = 4
                st.essential_flops = 100.0
        """)

    def test_gpu_package_owns_the_counters(self):
        assert not _lint("""
            def add_l1(self, total_bytes):
                self.l1_bytes += total_bytes
        """, relpath="gpu/counters.py")


# --------------------------------------------------------------------- R008

class TestFaultSiteRegistry:
    def test_registered_literal_is_fine(self):
        assert not _lint("""
            from repro import faults
            def maybe_drop():
                return faults.site("serve.conn_drop")
        """, relpath="serve/server.py")

    def test_undeclared_site_is_flagged(self):
        findings = _lint("""
            from repro import faults
            def maybe():
                return faults.site("serve.meteor_strike")
        """, relpath="serve/server.py")
        assert _rules(findings) == ["R008"]
        assert findings[0].symbol == "serve.meteor_strike"
        assert "not declared" in findings[0].message

    def test_non_literal_name_is_flagged(self):
        findings = _lint("""
            from repro import faults
            def maybe(name):
                return faults.site(name)
        """, relpath="serve/server.py")
        assert _rules(findings) == ["R008"]
        assert "string literal" in findings[0].message

    def test_relative_import_forms_resolve(self):
        # both spellings used in the package must be seen by the rule
        findings = _lint("""
            from .. import faults
            def a():
                return faults.site("cache.bogus")
        """, relpath="perf/cache.py")
        assert _rules(findings) == ["R008"]
        findings = _lint("""
            from ..faults import plan
            def b():
                return plan.site("cache.bogus")
        """, relpath="perf/cache.py")
        assert _rules(findings) == ["R008"]

    def test_keyed_call_with_registered_site_is_fine(self):
        assert not _lint("""
            from .. import faults
            def load(path):
                return faults.site("cache.read_corrupt", key=path)
        """, relpath="perf/cache.py")

    def test_unrelated_local_site_function_is_ignored(self):
        assert not _lint("""
            def site(name):
                return name
            def use():
                return site("whatever")
        """, relpath="analysis/tables.py")


# --------------------------------------------------------------------- R000

def test_syntax_error_reports_r000():
    findings = _lint("def broken(:\n    pass\n")
    assert _rules(findings) == ["R000"]


# ---------------------------------------------------------------- tree walk

def test_lint_tree_scopes_by_relative_path(tmp_path):
    (tmp_path / "kernels").mkdir()
    (tmp_path / "perf").mkdir()
    bad = "import numpy as np\n\ndef f(n):\n    return np.random.rand(n)\n"
    (tmp_path / "kernels" / "k.py").write_text(bad)
    (tmp_path / "perf" / "p.py").write_text(bad)
    findings = lint_tree(tmp_path)
    assert [f.path for f in findings] == ["kernels/k.py"]


def test_repo_lint_is_clean():
    """Dogfood: the shipped package has no active lint findings."""
    from repro.check.runner import package_root
    findings = lint_tree(package_root())
    assert findings == []


# -------------------------------------------- resolver extraction compat

def test_resolver_aliases_point_at_dataflow():
    """The R005-era private names survive the extraction to dataflow.py
    (contracts.py and external fixtures import them by the old names)."""
    import ast

    from repro.check.dataflow import ImportResolver, resolve_dotted
    from repro.check.lint import _ImportResolver, _resolve_dotted
    assert _ImportResolver is ImportResolver
    assert _resolve_dotted is resolve_dotted
    tree = ast.parse("import numpy as np\nx = np.random.rand(3)\n")
    resolver = _ImportResolver()
    resolver.visit(tree)
    call = tree.body[1].value
    assert _resolve_dotted(call.func, resolver.names) == "numpy.random.rand"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
