"""Dynamic-layer tests: the warp-hazard sanitizer and its instrumentation."""

import numpy as np
import pytest

from repro.check.hazards import WarpSanitizer
from repro.datasets.synthetic import Lcg
from repro.gpu import fragments, warp_events
from repro.gpu.mma import mma_m8n8k4_batched, warp_gemm_m8n8k4


def _rules(san):
    return sorted({f.rule for f in san.findings()})


# ------------------------------------------------------------- clean paths

def test_warp_gemm_is_hazard_free():
    rng = Lcg(7)
    with WarpSanitizer() as san:
        out = warp_gemm_m8n8k4(rng.uniform(32, shape=(8, 4)),
                               rng.uniform(32, shape=(4, 8)))
    assert out.shape == (8, 8)
    assert san.findings() == []
    assert san.accesses > 0
    # warp_gemm's own mma.sync plus the sampled inner-MMA replay
    assert san.syncs == 2


def test_fragment_roundtrips_are_hazard_free():
    rng = Lcg(7)
    with WarpSanitizer() as san:
        fragments.distribute_a(rng.uniform(32, shape=(8, 4)))
        fragments.distribute_b(rng.uniform(32, shape=(4, 8)))
        c = rng.uniform(64, shape=(8, 8))
        regs = fragments.distribute_c(c)
        np.testing.assert_array_equal(fragments.collect_c(regs), c)
    assert san.findings() == []


def test_batched_mma_sampling_fires_only_for_m8n8k4_shape():
    rng = Lcg(7)
    with WarpSanitizer() as san:
        mma_m8n8k4_batched(rng.uniform(6 * 32, shape=(6, 8, 4)),
                           rng.uniform(6 * 32, shape=(6, 4, 8)))
    sampled = san.accesses
    assert sampled > 0
    assert san.findings() == []


def test_instrumentation_is_silent_without_a_tracer():
    # no tracer installed: the fast path must not record anything
    assert warp_events.TRACER is None
    out = warp_gemm_m8n8k4(np.ones((8, 4)), np.ones((4, 8)))
    np.testing.assert_array_equal(out, np.full((8, 8), 4.0))


# ------------------------------------------------------- seeded violations

class _RacyKernel:
    """Synthetic warp program with deliberate hazards, driven through the
    same emit API the instrumented gpu code uses."""

    def run_ww(self) -> None:
        # all 32 lanes write cell 0: a classic unsynchronized reduction
        with warp_events.scope("racy_ww"):
            lanes = np.arange(32)
            warp_events.emit_shared("write", "partials", lanes,
                                   np.zeros(32, dtype=int))

    def run_rw(self) -> None:
        # lane 0 writes what every other lane then reads, no sync between
        with warp_events.scope("racy_rw"):
            warp_events.emit_shared("write", "flag", np.array([0]),
                                    np.array([0]))
            warp_events.emit_shared("read", "flag", np.arange(1, 32),
                                    np.zeros(31, dtype=int))

    def run_synced(self) -> None:
        # same traffic as run_rw but with a barrier: must be clean
        with warp_events.scope("synced"):
            warp_events.emit_shared("write", "flag", np.array([0]),
                                    np.array([0]))
            warp_events.emit_sync("barrier")
            warp_events.emit_shared("read", "flag", np.arange(1, 32),
                                    np.zeros(31, dtype=int))


def test_ww_hazard_flagged():
    with WarpSanitizer() as san:
        _RacyKernel().run_ww()
    assert _rules(san) == ["H001"]
    (f,) = san.findings()
    assert f.severity == "error"
    assert f.path == "warp://racy_ww/partials"


def test_rw_hazard_flagged():
    with WarpSanitizer() as san:
        _RacyKernel().run_rw()
    assert "H002" in _rules(san)


def test_sync_clears_the_epoch():
    with WarpSanitizer() as san:
        _RacyKernel().run_synced()
    assert san.findings() == []
    assert san.syncs == 1


def test_racy_loop_reports_once_per_site():
    with WarpSanitizer() as san:
        k = _RacyKernel()
        for _ in range(10):
            k.run_ww()
    assert len([f for f in san.findings() if f.rule == "H001"]) == 1


def test_bank_conflict_flagged_for_stride_32():
    # 16 lanes of one half-warp all hit bank 0 with distinct offsets
    with WarpSanitizer() as san:
        with warp_events.scope("strided"):
            lanes = np.arange(16)
            warp_events.emit_shared("read", "tile", lanes, lanes * 32)
    conflicts = [f for f in san.findings() if f.rule == "H003"]
    assert len(conflicts) == 1
    assert conflicts[0].severity == "warning"
    assert "16-way" in conflicts[0].message


def test_unit_stride_has_no_bank_conflict():
    with WarpSanitizer() as san:
        with warp_events.scope("coalesced"):
            lanes = np.arange(32)
            warp_events.emit_shared("read", "tile", lanes, lanes)
    assert san.findings() == []


def test_cross_half_warp_same_bank_is_not_a_conflict():
    # lane 0 and lane 16 share a bank but issue in different transactions
    with WarpSanitizer() as san:
        with warp_events.scope("halves"):
            warp_events.emit_shared("read", "tile", np.array([0, 16]),
                                    np.array([0, 32]))
    assert [f for f in san.findings() if f.rule == "H003"] == []


def test_bank_conflict_check_can_be_disabled():
    with WarpSanitizer(check_bank_conflicts=False) as san:
        with warp_events.scope("strided"):
            lanes = np.arange(16)
            warp_events.emit_shared("read", "tile", lanes, lanes * 32)
    assert san.findings() == []


def test_lane_ownership_violation_flagged():
    # lane 0 claims A[7][3], which the PTX map assigns to lane 31
    with WarpSanitizer() as san:
        with warp_events.scope("stolen"):
            warp_events.emit_fragment("A", "read", np.array([0]),
                                      np.array([7]), np.array([3]))
    r = _rules(san)
    assert "H004" in r
    (f,) = [f for f in san.findings() if f.rule == "H004"]
    assert "lane 0" in f.message and "Figure 1b" in f.message


def test_correct_ownership_passes():
    with WarpSanitizer() as san:
        with warp_events.scope("owned"):
            warp_events.emit_fragment(
                "A", "read", np.arange(32),
                fragments.A_FRAGMENT_ROWS, fragments.A_FRAGMENT_COLS)
    assert san.findings() == []


# ------------------------------------------------------------ hook surface

def test_double_install_rejected():
    with WarpSanitizer():
        with pytest.raises(RuntimeError):
            warp_events.install(WarpSanitizer())


def test_uninstall_restores_null_tracer():
    with WarpSanitizer():
        pass
    assert warp_events.TRACER is None


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
