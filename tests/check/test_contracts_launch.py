"""R005 must accept workloads whose TC/CC paths reach the launch-plan
engine (gpu/launch.py) instead of calling gpu/mma.py primitives directly —
and must keep rejecting paths that reach neither."""

import ast
import textwrap

from repro.check.contracts import (
    LAUNCH_PRIMITIVES,
    MMA_PRIMITIVES,
    contract_findings,
)


def _findings(src: str, relpath: str = "kernels/example.py"):
    tree = ast.parse(textwrap.dedent(src), filename=relpath)
    return contract_findings(tree, relpath)


_HEAD = """
from ..gpu.launch import LaunchPlan, execute_plan, run_chain, run_ragged
from ..gpu.mma import mma_fp64_batched
from .base import Variant, Workload
"""

_BOILERPLATE = """
    name = "example"
    quadrant = "I"
    dwarf = "Dense"
    baseline_name = "ref"
    def cases(self):
        return []
    def prepare(self, case, seed=1325):
        return {}
    def reference(self, data):
        return None
    def analytic_stats(self, variant, case):
        return None
"""


def test_launch_primitives_disjoint_from_mma():
    assert not (LAUNCH_PRIMITIVES & MMA_PRIMITIVES)
    assert "execute_plan" in LAUNCH_PRIMITIVES


def test_execute_plan_satisfies_r005():
    findings = _findings(_HEAD + """
class PlanWorkload(Workload):
""" + _BOILERPLATE + """
    def execute(self, variant, data, device):
        plan = LaunchPlan()
        h = plan.chain(data["a"], data["b"])
        return execute_plan(plan)[h]
""")
    assert not [f for f in findings if f.rule == "R005"]


def test_run_chain_through_helper_satisfies_r005():
    findings = _findings(_HEAD + """
class HelperWorkload(Workload):
""" + _BOILERPLATE + """
    def execute(self, variant, data, device):
        if variant in (Variant.TC, Variant.CC):
            return self._mma_path(data)
        return data["a"] @ data["b"]
    def _mma_path(self, data):
        return run_chain(data["a"], data["b"])
""")
    assert not [f for f in findings if f.rule == "R005"]


def test_run_ragged_satisfies_r005():
    findings = _findings(_HEAD + """
class RaggedWorkload(Workload):
""" + _BOILERPLATE + """
    def execute(self, variant, data, device):
        return run_ragged(data["a"], data["b"], data["len"], data["off"])
""")
    assert not [f for f in findings if f.rule == "R005"]


def test_no_primitive_still_flagged():
    findings = _findings(_HEAD + """
class BareWorkload(Workload):
""" + _BOILERPLATE + """
    def execute(self, variant, data, device):
        return data["a"] @ data["b"]
""")
    r005 = [f for f in findings if f.rule == "R005"]
    assert len(r005) == 2   # TC and CC both unreachable


def test_launch_name_from_wrong_module_rejected():
    # a local function named execute_plan must not satisfy R005
    findings = _findings("""
from .base import Variant, Workload
def execute_plan(plan):
    return []
class FakeWorkload(Workload):
""" + _BOILERPLATE + """
    def execute(self, variant, data, device):
        return execute_plan(None)
""")
    r005 = [f for f in findings if f.rule == "R005"]
    assert len(r005) == 2


def test_mixed_mma_and_launch_share_requirement():
    # TC via launch, CC via a direct primitive: both reach *a* primitive
    # but share none -> the disjointness error fires
    findings = _findings(_HEAD + """
class SplitWorkload(Workload):
""" + _BOILERPLATE + """
    def execute(self, variant, data, device):
        if variant is Variant.TC:
            return run_chain(data["a"], data["b"])
        elif variant is Variant.CC:
            return mma_fp64_batched(data["a"], data["b"])
        return None
""")
    r005 = [f for f in findings if f.rule == "R005"]
    assert len(r005) == 1
    assert "disjoint" in r005[0].message
