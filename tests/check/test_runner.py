"""Baseline mechanics, the check runner, and the ``repro check`` CLI."""

import json

import pytest

from repro.check import (
    Baseline,
    Finding,
    Suppression,
    apply_baseline,
    default_baseline_path,
    run_check,
)
from repro.check.dynamic import run_dynamic
from repro.cli import main
from repro.kernels import workload_names


def _finding(rule="R005", path="kernels/x.py", symbol="XWorkload",
             line=10):
    return Finding(rule=rule, severity="error", path=path, symbol=symbol,
                   message="msg", line=line)


# ----------------------------------------------------------------- baseline

class TestBaseline:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "baseline.json"
        Baseline([Suppression("R005", "kernels/x.py", "XWorkload",
                              "known deviation")]).save(p)
        loaded = Baseline.load(p)
        assert loaded.suppressions == [
            Suppression("R005", "kernels/x.py", "XWorkload",
                        "known deviation")]

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").suppressions == []

    def test_missing_justification_rejected(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text(json.dumps({"suppressions": [
            {"rule": "R005", "path": "kernels/x.py", "symbol": "X"}]}))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(p)

    def test_fingerprint_ignores_line_numbers(self):
        base = Baseline([Suppression("R005", "kernels/x.py", "XWorkload",
                                     "ok")])
        active, suppressed, unused = apply_baseline(
            [_finding(line=10), _finding(line=99)], base)
        assert active == [] and len(suppressed) == 2 and unused == []

    def test_unmatched_finding_stays_active(self):
        base = Baseline([Suppression("R005", "kernels/x.py", "XWorkload",
                                     "ok")])
        other = _finding(path="kernels/y.py", symbol="YWorkload")
        active, suppressed, unused = apply_baseline([other], base)
        assert active == [other] and suppressed == []
        assert len(unused) == 1  # the x.py entry is stale for this run

    def test_from_findings_dedupes_fingerprints(self):
        base = Baseline.from_findings([_finding(line=1), _finding(line=2)],
                                      justification="j")
        assert len(base.suppressions) == 1

    def test_checked_in_baseline_is_valid_and_justified(self):
        base = Baseline.load(default_baseline_path())
        assert base.suppressions, "expected the stencil R005 entry"
        for s in base.suppressions:
            assert len(s.justification) > 20


# ------------------------------------------------------------------- runner

class TestRunCheck:
    def test_repo_is_clean_under_the_checked_in_baseline(self):
        report = run_check()
        assert report.ok, report.to_text()
        assert report.active == []
        assert report.unused_suppressions == []
        assert report.sanitized_accesses > 0

    def test_seeded_violation_fails_the_check(self, tmp_path):
        (tmp_path / "kernels").mkdir()
        (tmp_path / "kernels" / "bad.py").write_text(
            "import numpy as np\n\n"
            "def noise(n):\n"
            "    return np.random.rand(n)\n")
        report = run_check(root=tmp_path, baseline=Baseline(),
                           dynamic=False)
        assert not report.ok
        assert [f.rule for f in report.active] == ["R001"]

    def test_json_and_text_rendering(self):
        report = run_check(dynamic=False)
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["active"] == []
        assert any(s["rule"] == "R005"
                   for s in payload["suppressed"])
        text = report.to_text()
        assert "OK: 0 error(s)" in text and "[baselined]" in text

    def test_stale_suppression_reported_not_fatal(self, tmp_path):
        (tmp_path / "kernels").mkdir()
        (tmp_path / "kernels" / "ok.py").write_text("X = 1\n")
        base = Baseline([Suppression("R001", "kernels/gone.py", "f",
                                     "obsolete")])
        report = run_check(root=tmp_path, baseline=base, dynamic=False)
        assert report.ok
        assert len(report.unused_suppressions) == 1
        assert "stale" in report.to_text()


# ------------------------------------------------- workload regression

def test_all_workloads_all_variants_hazard_free():
    """Table 6 regression: every workload's smallest-case execution, in
    every variant it supports, passes the warp sanitizer clean."""
    assert len(workload_names()) == 10
    san = run_dynamic()
    assert san.findings() == [], [f.format() for f in san.findings()]
    assert san.accesses > 0


# ---------------------------------------------------------------------- CLI

class TestCli:
    def test_check_ok_exit_zero(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "OK: 0 error(s)" in out

    def test_check_json_format(self, capsys):
        assert main(["check", "--format", "json", "--no-dynamic"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_check_fails_without_baseline(self, tmp_path, capsys):
        # an empty baseline exposes the stencil R005 finding -> exit 1
        empty = tmp_path / "empty.json"
        Baseline().save(empty)
        assert main(["check", "--no-dynamic",
                     "--baseline", str(empty)]) == 1
        assert "R005" in capsys.readouterr().out

    def test_write_baseline(self, tmp_path, capsys):
        out = tmp_path / "new_baseline.json"
        assert main(["check", "--no-dynamic", "--write-baseline",
                     "--baseline", str(out)]) == 0
        base = json.loads(out.read_text())
        assert [s["rule"] for s in base["suppressions"]] == ["R005"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
