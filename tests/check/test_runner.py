"""Baseline mechanics, the check runner, and the ``repro check`` CLI."""

import json

import pytest

from repro.check import (
    Baseline,
    Finding,
    Suppression,
    apply_baseline,
    dedupe_findings,
    default_baseline_path,
    run_check,
)
from repro.check.dynamic import run_dynamic
from repro.cli import main
from repro.kernels import workload_names


def _finding(rule="R005", path="kernels/x.py", symbol="XWorkload",
             line=10):
    return Finding(rule=rule, severity="error", path=path, symbol=symbol,
                   message="msg", line=line)


# ----------------------------------------------------------------- baseline

class TestBaseline:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "baseline.json"
        Baseline([Suppression("R005", "kernels/x.py", "XWorkload",
                              "known deviation")]).save(p)
        loaded = Baseline.load(p)
        assert loaded.suppressions == [
            Suppression("R005", "kernels/x.py", "XWorkload",
                        "known deviation")]

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").suppressions == []

    def test_missing_justification_rejected(self, tmp_path):
        p = tmp_path / "baseline.json"
        p.write_text(json.dumps({"suppressions": [
            {"rule": "R005", "path": "kernels/x.py", "symbol": "X"}]}))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(p)

    def test_fingerprint_ignores_line_numbers(self):
        base = Baseline([Suppression("R005", "kernels/x.py", "XWorkload",
                                     "ok")])
        active, suppressed, unused = apply_baseline(
            [_finding(line=10), _finding(line=99)], base)
        assert active == [] and len(suppressed) == 2 and unused == []

    def test_unmatched_finding_stays_active(self):
        base = Baseline([Suppression("R005", "kernels/x.py", "XWorkload",
                                     "ok")])
        other = _finding(path="kernels/y.py", symbol="YWorkload")
        active, suppressed, unused = apply_baseline([other], base)
        assert active == [other] and suppressed == []
        assert len(unused) == 1  # the x.py entry is stale for this run

    def test_from_findings_dedupes_fingerprints(self):
        base = Baseline.from_findings([_finding(line=1), _finding(line=2)],
                                      justification="j")
        assert len(base.suppressions) == 1

    def test_checked_in_baseline_is_valid_and_justified(self):
        base = Baseline.load(default_baseline_path())
        assert base.suppressions, "expected the stencil R005 entry"
        for s in base.suppressions:
            assert len(s.justification) > 20


# ------------------------------------------------------------------- runner

class TestRunCheck:
    def test_repo_is_clean_under_the_checked_in_baseline(self):
        report = run_check()
        assert report.ok, report.to_text()
        assert report.active == []
        assert report.unused_suppressions == []
        assert report.sanitized_accesses > 0

    def test_seeded_violation_fails_the_check(self, tmp_path):
        (tmp_path / "kernels").mkdir()
        (tmp_path / "kernels" / "bad.py").write_text(
            "import numpy as np\n\n"
            "def noise(n):\n"
            "    return np.random.rand(n)\n")
        report = run_check(root=tmp_path, baseline=Baseline(),
                           dynamic=False)
        assert not report.ok
        assert [f.rule for f in report.active] == ["R001"]

    def test_json_and_text_rendering(self):
        report = run_check(dynamic=False)
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["active"] == []
        assert any(s["rule"] == "R005"
                   for s in payload["suppressed"])
        text = report.to_text()
        assert "OK: 0 error(s)" in text and "[baselined]" in text

    def test_stale_suppression_reported_not_fatal(self, tmp_path):
        (tmp_path / "kernels").mkdir()
        (tmp_path / "kernels" / "ok.py").write_text("X = 1\n")
        base = Baseline([Suppression("R001", "kernels/gone.py", "f",
                                     "obsolete")])
        report = run_check(root=tmp_path, baseline=base, dynamic=False)
        assert report.ok
        assert len(report.unused_suppressions) == 1
        assert "stale" in report.to_text()

    def test_parallel_check_matches_serial(self):
        serial = run_check(dynamic=False, n_jobs=1)
        parallel = run_check(dynamic=False, n_jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_determinism_layer_populates_facts(self):
        report = run_check(dynamic=False, determinism=True)
        assert report.ok, report.to_text()
        assert report.facts is not None
        assert report.determinism_functions > 500
        assert report.determinism_modules > 50
        assert "determinism" in json.loads(report.to_json())
        assert "impure" in report.to_text()


class TestDedupe:
    def test_identical_findings_collapse(self):
        a, b = _finding(line=10), _finding(line=10)
        assert dedupe_findings([a, b]) == [a]

    def test_distinct_lines_survive(self):
        a, b = _finding(line=10), _finding(line=11)
        assert dedupe_findings([a, b]) == [a, b]

    def test_runner_dedupes_before_baseline(self, tmp_path):
        # two baseline-less copies of one defect must gate as one finding
        (tmp_path / "kernels").mkdir()
        (tmp_path / "kernels" / "bad.py").write_text(
            "import numpy as np\n\n"
            "def noise(n):\n"
            "    return np.random.rand(n)\n")
        report = run_check(root=tmp_path, baseline=Baseline(),
                           dynamic=False)
        keys = [(f.rule, f.path, f.line, f.symbol) for f in report.active]
        assert len(keys) == len(set(keys))


# ------------------------------------------------- workload regression

def test_all_workloads_all_variants_hazard_free():
    """Table 6 regression: every workload's smallest-case execution, in
    every variant it supports, passes the warp sanitizer clean."""
    assert len(workload_names()) == 10
    san = run_dynamic()
    assert san.findings() == [], [f.format() for f in san.findings()]
    assert san.accesses > 0


# ---------------------------------------------------------------------- CLI

class TestCli:
    def test_check_ok_exit_zero(self, capsys):
        assert main(["check"]) == 0
        out = capsys.readouterr().out
        assert "OK: 0 error(s)" in out

    def test_check_json_format(self, capsys):
        assert main(["check", "--format", "json", "--no-dynamic"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_check_fails_without_baseline(self, tmp_path, capsys):
        # an empty baseline exposes the stencil R005 finding -> exit 1
        empty = tmp_path / "empty.json"
        Baseline().save(empty)
        assert main(["check", "--no-dynamic",
                     "--baseline", str(empty)]) == 1
        assert "R005" in capsys.readouterr().out

    def test_write_baseline(self, tmp_path, capsys):
        out = tmp_path / "new_baseline.json"
        assert main(["check", "--no-dynamic", "--write-baseline",
                     "--baseline", str(out)]) == 0
        base = json.loads(out.read_text())
        assert [s["rule"] for s in base["suppressions"]] == ["R005"]

    def test_stale_suppression_fails_the_cli(self, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        base = Baseline.load(default_baseline_path())
        base.suppressions.append(
            Suppression("R001", "kernels/gone.py", "f", "obsolete"))
        base.save(stale)
        assert main(["check", "--no-dynamic",
                     "--baseline", str(stale)]) == 1
        err = capsys.readouterr().err
        assert "--prune-baseline" in err

    def test_prune_baseline_drops_stale_entries(self, tmp_path, capsys):
        stale = tmp_path / "stale.json"
        base = Baseline.load(default_baseline_path())
        base.suppressions.append(
            Suppression("R001", "kernels/gone.py", "f", "obsolete"))
        base.save(stale)
        assert main(["check", "--no-dynamic", "--prune-baseline",
                     "--baseline", str(stale)]) == 0
        pruned = Baseline.load(stale)
        assert all(s.path != "kernels/gone.py"
                   for s in pruned.suppressions)
        # the still-used stencil entry survives the prune
        assert any(s.rule == "R005" for s in pruned.suppressions)
        # and a rerun against the pruned baseline is clean
        assert main(["check", "--no-dynamic",
                     "--baseline", str(stale)]) == 0

    def test_jobs_flag_matches_serial_output(self, capsys):
        assert main(["check", "--no-dynamic", "--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert main(["check", "--no-dynamic", "--format", "json",
                     "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_facts_flag_writes_byte_identical_artifact(self, tmp_path,
                                                       capsys):
        f1, f2 = tmp_path / "facts1.json", tmp_path / "facts2.json"
        assert main(["check", "--no-dynamic", "--facts", str(f1)]) == 0
        assert main(["check", "--no-dynamic", "--facts", str(f2)]) == 0
        capsys.readouterr()
        assert f1.read_bytes() == f2.read_bytes()
        payload = json.loads(f1.read_text())
        assert payload["version"] == 2
        assert payload["purity"]
        assert "graph_nodes" in payload


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
