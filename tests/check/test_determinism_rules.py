"""Fixture packages per D-rule plus the whole-repo D-clean regression."""

import pytest

from repro.check.dataflow import PackageGraph
from repro.check.determinism import analyze_package, facts_to_json
from repro.check.runner import package_root


def _rules(sources):
    rep = analyze_package(graph=PackageGraph.from_sources(sources))
    return [(f.rule, f.path, f.line) for f in rep.findings]


_CACHE_PRELUDE = (
    "from repro.perf.cache import content_key, default_cache\n")


class TestD001CacheValueTaint:
    def test_unseeded_rng_in_compute_fires(self):
        rules = _rules({"a.py": _CACHE_PRELUDE + (
            "import numpy as np\n"
            "def noisy():\n"
            "    return np.random.normal()\n"
            "def cached():\n"
            "    key = content_key('k', 1)\n"
            "    return default_cache().get_or_compute('k', key, noisy)\n")})
        assert [r[0] for r in rules] == ["D001"]

    def test_seeded_rng_is_clean(self):
        assert _rules({"a.py": _CACHE_PRELUDE + (
            "import numpy as np\n"
            "def drawn():\n"
            "    return np.random.default_rng(42).normal()\n"
            "def cached():\n"
            "    key = content_key('k', 1)\n"
            "    return default_cache().get_or_compute('k', key, drawn)\n"
        )}) == []

    def test_clock_reaches_cache_through_two_hops(self):
        rules = _rules({"a.py": _CACHE_PRELUDE + (
            "import time\n"
            "def leaf():\n"
            "    return time.perf_counter()\n"
            "def mid():\n"
            "    return leaf()\n"
            "def cached():\n"
            "    key = content_key('k', 1)\n"
            "    return default_cache().get_or_compute('k', key, mid)\n")})
        assert [r[0] for r in rules] == ["D001"]

    def test_lambda_compute_is_followed(self):
        rules = _rules({"a.py": _CACHE_PRELUDE + (
            "import time\n"
            "def cached():\n"
            "    key = content_key('k', 1)\n"
            "    return default_cache().get_or_compute(\n"
            "        'k', key, lambda: time.time())\n")})
        assert [r[0] for r in rules] == ["D001"]

    def test_unsorted_listdir_fires_sorted_is_clean(self):
        rules = _rules({"a.py": _CACHE_PRELUDE + (
            "import os\n"
            "def unsorted_scan():\n"
            "    return os.listdir('.')\n"
            "def sorted_scan():\n"
            "    return sorted(os.listdir('.'))\n"
            "def cached():\n"
            "    key = content_key('k', 1)\n"
            "    default_cache().get_or_compute('a', key, unsorted_scan)\n"
            "    default_cache().get_or_compute('b', key, sorted_scan)\n")})
        assert len(rules) == 1 and rules[0][0] == "D001"

    def test_set_iteration_fires_sorted_is_clean(self):
        rules = _rules({"a.py": _CACHE_PRELUDE + (
            "def from_set(items):\n"
            "    seen = set(items)\n"
            "    return [x for x in seen]\n"
            "def from_sorted(items):\n"
            "    return [x for x in sorted(set(items))]\n"
            "def cached():\n"
            "    key = content_key('k', 1)\n"
            "    default_cache().get_or_compute('a', key,\n"
            "                                   lambda: from_set([1]))\n"
            "    default_cache().get_or_compute('b', key,\n"
            "                                   lambda: from_sorted([1]))\n"
        )})
        assert len(rules) == 1 and rules[0][0] == "D001"

    def test_id_hash_taints_the_value(self):
        rules = _rules({"a.py": _CACHE_PRELUDE + (
            "def addressed(obj):\n"
            "    return id(obj)\n"
            "def cached(obj):\n"
            "    key = content_key('k', 1)\n"
            "    return default_cache().get_or_compute(\n"
            "        'k', key, lambda: addressed(obj))\n")})
        assert [r[0] for r in rules] == ["D001"]

    def test_clock_inside_perf_barrier_is_not_followed(self):
        # calls into perf/ are measurement infrastructure by contract
        assert _rules({
            "perf/meter.py": "import time\n"
                             "def now():\n"
                             "    return time.perf_counter()\n",
            "a.py": _CACHE_PRELUDE + (
                "from repro.perf.meter import now\n"
                "def timed():\n"
                "    now()\n"
                "    return 7\n"
                "def cached():\n"
                "    key = content_key('k', 1)\n"
                "    return default_cache().get_or_compute(\n"
                "        'k', key, timed)\n")}) == []


class TestD002ServePayloadTaint:
    def test_tainted_resolver_fires(self):
        rules = _rules({"serve/queries.py": (
            "import time\n"
            "def _resolve_perf(params):\n"
            "    return {'t': time.time()}\n")})
        assert [r[0] for r in rules] == ["D002"]

    def test_pure_resolver_is_clean(self):
        assert _rules({"serve/queries.py": (
            "def _resolve_perf(params):\n"
            "    return {'t': 1.0}\n")}) == []


_EXEC_PRELUDE = "from repro.perf.executor import ParallelExecutor\n"


class TestD003DispatchMutableState:
    def test_closure_over_mutated_global_fires(self):
        rules = _rules({"a.py": _EXEC_PRELUDE + (
            "_MODE = 'fast'\n"
            "def set_mode(m):\n"
            "    global _MODE\n"
            "    _MODE = m\n"
            "def worker(x):\n"
            "    return (x, _MODE)\n"
            "def drive(items):\n"
            "    ex = ParallelExecutor(4)\n"
            "    return ex.map(worker, items)\n")})
        assert [r[0] for r in rules] == ["D003"]

    def test_constant_global_read_is_clean(self):
        assert _rules({"a.py": _EXEC_PRELUDE + (
            "_SCALE = 3\n"
            "def worker(x):\n"
            "    return x * _SCALE\n"
            "def drive(items):\n"
            "    ex = ParallelExecutor(4)\n"
            "    return ex.map(worker, items)\n")}) == []


class TestD004DispatchPicklable:
    def test_lambda_dispatch_fires(self):
        rules = _rules({"a.py": _EXEC_PRELUDE + (
            "def drive(items):\n"
            "    ex = ParallelExecutor(4)\n"
            "    return ex.map(lambda x: x + 1, items)\n")})
        assert [r[0] for r in rules] == ["D004"]

    def test_nested_def_dispatch_fires(self):
        rules = _rules({"a.py": _EXEC_PRELUDE + (
            "def drive(items):\n"
            "    def helper(x):\n"
            "        return x + 1\n"
            "    ex = ParallelExecutor(4)\n"
            "    return ex.map(helper, items)\n")})
        assert [r[0] for r in rules] == ["D004"]

    def test_bound_method_dispatch_fires(self):
        rules = _rules({"a.py": _EXEC_PRELUDE + (
            "class Driver:\n"
            "    def work(self, x):\n"
            "        return x\n"
            "    def drive(self, items):\n"
            "        ex = ParallelExecutor(4)\n"
            "        return ex.map(self.work, items)\n")})
        assert [r[0] for r in rules] == ["D004"]

    def test_module_level_function_is_clean(self):
        assert _rules({"a.py": _EXEC_PRELUDE + (
            "def worker(x):\n"
            "    return x + 1\n"
            "def drive(items):\n"
            "    ex = ParallelExecutor(4)\n"
            "    return ex.map(worker, items)\n")}) == []

    def test_starmap_is_covered_too(self):
        rules = _rules({"a.py": _EXEC_PRELUDE + (
            "def drive(items):\n"
            "    ex = ParallelExecutor(4)\n"
            "    return ex.starmap(lambda a, b: a + b, items)\n")})
        assert [r[0] for r in rules] == ["D004"]


_KEY_PRELUDE = "from repro.perf.cache import content_key\n"


class TestD005D006KeyCompleteness:
    def test_unkeyed_env_read_fires(self):
        rules = _rules({"a.py": _KEY_PRELUDE + (
            "import os\n"
            "def make_key(kind):\n"
            "    scale = os.environ.get('SCALE', '1')\n"
            "    return content_key(kind, 1)\n")})
        assert [r[0] for r in rules] == ["D005"]

    def test_env_read_inside_key_args_is_clean(self):
        assert _rules({"a.py": _KEY_PRELUDE + (
            "import os\n"
            "def make_key(kind):\n"
            "    return content_key(kind,\n"
            "                       os.environ.get('SCALE', '1'))\n"
        )}) == []

    def test_getenv_and_subscript_forms_fire(self):
        rules = _rules({"a.py": _KEY_PRELUDE + (
            "import os\n"
            "def k1(kind):\n"
            "    s = os.getenv('SCALE')\n"
            "    return content_key(kind, 1)\n"
            "def k2(kind):\n"
            "    s = os.environ['SCALE']\n"
            "    return content_key(kind, 1)\n")})
        assert [r[0] for r in rules] == ["D005", "D005"]

    def test_unkeyed_file_read_fires_d006(self):
        rules = _rules({"a.py": _KEY_PRELUDE + (
            "from pathlib import Path\n"
            "def make_key(kind):\n"
            "    spec = Path('spec.json').read_text()\n"
            "    return content_key(kind, 1)\n")})
        assert [r[0] for r in rules] == ["D006"]

    def test_unkeyed_mutated_global_fires_d006(self):
        rules = _rules({"a.py": _KEY_PRELUDE + (
            "_TOKEN = None\n"
            "def set_token(t):\n"
            "    global _TOKEN\n"
            "    _TOKEN = t\n"
            "def make_key(kind):\n"
            "    return content_key(kind, 1) if _TOKEN else None\n")})
        assert [r[0] for r in rules] == ["D006"]

    def test_mutated_global_inside_key_args_is_clean(self):
        assert _rules({"a.py": _KEY_PRELUDE + (
            "_TOKEN = None\n"
            "def set_token(t):\n"
            "    global _TOKEN\n"
            "    _TOKEN = t\n"
            "def make_key(kind):\n"
            "    return content_key(kind, _TOKEN)\n")}) == []

    def test_functions_without_key_calls_do_not_fire(self):
        assert _rules({"a.py": (
            "import os\n"
            "def config():\n"
            "    return os.environ.get('SCALE', '1')\n")}) == []


class TestFactsArtifact:
    def test_facts_render_byte_identical_across_runs(self):
        sources = {"a.py": _CACHE_PRELUDE + (
            "def compute():\n"
            "    return 7\n"
            "def cached():\n"
            "    key = content_key('k', 1)\n"
            "    return default_cache().get_or_compute(\n"
            "        'k', key, compute)\n")}
        r1 = analyze_package(graph=PackageGraph.from_sources(sources))
        r2 = analyze_package(graph=PackageGraph.from_sources(sources))
        assert facts_to_json(r1.facts) == facts_to_json(r2.facts)

    def test_facts_record_witness_for_impure_functions(self):
        sources = {"a.py": (
            "import time\n"
            "def now():\n"
            "    return time.time()\n"
            "def via():\n"
            "    return now()\n")}
        rep = analyze_package(graph=PackageGraph.from_sources(sources))
        assert rep.facts["purity"]["a.py::now"]["pure"] is False
        via = rep.facts["purity"]["a.py::via"]
        assert via["pure"] is False
        assert "time.time" in via["witness"]

    def test_facts_record_pool_and_cache_sites(self):
        sources = {"a.py": _EXEC_PRELUDE + (
            "def worker(x):\n"
            "    return x\n"
            "def drive(items):\n"
            "    ex = ParallelExecutor(2)\n"
            "    return ex.map(worker, items)\n")}
        rep = analyze_package(graph=PackageGraph.from_sources(sources))
        [site] = rep.facts["pool_dispatch"]
        assert site["target"] == "a.py::worker"
        assert site["picklable"] is True


class TestWholeRepo:
    def test_src_repro_is_d_clean(self):
        rep = analyze_package(package_root())
        assert rep.findings == [], [f.format() for f in rep.findings]
        assert rep.functions_analyzed > 700

    def test_repo_facts_are_byte_identical_across_runs(self):
        r1 = analyze_package(package_root())
        r2 = analyze_package(package_root())
        assert facts_to_json(r1.facts) == facts_to_json(r2.facts)

    def test_repo_facts_cover_the_known_sinks(self):
        facts = analyze_package(package_root()).facts
        cache_mods = {e["module"] for e in facts["cache_values"]}
        assert "analysis/observations.py" in cache_mods
        pool_targets = {e["target"] for e in facts["pool_dispatch"]}
        assert "harness/runner.py::_workload_records" in pool_targets
        serve_fns = {e["function"] for e in facts["serve_payloads"]}
        assert "serve/queries.py::_resolve_perf" in serve_fns
        key_fns = {(e["module"], e["function"])
                   for e in facts["content_keys"]}
        assert ("serve/scheduler.py", "query_key") in key_fns


_GRAPH_PRELUDE = "from repro.graph import TaskGraph, TaskNode\n"


class TestR009GraphNodeAmbient:
    def test_env_reading_node_callable_fires(self):
        rules = _rules({"a.py": _GRAPH_PRELUDE + (
            "import os\n"
            "def worker(x):\n"
            "    return x + len(os.environ.get('HOME', ''))\n"
            "def build():\n"
            "    g = TaskGraph()\n"
            "    g.add(TaskNode(key='k', kind='unit', fn=worker))\n"
            "    return g\n")})
        assert [r[0] for r in rules] == ["R009"]

    def test_pure_node_callable_is_clean(self):
        assert _rules({"a.py": _GRAPH_PRELUDE + (
            "def worker(x):\n"
            "    return x * x\n"
            "def build():\n"
            "    g = TaskGraph()\n"
            "    g.add(TaskNode(key='k', kind='unit', fn=worker))\n"
            "    return g\n")}) == []

    def test_ambient_read_reaches_node_through_a_hop(self):
        rules = _rules({"a.py": _GRAPH_PRELUDE + (
            "def slurp():\n"
            "    return open('cfg.txt').read()\n"
            "def worker(x):\n"
            "    return slurp() + str(x)\n"
            "def build():\n"
            "    g = TaskGraph()\n"
            "    g.add(TaskNode(key='k', kind='unit', fn=worker))\n"
            "    return g\n")})
        assert [r[0] for r in rules] == ["R009"]

    def test_keyed_env_read_is_clean(self):
        """An env read folded into a content key is an argument, not
        ambient state — the node's identity captures it."""
        assert _rules({"a.py": _GRAPH_PRELUDE + _CACHE_PRELUDE + (
            "import os\n"
            "def worker(x):\n"
            "    key = content_key('w', os.environ.get('MODE', ''))\n"
            "    return (key, x)\n"
            "def build():\n"
            "    g = TaskGraph()\n"
            "    g.add(TaskNode(key='k', kind='unit', fn=worker))\n"
            "    return g\n")}) == []

    def test_facts_export_graph_node_sites(self):
        rep = analyze_package(graph=PackageGraph.from_sources(
            {"a.py": _GRAPH_PRELUDE + (
                "import os\n"
                "def clean(x):\n"
                "    return x\n"
                "def dirty(x):\n"
                "    return os.environ.get('HOME')\n"
                "def build():\n"
                "    g = TaskGraph()\n"
                "    g.add(TaskNode(key='a', kind='unit', fn=clean))\n"
                "    g.add(TaskNode(key='b', kind='unit', fn=dirty))\n"
                "    return g\n")}))
        sites = {e["target"]: e for e in rep.facts["graph_nodes"]}
        assert sites["a.py::clean"]["ambient"] == []
        assert sites["a.py::dirty"]["ambient"] == ["env"]
        assert rep.facts["purity"]["a.py::dirty"]["ambient"] == ["env"]

    def test_repo_graph_builders_are_r009_clean(self):
        """The five shipped node callables must stay provably pure —
        the concurrency policy schedules them on these facts."""
        facts = analyze_package(package_root()).facts
        targets = {e["target"] for e in facts["graph_nodes"]}
        assert {"analysis/observations.py::_node_dataset",
                "analysis/observations.py::_node_accuracy",
                "analysis/observations.py::_run_observation",
                "harness/runner.py::_workload_records",
                "harness/sweep.py::_sweep_size"} <= targets
        for e in facts["graph_nodes"]:
            assert e["ambient"] == [] and e["tainted"] == [], e


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
