"""Tests for the mixed-precision MMA emulation and iterative refinement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mixed_precision import (
    blocked_cholesky,
    iterative_refinement,
    modeled_factorization_time,
    solve_cholesky,
)
from repro.gpu import Device
from repro.gpu.isa import Precision
from repro.gpu.mma_mixed import mma_mixed_batched, quantize, unit_roundoff


def spd(n, seed=0, shift=None):
    rng = np.random.default_rng(seed)
    m = rng.uniform(-1, 1, (n, n))
    return m @ m.T + (shift if shift is not None else n) * np.eye(n)


class TestQuantize:
    def test_fp64_identity(self):
        x = np.array([1/3, np.pi, 1e-10])
        np.testing.assert_array_equal(quantize(x, Precision.FP64), x)

    def test_fp16_matches_numpy_half(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-100, 100, 1000)
        np.testing.assert_array_equal(
            quantize(x, Precision.FP16),
            x.astype(np.float16).astype(np.float64))

    @pytest.mark.parametrize("precision", [Precision.BF16, Precision.FP32])
    def test_truncation_error_within_unit_roundoff(self, precision):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.5, 2.0, 10000)
        q = quantize(x, precision)
        rel = np.abs(q - x) / np.abs(x)
        assert rel.max() <= 2.05 * unit_roundoff(precision)

    def test_exact_values_preserved(self):
        x = np.array([1.0, 0.5, -2.0, 1024.0, 0.0])
        for p in (Precision.FP16, Precision.BF16, Precision.FP32):
            np.testing.assert_array_equal(quantize(x, p), x)

    def test_roundoff_ordering(self):
        assert unit_roundoff(Precision.BF16) > unit_roundoff(Precision.FP16)
        assert unit_roundoff(Precision.FP16) > unit_roundoff(Precision.FP64)


class TestMixedMma:
    def test_fp16_mma_error_scales_with_precision(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (16, 16))
        b = rng.uniform(-1, 1, (16, 16))
        exact = a @ b
        errs = {}
        for p in (Precision.FP16, Precision.BF16):
            got = mma_mixed_batched(a[np.newaxis], b[np.newaxis],
                                    precision=p)[0]
            errs[p] = np.abs(got - exact).max()
        assert 0 < errs[Precision.FP16] < errs[Precision.BF16]
        # error magnitude commensurate with the operand roundoff
        assert errs[Precision.FP16] < 64 * unit_roundoff(Precision.FP16)

    def test_accumulator_supported(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(-1, 1, (8, 4))
        b = rng.uniform(-1, 1, (4, 8))
        c = rng.uniform(-1, 1, (8, 8)).astype(np.float32).astype(float)
        got = mma_mixed_batched(a[np.newaxis], b[np.newaxis],
                                c[np.newaxis], Precision.FP16)[0]
        assert np.abs(got - (a @ b + c)).max() < 0.1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            mma_mixed_batched(np.zeros((8, 4)), np.zeros((3, 8)))


class TestBlockedCholesky:
    @pytest.mark.parametrize("n,block", [(40, 8), (64, 32), (50, 64)])
    def test_fp64_factorization_exactish(self, n, block):
        a = spd(n)
        l = blocked_cholesky(a, block=block, precision=Precision.FP64)
        np.testing.assert_allclose(l @ l.T, a, atol=1e-10 * n)
        assert np.allclose(np.triu(l, 1), 0.0)

    def test_low_precision_factorization_is_approximate(self):
        a = spd(64, seed=5)
        l16 = blocked_cholesky(a, precision=Precision.FP16)
        l64 = blocked_cholesky(a, precision=Precision.FP64)
        err16 = np.abs(l16 @ l16.T - a).max()
        err64 = np.abs(l64 @ l64.T - a).max()
        assert err16 > err64

    def test_solve_cholesky(self):
        a = spd(32, seed=6)
        b = np.arange(32, dtype=float)
        l = blocked_cholesky(a, precision=Precision.FP64)
        x = solve_cholesky(l, b)
        np.testing.assert_allclose(a @ x, b, atol=1e-9)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            blocked_cholesky(np.zeros((3, 4)))


class TestRefinement:
    @pytest.mark.parametrize("precision", [Precision.FP16, Precision.BF16,
                                           Precision.FP32])
    def test_recovers_fp64_accuracy(self, precision):
        a = spd(80, seed=7)
        b = np.random.default_rng(8).uniform(-1, 1, 80)
        r = iterative_refinement(a, b, precision=precision, tol=1e-12)
        assert r.converged
        assert r.residuals[-1] < 1e-12
        assert r.iterations <= 10

    def test_refinement_monotone_decrease(self):
        a = spd(60, seed=9)
        b = np.ones(60)
        r = iterative_refinement(a, b, precision=Precision.FP16)
        assert all(b <= a * 1.5 for a, b in zip(r.residuals,
                                                r.residuals[1:]))

    @given(st.integers(0, 10000))
    @settings(max_examples=8, deadline=None)
    def test_property_fp16_start_worse_than_end(self, seed):
        a = spd(48, seed=seed)
        b = np.random.default_rng(seed + 1).uniform(-1, 1, 48)
        r = iterative_refinement(a, b, precision=Precision.FP16)
        assert r.residuals[-1] <= r.residuals[0]


class TestModeledTimes:
    def test_fp16_refinement_beats_fp64_on_blackwell(self):
        dev = Device("B200")
        t64 = modeled_factorization_time(8192, dev, Precision.FP64)
        t16 = modeled_factorization_time(8192, dev, Precision.FP16,
                                         refinement_iters=5)
        assert t16 < t64
        # the 45:1 FP16:FP64 peak ratio makes the gap large
        assert t64 / t16 > 3.0

    def test_gap_narrower_on_hopper(self):
        h, b = Device("H200"), Device("B200")

        def ratio(dev):
            return (modeled_factorization_time(8192, dev, Precision.FP64)
                    / modeled_factorization_time(8192, dev, Precision.FP16,
                                                 refinement_iters=5))
        # Hopper's strong FP64 TC keeps mixed precision less compelling —
        # the architectural story behind Figure 12
        assert ratio(h) < ratio(b)
