"""Tests for the observation-verification framework (fast subset; the
full nine-observation audit runs in benchmarks/bench_observations.py)."""

from repro.analysis.observations import (
    OBSERVATIONS,
    ObservationResult,
    observation_2,
    observation_4,
    observation_8,
    verify_all,
)
from repro.gpu import Device
from repro.kernels import (
    GemmWorkload,
    GemvWorkload,
    ReductionWorkload,
    ScanWorkload,
    SpmvWorkload,
)

FAST_WL = [GemmWorkload(), ScanWorkload(), ReductionWorkload(),
           GemvWorkload(), SpmvWorkload(scale=0.08)]
DEVICES = [Device("A100"), Device("H200"), Device("B200")]


class TestFramework:
    def test_nine_observations_registered(self):
        assert len(OBSERVATIONS) == 9
        numbers = [fn(FAST_WL, DEVICES).number for fn in OBSERVATIONS[:1]]
        assert numbers == [1]

    def test_result_structure(self):
        r = observation_4(FAST_WL, DEVICES)
        assert isinstance(r, ObservationResult)
        assert r.number == 4
        assert r.evidence  # populated

    def test_observation_2_on_subset(self):
        # the fast subset spans all four quadrants, so O2 must hold
        r = observation_2(FAST_WL, DEVICES)
        assert r.holds
        assert set(r.evidence) == {"I", "II", "III", "IV"}

    def test_observation_8_quadrant4_coalescing(self):
        r = observation_8(FAST_WL, DEVICES)
        assert r.holds
        assert "spmv" in r.evidence and "gemv" in r.evidence

    def test_verify_all_on_subset_returns_nine(self):
        results = verify_all(workloads=FAST_WL, devices=DEVICES)
        assert [r.number for r in results] == list(range(1, 10))
        # O5 (SpMV exception), O7 (accuracy) and O8 must hold even on the
        # subset; O1/O3 include subset-dependent populations, so only
        # check they produced evidence
        by = {r.number: r for r in results}
        assert by[5].holds and by[7].holds and by[8].holds
        assert all(r.evidence for r in results)
