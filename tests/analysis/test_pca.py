"""Tests for the from-scratch standardization/PCA implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pca import coverage_stats, pca, standardize


class TestStandardize:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5, 3, (200, 4))
        z, mean, std = standardize(x)
        np.testing.assert_allclose(z.mean(axis=0), 0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=0), 1, atol=1e-12)

    def test_constant_feature_maps_to_zero(self):
        x = np.column_stack([np.arange(10.0), np.full(10, 7.0)])
        z, _, std = standardize(x)
        np.testing.assert_array_equal(z[:, 1], 0.0)
        assert std[1] == 1.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            standardize(np.arange(5.0))


class TestPca:
    def test_recovers_dominant_direction(self):
        rng = np.random.default_rng(1)
        direction = np.array([3.0, 4.0]) / 5.0
        t = rng.normal(0, 10, 500)
        x = np.outer(t, direction) + rng.normal(0, 0.1, (500, 2))
        res = pca(x, 1)
        align = abs(res.components[0] @ direction)
        assert align > 0.999

    def test_explained_ratio_sums_below_one(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, (100, 5))
        res = pca(x, 3)
        assert 0 < res.explained_ratio.sum() <= 1.0 + 1e-12
        assert np.all(np.diff(res.explained_variance) <= 1e-12)

    def test_scores_match_projection(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, (50, 4))
        res = pca(x, 2)
        np.testing.assert_allclose(res.scores, res.transform(x), atol=1e-10)

    def test_components_orthonormal(self):
        rng = np.random.default_rng(4)
        x = rng.normal(0, 1, (80, 6))
        res = pca(x, 3)
        gram = res.components @ res.components.T
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-10)

    def test_deterministic_sign(self):
        rng = np.random.default_rng(5)
        x = rng.normal(0, 1, (60, 3))
        r1, r2 = pca(x, 2), pca(x.copy(), 2)
        np.testing.assert_array_equal(r1.components, r2.components)
        for row in r1.components:
            assert row[int(np.argmax(np.abs(row)))] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            pca(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            pca(np.zeros((5, 3)), n_components=4)
        with pytest.raises(ValueError):
            pca(np.zeros(5))

    @given(st.integers(0, 10000))
    @settings(max_examples=15, deadline=None)
    def test_property_total_variance_preserved_full_rank(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, (30, 4))
        res = pca(x, 4)
        total = np.var(x, axis=0, ddof=1).sum()
        assert res.explained_variance.sum() == pytest.approx(total, rel=1e-9)


class TestCoverageStats:
    def test_spanning_selection_covers_range(self):
        rng = np.random.default_rng(6)
        pop = rng.uniform(-1, 1, (300, 2))
        sel = np.array([[-1, -1], [1, 1], [-1, 1], [1, -1], [0, 0]],
                       dtype=float)
        stats = coverage_stats(pop, sel)
        assert stats["range_coverage"] > 0.9
        # five points cannot blanket a square, but far more of the
        # population sits near them than near a clustered selection
        clustered = coverage_stats(pop, rng.uniform(-0.02, 0.02, (5, 2)))
        assert stats["population_near_selected"] > 0.3
        assert stats["population_near_selected"] \
            > clustered["population_near_selected"]

    def test_clustered_selection_poor_coverage(self):
        rng = np.random.default_rng(7)
        pop = rng.uniform(-1, 1, (300, 2))
        sel = rng.uniform(-0.02, 0.02, (5, 2))
        stats = coverage_stats(pop, sel)
        assert stats["range_coverage"] < 0.3
        assert stats["selected_dispersion"] < 0.05

    def test_dispersion_ordering_like_paper(self):
        # well-spread representatives: selected dispersion far exceeds the
        # dispersion of their nearest neighbors (0.18 vs 0.05 in the paper)
        rng = np.random.default_rng(8)
        pop = rng.normal(0, 1, (500, 2))
        sel = pop[np.argsort(pop[:, 0])[[0, 124, 249, 374, 499]]]
        stats = coverage_stats(pop, sel)
        assert stats["selected_dispersion"] > stats["nn_dispersion"]

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_stats(np.zeros(5), np.zeros((2, 2)))
