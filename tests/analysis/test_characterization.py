"""Tests for quadrants, accuracy, roofline, EDP, features, and dwarfs —
the analyses behind Figures 2, 7-11 and Tables 6-7."""

import numpy as np
import pytest

from repro.analysis import (
    FULL_THRESHOLD,
    RODINIA,
    SHOC,
    accuracy_table,
    classify,
    classify_suite,
    coverage_table,
    cubie_coverage,
    edp_study,
    error_metrics,
    graph_features,
    matrix_features,
    power_trace_study,
    quadrant_geomeans,
    suite_roofline,
)
from repro.analysis.quadrants import _quadrant_of
from repro.gpu import Device
from repro.kernels import (
    GemmWorkload,
    GemvWorkload,
    Quadrant,
    ReductionWorkload,
    ScanWorkload,
    all_workloads,
    get_workload,
)
from repro.sparse.csr import CsrMatrix

DEV = Device("H200")


class TestQuadrants:
    def test_quadrant_of_truth_table(self):
        assert _quadrant_of(True, True) is Quadrant.I
        assert _quadrant_of(False, True) is Quadrant.II
        assert _quadrant_of(False, False) is Quadrant.III
        assert _quadrant_of(True, False) is Quadrant.IV

    def test_measured_classification_matches_figure2(self):
        # use light-weight instances so classification is fast
        fast = [GemmWorkload(), ScanWorkload(n_total=1 << 16),
                ReductionWorkload(n_total=1 << 16), GemvWorkload()]
        groups = classify_suite(fast)
        assert groups[Quadrant.I] == ["gemm"]
        assert groups[Quadrant.II] == ["scan"]
        assert groups[Quadrant.III] == ["reduction"]
        assert groups[Quadrant.IV] == ["gemv"]

    def test_profile_values(self):
        p = classify(GemvWorkload())
        assert p.input_full
        assert not p.output_full
        assert p.output_utilization == pytest.approx(1 / 8)
        assert 0.9 < FULL_THRESHOLD < 1.0


class TestAccuracy:
    def test_error_metrics_basic(self):
        avg, mx, n = error_metrics(np.array([1.0, 2.0, 3.5]),
                                   np.array([1.0, 2.5, 3.0]))
        assert avg == pytest.approx(1.0 / 3)
        assert mx == pytest.approx(0.5)
        assert n == 3

    def test_error_metrics_complex(self):
        avg, mx, n = error_metrics(np.array([1 + 1j]), np.array([1 + 0j]))
        assert mx == pytest.approx(1.0)
        assert n == 2  # real and imaginary parts counted separately

    def test_error_metrics_csr(self):
        a = CsrMatrix.from_coo([0], [0], [1.0], (2, 2))
        b = CsrMatrix.from_coo([0], [0], [1.5], (2, 2))
        avg, mx, _ = error_metrics(a, b)
        assert mx == pytest.approx(0.5)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            error_metrics(np.zeros(3), np.zeros(4))

    def test_table6_tc_equals_cc_for_gemv(self):
        entries = {e.variant: e for e in accuracy_table(GemvWorkload(), DEV)}
        assert entries["tc"].avg_error == entries["cc"].avg_error
        assert entries["tc"].max_error == entries["cc"].max_error
        # the paper's GEMV TC error on H200 is exactly zero
        assert entries["tc"].avg_error == 0.0
        assert entries["baseline"].avg_error > 0.0

    def test_bfs_excluded(self):
        with pytest.raises(ValueError, match="no floating-point"):
            accuracy_table(get_workload("bfs"), DEV)

    def test_batched_audit_matches_serial(self):
        from repro.analysis.accuracy import accuracy_tables

        workloads = [GemvWorkload(), get_workload("reduction"),
                     get_workload("bfs")]
        tables = accuracy_tables(workloads, DEV, n_jobs=1)
        # BFS is silently skipped, not an error
        assert set(tables) == {"gemv", "reduction"}
        for w in workloads[:2]:
            assert tables[w.name] == accuracy_table(w, DEV)


class TestRoofline:
    @pytest.fixture(scope="class")
    def roof(self):
        fast = [GemmWorkload(), ScanWorkload(), ReductionWorkload(),
                GemvWorkload()]
        return suite_roofline(fast, DEV)

    def test_ceilings(self, roof):
        assert roof.tc_ceiling == pytest.approx(66.9e12)
        assert roof.cc_ceiling == pytest.approx(33.5e12)
        assert roof.ridge_point("tc") == pytest.approx(66.9 / 4.0, rel=0.01)
        assert roof.l1_roof(1.0) > roof.dram_roof(1.0)

    def test_points_below_attainable(self, roof):
        for p in roof.points:
            assert p.performance <= roof.attainable(p.intensity) * 1.05, p

    def test_gemm_compute_bound_others_memory_bound(self, roof):
        by = {(p.workload, p.variant): p for p in roof.points}
        assert by[("gemm", "tc")].bottleneck == "tensor"
        assert by[("gemv", "tc")].bottleneck == "dram"
        assert by[("gemm", "tc")].intensity > by[("gemv", "tc")].intensity

    def test_bfs_excluded_from_roofline(self):
        roof = suite_roofline([get_workload("bfs")], DEV)
        assert roof.points == []


class TestEdp:
    @pytest.fixture(scope="class")
    def entries(self):
        out = []
        for w in (GemmWorkload(), ScanWorkload(), ReductionWorkload(),
                  GemvWorkload()):
            out.extend(edp_study(w, DEV, repeats=100))
        return out

    def test_edp_definition(self, entries):
        for e in entries:
            assert e.edp == pytest.approx(e.avg_power_w * e.loop_time_s ** 2)
            assert e.energy_j == pytest.approx(
                e.avg_power_w * e.loop_time_s)

    def test_tc_beats_baseline_edp(self, entries):
        by = {(e.workload, e.variant): e for e in entries}
        for name in ("gemm", "scan", "reduction", "gemv"):
            assert by[(name, "tc")].edp < by[(name, "baseline")].edp, name

    def test_quadrant_geomeans_merge_ii_iii(self, entries):
        gm = quadrant_geomeans(entries)
        assert Quadrant.III not in gm
        assert Quadrant.II in gm       # scan and reduction merged
        assert Quadrant.I in gm and Quadrant.IV in gm
        for per_variant in gm.values():
            assert per_variant["tc"] < per_variant["baseline"]

    def test_power_traces(self):
        traces = power_trace_study(ScanWorkload(), DEV, repeats=1000)
        for v, tr in traces.items():
            assert tr.duration_s > 0
            assert DEV.spec.idle_w * 0.5 < tr.average_power_w \
                <= DEV.spec.tdp_w


class TestFeatures:
    def test_matrix_features_shape_and_values(self):
        rng = np.random.default_rng(0)
        dense = np.where(rng.random((64, 64)) < 0.1,
                         rng.uniform(-1, 1, (64, 64)), 0.0)
        np.fill_diagonal(dense, 1.0)
        f = matrix_features(CsrMatrix.from_dense(dense))
        assert f.shape == (10,)
        assert np.all(np.isfinite(f))
        assert f[9] > 0  # diagonal fraction

    def test_banded_vs_random_bandwidth_feature(self):
        n = 128
        banded = np.eye(n) + np.eye(n, k=1)
        rng = np.random.default_rng(1)
        scattered = np.where(rng.random((n, n)) < 0.02, 1.0, 0.0)
        scattered[0, n - 1] = 1.0
        fb = matrix_features(CsrMatrix.from_dense(banded))
        fr = matrix_features(CsrMatrix.from_dense(scattered))
        assert fb[7] < fr[7]  # bandwidth ratio

    def test_graph_features(self):
        src = np.array([0, 1, 2, 3, 0])
        dst = np.array([1, 0, 3, 2, 2])
        f = graph_features(src, dst, 4)
        assert f.shape == (8,)
        assert 0.0 <= f[5] <= 1.0  # reciprocity
        assert f[5] == pytest.approx(4 / 5)  # all but 0->2 reciprocated

    def test_hub_mass_detects_stars(self):
        n = 200
        star_dst = np.zeros(100, dtype=np.int64)
        star_src = np.arange(100, dtype=np.int64) + 1
        f = graph_features(star_src, star_dst, n)
        assert f[7] == pytest.approx(1.0)  # all edges hit the hub


class TestDwarfs:
    def test_cubie_covers_seven_dwarfs(self):
        cov = cubie_coverage(all_workloads())
        assert cov.dwarfs_covered == 7
        assert cov.features_evaluated == 5

    def test_rodinia_shoc_rows_match_table7(self):
        assert RODINIA.dwarfs_covered == 5
        assert SHOC.dwarfs_covered == 5
        assert RODINIA.features_evaluated == 4
        assert SHOC.features_evaluated == 4

    def test_cubie_specific_counts(self):
        cov = cubie_coverage(all_workloads())
        assert cov.dwarf_counts["Dense linear algebra"] == 2
        assert cov.dwarf_counts["Sparse linear algebra"] == 2
        assert cov.dwarf_counts["MapReduce"] == 2
        assert cov.dwarf_counts["Graph traversal"] == 1

    def test_coverage_table_order(self):
        names = [c.name for c in coverage_table(all_workloads())]
        assert names == ["Rodinia", "SHOC", "Cubie"]
