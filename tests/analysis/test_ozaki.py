"""Tests for the Ozaki-scheme FP64 GEMM on low-precision MMAs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ozaki import (
    compare_schemes,
    modeled_ozaki_time,
    ozaki_gemm,
    slice_bits_for,
    split_fp64,
)
from repro.gpu import Device
from repro.gpu.mma_mixed import mma_mixed_batched
from repro.gpu.isa import Precision


class TestSliceBits:
    def test_exactness_bound(self):
        for k in (4, 64, 256, 4096):
            beta = slice_bits_for(k)
            assert 2 * beta + int(np.ceil(np.log2(k))) <= 24

    def test_wider_k_narrower_slices(self):
        assert slice_bits_for(64) >= slice_bits_for(4096)

    def test_validation(self):
        with pytest.raises(ValueError):
            slice_bits_for(0)


class TestSplit:
    def test_reconstruction_converges_geometrically(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-8, 8, (16, 16))
        errs = []
        for s in range(1, 6):
            slices, scale = split_fp64(x, s, slice_bits=9)
            recon = sum(sl * 2.0 ** (-9 * i)
                        for i, sl in enumerate(slices)) * scale
            errs.append(np.abs(recon - x).max())
        assert all(b < a for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 1e-10

    def test_slices_are_normalized_and_quantized(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1000, 1000, (8, 32))
        slices, scale = split_fp64(x, 4, slice_bits=9)
        for sl in slices:
            assert np.abs(sl).max() <= 1.0 + 2.0 ** -9
            # exactly representable on the 2^-9 grid
            np.testing.assert_array_equal(sl, np.round(sl * 512) / 512)
        # fp16 conversion is lossless for normalized slices
        for sl in slices:
            np.testing.assert_array_equal(
                sl.astype(np.float16).astype(np.float64), sl)

    def test_zero_rows_handled(self):
        x = np.zeros((4, 4))
        slices, scale = split_fp64(x, 3)
        for sl in slices:
            np.testing.assert_array_equal(sl, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_fp64(np.ones((2, 2)), 0)


class TestOzakiGemm:
    def test_error_decreases_with_slices_to_fp64_level(self):
        fp16_err, fp64_err, reports = compare_schemes(n=48, max_slices=6)
        errs = [r.max_error for r in reports]
        assert errs[0] < fp16_err * 10  # one slice ~ plain low precision
        assert all(b <= a for a, b in zip(errs, errs[1:]))
        assert errs[-1] < 100 * fp64_err  # recovers FP64-class accuracy

    def test_sweep_count_quadratic(self):
        _, _, reports = compare_schemes(n=16, max_slices=4)
        assert [r.mma_sweeps for r in reports] == [1, 3, 6, 10]

    def test_rectangular_operands(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(-2, 2, (24, 32))
        b = rng.uniform(-2, 2, (32, 16))
        got = ozaki_gemm(a, b, n_slices=6)
        np.testing.assert_allclose(got, a @ b, atol=1e-10)

    def test_wide_dynamic_range(self):
        # per-row scaling must keep accuracy across magnitudes
        rng = np.random.default_rng(3)
        a = rng.uniform(-1, 1, (16, 16)) * np.logspace(-6, 6, 16)[:, None]
        b = rng.uniform(-1, 1, (16, 16))
        got = ozaki_gemm(a, b, n_slices=6)
        rel = np.abs(got - a @ b) / np.maximum(np.abs(a @ b), 1e-300)
        assert np.median(rel) < 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            ozaki_gemm(np.ones((2, 3)), np.ones((2, 3)))

    @given(st.integers(0, 5000))
    @settings(max_examples=8, deadline=None)
    def test_property_beats_plain_fp16(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-2, 2, (16, 16))
        b = rng.uniform(-2, 2, (16, 16))
        plain = mma_mixed_batched(a[np.newaxis], b[np.newaxis],
                                  precision=Precision.FP16)[0]
        oz = ozaki_gemm(a, b, n_slices=3)
        exact = a @ b
        assert np.abs(oz - exact).max() \
            <= np.abs(plain - exact).max() + 1e-15


class TestOzakiEconomics:
    def test_three_slice_ozaki_beats_fp64_tc_on_b200(self):
        dev = Device("B200")
        n = 8192
        t_oz = modeled_ozaki_time(n, dev, n_slices=3)
        t_fp64 = 2.0 * n ** 3 / (dev.spec.tc_fp64 * 0.55) \
            + dev.spec.launch_overhead_s
        assert t_oz < t_fp64

    def test_enough_slices_erase_the_advantage_on_hopper(self):
        # H200's strong FP64 TC: full-accuracy Ozaki (6 slices = 21
        # sweeps at ~15x FP16:FP64 ratio) is not clearly ahead
        dev = Device("H200")
        n = 8192
        t_oz = modeled_ozaki_time(n, dev, n_slices=6)
        t_fp64 = 2.0 * n ** 3 / (dev.spec.tc_fp64 * 0.55) \
            + dev.spec.launch_overhead_s
        assert t_oz > 0.4 * t_fp64
