"""Tests for the algorithm-level MMU-suitability predictor, including the
validation against the ten Cubie workloads the module promises."""

import numpy as np
import pytest

from repro.analysis.suitability import KernelSketch, Verdict, predict
from repro.gpu import Device
from repro.gpu.specs import H200, get_gpu
from repro.kernels import Variant, get_workload

# sketches of the ten workloads *before* MMU transformation: numbers a
# reader can derive from each algorithm's definition (representative case)
WORKLOAD_SKETCHES = {
    # GEMM 1K^3: 2 GFLOP over ~25 MB with tiling reuse
    "gemm": KernelSketch("gemm", essential_flops=2 * 1024 ** 3,
                         bytes_moved=2.6e8, mma_redundancy=1.0),
    # FFT 256-pt x 2048x1024 signals: 5 n log n, one rw pass, but the MMA
    # form computes ~2.2x and needs an extra layout pass
    "fft": KernelSketch("fft", essential_flops=5 * 5.4e8 * 8,
                        bytes_moved=1.7e10, mma_redundancy=2.2,
                        layout_traffic_factor=2.0),
    # Stencil 10K^2 star2d1r: 10 flops/pt; vector version re-reads rows
    "stencil": KernelSketch("stencil", essential_flops=10 * 1e8,
                            bytes_moved=3.2e9, mma_redundancy=1.6,
                            layout_traffic_factor=0.5),
    # PiC 1M particles: compute-rich pushes over small state
    "pic": KernelSketch("pic", essential_flops=280 * 1e6,
                        bytes_moved=9.6e7, mma_redundancy=4.3),
    # Scan 2^24: 1 add/element, constant matrices, log-depth vector scan
    "scan": KernelSketch("scan", essential_flops=1.7e7,
                         bytes_moved=2.7e8, mma_redundancy=48.0,
                         constant_operand=True, serial_fraction=0.25),
    "reduction": KernelSketch("reduction", essential_flops=1.7e7,
                              bytes_moved=1.4e8, mma_redundancy=16.0,
                              constant_operand=True, serial_fraction=0.25),
    # GEMV 11K x 16: streaming A, diagonal-only MMA output
    "gemv": KernelSketch("gemv", essential_flops=2 * 11264 * 16,
                         bytes_moved=11264 * 16 * 8.0,
                         mma_redundancy=8.0),
    # SpMV raefsky3: 12B/nnz stream + 8B/nnz scattered x gathers
    "spmv": KernelSketch("spmv", essential_flops=2 * 1.5e6,
                         bytes_moved=3.0e7, mma_redundancy=8.8,
                         scattered_byte_fraction=0.4,
                         layout_traffic_factor=0.75),
    # SpGEMM raefsky3: hash-based expansion, scattered B-row re-reads
    "spgemm": KernelSketch("spgemm", essential_flops=2.1e8,
                           bytes_moved=1.7e8, mma_redundancy=2.0,
                           scattered_byte_fraction=0.5,
                           layout_traffic_factor=0.6),
}


class TestSketchValidation:
    def test_valid(self):
        s = KernelSketch("k", 100.0, 10.0)
        assert s.arithmetic_intensity == 10.0
        assert not s.baseline_irregular

    @pytest.mark.parametrize("kwargs", [
        dict(essential_flops=1.0, bytes_moved=0.0),
        dict(essential_flops=1.0, bytes_moved=1.0, mma_redundancy=0.5),
        dict(essential_flops=1.0, bytes_moved=1.0, serial_fraction=1.0),
        dict(essential_flops=1.0, bytes_moved=1.0,
             scattered_byte_fraction=1.5),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            KernelSketch("k", **kwargs)

    def test_irregular_threshold(self):
        low = KernelSketch("k", 1.0, 1.0, scattered_byte_fraction=0.1)
        high = KernelSketch("k", 1.0, 1.0, scattered_byte_fraction=0.5)
        assert not low.baseline_irregular
        assert high.baseline_irregular


class TestPredictorMechanics:
    def test_compute_bound_kernel_strong_on_hopper(self):
        s = KernelSketch("dense", essential_flops=1e12, bytes_moved=1e9)
        p = predict(s, H200)
        assert p.tc_bottleneck == "tensor"
        assert p.verdict is Verdict.STRONG

    def test_pure_streaming_kernel_marginal(self):
        s = KernelSketch("streaming", essential_flops=1e6,
                         bytes_moved=1e9)
        p = predict(s, H200)
        assert p.verdict in (Verdict.MARGINAL, Verdict.COUNTERPRODUCTIVE)

    def test_layout_overhead_can_flip_the_verdict(self):
        base = dict(essential_flops=5e8, bytes_moved=1e9)
        good = predict(KernelSketch("a", **base), H200)
        bad = predict(KernelSketch("b", layout_traffic_factor=3.0, **base),
                      H200)
        assert bad.speedup < good.speedup

    def test_blackwell_weakens_compute_bound_verdicts(self):
        s = KernelSketch("dense", essential_flops=1e12, bytes_moved=1e9)
        assert predict(s, get_gpu("B200")).speedup \
            < predict(s, H200).speedup

    def test_constant_operand_helps(self):
        base = dict(essential_flops=1e11, bytes_moved=1e9,
                    mma_redundancy=16.0)
        with_c = predict(KernelSketch("c", constant_operand=True, **base),
                         H200)
        without = predict(KernelSketch("n", **base), H200)
        assert with_c.speedup > without.speedup


class TestAgainstCubie:
    """The module's promise: predictions match the measured outcomes."""

    @pytest.mark.parametrize("name", sorted(WORKLOAD_SKETCHES))
    def test_verdict_matches_measured_direction(self, name):
        dev = Device("H200")
        w = get_workload(name)
        p = predict(WORKLOAD_SKETCHES[name], H200)
        if Variant.BASELINE not in w.variants():
            pytest.skip("no baseline to compare against")
        case = w.representative_case()
        t_tc = dev.resolve(w.analytic_stats(Variant.TC, case)).time_s
        t_b = dev.resolve(w.analytic_stats(Variant.BASELINE, case)).time_s
        measured = t_b / t_tc
        # qualitative agreement: both sides of 1.0
        assert (p.speedup >= 1.0) == (measured >= 1.0), \
            (name, p.speedup, measured)

    def test_quantitative_agreement_within_2x(self):
        dev = Device("H200")
        ratios = []
        for name, sketch in WORKLOAD_SKETCHES.items():
            w = get_workload(name)
            if Variant.BASELINE not in w.variants():
                continue
            case = w.representative_case()
            t_tc = dev.resolve(w.analytic_stats(Variant.TC, case)).time_s
            t_b = dev.resolve(
                w.analytic_stats(Variant.BASELINE, case)).time_s
            measured = t_b / t_tc
            ratios.append(predict(sketch, H200).speedup / measured)
        ratios = np.array(ratios)
        assert np.all(ratios > 0.4) and np.all(ratios < 2.5), ratios
