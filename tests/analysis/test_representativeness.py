"""Tests for the Section 5.1 case-regime classification."""


from repro.analysis.representativeness import (
    Regime,
    classify_case,
    workload_regimes,
)
from repro.gpu import Device
from repro.kernels import GemmWorkload, GemvWorkload, Variant
from repro.kernels.base import WorkloadCase

DEV = Device("H200")


class TestClassifyCase:
    def test_large_gemm_is_compute_bound(self):
        w = GemmWorkload()
        p = classify_case(w, w.cases()[-1], DEV)
        assert p.regime is Regime.COMPUTE
        assert p.bottleneck == "tensor"
        assert p.overhead_fraction < 0.05

    def test_tiny_gemm_is_latency_bound(self):
        w = GemmWorkload()
        case = WorkloadCase(label="tiny", params={"m": 32, "n": 32,
                                                  "k": 32})
        p = classify_case(w, case, DEV)
        assert p.regime is Regime.LATENCY
        assert p.overhead_fraction > 0.33

    def test_huge_gemv_is_memory_bound(self):
        w = GemvWorkload()
        case = WorkloadCase(label="big", params={"m": 1 << 22, "n": 16})
        p = classify_case(w, case, DEV)
        assert p.regime is Regime.MEMORY
        assert p.bottleneck == "dram"

    def test_threshold_parameter(self):
        w = GemmWorkload()
        case = WorkloadCase(label="mid", params={"m": 256, "n": 256,
                                                 "k": 256})
        strict = classify_case(w, case, DEV, latency_threshold=0.01)
        assert strict.regime is Regime.LATENCY  # any overhead counts

    def test_variant_affects_bottleneck(self):
        w = GemmWorkload()
        case = w.cases()[-1]
        tc = classify_case(w, case, DEV, Variant.TC)
        cc = classify_case(w, case, DEV, Variant.CC)
        assert tc.bottleneck == "tensor"
        assert cc.bottleneck == "fma"


class TestWorkloadRegimes:
    def test_five_profiles_per_workload(self):
        profiles = workload_regimes(GemmWorkload(), DEV)
        assert len(profiles) == 5
        assert [p.case for p in profiles] == \
            [c.label for c in GemmWorkload().cases()]

    def test_gemm_sweep_spans_regimes(self):
        regimes = {p.regime for p in workload_regimes(GemmWorkload(), DEV)}
        assert len(regimes) >= 2

    def test_times_positive_and_finite(self):
        for p in workload_regimes(GemvWorkload(), DEV):
            assert 0 < p.time_s < 1.0
            assert 0 <= p.overhead_fraction <= 1.0
