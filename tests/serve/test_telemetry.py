"""Telemetry: trace spans, rolling histograms, snapshot accounting."""

from repro.serve.telemetry import RollingHistogram, Telemetry, Trace


class TestTrace:
    def test_phases_accumulate(self):
        times = iter([0.0, 1.0, 3.0, 3.0, 7.0, 10.0])
        trace = Trace(clock=lambda: next(times))
        with trace.phase("queue"):      # 1.0 -> 3.0
            pass
        with trace.phase("model"):      # 3.0 -> 7.0
            pass
        assert trace.spans == {"queue": 2.0, "model": 4.0}
        d = trace.to_dict()
        assert d["queue_s"] == 2.0 and d["model_s"] == 4.0
        assert d["total_s"] == 10.0     # last clock read minus t0

    def test_repeated_phase_sums(self):
        trace = Trace()
        trace.add("model", 0.25)
        trace.add("model", 0.5)
        assert trace.spans["model"] == 0.75


class TestRollingHistogram:
    def test_nearest_rank_percentiles(self):
        h = RollingHistogram(window=256)
        for v in range(1, 101):         # 1..100
            h.observe(float(v))
        assert h.percentile(0.50) == 50.0
        assert h.percentile(0.95) == 95.0
        assert h.percentile(0.99) == 99.0
        assert h.percentile(1.0) == 100.0

    def test_empty_is_zero(self):
        assert RollingHistogram().percentile(0.99) == 0.0

    def test_window_bounds_memory(self):
        h = RollingHistogram(window=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.summary()["window"] == 8
        assert h.percentile(0.5) >= 92.0  # only the tail remains


class TestTelemetry:
    def test_counters_and_gauges(self):
        t = Telemetry()
        t.inc("requests_total", 3)
        t.gauge("pool_mode", "thread")
        snap = t.snapshot()
        assert snap["counters"]["requests_total"] == 3
        assert snap["gauges"]["pool_mode"] == "thread"

    def test_reuse_rate(self):
        t = Telemetry()
        t.inc("requests_total", 10)
        t.inc("coalesced_total", 3)
        t.inc("cache_hits_total", 4)
        t.inc("stale_served_total", 1)
        assert t.snapshot()["reuse_rate"] == 0.8

    def test_latency_and_trace_histograms(self):
        t = Telemetry()
        t.observe_latency("perf", 0.5)
        trace = Trace()
        trace.add("model", 0.4)
        t.observe_trace(trace)
        snap = t.snapshot()
        assert snap["latency_by_kind"]["perf"]["count"] == 1
        assert snap["phase_spans"]["model"]["p50_s"] == 0.4
