"""End-to-end service behavior: TCP wire, degradation under saturation.

Covers the acceptance criteria directly: served answers bit-identical to
direct resolution, the admission queue rejecting under saturation, the
deadline path degrading to stale answers, and the circuit breaker
tripping, half-opening, and recovering.
"""

import asyncio
import json
import socket
import threading

from repro.serve import (
    CharacterizationService,
    HostedService,
    ServeClient,
    ServeConfig,
    run_loadgen,
    run_query_locally,
)
from repro.serve.protocol import Request, normalize_params
from repro.serve.queries import resolve_query

from .conftest import run


def make_request(kind, params=None, **kwargs):
    return Request(kind=kind, params=normalize_params(kind, params),
                   **kwargs)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTcpWire:
    def test_served_answers_bit_identical_to_direct(self, thread_config):
        """quadrant + perf over TCP == run_query_locally == resolver."""
        cases = [
            ("quadrant", {"workload": "gemv"}),
            ("perf", {"workloads": ["gemv"], "gpus": ["A100"]}),
        ]
        with HostedService(thread_config) as hosted:
            host, port = hosted.address
            with ServeClient(host, port) as client:
                for kind, params in cases:
                    wire = client.query(kind, params)
                    assert wire.ok and wire.served_by == "model"
                    local = run_query_locally(kind, params)
                    assert local.ok
                    direct = resolve_query(
                        kind, normalize_params(kind, params))
                    wire_json = json.dumps(wire.result, sort_keys=True)
                    assert wire_json == json.dumps(local.result,
                                                   sort_keys=True)
                    assert wire_json == json.dumps(direct, sort_keys=True)

    def test_second_identical_query_served_from_cache(self, thread_config):
        with HostedService(thread_config) as hosted:
            host, port = hosted.address
            with ServeClient(host, port) as client:
                first = client.query("edp", {"workload": "gemv"})
                second = client.query("edp", {"workload": "gemv"})
        assert first.served_by == "model"
        assert second.served_by == "cache"
        assert json.dumps(first.result) == json.dumps(second.result)

    def test_malformed_line_keeps_connection_alive(self, thread_config):
        with HostedService(thread_config) as hosted:
            host, port = hosted.address
            sock = socket.create_connection((host, port), timeout=10)
            try:
                f = sock.makefile("r", encoding="utf-8", newline="\n")
                sock.sendall(b"this is not json\n")
                err = json.loads(f.readline())
                assert err["ok"] is False
                assert err["id"] is None
                assert err["error"]["code"] == "bad_request"
                # the same connection still serves valid queries
                sock.sendall(b'{"kind": "ping", "id": "after"}\n')
                ok = json.loads(f.readline())
                assert ok["ok"] is True and ok["id"] == "after"
                assert ok["result"] == "pong"
            finally:
                sock.close()

    def test_metrics_query_reports_activity(self, thread_config):
        with HostedService(thread_config) as hosted:
            host, port = hosted.address
            with ServeClient(host, port) as client:
                client.query("quadrant", {"workload": "gemv"})
                snap = client.query("metrics").result
        assert snap["counters"]["requests_total"] >= 1
        assert snap["counters"]["connections_total"] >= 1
        assert snap["gauges"]["pool_mode"] == "thread"
        assert "quadrant" in snap["latency_by_kind"]

    def test_short_loadgen_run_is_clean(self, thread_config):
        """Mini version of the CI smoke: zero errors, high reuse."""
        with HostedService(thread_config) as hosted:
            host, port = hosted.address
            summary = run_loadgen(host, port, clients=4, duration_s=1.5)
        assert summary["errors"] == 0, summary["error_samples"]
        assert summary["requests"] > 0
        assert summary["reuse_rate"] >= 0.95
        assert summary["server_metrics"] is not None


class BlockingResolver:
    def __init__(self):
        self.release = threading.Event()

    def __call__(self, kind, params):
        if not self.release.wait(timeout=10):
            raise TimeoutError("test never released the resolver")
        return {"kind": kind, "echo": dict(params)}


async def settle(predicate, timeout_s=5.0):
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.005)


class TestSaturation:
    def test_queue_depth_cap_rejects_overload(self):
        """Distinct queries beyond max_queue_depth get ``overloaded``;
        coalesced joins stay admitted."""
        config = ServeConfig(pool_mode="thread", workers=1,
                             max_queue_depth=1, default_deadline_s=10.0)
        resolver = BlockingResolver()

        async def scenario():
            service = CharacterizationService(config, resolver=resolver)
            try:
                first = asyncio.ensure_future(service.handle(
                    make_request("quadrant", {"workload": "gemv"})))
                await settle(lambda: service.scheduler.inflight_count() == 1)
                # a distinct query needs a new job: queue is full
                rejected = await service.handle(
                    make_request("quadrant", {"workload": "spmv"}))
                # an identical query joins the in-flight job: admitted
                joined = asyncio.ensure_future(service.handle(
                    make_request("quadrant", {"workload": "gemv"})))
                await settle(
                    lambda: service.telemetry.counter("coalesced_total") == 1)
                resolver.release.set()
                return rejected, await first, await joined
            finally:
                await service.stop()

        rejected, first, joined = run(scenario())
        assert not rejected.ok
        assert rejected.error["code"] == "overloaded"
        assert first.ok and joined.ok
        assert joined.served_by == "coalesced"

    def test_deadline_errors_then_serves_stale(self):
        config = ServeConfig(pool_mode="thread", workers=1,
                             default_deadline_s=10.0)
        resolver = BlockingResolver()

        async def scenario():
            service = CharacterizationService(config, resolver=resolver)
            try:
                req = make_request("edp", {"workload": "gemv"},
                                   deadline_s=0.1, fresh=True)
                # nothing cached yet: the overrun is a hard error
                timed_out = await service.handle(req)
                resolver.release.set()  # let the job finish and be stored
                await settle(
                    lambda: service.scheduler.inflight_count() == 0)
                # block again; the fresh re-ask overruns but now degrades
                resolver.release.clear()
                stale = await service.handle(req)
                resolver.release.set()
                return timed_out, stale, service.telemetry.snapshot()
            finally:
                await service.stop()

        timed_out, stale, snap = run(scenario())
        assert not timed_out.ok
        assert timed_out.error["code"] == "deadline_exceeded"
        assert stale.ok and stale.stale and stale.served_by == "stale"
        assert stale.result == {"kind": "edp",
                                "echo": normalize_params(
                                    "edp", {"workload": "gemv"})}
        assert snap["counters"]["deadline_exceeded_total"] == 2
        assert snap["counters"]["stale_served_total"] == 1

    def test_breaker_trips_half_opens_and_recovers(self):
        clock = FakeClock()
        config = ServeConfig(pool_mode="thread", workers=1,
                             breaker_threshold=2, breaker_cooldown_s=10.0,
                             default_deadline_s=10.0)
        healthy = threading.Event()

        def resolver(kind, params):
            if not healthy.is_set():
                raise RuntimeError("model backend down")
            return {"kind": kind, "ok": True}

        async def scenario():
            service = CharacterizationService(config, resolver=resolver,
                                              clock=clock)
            try:
                req = make_request("edp", {"workload": "gemv"}, fresh=True)
                failures = [await service.handle(req) for _ in range(2)]
                breaker = service.admission.breaker("edp")
                state_after_trip = breaker.state
                # while open: fail fast, no model call
                blocked = await service.handle(req)
                # cooldown elapses -> half-open probe; backend is healthy
                clock.advance(10.1)
                healthy.set()
                probe = await service.handle(req)
                state_after_probe = breaker.state
                recovered = await service.handle(req)
                return (failures, state_after_trip, blocked, probe,
                        state_after_probe, recovered)
            finally:
                await service.stop()

        (failures, state_after_trip, blocked, probe,
         state_after_probe, recovered) = run(scenario())
        assert all(not f.ok and f.error["code"] == "model_error"
                   for f in failures)
        assert state_after_trip == "open"
        assert not blocked.ok
        assert blocked.error["code"] == "circuit_open"
        assert probe.ok and probe.served_by == "model"
        assert state_after_probe == "closed"
        assert recovered.ok

    def test_open_breaker_serves_stale_when_primed(self):
        clock = FakeClock()
        config = ServeConfig(pool_mode="thread", workers=1,
                             breaker_threshold=1, default_deadline_s=10.0)
        healthy = threading.Event()
        healthy.set()

        def resolver(kind, params):
            if not healthy.is_set():
                raise RuntimeError("model backend down")
            return {"kind": kind, "ok": True}

        async def scenario():
            service = CharacterizationService(config, resolver=resolver,
                                              clock=clock)
            try:
                req = make_request("edp", {"workload": "gemv"}, fresh=True)
                good = await service.handle(req)          # primes the store
                healthy.clear()
                failed = await service.handle(req)        # trips breaker
                stale = await service.handle(req)         # open -> stale
                return good, failed, stale
            finally:
                await service.stop()

        good, failed, stale = run(scenario())
        assert good.ok and good.served_by == "model"
        assert not failed.ok
        assert stale.ok and stale.stale and stale.served_by == "stale"
        assert json.dumps(stale.result) == json.dumps(good.result)

    def test_rate_limit_rejects_burst(self):
        clock = FakeClock()
        config = ServeConfig(pool_mode="thread", workers=1,
                             rate=1.0, burst=2.0, default_deadline_s=10.0)

        async def scenario():
            service = CharacterizationService(
                config, resolver=lambda kind, params: {"v": 1},
                clock=clock)
            try:
                req = make_request("edp", {"workload": "gemv"}, fresh=True)
                answers = [await service.handle(req) for _ in range(3)]
                return answers
            finally:
                await service.stop()

        a, b, c = run(scenario())
        assert a.ok and b.ok
        assert not c.ok
        assert c.error["code"] == "rate_limited"
