"""A miniature chaos run: injected drops + cache faults, verified answers.

This is the in-suite version of the CI chaos-smoke gate — a few seconds
of load against a self-hosted service while connections drop and cache
reads/writes fail, asserting zero wrong answers and bounded retries.
"""

import pytest

from repro import faults
from repro.perf.cache import ResultCache, set_default_cache
from repro.serve import (
    HostedService,
    ServeConfig,
    loadgen_failures,
    run_loadgen,
)

MIX = [
    ("quadrant", {"workload": "gemv"}),
    ("roofline", {"workloads": ["gemv"], "gpu": "H200"}),
    ("ping", {}),
]


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset_fault_state()
    yield
    faults.clear_plan()


@pytest.fixture
def isolated_cache(tmp_path):
    """Throwaway default cache: injected cache faults stay in tmp."""
    cache = ResultCache(tmp_path / "cache")
    previous = set_default_cache(cache)
    yield cache
    set_default_cache(previous)


def test_chaos_mini_loadgen_zero_wrong_answers(isolated_cache):
    faults.install_plan("serve.conn_drop=0.2,cache.read_corrupt=0.2,"
                        "cache.write_fail=0.2,seed=7")
    config = ServeConfig(host="127.0.0.1", port=0, pool_mode="thread",
                         workers=2, batch_window_s=0.005,
                         default_deadline_s=10.0)
    with HostedService(config) as hosted:
        host, port = hosted.address
        summary = run_loadgen(host, port, clients=3, duration_s=2.0,
                              mix=MIX, verify=True, client_retries=8)
    assert loadgen_failures(summary, max_retry_rate=0.6) == []
    assert summary["wrong_answers"] == 0
    assert summary["requests"] > 0
    # the plan really injected: drops happened and were retried through
    drops = summary["server_metrics"].get("counters", {}) \
        .get("injected_conn_drops_total", 0)
    assert drops > 0
    assert summary["retries"] > 0
    assert summary["verified"] is True
