"""Protocol layer: envelopes, validation, normalization, bit-exactness."""

import json
import math

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    ProtocolError,
    QUERY_KINDS,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    normalize_params,
)


class TestRequestRoundTrip:
    def test_minimal(self):
        req = decode_request('{"kind": "ping"}')
        assert req.kind == "ping"
        assert req.params == {}
        assert req.id is None and req.deadline_s is None and not req.fresh

    def test_full_round_trip(self):
        req = Request(kind="quadrant",
                      params=normalize_params("quadrant",
                                              {"workload": "gemv"}),
                      id="q7", deadline_s=2.5, fresh=True)
        line = encode_request(req)
        assert line.endswith("\n") and "\n" not in line[:-1]
        back = decode_request(line)
        assert back == req

    def test_perf_defaults_filled(self):
        req = decode_request('{"kind": "perf"}')
        assert req.params == {"workloads": None,
                              "gpus": ["A100", "H200", "B200"]}

    def test_equivalent_requests_normalize_identically(self):
        a = normalize_params("perf", {"workloads": ["gemv"]})
        b = normalize_params("perf", {"workloads": ["gemv"],
                                      "gpus": ["A100", "H200", "B200"]})
        assert a == b

    def test_gpu_name_canonicalized(self):
        p = normalize_params("accuracy", {"workload": "gemv",
                                          "gpu": "h200"})
        assert p["gpu"] == "H200"


class TestRequestValidation:
    @pytest.mark.parametrize("line,code", [
        ("not json", "bad_request"),
        ("[1,2]", "bad_request"),
        ('{"params": {}}', "bad_request"),
        ('{"kind": "nope"}', "unknown_kind"),
        ('{"kind": "ping", "deadline_s": -1}', "bad_request"),
        ('{"kind": "ping", "fresh": "yes"}', "bad_request"),
        ('{"kind": "ping", "id": 7}', "bad_request"),
        ('{"kind": "quadrant", "params": {}}', "bad_params"),
        ('{"kind": "quadrant", "params": {"workload": "nope"}}',
         "bad_params"),
        ('{"kind": "quadrant", "params": {"workload": "gemv", '
         '"extra": 1}}', "bad_params"),
        ('{"kind": "perf", "params": {"gpus": ["Z100"]}}', "bad_params"),
        ('{"kind": "perf", "params": {"workloads": []}}', "bad_params"),
        ('{"kind": "edp", "params": {"workload": "gemv", '
         '"repeats": 0}}', "bad_params"),
        ('{"kind": "whatif", "params": {"scales": {"sms": 2.0}}}',
         "bad_params"),
        ('{"kind": "whatif", "params": {"scales": {"tc_fp64": -1}}}',
         "bad_params"),
        ('{"kind": "whatif", "params": {"scales": {"tc_fp64": 2}, '
         '"variant": "turbo"}}', "bad_params"),
        ('{"kind": "metrics", "params": {"x": 1}}', "bad_params"),
    ])
    def test_rejects(self, line, code):
        with pytest.raises(ProtocolError) as err:
            decode_request(line)
        assert err.value.code == code

    def test_every_code_is_registered(self):
        with pytest.raises(ValueError):
            ProtocolError("not_a_code", "boom")
        assert "model_error" in ERROR_CODES

    def test_every_kind_has_a_normalizer(self):
        for kind in QUERY_KINDS:
            # each normalizer accepts its own canonical output
            if kind in ("metrics", "ping", "observations"):
                assert normalize_params(kind, {}) == {}

    def test_whatif_normalizes_scales(self):
        p = normalize_params("whatif", {"base": "b200",
                                        "scales": {"tc_fp64": 2}})
        assert p["base"] == "B200"
        assert p["scales"] == {"tc_fp64": 2.0}
        assert isinstance(p["scales"]["tc_fp64"], float)
        assert p["variant"] == "tc"


class TestResponseRoundTrip:
    def test_ok_round_trip(self):
        resp = Response(id="q1", ok=True, result={"x": 1},
                        served_by="cache", trace={"total_s": 0.1})
        back = decode_response(encode_response(resp))
        assert back == resp

    def test_error_round_trip(self):
        resp = Response(id=None, ok=False,
                        error={"code": "overloaded", "message": "full"},
                        stale=False)
        back = decode_response(encode_response(resp))
        assert back.error == {"code": "overloaded", "message": "full"}
        assert not back.ok

    def test_floats_survive_bit_exactly(self):
        values = [math.pi, 1.0 / 3.0, 6.02214076e23, 5e-324,
                  3.7025836958577646e-06]
        resp = Response(id="f", ok=True, result=values)
        back = decode_response(encode_response(resp))
        assert [v.hex() for v in back.result] == [v.hex() for v in values]

    def test_malformed_response_rejected(self):
        with pytest.raises(ProtocolError):
            decode_response("{}")
        with pytest.raises(ProtocolError):
            decode_response("garbage")

    def test_wire_is_single_compact_line(self):
        line = encode_response(Response(id="a", ok=True, result=[1, 2]))
        assert line.endswith("\n")
        payload = json.loads(line)
        assert payload["result"] == [1, 2]
        assert payload["stale"] is False
