"""Scheduler: coalescing bit-identity, served-result cache, perf batching."""

import asyncio
import json
import threading

import pytest

from repro.serve import CharacterizationService
from repro.serve.protocol import Request, normalize_params
from repro.serve.queries import resolve_perf_batch, resolve_query
from repro.serve.scheduler import ModelPool, query_key

from .conftest import run


def make_request(kind, params=None, **kwargs):
    return Request(kind=kind, params=normalize_params(kind, params),
                   **kwargs)


class BlockingResolver:
    """An injectable resolver the test can hold open and release."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = []

    def __call__(self, kind, params):
        self.calls.append((kind, dict(params)))
        self.started.set()
        if not self.release.wait(timeout=10):
            raise TimeoutError("test never released the resolver")
        return {"kind": kind, "echo": dict(params), "tag": len(self.calls)}


async def settle(predicate, timeout_s=5.0):
    """Spin the loop until ``predicate()`` holds."""
    deadline = asyncio.get_running_loop().time() + timeout_s
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(0.005)


class TestCoalescing:
    def test_identical_inflight_queries_share_one_job(self, thread_config):
        resolver = BlockingResolver()

        async def scenario():
            service = CharacterizationService(thread_config,
                                              resolver=resolver)
            try:
                req = make_request("quadrant", {"workload": "gemv"})
                first = asyncio.ensure_future(service.handle(req))
                await settle(lambda: service.scheduler.inflight_count() == 1)
                second = asyncio.ensure_future(service.handle(req))
                await settle(
                    lambda: service.telemetry.counter("coalesced_total") == 1)
                resolver.release.set()
                return await asyncio.gather(first, second), service
            finally:
                await service.stop()

        (r1, r2), service = run(scenario())
        assert len(resolver.calls) == 1          # one model job for both
        assert r1.served_by == "model"
        assert r2.served_by == "coalesced"
        # bit-identity: coalesced waiters get the same payload object,
        # and it serializes identically
        assert r1.result is r2.result
        assert json.dumps(r1.result) == json.dumps(r2.result)
        assert service.telemetry.counter("coalesced_total") == 1

    def test_different_params_do_not_coalesce(self, thread_config):
        resolver = BlockingResolver()

        async def scenario():
            service = CharacterizationService(thread_config,
                                              resolver=resolver)
            try:
                a = asyncio.ensure_future(service.handle(
                    make_request("quadrant", {"workload": "gemv"})))
                b = asyncio.ensure_future(service.handle(
                    make_request("quadrant", {"workload": "spmv"})))
                await settle(lambda: len(resolver.calls) == 2)
                resolver.release.set()
                return await asyncio.gather(a, b)
            finally:
                await service.stop()

        ra, rb = run(scenario())
        assert ra.served_by == rb.served_by == "model"
        assert ra.result != rb.result


class TestServedResultCache:
    def test_repeat_query_hits_cache(self, thread_config):
        resolver = BlockingResolver()
        resolver.release.set()

        async def scenario():
            service = CharacterizationService(thread_config,
                                              resolver=resolver)
            try:
                req = make_request("edp", {"workload": "gemv"})
                first = await service.handle(req)
                second = await service.handle(req)
                return first, second
            finally:
                await service.stop()

        first, second = run(scenario())
        assert first.served_by == "model"
        assert second.served_by == "cache" and not second.stale
        assert len(resolver.calls) == 1
        assert json.dumps(first.result) == json.dumps(second.result)

    def test_fresh_flag_bypasses_cache(self, thread_config):
        resolver = BlockingResolver()
        resolver.release.set()

        async def scenario():
            service = CharacterizationService(thread_config,
                                              resolver=resolver)
            try:
                req = make_request("edp", {"workload": "gemv"})
                await service.handle(req)
                forced = await service.handle(
                    make_request("edp", {"workload": "gemv"}, fresh=True))
                return forced
            finally:
                await service.stop()

        forced = run(scenario())
        assert forced.served_by == "model"
        assert len(resolver.calls) == 2

    def test_results_lru_is_bounded(self, thread_config):
        from repro.serve.admission import AdmissionController
        from repro.serve.scheduler import Scheduler
        from repro.serve.telemetry import Telemetry

        sched = Scheduler(ModelPool(mode="thread"),
                          AdmissionController(), Telemetry(),
                          results_cap=2)
        sched.remember("a", 1)
        sched.remember("b", 2)
        sched.remember("c", 3)
        assert sched.cached("a") == (False, None)   # evicted, oldest
        assert sched.cached("b") == (True, 2)
        assert sched.cached("c") == (True, 3)


class TestQueryKey:
    def test_stable_and_param_sensitive(self):
        p = normalize_params("quadrant", {"workload": "gemv"})
        assert query_key("quadrant", p) == query_key("quadrant", dict(p))
        q = normalize_params("quadrant", {"workload": "spmv"})
        assert query_key("quadrant", p) != query_key("quadrant", q)
        assert query_key("edp", p) != query_key("quadrant", p)


class TestPerfBatching:
    def test_batch_answers_match_direct_resolution(self):
        """The acceptance criterion: batched == one-at-a-time, bitwise."""
        param_sets = [
            normalize_params("perf", {"workloads": ["gemv"],
                                      "gpus": ["A100"]}),
            normalize_params("perf", {"workloads": ["scan"],
                                      "gpus": ["A100"]}),
            normalize_params("perf", {"workloads": ["scan", "gemv"],
                                      "gpus": ["A100"]}),
        ]
        batched = resolve_perf_batch(param_sets, 1)
        direct = [resolve_query("perf", p) for p in param_sets]
        assert len(batched) == len(direct)
        for got, want in zip(batched, direct):
            assert json.dumps(got, sort_keys=True) == \
                json.dumps(want, sort_keys=True)

    def test_mixed_gpu_lists_rejected_within_batch(self):
        with pytest.raises(ValueError):
            resolve_perf_batch([
                normalize_params("perf", {"workloads": ["gemv"],
                                          "gpus": ["A100"]}),
                normalize_params("perf", {"workloads": ["gemv"],
                                          "gpus": ["H200"]}),
            ], 1)

    def test_concurrent_perf_queries_merge_into_one_batch(self,
                                                          thread_config):
        async def scenario():
            service = CharacterizationService(thread_config)
            try:
                reqs = [
                    make_request("perf", {"workloads": ["gemv"],
                                          "gpus": ["A100"]}),
                    make_request("perf", {"workloads": ["scan"],
                                          "gpus": ["A100"]}),
                ]
                answers = await asyncio.gather(
                    *(service.handle(r) for r in reqs))
                return answers, service.telemetry.snapshot()["counters"]
            finally:
                await service.stop()

        answers, counters = run(scenario())
        assert all(a.ok and a.served_by == "model" for a in answers)
        assert counters["perf_batches_total"] == 1
        assert counters["perf_batched_queries_total"] == 2
        # each answer matches its direct (unbatched) computation
        for a, workload in zip(answers, ("gemv", "scan")):
            want = resolve_query("perf", normalize_params(
                "perf", {"workloads": [workload], "gpus": ["A100"]}))
            assert json.dumps(a.result, sort_keys=True) == \
                json.dumps(want, sort_keys=True)


class TestFailures:
    def test_resolver_error_becomes_model_error(self, thread_config):
        def resolver(kind, params):
            raise ValueError("synthetic failure")

        async def scenario():
            service = CharacterizationService(thread_config,
                                              resolver=resolver)
            try:
                return await service.handle(
                    make_request("edp", {"workload": "gemv"}))
            finally:
                await service.stop()

        resp = run(scenario())
        assert not resp.ok
        assert resp.error["code"] == "model_error"
        assert "edp" in resp.error["message"]
        assert "ValueError" in resp.error["message"]

    def test_pool_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            ModelPool(workers=0)
        with pytest.raises(ValueError):
            ModelPool(mode="fiber")
