"""Shared helpers for the serve-subsystem tests.

Tests run the asyncio pipeline via ``asyncio.run`` (no event-loop
plugin dependency) and default to the thread pool so injected closure
resolvers work and no subprocesses are spawned.
"""

import asyncio

import pytest

from repro.serve import ServeConfig


def run(coro):
    """Run one coroutine to completion on a fresh event loop."""
    return asyncio.run(coro)


@pytest.fixture
def thread_config():
    """A fast, injectable service config: ephemeral port, thread pool."""
    return ServeConfig(host="127.0.0.1", port=0, pool_mode="thread",
                       workers=2, batch_window_s=0.01,
                       default_deadline_s=10.0)
