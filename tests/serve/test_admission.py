"""Admission gates: token bucket, circuit breaker, controller wiring."""

import pytest

from repro.serve.admission import (
    AdmissionController,
    CircuitBreaker,
    TokenBucket,
)
from repro.serve.telemetry import Telemetry


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == \
            [True, True, True, False]
        clock.advance(0.5)  # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert [bucket.try_acquire() for _ in range(3)] == \
            [True, True, False]

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=5.0):
        clock = FakeClock()
        return CircuitBreaker(threshold, cooldown, clock=clock), clock

    def test_trips_after_threshold_consecutive_failures(self):
        b, _ = self.make(threshold=3)
        b.record_failure()
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED and b.allow()
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN and not b.allow()

    def test_success_resets_failure_count(self):
        b, _ = self.make(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_recover(self):
        b, clock = self.make(threshold=1, cooldown=5.0)
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        clock.advance(4.9)
        assert not b.allow()
        clock.advance(0.2)
        assert b.allow()                     # the single half-open probe
        assert b.state == CircuitBreaker.HALF_OPEN
        assert not b.allow()                 # second concurrent probe denied
        b.record_success()
        assert b.state == CircuitBreaker.CLOSED and b.allow()

    def test_half_open_failure_retrips(self):
        b, clock = self.make(threshold=1, cooldown=5.0)
        b.record_failure()
        clock.advance(5.0)
        assert b.allow()
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert not b.allow()                 # cooldown restarts
        clock.advance(5.0)
        assert b.allow()

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)


class TestAdmissionController:
    def test_rate_gate_disabled_by_default(self):
        ac = AdmissionController(clock=FakeClock())
        assert all(ac.try_rate() for _ in range(1000))

    def test_rate_gate_enforced_and_counted(self):
        t = Telemetry()
        ac = AdmissionController(rate=1.0, burst=2.0, telemetry=t,
                                 clock=FakeClock())
        assert ac.try_rate() and ac.try_rate()
        assert not ac.try_rate()
        assert t.counter("rejected_rate_total") == 1

    def test_depth_gate(self):
        t = Telemetry()
        ac = AdmissionController(max_queue_depth=2, telemetry=t,
                                 clock=FakeClock())
        assert ac.try_depth(0) and ac.try_depth(1)
        assert not ac.try_depth(2)
        assert t.counter("rejected_depth_total") == 1
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)

    def test_breakers_are_per_kind(self):
        clock = FakeClock()
        ac = AdmissionController(breaker_threshold=1, telemetry=Telemetry(),
                                 clock=clock)
        ac.record_result("perf", ok=False)
        assert not ac.allow_model("perf")
        assert ac.allow_model("quadrant")    # independent breaker

    def test_breaker_states_exported_to_gauges(self):
        t = Telemetry()
        ac = AdmissionController(breaker_threshold=1, telemetry=t,
                                 clock=FakeClock())
        ac.record_result("edp", ok=False)
        ac.record_result("perf", ok=True)
        states = t.snapshot()["gauges"]["breaker_states"]
        assert states == {"edp": "open", "perf": "closed"}
        assert t.counter("model_failures_total") == 1
