"""Handshake framing under hostile input.

Raw-socket drills against an authenticated server: malformed, truncated,
oversized, and out-of-order handshake lines must each produce a typed
refusal (or a clean close) without ever crashing the accept loop — after
every abuse case the server still answers a well-formed connection.
"""

import json
import socket

import pytest

from repro.serve import (
    HANDSHAKE_MAX_BYTES,
    HostedService,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeConnectionError,
    encode_handshake,
)
from repro.serve.client import ServeConnectionError as _SCE

TOKEN = "hunter2"


@pytest.fixture(scope="module")
def auth_service():
    config = ServeConfig(host="127.0.0.1", port=0, pool_mode="thread",
                         workers=1, batch_window_s=0.01, shard_id="s9",
                         token=TOKEN)
    with HostedService(config) as hosted:
        yield hosted.address


def exchange(address, payload: bytes, lines: int = 1) -> list[bytes]:
    """Send raw bytes, read up to ``lines`` reply lines."""
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(payload)
        reader = sock.makefile("rb")
        return [reader.readline() for _ in range(lines)]


def refusal_code(reply: bytes) -> str:
    payload = json.loads(reply)
    assert payload["ok"] is False
    return payload["error"]["code"]


def assert_still_serving(address):
    """The abuse above must not have taken the accept loop down."""
    with ServeClient(*address, token=TOKEN) as client:
        assert client.query("ping").result == "pong"


class TestHandshakeAccepts:
    def test_valid_handshake_then_ping(self, auth_service):
        payload = encode_handshake(TOKEN).encode() + b'{"kind":"ping"}\n'
        hello, pong = exchange(auth_service, payload, lines=2)
        hello = json.loads(hello)
        assert hello["ok"] is True
        assert hello["result"]["shard_id"] == "s9"
        assert json.loads(pong)["result"] == "pong"

    def test_tokenless_server_answers_handshake_politely(self):
        """A client configured with a token can still talk to a plain
        server: the handshake gets a friendly OK instead of an error."""
        config = ServeConfig(host="127.0.0.1", port=0, pool_mode="thread",
                             workers=1, batch_window_s=0.01)
        with HostedService(config) as hosted:
            with ServeClient(*hosted.address, token="whatever") as client:
                assert client.query("ping").result == "pong"


class TestHandshakeRefusals:
    def test_query_before_handshake_is_auth_required(self, auth_service):
        reply, = exchange(auth_service,
                          b'{"kind": "quadrant", "params": '
                          b'{"workload": "gemv"}}\n')
        assert refusal_code(reply) == "auth_required"
        assert_still_serving(auth_service)

    @pytest.mark.parametrize("junk", [
        b"not json at all\n",
        b"{}\n",
        b'{"fabric": "one", "token": "hunter2"}\n',
        b'["fabric", 1]\n',
        b"\xff\xfe\x00garbage\x00\n",
    ])
    def test_malformed_lines_are_refused(self, auth_service, junk):
        reply, = exchange(auth_service, junk)
        assert refusal_code(reply) in ("auth_required", "bad_token")
        assert_still_serving(auth_service)

    def test_wrong_token_is_bad_token(self, auth_service):
        reply, = exchange(auth_service, encode_handshake("nope").encode())
        assert refusal_code(reply) == "bad_token"

    def test_wrong_version_is_bad_token(self, auth_service):
        line = json.dumps({"fabric": 99, "token": TOKEN}) + "\n"
        reply, = exchange(auth_service, line.encode())
        assert refusal_code(reply) == "bad_token"

    def test_oversized_handshake_is_bad_token(self, auth_service):
        padded = json.dumps({"fabric": 1, "token": TOKEN,
                             "pad": "x" * HANDSHAKE_MAX_BYTES}) + "\n"
        reply, = exchange(auth_service, padded.encode())
        assert refusal_code(reply) == "bad_token"
        assert_still_serving(auth_service)

    def test_refused_connection_is_closed(self, auth_service):
        refusal, then = exchange(auth_service,
                                 encode_handshake("nope").encode()
                                 + b'{"kind":"ping"}\n', lines=2)
        assert refusal_code(refusal) == "bad_token"
        assert then == b""  # EOF: no service after a refusal


class TestFraming:
    def test_unterminated_giant_line_closes_cleanly(self, auth_service):
        """A line exceeding the stream limit (64 KiB) cannot be parsed or
        resynchronized past: the server drops the connection instead of
        crashing the reader task."""
        with socket.create_connection(auth_service, timeout=10) as sock:
            try:
                sock.sendall(b"a" * (128 * 1024))
                sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass  # server already dropped us: equally fine
            assert sock.makefile("rb").readline() == b""
        assert_still_serving(auth_service)

    def test_truncated_handshake_then_close(self, auth_service):
        """A client dying mid-handshake-line leaves nothing to answer."""
        half = encode_handshake(TOKEN).encode()[:10]
        with socket.create_connection(auth_service, timeout=10) as sock:
            sock.sendall(half)
            sock.shutdown(socket.SHUT_WR)
            assert sock.makefile("rb").readline() == b""
        assert_still_serving(auth_service)

    def test_empty_lines_before_handshake_are_ignored(self, auth_service):
        payload = b"\n\n" + encode_handshake(TOKEN).encode()
        hello, = exchange(auth_service, payload)
        assert json.loads(hello)["ok"] is True


class TestPerTokenRate:
    def test_second_immediate_query_is_rate_limited(self):
        config = ServeConfig(host="127.0.0.1", port=0, pool_mode="thread",
                             workers=1, batch_window_s=0.01,
                             token=TOKEN, auth_rate=0.001, auth_burst=1.0)
        with HostedService(config) as hosted:
            with ServeClient(*hosted.address, token=TOKEN) as client:
                first = client.query("ping")
                second = client.query("ping")
        assert first.ok
        assert not second.ok
        assert second.error["code"] == "rate_limited"


class TestClientErrors:
    def test_conn_error_names_shard_and_retry_budget(self):
        exc = ServeConnectionError("h", 7341, "perf", "reset by peer",
                                   shard_id="s1", retry_count=2)
        assert exc.code == "conn_dropped"
        assert "shard s1" in exc.message
        assert "2 retries" in exc.message
        assert (exc.shard_id, exc.retry_count) == ("s1", 2)

    def test_conn_error_minimal_form(self):
        exc = _SCE("h", 7341, "ping", "boom")
        assert "shard" not in exc.message
        assert "retr" not in exc.message

    def test_connect_refused_surfaces_as_typed_error(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ServeClient("127.0.0.1", port, retries=0)
        with pytest.raises(ServeConnectionError) as excinfo:
            client.query("ping")
        assert excinfo.value.code == "conn_dropped"
        assert excinfo.value.kind == "ping"
