"""ServeClient retry behavior against misbehaving servers.

These tests stand up tiny handcrafted TCP servers (threads, stdlib
sockets) that drop, truncate, or eventually answer — exercising the
typed :class:`ServeConnectionError` and the reconnect-and-retry loop
without needing the full characterization service.
"""

import json
import socket
import threading

import pytest

from repro.serve.client import ServeClient, ServeConnectionError
from repro.serve.protocol import ProtocolError


def _listener():
    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    srv.bind(("127.0.0.1", 0))
    srv.listen(8)
    return srv, srv.getsockname()[1]


def _serve(srv, behaviors):
    """Accept one connection per behavior; each behavior handles it."""
    def run():
        for behave in behaviors:
            try:
                conn, _ = srv.accept()
            except OSError:
                return
            try:
                behave(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
    t = threading.Thread(target=run, daemon=True)
    t.start()
    return t


def _drop_after_request(conn):
    conn.makefile("r").readline()  # consume the request, reply nothing


def _truncate_reply(conn):
    conn.makefile("r").readline()
    conn.sendall(b'{"id": "c1", "ok": true, "resu')  # no newline, then close


def _answer_pong(conn):
    fh = conn.makefile("r")
    while True:
        line = fh.readline()
        if not line:
            return
        req = json.loads(line)
        resp = {"id": req["id"], "ok": True, "result": "pong",
                "served_by": "model"}
        conn.sendall((json.dumps(resp) + "\n").encode())


class TestTypedConnectionError:
    def test_error_names_endpoint_and_kind(self):
        srv, port = _listener()
        _serve(srv, [_drop_after_request])
        try:
            client = ServeClient("127.0.0.1", port, retries=0, timeout_s=5)
            with pytest.raises(ServeConnectionError) as info:
                client.query("ping")
            assert f"127.0.0.1:{port}" in str(info.value)
            assert "'ping'" in str(info.value)
            assert info.value.code == "conn_dropped"
            assert (info.value.host, info.value.port) == ("127.0.0.1", port)
            assert info.value.kind == "ping"
        finally:
            srv.close()

    def test_is_a_protocol_error(self):
        # existing except ProtocolError handlers must keep catching it
        assert issubclass(ServeConnectionError, ProtocolError)

    def test_short_read_closes_socket_cleanly(self):
        srv, port = _listener()
        _serve(srv, [_truncate_reply])
        try:
            client = ServeClient("127.0.0.1", port, retries=0, timeout_s=5)
            with pytest.raises(ServeConnectionError, match="truncated"):
                client.query("ping")
            # the fragment and its socket were dropped together
            assert client._sock is None and client._file is None
        finally:
            srv.close()

    def test_connect_refused_is_typed(self):
        srv, port = _listener()
        srv.close()  # nobody listening on this port anymore
        client = ServeClient("127.0.0.1", port, retries=0, timeout_s=5)
        with pytest.raises(ServeConnectionError, match="connect failed"):
            client.query("ping")


class TestRetryLoop:
    def test_drop_once_then_succeed(self):
        srv, port = _listener()
        _serve(srv, [_drop_after_request, _answer_pong])
        try:
            client = ServeClient("127.0.0.1", port, retries=2,
                                 timeout_s=5, backoff_base_s=0.001)
            resp = client.query("ping")
            assert resp.ok and resp.result == "pong"
            assert client.retry_count == 1
            client.close()
        finally:
            srv.close()

    def test_retries_zero_raises_immediately(self):
        srv, port = _listener()
        _serve(srv, [_drop_after_request, _answer_pong])
        try:
            client = ServeClient("127.0.0.1", port, retries=0, timeout_s=5)
            with pytest.raises(ServeConnectionError):
                client.query("ping")
            assert client.retry_count == 0
        finally:
            srv.close()

    def test_retries_exhausted_reraises(self):
        srv, port = _listener()
        _serve(srv, [_drop_after_request] * 3)
        try:
            client = ServeClient("127.0.0.1", port, retries=2,
                                 timeout_s=5, backoff_base_s=0.001)
            with pytest.raises(ServeConnectionError):
                client.query("ping")
            assert client.retry_count == 2
        finally:
            srv.close()

    def test_backoff_is_deterministic_and_capped(self):
        client = ServeClient(retries=8, backoff_base_s=0.05,
                             backoff_cap_s=1.0)
        delays = [client._backoff_s(a) for a in range(8)]
        assert delays == [client._backoff_s(a) for a in range(8)]
        assert all(0 < d <= 1.0 for d in delays)
        # jitter keeps [0.5, 1.0) of the capped exponential base
        assert all(d >= 0.5 * min(0.05 * 2 ** a, 1.0) - 1e-12
                   for a, d in enumerate(delays))
