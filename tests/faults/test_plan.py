"""The fault-injection layer itself: plans, draws, registry discipline."""

import pytest

from repro import faults
from repro.faults import (
    DEFAULT_SEED,
    ENV_VAR,
    FAULT_SITES,
    FaultPlanError,
    active_plan,
    fault_stats,
    install_plan,
    parse_plan,
    site,
)


@pytest.fixture(autouse=True)
def _clean_plan(monkeypatch):
    """Every test starts and ends with no plan installed."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    faults.reset_fault_state()
    yield
    faults.clear_plan()


# ---------------------------------------------------------------- parsing

class TestParsePlan:
    def test_basic_spec(self):
        plan = parse_plan("executor.worker_crash=0.25,seed=9")
        assert plan.rate("executor.worker_crash") == 0.25
        assert plan.rate("cache.read_corrupt") == 0.0
        assert plan.seed == 9

    def test_default_seed_and_semicolons(self):
        plan = parse_plan("cache.read_corrupt=0.1;cache.write_fail=0.2")
        assert plan.seed == DEFAULT_SEED
        assert plan.rate("cache.write_fail") == 0.2

    def test_glob_expands_layer_prefix(self):
        plan = parse_plan("executor.*=0.5")
        assert plan.rate("executor.worker_crash") == 0.5
        assert plan.rate("executor.worker_hang") == 0.5
        assert plan.rate("serve.conn_drop") == 0.0

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            parse_plan("executor.meteor_strike=0.1")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError, match=r"\[0, 1\]"):
            parse_plan("serve.conn_drop=1.5")

    def test_malformed_entry_rejected(self):
        with pytest.raises(FaultPlanError, match="site=rate"):
            parse_plan("serve.conn_drop")

    def test_to_spec_round_trips(self):
        plan = parse_plan("serve.conn_drop=0.15,sweep.kill=0.3,seed=4")
        again = parse_plan(plan.to_spec())
        assert again.rates == plan.rates
        assert again.seed == plan.seed


# ---------------------------------------------------------------- registry

class TestRegistry:
    def test_sites_are_unique_and_documented(self):
        names = [s.name for s in FAULT_SITES]
        assert len(names) == len(set(names))
        for s in FAULT_SITES:
            assert "." in s.name
            assert s.layer
            assert s.description.strip()

    def test_expected_sites_declared(self):
        names = {s.name for s in FAULT_SITES}
        assert {"executor.worker_crash", "executor.worker_hang",
                "cache.read_corrupt", "cache.write_fail",
                "serve.conn_drop", "sweep.kill"} <= names


# ------------------------------------------------------------------ draws

class TestSiteDraws:
    def test_no_plan_means_never_fires(self):
        assert site("executor.worker_crash", key="x") is False
        assert site("executor.worker_crash") is False

    def test_no_plan_skips_registry_check(self):
        # without a plan the probe must stay free — no KeyError even for
        # garbage (lint R008 catches those statically)
        assert site("not.a.site") is False

    def test_undeclared_site_raises_under_active_plan(self):
        install_plan("serve.conn_drop=0.5,seed=1")
        with pytest.raises(KeyError, match="undeclared fault site"):
            site("not.a.site")

    def test_keyed_draws_are_pure(self):
        install_plan("cache.read_corrupt=0.5,seed=42")
        first = [site("cache.read_corrupt", key=f"k{i}") for i in range(64)]
        faults.reset_fault_state()
        second = [site("cache.read_corrupt", key=f"k{i}") for i in range(64)]
        assert first == second
        assert any(first) and not all(first)  # ~50% rate, both outcomes

    def test_keyed_rate_is_approximate(self):
        install_plan("cache.read_corrupt=0.2,seed=7")
        n = 2000
        fired = sum(site("cache.read_corrupt", key=str(i)) for i in range(n))
        assert 0.12 < fired / n < 0.28

    def test_stream_draws_reproduce_after_reset(self):
        install_plan("serve.conn_drop=0.3,seed=5")
        first = [site("serve.conn_drop") for _ in range(64)]
        faults.reset_fault_state()
        second = [site("serve.conn_drop") for _ in range(64)]
        assert first == second
        assert any(first)

    def test_different_seeds_differ(self):
        install_plan("serve.conn_drop=0.5,seed=1")
        a = [site("serve.conn_drop", key=str(i)) for i in range(64)]
        install_plan("serve.conn_drop=0.5,seed=2")
        b = [site("serve.conn_drop", key=str(i)) for i in range(64)]
        assert a != b

    def test_zero_rate_never_draws(self):
        install_plan("serve.conn_drop=0.0,cache.write_fail=1.0,seed=1")
        assert site("serve.conn_drop", key="x") is False
        assert site("cache.write_fail", key="x") is True


# ------------------------------------------------------------ plan install

class TestInstallPlan:
    def test_install_writes_env_for_children(self):
        import os
        install_plan("sweep.kill=0.25,seed=3")
        assert "sweep.kill=0.25" in os.environ[ENV_VAR]
        plan = active_plan()
        assert plan is not None and plan.rate("sweep.kill") == 0.25
        faults.clear_plan()
        assert ENV_VAR not in os.environ
        assert active_plan() is None

    def test_env_change_is_picked_up_lazily(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "serve.conn_drop=0.1,seed=1")
        assert active_plan().rate("serve.conn_drop") == 0.1
        monkeypatch.setenv(ENV_VAR, "serve.conn_drop=0.9,seed=1")
        assert active_plan().rate("serve.conn_drop") == 0.9

    def test_empty_plan_is_none(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "seed=5")
        assert active_plan() is None

    def test_fault_stats_count_draws_and_fires(self):
        install_plan("cache.write_fail=1.0,seed=1")
        for i in range(5):
            site("cache.write_fail", key=str(i))
        stats = fault_stats()
        assert stats["cache.write_fail"] == {"draws": 5, "fires": 5}
