"""``repro.faults`` — deterministic, seeded fault injection.

The robustness layer's chaos harness (docs/ROBUSTNESS.md): a closed
registry of named fault sites (:mod:`repro.faults.registry`), a
``REPRO_FAULTS`` plan spec mapping sites to firing rates under one seed,
and :func:`site` — the single question the instrumented code paths ask
(``faults.site("executor.worker_crash", key=...)``).  Draws are pure
functions of the plan (keyed hash or per-site LCG stream), so a chaos
run injects the *same* crashes, corruptions, and drops every time.

The recovery contract: every injected fault must be survived with
outputs bit-identical to a fault-free run — retried chunks replay the
same deterministic task, quarantined cache entries recompute from the
same seeds, dropped connections re-ask idempotent content-keyed queries.
The chaos-smoke CI job enforces this against the recorded digests.
"""

from .plan import (
    DEFAULT_SEED,
    ENV_VAR,
    FaultPlan,
    FaultPlanError,
    active_plan,
    clear_plan,
    fault_stats,
    install_plan,
    parse_plan,
    reset_fault_state,
    site,
)
from .registry import FAULT_SITES, FaultSite, SITE_NAMES, is_registered

__all__ = [
    "DEFAULT_SEED",
    "ENV_VAR",
    "FAULT_SITES",
    "FaultPlan",
    "FaultPlanError",
    "FaultSite",
    "SITE_NAMES",
    "active_plan",
    "clear_plan",
    "fault_stats",
    "install_plan",
    "is_registered",
    "parse_plan",
    "reset_fault_state",
    "site",
]
