"""Central registry of every injectable fault site.

A *fault site* is a named point in the stack where the deterministic
fault-injection layer (:mod:`repro.faults.plan`) may fire: a pool worker
crashing, a cache entry corrupting on read, a serve connection dropping.
Every ``faults.site(...)`` call in the codebase must name a site declared
here — lint rule ``R008`` enforces that statically, and
:func:`repro.faults.parse_plan` rejects plans naming unknown sites — so
the registry is the single documented inventory of what a chaos run can
inject.

Declaring a site here is deliberately cheap (a name, the layer it lives
in, and one sentence on what firing does); keeping the set closed is what
makes ``REPRO_FAULTS`` specs auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FAULT_SITES", "FaultSite", "SITE_NAMES", "is_registered"]


@dataclass(frozen=True)
class FaultSite:
    """One declared injection point."""

    name: str
    #: subsystem the site lives in (executor / cache / serve / sweep /
    #: fabric)
    layer: str
    #: what firing this site does, one sentence
    description: str


FAULT_SITES: tuple[FaultSite, ...] = (
    FaultSite(
        "executor.worker_crash", "executor",
        "a pool worker dies abruptly (os._exit) at chunk start, breaking "
        "the whole process pool mid-map"),
    FaultSite(
        "executor.worker_hang", "executor",
        "a pool worker stalls at chunk start for longer than the "
        "configured per-chunk timeout"),
    FaultSite(
        "cache.read_corrupt", "cache",
        "bytes read from an on-disk cache entry are flipped, so the "
        "checksum trailer fails and the entry is quarantined"),
    FaultSite(
        "cache.write_fail", "cache",
        "an on-disk cache write is dropped, as if the disk were full or "
        "failing (caching stays best-effort)"),
    FaultSite(
        "serve.conn_drop", "serve",
        "the server closes a client connection after reading a request "
        "instead of replying, forcing a client reconnect-and-retry"),
    FaultSite(
        "sweep.kill", "sweep",
        "the sweeping process dies abruptly (os._exit, a stand-in for "
        "SIGKILL) right after journaling a completed grid point"),
    FaultSite(
        "fabric.shard_down", "fabric",
        "the router's health probe treats a shard as unreachable for one "
        "probe round, re-owning its hash ranges until the next probe"),
    FaultSite(
        "fabric.route_stale", "fabric",
        "the router routes one query on the membership view from before "
        "the last shard change, exercising failover replay when the "
        "stale owner is gone"),
)


def _validated_names() -> frozenset[str]:
    names: set[str] = set()
    for site in FAULT_SITES:
        if not site.name or "." not in site.name:
            raise ValueError(
                f"fault site {site.name!r} must be '<layer>.<event>'")
        if site.name in names:
            raise ValueError(f"duplicate fault site {site.name!r}")
        if not site.description.strip():
            raise ValueError(f"fault site {site.name!r} is undocumented")
        names.add(site.name)
    return frozenset(names)


SITE_NAMES: frozenset[str] = _validated_names()


def is_registered(name: str) -> bool:
    """Whether ``name`` is a declared fault site."""
    return name in SITE_NAMES
