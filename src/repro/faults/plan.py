"""Deterministic, seeded fault plans: parsing, draws, accounting.

A *plan* maps registered fault sites to firing rates, plus one seed::

    REPRO_FAULTS="executor.worker_crash=0.15,cache.read_corrupt=0.1,seed=7"

Entries are comma- (or semicolon-) separated ``site=rate`` pairs; ``rate``
is a probability in ``[0, 1]``; ``seed=<int>`` may appear anywhere (default
1325, the repo's LCG seed).  A trailing ``.*`` glob applies one rate to
every registered site under a prefix: ``executor.*=0.2``.  Unknown site
names are rejected at parse time (and statically by lint rule ``R008``).

Whether a given :func:`site` call fires is a pure function of the plan —
never of wall-clock time or process scheduling — so chaos runs are
reproducible:

* **keyed draws** (``site(name, key=...)``) hash ``(seed, name, key)``;
  the same logical event (e.g. chunk 3, retry attempt 1) draws the same
  verdict in every run and in every process.
* **stream draws** (``site(name)``) step a per-site 32-bit LCG seeded
  from ``(seed, name)``; the n-th call in a process always draws the
  same verdict for a given seed.

The plan is read lazily from ``REPRO_FAULTS`` once per process (pool
workers inherit the environment, so an injected executor crash plan
reaches them); :func:`install_plan` both sets the environment — for
children — and resets this process's cached plan and stream state.
"""

from __future__ import annotations

import hashlib
import os
import threading
from dataclasses import dataclass, field
from typing import Mapping

from .registry import SITE_NAMES

__all__ = [
    "FaultPlan",
    "FaultPlanError",
    "active_plan",
    "clear_plan",
    "fault_stats",
    "install_plan",
    "parse_plan",
    "reset_fault_state",
    "site",
]

ENV_VAR = "REPRO_FAULTS"
DEFAULT_SEED = 1325

#: the repo's LINPACK-style LCG constants (32-bit)
_LCG_A = 1664525
_LCG_C = 1013904223
_LCG_MASK = 0xFFFFFFFF


class FaultPlanError(ValueError):
    """A ``REPRO_FAULTS`` spec that cannot be parsed or names no site."""


@dataclass(frozen=True)
class FaultPlan:
    """Parsed, validated fault plan: per-site rates plus the seed."""

    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = DEFAULT_SEED
    #: the spec this plan was parsed from (diagnostics / re-install)
    spec: str = ""

    def rate(self, name: str) -> float:
        return self.rates.get(name, 0.0)

    def to_spec(self) -> str:
        """Canonical spec string that parses back to this plan."""
        parts = [f"{name}={self.rates[name]:g}"
                 for name in sorted(self.rates)]
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def parse_plan(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec (see module docstring)."""
    rates: dict[str, float] = {}
    seed = DEFAULT_SEED
    entries = [e.strip() for part in spec.split(";")
               for e in part.split(",")]
    for entry in entries:
        if not entry:
            continue
        if "=" not in entry:
            raise FaultPlanError(
                f"fault-plan entry {entry!r} is not 'site=rate'")
        name, raw = (s.strip() for s in entry.split("=", 1))
        if name == "seed":
            try:
                seed = int(raw)
            except ValueError as exc:
                raise FaultPlanError(
                    f"fault-plan seed must be an integer, got {raw!r}"
                ) from exc
            continue
        try:
            rate = float(raw)
        except ValueError as exc:
            raise FaultPlanError(
                f"rate for {name!r} must be a float, got {raw!r}") from exc
        if not 0.0 <= rate <= 1.0:
            raise FaultPlanError(
                f"rate for {name!r} must be in [0, 1], got {rate}")
        if name.endswith(".*"):
            prefix = name[:-1]  # keep the dot
            matched = [s for s in SITE_NAMES if s.startswith(prefix)]
            if not matched:
                raise FaultPlanError(
                    f"fault-site glob {name!r} matches no registered site; "
                    f"registered: {sorted(SITE_NAMES)}")
            for s in matched:
                rates[s] = rate
        elif name in SITE_NAMES:
            rates[name] = rate
        else:
            raise FaultPlanError(
                f"unknown fault site {name!r}; registered: "
                f"{sorted(SITE_NAMES)}")
    return FaultPlan(rates=dict(rates), seed=seed, spec=spec)


# ------------------------------------------------------------- live state

_lock = threading.Lock()
#: (env spec the plan was parsed from, plan) — None until first lookup
_cached: tuple[str, FaultPlan | None] | None = None
_streams: dict[str, int] = {}
_fires: dict[str, int] = {}
_draws: dict[str, int] = {}


def active_plan() -> FaultPlan | None:
    """The process's plan from ``REPRO_FAULTS`` (None when unset/empty)."""
    global _cached
    spec = os.environ.get(ENV_VAR, "")
    with _lock:
        if _cached is not None and _cached[0] == spec:
            return _cached[1]
        plan = parse_plan(spec) if spec.strip() else None
        if plan is not None and not plan.rates:
            plan = None
        _cached = (spec, plan)
        _streams.clear()
        return plan


def install_plan(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Set the plan for this process *and* its future children.

    Writes the spec to ``os.environ[REPRO_FAULTS]`` (pool workers and
    subprocesses inherit it) and resets the cached plan, stream state,
    and fire counters.  ``None`` clears the plan.
    """
    if isinstance(plan, str):
        plan = parse_plan(plan)
    if plan is None:
        os.environ.pop(ENV_VAR, None)
    else:
        os.environ[ENV_VAR] = plan.spec or plan.to_spec()
    reset_fault_state()
    return plan


def clear_plan() -> None:
    """Remove the plan from this process and the environment."""
    install_plan(None)


def reset_fault_state() -> None:
    """Drop the cached plan, stream positions, and fire counters."""
    global _cached
    with _lock:
        _cached = None
        _streams.clear()
        _fires.clear()
        _draws.clear()


def fault_stats() -> dict[str, dict[str, int]]:
    """Per-site ``{draws, fires}`` counters for this process."""
    with _lock:
        return {name: {"draws": _draws.get(name, 0),
                       "fires": _fires.get(name, 0)}
                for name in sorted(set(_draws) | set(_fires))}


def _stream_seed(seed: int, name: str) -> int:
    h = hashlib.sha256(f"{seed}|{name}".encode()).digest()
    return int.from_bytes(h[:4], "big")


def _keyed_unit(seed: int, name: str, key: str) -> float:
    h = hashlib.sha256(f"{seed}|{name}|{key}".encode()).digest()
    return int.from_bytes(h[:8], "big") / float(1 << 64)


def site(name: str, key: str | int | None = None) -> bool:
    """Should the fault at ``name`` fire here?

    With ``key``, the verdict is a pure hash of ``(seed, name, key)`` —
    use a key naming the logical event (chunk index + retry attempt,
    cache key, grid-point key) so reruns and other processes agree.
    Without a key, the verdict comes from the site's per-process LCG
    stream (the n-th call draws the n-th value).

    Returns ``False`` immediately when no plan is installed; when one
    is, ``name`` must be a registered site.
    """
    plan = active_plan()
    if plan is None:
        return False
    if name not in SITE_NAMES:
        raise KeyError(
            f"undeclared fault site {name!r}; declare it in "
            f"repro.faults.registry (registered: {sorted(SITE_NAMES)})")
    rate = plan.rate(name)
    if rate <= 0.0:
        return False
    with _lock:
        _draws[name] = _draws.get(name, 0) + 1
        if key is not None:
            unit = _keyed_unit(plan.seed, name, str(key))
        else:
            state = _streams.get(name)
            if state is None:
                state = _stream_seed(plan.seed, name)
            state = (_LCG_A * state + _LCG_C) & _LCG_MASK
            _streams[name] = state
            unit = state / float(1 << 32)
        fired = unit < rate
        if fired:
            _fires[name] = _fires.get(name, 0) + 1
    return fired
