"""Benchmark-suite comparison substrate (Figure 11, Table 7)."""

from .metrics import (
    METRIC_NAMES,
    MetricPoint,
    metrics_for_stats,
    suite_metric_points,
)
from .minikernels import RODINIA_KERNELS, SHOC_KERNELS, MiniKernel

__all__ = [
    "METRIC_NAMES",
    "MetricPoint",
    "metrics_for_stats",
    "suite_metric_points",
    "RODINIA_KERNELS",
    "SHOC_KERNELS",
    "MiniKernel",
]
