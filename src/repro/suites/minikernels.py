"""Miniature Rodinia and SHOC kernels for the Figure 11 suite comparison.

The paper profiles Rodinia, SHOC, and Cubie with NCU and PCAs the
architectural metrics.  NCU is unavailable here, so each comparison-suite
application is modeled as a *mini-kernel*: a characteristic op/byte profile
on the simulated device, built from the application's well-known structure
(e.g. hotspot is a 2-D stencil, kmeans is a distance-computation sweep).
All of them are vector-unit codes — no tensor-pipe work — which is exactly
why Cubie spans a wider region of the metric space (Observation 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..gpu.counters import KernelStats

__all__ = ["MiniKernel", "RODINIA_KERNELS", "SHOC_KERNELS"]


@dataclass(frozen=True)
class MiniKernel:
    """A named op/byte profile representing one suite application."""

    name: str
    suite: str
    build: Callable[[], KernelStats]

    def stats(self) -> KernelStats:
        return self.build()


def _k(flops: float, read_b: float, write_b: float, seg: float,
       l1_factor: float = 1.0, int_ops: float = 0.0,
       cc_eff: float = 0.6, mlp: float = 1.0,
       stages: int = 1) -> KernelStats:
    st = KernelStats()
    if flops:
        st.add_fma(flops)
    if int_ops:
        st.add_int_ops(int_ops)
    st.cc_efficiency = cc_eff
    st.mlp = mlp
    st.serial_stages = stages
    st.read_dram(read_b, segment_bytes=seg)
    st.write_dram(write_b, segment_bytes=seg)
    st.add_l1((read_b + write_b) * l1_factor)
    return st


_N = 4 * 1024 * 1024  # nominal working-set elements

RODINIA_KERNELS: tuple[MiniKernel, ...] = (
    MiniKernel("hotspot", "Rodinia", lambda: _k(
        flops=14.0 * _N, read_b=8.0 * _N * 3, write_b=8.0 * _N,
        seg=8192, l1_factor=3.0)),
    MiniKernel("srad", "Rodinia", lambda: _k(
        flops=30.0 * _N, read_b=8.0 * _N * 4, write_b=8.0 * _N,
        seg=8192, l1_factor=2.0)),
    MiniKernel("lud", "Rodinia", lambda: _k(
        flops=300.0 * _N, read_b=8.0 * _N, write_b=8.0 * _N,
        seg=4096, l1_factor=6.0, cc_eff=0.55)),
    MiniKernel("kmeans", "Rodinia", lambda: _k(
        flops=64.0 * _N, read_b=8.0 * _N, write_b=0.5 * _N,
        seg=2048, l1_factor=4.0)),
    MiniKernel("bfs", "Rodinia", lambda: _k(
        flops=0.0, read_b=8.0 * _N, write_b=2.0 * _N, seg=8,
        int_ops=4.0 * _N, mlp=0.5, stages=12)),
    MiniKernel("nw", "Rodinia", lambda: _k(
        flops=6.0 * _N, read_b=8.0 * _N, write_b=8.0 * _N,
        seg=2048, mlp=0.6, stages=64)),
    MiniKernel("backprop", "Rodinia", lambda: _k(
        flops=40.0 * _N, read_b=8.0 * _N * 2, write_b=8.0 * _N,
        seg=4096, l1_factor=2.0)),
    MiniKernel("pathfinder", "Rodinia", lambda: _k(
        flops=4.0 * _N, read_b=4.0 * _N, write_b=4.0 * _N,
        seg=4096, stages=32)),
    MiniKernel("streamcluster", "Rodinia", lambda: _k(
        flops=80.0 * _N, read_b=8.0 * _N, write_b=1.0 * _N,
        seg=64, mlp=0.7)),
    MiniKernel("cfd", "Rodinia", lambda: _k(
        flops=60.0 * _N, read_b=8.0 * _N * 2, write_b=8.0 * _N,
        seg=32, mlp=0.65, l1_factor=2.0)),
)

SHOC_KERNELS: tuple[MiniKernel, ...] = (
    MiniKernel("sgemm", "SHOC", lambda: _k(
        flops=512.0 * _N, read_b=8.0 * _N, write_b=8.0 * _N,
        seg=8192, l1_factor=8.0, cc_eff=0.65)),
    MiniKernel("fft", "SHOC", lambda: _k(
        flops=50.0 * _N, read_b=16.0 * _N, write_b=16.0 * _N,
        seg=4096, l1_factor=5.0)),
    MiniKernel("md", "SHOC", lambda: _k(
        flops=200.0 * _N, read_b=8.0 * _N, write_b=2.0 * _N,
        seg=32, mlp=0.8)),
    MiniKernel("reduction", "SHOC", lambda: _k(
        flops=1.0 * _N, read_b=8.0 * _N, write_b=0.01 * _N,
        seg=65536, mlp=0.85, stages=8)),
    MiniKernel("scan", "SHOC", lambda: _k(
        flops=2.0 * _N, read_b=8.0 * _N, write_b=8.0 * _N,
        seg=65536, mlp=0.8, stages=16, l1_factor=3.0)),
    MiniKernel("sort", "SHOC", lambda: _k(
        flops=0.0, read_b=4.0 * _N * 4, write_b=4.0 * _N * 4,
        seg=256, int_ops=20.0 * _N, mlp=0.7, stages=24)),
    MiniKernel("spmv", "SHOC", lambda: _k(
        flops=2.0 * _N, read_b=12.0 * _N + 8.0 * _N, write_b=0.1 * _N,
        seg=8, mlp=0.6)),
    MiniKernel("triad", "SHOC", lambda: _k(
        flops=2.0 * _N, read_b=8.0 * _N * 2, write_b=8.0 * _N,
        seg=1 << 20, mlp=1.0)),
    MiniKernel("stencil2d", "SHOC", lambda: _k(
        flops=10.0 * _N, read_b=8.0 * _N * 3, write_b=8.0 * _N,
        seg=8192, l1_factor=3.0)),
    MiniKernel("s3d", "SHOC", lambda: _k(
        flops=120.0 * _N, read_b=8.0 * _N * 2, write_b=8.0 * _N,
        seg=4096, l1_factor=2.0)),
)
