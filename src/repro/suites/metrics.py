"""NCU-style architectural metric vectors (Figure 11).

Each kernel — mini-kernel or Cubie workload variant — resolves to a metric
vector on one device: memory efficiency, compute throughput, FMA pipe
utilization, and tensor pipe utilization (the metric set Section 10 lists),
plus log arithmetic intensity for scale separation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.counters import KernelStats
from ..gpu.device import Device
from ..kernels.base import Workload
from ..perf.instrument import stage
from .minikernels import RODINIA_KERNELS, SHOC_KERNELS, MiniKernel

__all__ = ["METRIC_NAMES", "MetricPoint", "metrics_for_stats",
           "suite_metric_points"]

METRIC_NAMES = (
    "memory_efficiency",
    "compute_throughput",
    "fma_pipe_utilization",
    "tensor_pipe_utilization",
    "log_arithmetic_intensity",
)


@dataclass(frozen=True)
class MetricPoint:
    """One kernel's metric vector, labeled by suite."""

    suite: str
    kernel: str
    values: np.ndarray


def metrics_for_stats(stats: KernelStats, device: Device) -> np.ndarray:
    """Compute the METRIC_NAMES vector for a kernel on a device."""
    result = device.resolve(stats)
    util = result.breakdown.utilization()
    mem_eff = min(result.achieved_bandwidth / device.spec.dram_bw, 1.0)
    total_ops = stats.total_flops + stats.tc_b1_ops + stats.cc_int_ops
    peak = device.spec.tc_fp64 + device.spec.cc_fp64
    compute = min(total_ops / max(result.time_s, 1e-300) / peak, 1.0)
    ai = stats.arithmetic_intensity("dram")
    if not np.isfinite(ai):
        ai = 1e6
    return np.array([
        mem_eff,
        compute,
        util["fma"],
        util["tensor"],
        np.log10(max(ai, 1e-6)),
    ])


def suite_metric_points(workloads: list[Workload], device: Device
                        ) -> list[MetricPoint]:
    """Metric vectors for Rodinia + SHOC mini-kernels and every Cubie
    workload variant (the Figure 11 point cloud)."""
    points: list[MetricPoint] = []
    with stage("analysis.suite_metrics"):
        mini: tuple[MiniKernel, ...] = RODINIA_KERNELS + SHOC_KERNELS
        for mk in mini:
            points.append(MetricPoint(
                suite=mk.suite, kernel=mk.name,
                values=metrics_for_stats(mk.stats(), device)))
        for w in workloads:
            case = w.representative_case()
            for v in w.variants():
                stats = w.analytic_stats(v, case)
                points.append(MetricPoint(
                    suite="Cubie", kernel=f"{w.name}:{v.value}",
                    values=metrics_for_stats(stats, device)))
    return points
