"""BerryBees-style 8x128 bitmap "slice-set" graph storage (Niu & Casas,
PPoPP'25).

The adjacency matrix is partitioned into *slices* of 8 rows; each slice
stores the 8x128-bit tiles ("blocks") that contain at least one edge,
identified by their 128-column block index.  Tiles are kept bit-packed as
``(8, 2)`` uint64 words, ready for the single-bit ``mma_m8n8k128``
AND+POPC instruction emulated in :mod:`repro.gpu.mma`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrMatrix

__all__ = ["BitmapGraph", "SLICE_ROWS", "TILE_COLS"]

SLICE_ROWS = 8
TILE_COLS = 128


@dataclass
class BitmapGraph:
    """Bit-packed 8x128 tiled adjacency structure."""

    #: number of vertices
    n: int
    #: tile slice (8-row group) index of each stored tile, sorted
    tile_slice: np.ndarray
    #: tile column-block index of each stored tile
    tile_cblock: np.ndarray
    #: packed tile payloads, shape (n_tiles, 8, 2) uint64
    tiles: np.ndarray
    #: CSR offsets into the tile arrays per column block (for frontier
    #: gathering): tiles sorted by (cblock, slice)
    cblock_ptr: np.ndarray
    #: number of edges stored
    n_edges: int

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, src: np.ndarray, dst: np.ndarray, n: int
                   ) -> "BitmapGraph":
        """Build from a directed edge list (edge u->v sets bit A[u, v])."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ValueError("src and dst must have equal length")
        if len(src) and (min(src.min(), dst.min()) < 0
                         or max(src.max(), dst.max()) >= n):
            raise ValueError("vertex id out of range")
        sl = src // SLICE_ROWS
        cb = dst // TILE_COLS
        # sort by (cblock, slice) so the frontier sweep can binary-search
        # all tiles touching an active column block
        tile_key = cb * ((n + SLICE_ROWS - 1) // SLICE_ROWS + 1) + sl
        order = np.argsort(tile_key, kind="stable")
        tk = tile_key[order]
        uniq = np.r_[True, tk[1:] != tk[:-1]]
        tile_id = np.cumsum(uniq) - 1
        n_tiles = int(tile_id[-1]) + 1 if len(src) else 0
        bits = np.zeros((n_tiles, SLICE_ROWS, TILE_COLS), dtype=bool)
        bits[tile_id, src[order] % SLICE_ROWS, dst[order] % TILE_COLS] = True
        packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
        tiles = packed_bytes.view(np.uint64).reshape(n_tiles, SLICE_ROWS, 2) \
            if n_tiles else np.empty((0, SLICE_ROWS, 2), dtype=np.uint64)
        tile_slice = sl[order][uniq] if n_tiles else np.empty(0, np.int64)
        tile_cblock = cb[order][uniq] if n_tiles else np.empty(0, np.int64)
        n_cblocks = (n + TILE_COLS - 1) // TILE_COLS
        cblock_ptr = np.zeros(n_cblocks + 1, dtype=np.int64)
        if n_tiles:
            np.add.at(cblock_ptr, tile_cblock + 1, 1)
        np.cumsum(cblock_ptr, out=cblock_ptr)
        return cls(n=n, tile_slice=tile_slice, tile_cblock=tile_cblock,
                   tiles=tiles, cblock_ptr=cblock_ptr, n_edges=len(src))

    @classmethod
    def from_csr(cls, a: CsrMatrix) -> "BitmapGraph":
        """Adjacency CSR (row u lists neighbors of u) to bitmap tiles."""
        if a.n_rows != a.n_cols:
            raise ValueError("adjacency matrix must be square")
        return cls.from_edges(a.row_of_entry(), a.indices, a.n_rows)

    # ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        return self.tiles.shape[0]

    @property
    def n_slices(self) -> int:
        return (self.n + SLICE_ROWS - 1) // SLICE_ROWS

    @property
    def n_cblocks(self) -> int:
        return len(self.cblock_ptr) - 1

    @property
    def bits_per_edge(self) -> float:
        """Storage density: stored tile bits per edge (the paper highlights
        BerryBees' low memory footprint)."""
        if self.n_edges == 0:
            return 0.0
        return self.n_tiles * SLICE_ROWS * TILE_COLS / self.n_edges

    def tiles_for_cblocks(self, cblocks: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All stored tiles whose column block is in ``cblocks``.

        Returns (tile_indices, slice_ids, cblock_ids)."""
        cblocks = np.asarray(cblocks, dtype=np.int64)
        starts = self.cblock_ptr[cblocks]
        stops = self.cblock_ptr[cblocks + 1]
        counts = stops - starts
        total = int(counts.sum())
        if total == 0:
            e = np.empty(0, dtype=np.int64)
            return e, e, e
        idx = np.repeat(starts, counts)
        within = (np.arange(total, dtype=np.int64)
                  - np.repeat(np.cumsum(counts) - counts, counts))
        tile_idx = idx + within
        return tile_idx, self.tile_slice[tile_idx], self.tile_cblock[tile_idx]
