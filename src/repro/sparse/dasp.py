"""DASP-style storage for MMU-accelerated SpMV (Lu & Liu, SC'23).

DASP groups the rows of a CSR matrix by nonzero count and reorganizes them
into dense 8x4 tiles that feed FP64 ``mma_m8n8k4`` instructions:

* rows are sorted by length and assigned to one of three categories
  (``long`` / ``medium`` / ``short``) — the paper's "three categories";
* eight consecutive rows (after sorting) form a *group*; a group with
  longest row length L spans ``ceil(L / 4)`` k-steps;
* k-step ``s`` of a group is an 8x4 tile of values (zero-padded) plus the
  matching 8x4 tile of column indices.

The SpMV then computes, per group and step, ``C += A_tile @ B_tile`` where
``B_tile[k, j] = x[cols[j, k]]`` — so the row result appears on the
*diagonal* of the 8x8 accumulator (Quadrant IV: full input, partial output).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrMatrix

__all__ = ["DaspMatrix", "ROW_CATEGORY_BOUNDS"]

#: rows with nnz > 512 are "long", > 32 "medium", else "short"
ROW_CATEGORY_BOUNDS = (32, 512)


@dataclass
class DaspMatrix:
    """A CSR matrix reorganized into DASP 8x4 tile groups."""

    #: permutation: sorted position -> original row id
    row_perm: np.ndarray
    #: per-group k-step counts, shape (n_groups,)
    group_steps: np.ndarray
    #: start offset of each group's tiles in the tile arrays, (n_groups+1,)
    group_offsets: np.ndarray
    #: tile values, shape (total_steps, 8, 4), zero padded
    values: np.ndarray
    #: tile column indices, shape (total_steps, 8, 4); padding points at 0
    cols: np.ndarray
    #: validity mask of entries, shape (total_steps, 8, 4)
    mask: np.ndarray
    #: row categories in sorted order ("long"/"medium"/"short" per group row)
    categories: np.ndarray
    shape: tuple[int, int]
    nnz: int

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, a: CsrMatrix) -> "DaspMatrix":
        lengths = a.row_lengths()
        # sort rows by decreasing length: groups then have homogeneous
        # lengths, minimizing zero padding (DASP's categorization effect)
        perm = np.argsort(-lengths, kind="stable").astype(np.int64)
        sorted_len = lengths[perm]
        n_rows = a.n_rows
        n_groups = (n_rows + 7) // 8
        padded_rows = n_groups * 8
        # per-group steps from the longest member row
        glen = np.zeros(padded_rows, dtype=np.int64)
        glen[:n_rows] = sorted_len
        glen = glen.reshape(n_groups, 8)
        group_steps = np.maximum((glen.max(axis=1) + 3) // 4, 1)
        group_offsets = np.concatenate(
            [[0], np.cumsum(group_steps)]).astype(np.int64)
        total_steps = int(group_offsets[-1])

        values = np.zeros((total_steps, 8, 4))
        cols = np.zeros((total_steps, 8, 4), dtype=np.int64)
        mask = np.zeros((total_steps, 8, 4), dtype=bool)

        # scatter each row's nonzeros into its group's tile stack, vectorized
        # across all entries at once
        if a.nnz:
            sorted_pos_of_row = np.empty(n_rows, dtype=np.int64)
            sorted_pos_of_row[perm] = np.arange(n_rows)
            entry_row = a.row_of_entry()
            pos = sorted_pos_of_row[entry_row]          # sorted row position
            group = pos // 8
            lane = pos % 8
            # index of the entry within its row
            within = (np.arange(a.nnz, dtype=np.int64)
                      - a.indptr[entry_row])
            step = group_offsets[group] + within // 4
            kk = within % 4
            values[step, lane, kk] = a.data
            cols[step, lane, kk] = a.indices
            mask[step, lane, kk] = True

        cat = np.full(padded_rows, "short", dtype=object)
        s_lo, s_hi = ROW_CATEGORY_BOUNDS
        flat_len = glen.reshape(-1)
        cat[flat_len > s_lo] = "medium"
        cat[flat_len > s_hi] = "long"
        return cls(row_perm=perm, group_steps=group_steps,
                   group_offsets=group_offsets, values=values, cols=cols,
                   mask=mask, categories=np.asarray(cat), shape=a.shape,
                   nnz=a.nnz)

    # ------------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self.group_steps)

    @property
    def total_tiles(self) -> int:
        return self.values.shape[0]

    @property
    def padding_fraction(self) -> float:
        """Fraction of tile slots that are zero padding."""
        slots = self.mask.size
        return 1.0 - self.nnz / slots if slots else 0.0

    def gather_b_tiles(self, x: np.ndarray) -> np.ndarray:
        """Build the 4x8 B tiles: ``B[s, k, j] = x[cols[s, j, k]]`` with
        padding forced to zero so padded lanes contribute nothing."""
        b = x[self.cols]                      # (steps, 8, 4) per-row gather
        b = np.where(self.mask, b, 0.0)
        return np.swapaxes(b, 1, 2).copy()    # -> (steps, 4, 8)

    def category_histogram(self) -> dict[str, int]:
        vals, counts = np.unique(self.categories.astype(str),
                                 return_counts=True)
        return dict(zip(vals.tolist(), counts.tolist()))
