"""Matrix Market (.mtx) reading and writing for the CSR substrate.

Supports the ``matrix coordinate`` format in ``real``, ``integer`` and
``pattern`` fields with ``general`` or ``symmetric`` symmetry — enough to
load SuiteSparse downloads when a user has them, and to round-trip the
synthetic stand-ins shipped with this package.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .csr import CsrMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]


def read_matrix_market(path: str | Path | io.TextIOBase) -> CsrMatrix:
    """Parse a Matrix Market coordinate file into a :class:`CsrMatrix`."""
    if isinstance(path, (str, Path)):
        with open(path, "r", encoding="utf-8") as fh:
            return read_matrix_market(fh)
    header = path.readline()
    if not header.startswith("%%MatrixMarket"):
        raise ValueError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5:
        raise ValueError(f"malformed header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = parts[:5]
    if obj.lower() != "matrix" or fmt.lower() != "coordinate":
        raise ValueError("only 'matrix coordinate' files are supported")
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    line = path.readline()
    while line.startswith("%"):
        line = path.readline()
    n_rows, n_cols, nnz = (int(t) for t in line.split())

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.ones(nnz)
    for i in range(nnz):
        toks = path.readline().split()
        if len(toks) < 2:
            raise ValueError(f"truncated file at entry {i}")
        rows[i] = int(toks[0]) - 1
        cols[i] = int(toks[1]) - 1
        if field != "pattern":
            vals[i] = float(toks[2])
    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[:nnz][off]])
        vals = np.concatenate([vals, vals[:nnz][off]])
    return CsrMatrix.from_coo(rows, cols, vals, (n_rows, n_cols))


def write_matrix_market(path: str | Path | io.TextIOBase, a: CsrMatrix,
                        comment: str = "") -> None:
    """Write a :class:`CsrMatrix` as a general real coordinate file."""
    if isinstance(path, (str, Path)):
        with open(path, "w", encoding="utf-8") as fh:
            write_matrix_market(fh, a, comment)
            return
    path.write("%%MatrixMarket matrix coordinate real general\n")
    for line in comment.splitlines():
        path.write(f"% {line}\n")
    path.write(f"{a.n_rows} {a.n_cols} {a.nnz}\n")
    rows = a.row_of_entry()
    for r, c, v in zip(rows, a.indices, a.data):
        path.write(f"{r + 1} {c + 1} {float(v)!r}\n")
