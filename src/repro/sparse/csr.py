"""Compressed Sparse Row matrices, built from scratch.

This is the package's own CSR substrate (scipy.sparse appears only in tests,
as an independent cross-check).  Besides construction and conversion it
provides the *accumulation-order-controlled* SpMV flavours that the accuracy
study (Table 6) depends on:

* :meth:`CsrMatrix.spmv_serial` — strictly left-to-right per-row sums, the
  paper's "naive CPU serial" ground truth;
* :meth:`CsrMatrix.spmv_warp_tree` — cuSPARSE-CSR-vector-style order: 32-wide
  strided partial sums followed by a binary reduction tree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CsrMatrix"]


@dataclass
class CsrMatrix:
    """A CSR matrix with int64 indexing and float64 values."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        n_rows, n_cols = self.shape
        if len(self.indptr) != n_rows + 1:
            raise ValueError(
                f"indptr length {len(self.indptr)} != n_rows+1 ({n_rows + 1})")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data lengths differ")
        if len(self.indices) and (self.indices.min() < 0
                                  or self.indices.max() >= n_cols):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------ builders
    @classmethod
    def from_coo(cls, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray,
                 shape: tuple[int, int], *, sum_duplicates: bool = True
                 ) -> "CsrMatrix":
        """Build from COO triplets; duplicates are summed by default."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if not (len(rows) == len(cols) == len(vals)):
            raise ValueError("COO arrays must have equal length")
        n_rows, n_cols = shape
        if len(rows) and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("row index out of range")
        if len(cols) and (cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError("column index out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and len(rows):
            keys = rows * np.int64(n_cols) + cols
            uniq, inverse = np.unique(keys, return_inverse=True)
            summed = np.zeros(len(uniq))
            np.add.at(summed, inverse, vals)
            rows = (uniq // n_cols).astype(np.int64)
            cols = (uniq % n_cols).astype(np.int64)
            vals = summed
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, cols, vals, shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CsrMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense input must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(rows, cols, dense[rows, cols], dense.shape,
                            sum_duplicates=False)

    # ------------------------------------------------------------ basics
    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.indptr)

    def row_of_entry(self) -> np.ndarray:
        """Row id of every stored entry (expanded indptr)."""
        return np.repeat(np.arange(self.n_rows, dtype=np.int64),
                         self.row_lengths())

    def to_dense(self, out: np.ndarray | None = None) -> np.ndarray:
        """Dense copy; ``out`` reuses a caller-held buffer (the accuracy
        audit densifies quarter-GB outputs repeatedly — a fresh zeros()
        pays first-touch page faults every time)."""
        if out is None:
            dense = np.zeros(self.shape)
        else:
            if out.shape != self.shape:
                raise ValueError(
                    f"out shape {out.shape} != matrix shape {self.shape}")
            dense = out
            dense[...] = 0.0
        dense[self.row_of_entry(), self.indices] = self.data
        return dense

    def transpose(self) -> "CsrMatrix":
        """CSR of A^T via a counting sort on column indices."""
        return CsrMatrix.from_coo(self.indices, self.row_of_entry(),
                                  self.data, (self.n_cols, self.n_rows),
                                  sum_duplicates=False)

    # -------------------------------------------------------------- SpMV
    def spmv_serial(self, x: np.ndarray) -> np.ndarray:
        """Ground-truth SpMV: per-row strictly left-to-right accumulation.

        The loop is vectorized *across rows* while staying strictly
        sequential *within* each row (``np.add.reduceat`` cannot be used: it
        switches to pairwise summation for long segments).  A unit test
        checks bit-equality against an explicit Python loop.
        """
        x = self._check_x(x)
        out = np.zeros(self.n_rows)
        if self.nnz == 0:
            return out
        products = self.data * x[self.indices]
        lengths = self.row_lengths()
        starts = self.indptr[:-1]
        for i in range(int(lengths.max())):
            valid = i < lengths
            idx = np.minimum(starts + i, self.nnz - 1)
            out = np.where(valid, out + products[idx], out)
        return out

    def spmv_warp_tree(self, x: np.ndarray, width: int = 32) -> np.ndarray:
        """cuSPARSE CSR-vector-style SpMV order.

        Each row's products are first accumulated into ``width`` strided
        partial sums (lane ``l`` sums elements ``l, l+width, ...``
        sequentially), then combined by a binary shuffle-reduction tree —
        the classic warp-per-row GPU kernel.  Same mathematical result as
        :meth:`spmv_serial`, different rounding.
        """
        x = self._check_x(x)
        products = self.data * x[self.indices]
        lengths = self.row_lengths()
        out = np.zeros(self.n_rows)
        if self.nnz == 0:
            return out
        max_len = int(lengths.max())
        steps = (max_len + width - 1) // width
        # lane-partial accumulation: partials[r, l] built sequentially over
        # strided chunks, vectorized across rows
        partials = np.zeros((self.n_rows, width))
        offs = np.arange(width, dtype=np.int64)
        starts = self.indptr[:-1]
        for s in range(steps):
            pos = s * width + offs[np.newaxis, :]          # (rows, width)
            valid = pos < lengths[:, np.newaxis]
            idx = np.minimum(starts[:, np.newaxis] + pos, self.nnz - 1)
            contrib = np.where(valid, products[idx], 0.0)
            partials += contrib
        # binary reduction tree across lanes
        w = width
        while w > 1:
            half = w // 2
            partials[:, :half] = partials[:, :half] + partials[:, half:w]
            w = half
        out[:] = partials[:, 0]
        return out

    # ------------------------------------------------------------ SpGEMM
    def spgemm(self, other: "CsrMatrix", *, chunk_rows: int = 2048
               ) -> "CsrMatrix":
        """Row-merge SpGEMM ``self @ other`` (expansion + sort + compress),
        processed in row chunks to bound memory."""
        if self.n_cols != other.n_rows:
            raise ValueError(
                f"dimension mismatch: {self.shape} @ {other.shape}")
        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        out_vals: list[np.ndarray] = []
        b_lengths = other.row_lengths()
        # per-entry expansion counts and cumulative product offsets; rows
        # never straddle a chunk and output groups live within one row, so
        # any row-aligned chunking yields bit-identical results (tested)
        expand_all = b_lengths[self.indices]
        segx = np.r_[0, np.cumsum(expand_all)]
        row_prod = segx[self.indptr]
        # a 32-bit sort key halves the radix passes when it fits
        small = self.n_rows * other.n_cols < 2 ** 31
        for r0, r1 in self._spgemm_cuts(row_prod, chunk_rows):
            lo, hi = int(self.indptr[r0]), int(self.indptr[r1])
            n_prod = int(row_prod[r1] - row_prod[r0])
            if n_prod == 0:
                continue
            a_cols = self.indices[lo:hi]
            a_vals = self.data[lo:hi]
            rowkey = np.repeat(
                np.arange(r0, r1, dtype=np.int64),
                np.diff(self.indptr[r0:r1 + 1])) * np.int64(other.n_cols)
            # one repeat builds the entry map; everything else is a single
            # gather through it (the B position of product j of entry e is
            # start[e] + j, chunk-local)
            start = other.indptr[a_cols] - (segx[lo:hi] - segx[lo])
            entry = np.repeat(np.arange(hi - lo, dtype=np.int64),
                              expand_all[lo:hi])
            b_pos = start[entry] + np.arange(n_prod, dtype=np.int64)
            key = rowkey[entry] + other.indices[b_pos]
            prod_val = a_vals[entry] * other.data[b_pos]
            # compress duplicates
            order = np.argsort(key.astype(np.int32) if small else key,
                               kind="stable")
            key_s = key[order]
            val_s = prod_val[order]
            boundaries = np.flatnonzero(np.r_[True, key_s[1:] != key_s[:-1]])
            sums = np.add.reduceat(val_s, boundaries)
            keys_u = key_s[boundaries]
            out_rows.append((keys_u // other.n_cols).astype(np.int64))
            out_cols.append((keys_u % other.n_cols).astype(np.int64))
            out_vals.append(sums)
        if not out_rows:
            return CsrMatrix(np.zeros(self.n_rows + 1, dtype=np.int64),
                             np.empty(0, dtype=np.int64), np.empty(0),
                             (self.n_rows, other.n_cols))
        return CsrMatrix.from_coo(
            np.concatenate(out_rows), np.concatenate(out_cols),
            np.concatenate(out_vals), (self.n_rows, other.n_cols),
            sum_duplicates=False)

    @staticmethod
    def _spgemm_cuts(row_prod: np.ndarray,
                     chunk_rows: int) -> list[tuple[int, int]]:
        """Row-aligned chunk boundaries for :meth:`spgemm`: a cut every
        ``chunk_rows`` rows, refined wherever ~512K scalar products have
        accrued so each chunk's sort/gather working set stays
        cache-resident.  ``row_prod`` maps row boundary -> cumulative
        product count."""
        n_rows = len(row_prod) - 1
        cuts = set(range(0, n_rows, chunk_rows))
        cuts.add(n_rows)
        prod_chunk = 1 << 19
        total = int(row_prod[-1])
        if total > prod_chunk:
            targets = np.arange(1, total // prod_chunk + 1,
                                dtype=np.int64) * prod_chunk
            cuts.update(np.searchsorted(row_prod, targets).tolist())
        ordered = sorted(cuts)
        return list(zip(ordered[:-1], ordered[1:]))

    # ------------------------------------------------------------ helpers
    def _check_x(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(
                f"x must have shape ({self.n_cols},), got {x.shape}")
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CsrMatrix(shape={self.shape}, nnz={self.nnz})")
