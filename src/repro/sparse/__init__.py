"""Sparse-matrix and graph storage substrates built from scratch.

scipy.sparse is deliberately not used here; it appears only in the test
suite as an independent cross-check of these implementations.
"""

from .bitmap import SLICE_ROWS, TILE_COLS, BitmapGraph
from .csr import CsrMatrix
from .dasp import DaspMatrix
from .ell import EllMatrix
from .io import read_matrix_market, write_matrix_market
from .mbsr import BLOCK, MbsrMatrix

__all__ = [
    "BitmapGraph",
    "SLICE_ROWS",
    "TILE_COLS",
    "CsrMatrix",
    "DaspMatrix",
    "EllMatrix",
    "read_matrix_market",
    "write_matrix_market",
    "MbsrMatrix",
    "BLOCK",
]
