"""ELLPACK (ELL) sparse storage.

The classical GPU-friendly format that pads every row to the maximum row
length — the ancestor of DASP's tile packing and a useful point of
comparison for padding-overhead studies: ELL's padding is governed by the
*maximum* row length, DASP's by the per-8-row-group maximum, which is why
DASP tolerates skewed matrices that make ELL explode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrMatrix

__all__ = ["EllMatrix"]


@dataclass
class EllMatrix:
    """Row-padded sparse matrix: values/cols are (n_rows, width)."""

    values: np.ndarray
    cols: np.ndarray
    mask: np.ndarray
    shape: tuple[int, int]
    nnz: int

    @classmethod
    def from_csr(cls, a: CsrMatrix, max_width: int | None = None
                 ) -> "EllMatrix":
        """Convert; refuse pathological padding beyond ``max_width``."""
        lengths = a.row_lengths()
        width = int(lengths.max()) if a.nnz else 0
        if max_width is not None and width > max_width:
            raise ValueError(
                f"row width {width} exceeds max_width {max_width}: "
                "ELL would waste too much storage (use DASP/CSR)")
        n_rows = a.n_rows
        values = np.zeros((n_rows, width))
        cols = np.zeros((n_rows, width), dtype=np.int64)
        mask = np.zeros((n_rows, width), dtype=bool)
        if a.nnz:
            rows = a.row_of_entry()
            within = np.arange(a.nnz, dtype=np.int64) - a.indptr[rows]
            values[rows, within] = a.data
            cols[rows, within] = a.indices
            mask[rows, within] = True
        return cls(values=values, cols=cols, mask=mask, shape=a.shape,
                   nnz=a.nnz)

    @property
    def width(self) -> int:
        return self.values.shape[1]

    @property
    def padding_fraction(self) -> float:
        slots = self.mask.size
        return 1.0 - self.nnz / slots if slots else 0.0

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """Column-major ELL SpMV: lane k accumulates across the padded
        width sequentially (the classical ELL kernel order)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.shape[1],):
            raise ValueError(f"x must have shape ({self.shape[1]},)")
        y = np.zeros(self.shape[0])
        for k in range(self.width):
            contrib = np.where(self.mask[:, k],
                               self.values[:, k] * x[self.cols[:, k]], 0.0)
            y = y + contrib
        return y

    def to_csr(self) -> CsrMatrix:
        rows, within = np.nonzero(self.mask)
        return CsrMatrix.from_coo(rows, self.cols[rows, within],
                                  self.values[rows, within], self.shape,
                                  sum_duplicates=False)
