"""Modified Block Sparse Row (mBSR) storage, as used by AmgT's SpGEMM.

AmgT (Lu et al., SC'24) partitions sparse matrices into dense 4x4 blocks
(mBSR) and pairs vertically adjacent blocks into 8x4 operands for the FP64
``mma_m8n8k4`` instruction.  An mBSR matrix is structurally a CSR matrix over
*block* coordinates whose values are dense 4x4 tiles (zero padded at the
fringe and inside partially-filled blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CsrMatrix

__all__ = ["MbsrMatrix", "BLOCK"]

BLOCK = 4


@dataclass
class MbsrMatrix:
    """4x4-blocked sparse matrix."""

    #: CSR over block coordinates
    block_indptr: np.ndarray
    block_indices: np.ndarray
    #: dense block values, shape (n_blocks, 4, 4)
    blocks: np.ndarray
    #: logical (element) shape
    shape: tuple[int, int]
    #: number of stored scalar nonzeros (pre-blocking)
    nnz: int

    # ------------------------------------------------------------------
    @classmethod
    def from_csr(cls, a: CsrMatrix) -> "MbsrMatrix":
        n_rows, n_cols = a.shape
        nbr = (n_rows + BLOCK - 1) // BLOCK
        if a.nnz == 0:
            return cls(np.zeros(nbr + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64),
                       np.empty((0, BLOCK, BLOCK)), a.shape, 0)
        entry_row = a.row_of_entry()
        brow = entry_row // BLOCK
        bcol = a.indices // BLOCK
        key = brow * np.int64((n_cols // BLOCK) + 1) + bcol
        order = np.argsort(key, kind="stable")
        key_s = key[order]
        uniq_mask = np.r_[True, key_s[1:] != key_s[:-1]]
        block_id = np.cumsum(uniq_mask) - 1
        n_blocks = int(block_id[-1]) + 1
        blocks = np.zeros((n_blocks, BLOCK, BLOCK))
        blocks[block_id,
               entry_row[order] % BLOCK,
               a.indices[order] % BLOCK] = a.data[order]
        u_brow = brow[order][uniq_mask]
        u_bcol = bcol[order][uniq_mask]
        indptr = np.zeros(nbr + 1, dtype=np.int64)
        np.add.at(indptr, u_brow + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, u_bcol.astype(np.int64), blocks, a.shape, a.nnz)

    # ------------------------------------------------------------------
    @property
    def n_block_rows(self) -> int:
        return len(self.block_indptr) - 1

    @property
    def n_block_cols(self) -> int:
        return (self.shape[1] + BLOCK - 1) // BLOCK

    @property
    def n_blocks(self) -> int:
        return self.blocks.shape[0]

    @property
    def fill_ratio(self) -> float:
        """Scalar nonzeros per stored block slot (<= 1; low values mean the
        4x4 blocking carries a lot of explicit zeros)."""
        slots = self.n_blocks * BLOCK * BLOCK
        return self.nnz / slots if slots else 0.0

    def block_row_of_block(self) -> np.ndarray:
        return np.repeat(np.arange(self.n_block_rows, dtype=np.int64),
                         np.diff(self.block_indptr))

    def to_csr(self) -> CsrMatrix:
        """Expand back to element CSR (drops explicit stored zeros)."""
        if self.n_blocks == 0:
            return CsrMatrix(np.zeros(self.shape[0] + 1, dtype=np.int64),
                             np.empty(0, dtype=np.int64), np.empty(0),
                             self.shape)
        brow = self.block_row_of_block()
        rr, cc = np.nonzero(self.blocks.reshape(self.n_blocks, -1))
        local_r, local_c = np.divmod(cc, BLOCK)
        rows = brow[rr] * BLOCK + local_r
        cols = self.block_indices[rr] * BLOCK + local_c
        vals = self.blocks[rr, local_r, local_c]
        keep = (rows < self.shape[0]) & (cols < self.shape[1])
        return CsrMatrix.from_coo(rows[keep], cols[keep], vals[keep],
                                  self.shape, sum_duplicates=False)
