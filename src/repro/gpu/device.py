"""The simulated device facade.

A :class:`Device` bundles one :class:`~repro.gpu.specs.GPUSpec` with the
timing, memory, and power models, and resolves a kernel's
:class:`~repro.gpu.counters.KernelStats` into a :class:`KernelResult` —
output array, execution time, throughput, power, energy.  Workload code never
touches the models directly; it builds stats and asks the device to resolve
them, so all three GPUs are evaluated through one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..perf.instrument import stage
from .counters import KernelStats
from .memory import MemoryModel, MemoryTraffic
from .power import PowerModel, PowerTrace
from .specs import GPUSpec, get_gpu
from .timing import TimingBreakdown, TimingModel

__all__ = ["Device", "KernelResult"]


@dataclass
class KernelResult:
    """Everything the harness needs about one kernel execution."""

    #: the functional output (None for model-only / analytic evaluations)
    output: Any
    stats: KernelStats
    #: modeled execution time, seconds
    time_s: float
    breakdown: TimingBreakdown
    traffic: MemoryTraffic
    #: steady-state board power, watts
    power_w: float
    #: energy of one execution, joules
    energy_j: float
    #: achieved useful flops/s (essential flops per modeled second)
    flops: float

    @property
    def tflops(self) -> float:
        return self.flops / 1e12

    @property
    def edp(self) -> float:
        """Single-execution EDP = power x time^2."""
        return self.power_w * self.time_s ** 2

    def edp_repeated(self, repeats: int) -> float:
        """EDP for a back-to-back measurement loop of ``repeats`` runs."""
        t = self.time_s * repeats
        return self.power_w * t * t

    @property
    def achieved_bandwidth(self) -> float:
        """Logical DRAM bytes per modeled second."""
        if self.time_s <= 0:
            return 0.0
        return self.stats.dram_bytes / self.time_s


class Device:
    """A simulated GPU: spec + timing + memory + power models."""

    def __init__(self, spec: GPUSpec | str, *,
                 memory: MemoryModel | None = None,
                 sample_hz: float = 20.0) -> None:
        if isinstance(spec, str):
            spec = get_gpu(spec)
        self.spec = spec
        self.memory = memory if memory is not None else MemoryModel()
        self.timing = TimingModel(spec, self.memory)
        self.power = PowerModel(spec, self.timing, sample_hz=sample_hz)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.spec.name})"

    # ------------------------------------------------------------------
    def resolve(self, stats: KernelStats,
                output: Any = None) -> KernelResult:
        """Resolve counters into time/power/energy for this device."""
        with stage("model-resolve"):
            breakdown = self.timing.breakdown(stats)
            time_s = breakdown.total_s
            power_w = self.power.steady_power(stats)
            return KernelResult(
                output=output,
                stats=stats,
                time_s=time_s,
                breakdown=breakdown,
                traffic=self.memory.resolve(stats),
                power_w=power_w,
                energy_j=power_w * time_s,
                flops=self.timing.throughput(stats),
            )

    def power_trace(self, stats: KernelStats, repeats: int = 1,
                    **kwargs: Any) -> PowerTrace:
        """Synthesize an NVML-like power trace for a measurement loop."""
        return self.power.trace(stats, repeats, **kwargs)

    # convenience constructors -----------------------------------------
    @classmethod
    def a100(cls) -> "Device":
        return cls("A100")

    @classmethod
    def h200(cls) -> "Device":
        return cls("H200")

    @classmethod
    def b200(cls) -> "Device":
        return cls("B200")


def all_devices() -> list[Device]:
    """One :class:`Device` per GPU evaluated in the paper."""
    return [Device("A100"), Device("H200"), Device("B200")]
