"""Warp fragment layouts for FP64 ``mma.sync.aligned.m8n8k4.row.col.f64``.

An FP64 MMA distributes the 8x4 A operand, the 4x8 B operand, and the 8x8
accumulator across the 32 lanes of a warp (Figure 1b of the paper).  The
per-lane ownership below follows the PTX ISA's fragment description:

* A (row-major 8x4): lane ``t`` holds ``A[t // 4][t % 4]`` — one double.
* B (column-major 4x8): lane ``t`` holds ``B[t % 4][t // 4]`` — one double.
* C/D (8x8): lane ``t`` holds ``C[t // 4][(t % 4) * 2 + i]`` for
  ``i in {0, 1}`` — two doubles.

These maps exist so that the CC variants of Section 5.2 can preserve the
exact thread responsibilities of the tensor-core code, and so tests can
verify that distribute/collect round-trips are lossless.
"""

from __future__ import annotations

import numpy as np

from . import warp_events

__all__ = [
    "WARP_SIZE",
    "A_FRAGMENT_ROWS",
    "A_FRAGMENT_COLS",
    "B_FRAGMENT_ROWS",
    "B_FRAGMENT_COLS",
    "C_FRAGMENT_ROWS",
    "C_FRAGMENT_COLS",
    "a_fragment_index",
    "b_fragment_index",
    "c_fragment_index",
    "distribute_a",
    "distribute_b",
    "distribute_c",
    "collect_c",
]

WARP_SIZE = 32

# Precomputed per-lane index tables — the same maps as the scalar
# ``*_fragment_index`` functions, laid out as arrays so distribute/collect
# (and the warp-level GEMM in ``mma``) are single gather/scatter operations
# instead of per-lane Python loops.  Index tables are pure data movement,
# so the vectorized paths are bit-identical to the loops they replace.
_LANES = np.arange(WARP_SIZE)
#: A_FRAGMENT_ROWS[lane], A_FRAGMENT_COLS[lane] == a_fragment_index(lane)
A_FRAGMENT_ROWS = _LANES // 4
A_FRAGMENT_COLS = _LANES % 4
#: B_FRAGMENT_ROWS[lane], B_FRAGMENT_COLS[lane] == b_fragment_index(lane)
B_FRAGMENT_ROWS = _LANES % 4
B_FRAGMENT_COLS = _LANES // 4
#: C_FRAGMENT_ROWS[lane, reg], C_FRAGMENT_COLS[lane, reg]
#: == c_fragment_index(lane, reg)
C_FRAGMENT_ROWS = np.repeat(_LANES // 4, 2).reshape(WARP_SIZE, 2)
C_FRAGMENT_COLS = (_LANES % 4)[:, None] * 2 + np.arange(2)[None, :]


def a_fragment_index(lane: int) -> tuple[int, int]:
    """(row, col) of the A element owned by ``lane``."""
    _check_lane(lane)
    return lane // 4, lane % 4


def b_fragment_index(lane: int) -> tuple[int, int]:
    """(row, col) of the B element owned by ``lane``."""
    _check_lane(lane)
    return lane % 4, lane // 4


def c_fragment_index(lane: int, reg: int) -> tuple[int, int]:
    """(row, col) of accumulator register ``reg`` (0 or 1) of ``lane``."""
    _check_lane(lane)
    if reg not in (0, 1):
        raise ValueError(f"c fragment register must be 0 or 1, got {reg}")
    return lane // 4, (lane % 4) * 2 + reg


def distribute_a(a: np.ndarray) -> np.ndarray:
    """Scatter an 8x4 A tile into per-lane registers (shape ``(32,)``)."""
    a = _check_tile(a, (8, 4), "A")
    if warp_events.TRACER is not None:
        warp_events.emit_fragment("A", "read", _LANES,
                                  A_FRAGMENT_ROWS, A_FRAGMENT_COLS)
    return a[A_FRAGMENT_ROWS, A_FRAGMENT_COLS]


def distribute_b(b: np.ndarray) -> np.ndarray:
    """Scatter a 4x8 B tile into per-lane registers (shape ``(32,)``)."""
    b = _check_tile(b, (4, 8), "B")
    if warp_events.TRACER is not None:
        warp_events.emit_fragment("B", "read", _LANES,
                                  B_FRAGMENT_ROWS, B_FRAGMENT_COLS)
    return b[B_FRAGMENT_ROWS, B_FRAGMENT_COLS]


def distribute_c(c: np.ndarray) -> np.ndarray:
    """Scatter an 8x8 accumulator into per-lane registers ``(32, 2)``."""
    c = _check_tile(c, (8, 8), "C")
    if warp_events.TRACER is not None:
        for reg in (0, 1):
            warp_events.emit_fragment("C", "read", _LANES,
                                      C_FRAGMENT_ROWS[:, reg],
                                      C_FRAGMENT_COLS[:, reg], reg=reg)
    return c[C_FRAGMENT_ROWS, C_FRAGMENT_COLS]


def collect_c(regs: np.ndarray) -> np.ndarray:
    """Gather per-lane accumulator registers ``(32, 2)`` into an 8x8 tile."""
    regs = np.asarray(regs, dtype=np.float64)
    if regs.shape != (WARP_SIZE, 2):
        raise ValueError(f"expected (32, 2) register file, got {regs.shape}")
    if warp_events.TRACER is not None:
        for reg in (0, 1):
            warp_events.emit_fragment("C", "write", _LANES,
                                      C_FRAGMENT_ROWS[:, reg],
                                      C_FRAGMENT_COLS[:, reg], reg=reg)
    c = np.empty((8, 8), dtype=np.float64)
    c[C_FRAGMENT_ROWS, C_FRAGMENT_COLS] = regs
    return c


def _check_lane(lane: int) -> None:
    if not 0 <= lane < WARP_SIZE:
        raise ValueError(f"lane must be in [0, {WARP_SIZE}), got {lane}")


def _check_tile(t: np.ndarray, shape: tuple[int, int], name: str) -> np.ndarray:
    t = np.asarray(t, dtype=np.float64)
    if t.shape != shape:
        raise ValueError(f"{name} tile must have shape {shape}, got {t.shape}")
    return t
