"""Execution timeline: sequence kernels and export traces.

Applications built on the suite (e.g. a solver issuing thousands of SpMV
calls, or the Figure 8 measurement loops) can record modeled kernel
executions on a timeline, query aggregate statistics, and export the
standard Chrome trace-event JSON (loadable in ``chrome://tracing`` or
Perfetto) with one track per execution resource.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .device import Device, KernelResult

__all__ = ["TimelineEvent", "Timeline"]


@dataclass(frozen=True)
class TimelineEvent:
    """One kernel occurrence on the timeline."""

    name: str
    start_s: float
    duration_s: float
    bottleneck: str
    power_w: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@dataclass
class Timeline:
    """An ordered record of kernel executions on one device."""

    device: Device
    events: list[TimelineEvent] = field(default_factory=list)
    _cursor_s: float = 0.0

    def record(self, name: str, result: KernelResult,
               repeats: int = 1) -> TimelineEvent:
        """Append ``repeats`` back-to-back executions as one event."""
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        ev = TimelineEvent(
            name=name,
            start_s=self._cursor_s,
            duration_s=result.time_s * repeats,
            bottleneck=result.breakdown.bottleneck,
            power_w=result.power_w,
        )
        self.events.append(ev)
        self._cursor_s = ev.end_s
        return ev

    def gap(self, seconds: float) -> None:
        """Idle time between kernels (host work, transfers)."""
        if seconds < 0:
            raise ValueError("gap must be non-negative")
        self._cursor_s += seconds

    # ------------------------------------------------------------ queries
    @property
    def total_s(self) -> float:
        return self._cursor_s

    @property
    def busy_s(self) -> float:
        return sum(e.duration_s for e in self.events)

    @property
    def utilization(self) -> float:
        """Busy fraction of the timeline."""
        if self.total_s <= 0:
            return 0.0
        return self.busy_s / self.total_s

    def energy_j(self) -> float:
        """Kernel energy plus idle power during gaps."""
        busy = sum(e.duration_s * e.power_w for e in self.events)
        idle = (self.total_s - self.busy_s) * self.device.spec.idle_w
        return busy + idle

    def time_by_bottleneck(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for e in self.events:
            out[e.bottleneck] = out.get(e.bottleneck, 0.0) + e.duration_s
        return out

    # ------------------------------------------------------------ export
    def to_chrome_trace(self) -> str:
        """Chrome trace-event JSON: one row per bottleneck resource."""
        events = []
        for e in self.events:
            events.append({
                "name": e.name,
                "cat": e.bottleneck,
                "ph": "X",
                "ts": e.start_s * 1e6,        # microseconds
                "dur": e.duration_s * 1e6,
                "pid": 0,
                "tid": e.bottleneck,
                "args": {"power_w": e.power_w},
            })
        return json.dumps({"traceEvents": events,
                           "displayTimeUnit": "ms"}, indent=1)

    def to_text(self, width: int = 60) -> str:
        """A monospace gantt sketch."""
        if not self.events:
            return "(empty timeline)"
        total = max(self.total_s, 1e-300)
        lines = []
        for e in self.events:
            lo = int(e.start_s / total * width)
            hi = max(int(e.end_s / total * width), lo + 1)
            bar = " " * lo + "#" * (hi - lo)
            lines.append(f"{e.name[:20]:20s} |{bar.ljust(width)}| "
                         f"{e.duration_s * 1e3:9.3f} ms {e.bottleneck}")
        return "\n".join(lines)
