"""Functional emulation of tensor-core MMA instructions.

Two instructions are emulated, matching the ones the Cubie suite uses:

* ``mma_m8n8k4`` — FP64 D = A(8x4) @ B(4x8) + C(8x8), the workhorse of the
  nine floating-point workloads;
* ``mma_m8n8k128`` — single-bit D = popc(A(8x128) & B(128x8)) + C(8x8), the
  bit-MMA BerryBees BFS builds on.

Accumulation-order contract
---------------------------
The FP64 emulation accumulates the k dimension *sequentially*
(``d = ((c + a0*b0) + a1*b1) + a2*b2) + a3*b3`` in index order), matching the
FMA chain an FP64 tensor core performs.  The CC variants of Section 5.2 call
these same functions, so TC and CC outputs are bit-identical by construction
— exactly the paper's Table 6 finding.  One documented deviation from the
hardware: NumPy has no fused multiply-add, so each step rounds twice
(multiply then add) instead of once.  This shifts absolute error magnitudes
by a small constant factor but preserves all ordering-based effects.

All batched entry points accept arbitrary leading batch dimensions so that
kernels can evaluate millions of MMAs in a handful of vectorized sweeps.
"""

from __future__ import annotations

import numpy as np

from . import fragments, warp_events

__all__ = [
    "mma_m8n8k4",
    "mma_m8n8k4_batched",
    "mma_fp64_batched",
    "warp_gemm_m8n8k4",
    "pack_bits_rows",
    "mma_m8n8k128_b1",
    "mma_b1_batched",
]


def mma_m8n8k4(a: np.ndarray, b: np.ndarray,
               c: np.ndarray | None = None) -> np.ndarray:
    """Single FP64 ``mma_m8n8k4``: returns ``A @ B + C`` with k-sequential
    accumulation.  ``a`` is 8x4, ``b`` is 4x8, ``c`` (optional) is 8x8."""
    return mma_fp64_batched(a[np.newaxis], b[np.newaxis],
                            None if c is None else c[np.newaxis])[0]


def mma_m8n8k4_batched(a: np.ndarray, b: np.ndarray,
                       c: np.ndarray | None = None) -> np.ndarray:
    """Batched FP64 ``mma_m8n8k4`` over leading dimensions.

    ``a``: (..., 8, 4); ``b``: (..., 4, 8); ``c``: (..., 8, 8) or None.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[-2:] != (8, 4):
        raise ValueError(f"A fragments must be (..., 8, 4), got {a.shape}")
    if b.shape[-2:] != (4, 8):
        raise ValueError(f"B fragments must be (..., 4, 8), got {b.shape}")
    return mma_fp64_batched(a, b, c)


def mma_fp64_batched(a: np.ndarray, b: np.ndarray,
                     c: np.ndarray | None = None) -> np.ndarray:
    """General batched MMA with k-sequential accumulation order.

    ``a``: (..., m, k); ``b``: (..., k, n); ``c``: (..., m, n) or None.
    This generalization lets kernels fuse several hardware MMAs along k
    (e.g. a 64x64 GEMM tile accumulating over K) while keeping the exact
    per-step rounding behaviour of a chain of ``mma_m8n8k4`` instructions.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError("operands must have at least 2 dimensions")
    m, k = a.shape[-2:]
    k2, n = b.shape[-2:]
    if k != k2:
        raise ValueError(f"inner dimensions differ: A has k={k}, B has k={k2}")
    if warp_events.TRACER is not None and (m, k, n) == (8, 4, 8):
        # sampled sanitization: one representative warp's fragment traffic
        # per batched call (the racecheck analog of compute-sanitizer's
        # sampling on bulk kernels)
        _emit_sampled_m8n8k4()
    batch = np.broadcast_shapes(a.shape[:-2], b.shape[:-2])
    if c is None:
        d = np.zeros(batch + (m, n), dtype=np.float64)
    else:
        c = np.asarray(c, dtype=np.float64)
        if c.shape[-2:] != (m, n):
            raise ValueError(f"C fragments must be (..., {m}, {n}), got {c.shape}")
        d = np.broadcast_to(c, batch + (m, n)).copy()
    # sequential rank-1 updates along k fixes the accumulation order; the
    # product lands in one preallocated scratch (multiply-into + in-place
    # add) so the k loop allocates no per-step temporaries — bit-identical
    # to `d += a_k * b_k`, which rounds the product before the add too
    if k:
        scratch = np.empty_like(d)
        for kk in range(k):
            np.multiply(a[..., :, kk:kk + 1], b[..., kk:kk + 1, :],
                        out=scratch)
            d += scratch
    return d


def warp_gemm_m8n8k4(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Algorithm 1 of the paper, literally: a warp-level GEMM that loads A
    and B into per-lane fragment registers, executes one
    ``FP64_m8n8k4_mma``, and stores C through the accumulator fragment map.

    Exists for fidelity and testing; bulk kernels use the batched paths.
    """
    with warp_events.scope("warp_gemm_m8n8k4"):
        a_regs = fragments.distribute_a(a)          # line 6: load A
        b_regs = fragments.distribute_b(b)          # line 6: load B
        c_regs = np.zeros((fragments.WARP_SIZE, 2))  # lines 4-5: init c[2]
        # line 7: the MMA — reassemble operands from the register file,
        # exactly as the hardware's dot-product network reads across lanes
        # (one scatter per operand through the precomputed fragment index
        # tables); mma.sync is a warp synchronization point
        warp_events.emit_sync("mma.sync")
        a_tile = np.empty((8, 4))
        b_tile = np.empty((4, 8))
        a_tile[fragments.A_FRAGMENT_ROWS, fragments.A_FRAGMENT_COLS] = a_regs
        b_tile[fragments.B_FRAGMENT_ROWS, fragments.B_FRAGMENT_COLS] = b_regs
        d_tile = mma_m8n8k4(a_tile, b_tile)
        c_regs = fragments.distribute_c(d_tile)
        # line 8: store C via the fragment map
        return fragments.collect_c(c_regs)


def _emit_sampled_m8n8k4() -> None:
    """Replay one warp's m8n8k4 fragment traffic through the tracer: A/B
    loads, the implicit ``mma.sync`` barrier, then the two accumulator
    register stores — all through the PTX fragment index tables."""
    lanes = np.arange(fragments.WARP_SIZE)
    with warp_events.scope("mma_m8n8k4.batched[sample]"):
        warp_events.emit_fragment("A", "read", lanes,
                                  fragments.A_FRAGMENT_ROWS,
                                  fragments.A_FRAGMENT_COLS)
        warp_events.emit_fragment("B", "read", lanes,
                                  fragments.B_FRAGMENT_ROWS,
                                  fragments.B_FRAGMENT_COLS)
        warp_events.emit_sync("mma.sync")
        for reg in (0, 1):
            warp_events.emit_fragment("C", "write", lanes,
                                      fragments.C_FRAGMENT_ROWS[:, reg],
                                      fragments.C_FRAGMENT_COLS[:, reg],
                                      reg=reg)


# ----------------------------------------------------------------- bit MMA

def pack_bits_rows(bits: np.ndarray) -> np.ndarray:
    """Pack a boolean matrix (..., r, 128) into uint64 words (..., r, 2).

    BerryBees stores graph adjacency as 8x128 single-bit tiles; packing rows
    into two 64-bit words keeps the popcount evaluation vectorized.
    """
    bits = np.asarray(bits, dtype=bool)
    if bits.shape[-1] != 128:
        raise ValueError(f"bit rows must have 128 columns, got {bits.shape[-1]}")
    packed_bytes = np.packbits(bits, axis=-1, bitorder="little")
    return packed_bytes.view(np.uint64).reshape(bits.shape[:-1] + (2,))


_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)


def _popcount_u64_swar(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (vectorized SWAR fallback
    for NumPy < 2.0, which lacks ``np.bitwise_count``)."""
    v = words.copy()
    v -= (v >> np.uint64(1)) & _M1
    v = (v & _M2) + ((v >> np.uint64(2)) & _M2)
    v = (v + (v >> np.uint64(4))) & _M4
    with np.errstate(over="ignore"):
        v *= _H01
    return (v >> np.uint64(56)).astype(np.int64)


_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

if _HAS_BITWISE_COUNT:
    def _popcount_u64(words: np.ndarray) -> np.ndarray:
        """Per-element popcount via the native ufunc (one pass, no
        SWAR mask temporaries)."""
        return np.bitwise_count(words).astype(np.int64)
else:  # pragma: no cover - exercised only on NumPy < 2.0
    _popcount_u64 = _popcount_u64_swar


def mma_m8n8k128_b1(a_bits: np.ndarray, b_bits: np.ndarray,
                    c: np.ndarray | None = None) -> np.ndarray:
    """Single-bit ``mma.m8n8k128`` with AND+POPC semantics.

    ``a_bits``: (8, 128) bool — A tile, row-major bits.
    ``b_bits``: (128, 8) bool — B tile.
    ``c``: (8, 8) int32 accumulator or None.
    Returns the 8x8 int32 result ``D[i,j] = C[i,j] + popc(A[i,:] & B[:,j])``.
    """
    out = mma_b1_batched(pack_bits_rows(a_bits[np.newaxis]),
                         pack_bits_rows(np.ascontiguousarray(b_bits.T)[np.newaxis]),
                         None if c is None else c[np.newaxis])
    return out[0]


def mma_b1_batched(a_words: np.ndarray, b_words: np.ndarray,
                   c: np.ndarray | None = None) -> np.ndarray:
    """Batched bit-MMA on packed operands.

    ``a_words``: (..., 8, 2) uint64 — rows of A packed.
    ``b_words``: (..., 8, 2) uint64 — *columns* of B packed (i.e. B^T rows).
    Returns (..., 8, 8) int64 accumulators.
    """
    a_words = np.asarray(a_words, dtype=np.uint64)
    b_words = np.asarray(b_words, dtype=np.uint64)
    if a_words.shape[-2:] != (8, 2) or b_words.shape[-2:] != (8, 2):
        raise ValueError("packed operands must be (..., 8, 2) uint64")
    # AND every row of A with every packed column of B, then popcount
    anded = a_words[..., :, np.newaxis, :] & b_words[..., np.newaxis, :, :]
    if _HAS_BITWISE_COUNT:
        # count both packed words in one ufunc pass, summed exactly
        counts = np.bitwise_count(anded).sum(axis=-1, dtype=np.int64)
    else:  # pragma: no cover - exercised only on NumPy < 2.0
        counts = _popcount_u64(anded[..., 0]) + _popcount_u64(anded[..., 1])
    if c is not None:
        counts = counts + np.asarray(c, dtype=np.int64)
    return counts
