"""Launch-plan execution engine: fused batched MMA sweeps.

Kernels used to walk their tile chains in Python — one interpreter
iteration (and one ``mma_*_batched`` call) per k-tile, per DASP group step,
per SpGEMM duplicate round.  This module splits that work into *recording*
and *execution*: a kernel records its MMA work into a :class:`LaunchPlan`
(fragment tiles, chained k-accumulation, ragged segment boundaries,
exact-zero padding) and :func:`execute_plan` runs the whole plan as a
handful of stacked :func:`~repro.gpu.mma.mma_fp64_batched` /
:func:`~repro.gpu.mma.mma_b1_batched` sweeps.

Accumulation-order contract
---------------------------
Fusing a chain ``acc = mma(A_t, B_t, acc)`` for ``t = 0..T-1`` into one
``mma_fp64_batched(concat_k(A_t), concat_k(B_t), c)`` call is *bit-identical*
to the loop: the primitive applies one rank-1 update per k index in order,
so the fused call performs exactly the same multiply/add sequence per output
element as the chained calls (DESIGN.md §6.1; regression-pinned by
``tests/kernels/test_seed_digests.py``).  Exact-zero padding steps append
``+ 0.0 * x`` terms, which leave finite accumulators bit-unchanged.

Five op kinds are recordable:

* ``chain``   — uniform chained accumulation: ``(..., T, m, k)`` A steps
  against ``(..., T, k, n)`` B steps;
* ``ragged``  — per-item chain lengths over flat tile stacks (DASP SpMV
  groups, AmgT SpGEMM duplicate runs), bucketed by length so no padding is
  ever introduced;
* ``product`` — independent single products; same-shaped products in one
  plan stack into a single sweep (tcFFT's four real products per stage);
* ``bit``     — one AND+POPC sweep over packed bit operands;
* ``mixed``   — quantized-operand products (FP32 accumulate) for the
  Ozaki slice-pair sweeps and low-precision Cholesky updates; same-shaped
  same-precision products stack into one batched sweep (quantization is
  elementwise, so it commutes with stacking).

Ragged bucketing depends only on the segment structure (lengths/offsets),
so it is cached in a small content-addressed LRU: repeated executions over
the same matrix (sweeps, variant pairs, populations) skip re-planning.

Sampled sanitization: fused sweeps have generalized shapes ``(m, T*k, n)``
that the primitive's own ``(8, 4, 8)`` sampling does not match, so the
engine replays one representative warp's fragment traffic per executed
fp64 sweep when a tracer is attached — the warp-hazard battery keeps
auditing launch-plan kernels at the same sampling rate as the per-tile code.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..perf.cache import content_key
from ..perf.instrument import SEP, stage
from . import warp_events
from .isa import Precision
from .mma import _emit_sampled_m8n8k4, mma_b1_batched, mma_fp64_batched
from .mma_mixed import mma_mixed_batched

__all__ = [
    "LaunchPlan",
    "execute_plan",
    "run_chain",
    "run_ragged",
    "plan_cache_stats",
    "clear_plan_cache",
]


class LaunchPlan:
    """Recorded MMA work for one kernel invocation.

    Each ``record_*`` method returns a handle; :func:`execute_plan` returns
    the outputs in handle order.  The plan holds references to the operand
    arrays — recording is O(1) per op.
    """

    __slots__ = ("_ops",)

    def __init__(self) -> None:
        self._ops: list[tuple] = []

    def __len__(self) -> int:
        return len(self._ops)

    # ------------------------------------------------------------------
    def chain(self, a_steps: np.ndarray, b_steps: np.ndarray,
              c: np.ndarray | None = None) -> int:
        """Record a uniform chained accumulation.

        ``a_steps``: ``(..., T, m, k)``; ``b_steps``: ``(..., T, k, n)``
        (batch dims broadcastable against A's); ``c``: ``(..., m, n)`` or
        None for a zero accumulator.  Step ``t`` is the t-th MMA of the
        chain; the fused sweep preserves the per-step k order.
        """
        self._ops.append(("chain", a_steps, b_steps, c))
        return len(self._ops) - 1

    def ragged(self, a_tiles: np.ndarray, b_tiles: np.ndarray,
               lengths: np.ndarray, offsets: np.ndarray,
               c: np.ndarray | None = None) -> int:
        """Record per-item chains of varying length over flat tile stacks.

        Item ``i`` chains tiles ``offsets[i] .. offsets[i]+lengths[i]-1`` of
        ``a_tiles`` ``(S, m, k)`` and ``b_tiles`` ``(S, k, n)`` through its
        accumulator.  Zero-length items keep their initial accumulator.
        """
        self._ops.append(("ragged", a_tiles, b_tiles,
                          np.asarray(lengths), np.asarray(offsets), c))
        return len(self._ops) - 1

    def product(self, a: np.ndarray, b: np.ndarray,
                c: np.ndarray | None = None) -> int:
        """Record one independent product ``(..., m, k) @ (..., k, n)``.

        Products with identical operand shapes and no explicit accumulator
        are stacked into a single batched sweep at execution time.
        """
        self._ops.append(("product", a, b, c))
        return len(self._ops) - 1

    def bit(self, a_words: np.ndarray, b_words: np.ndarray,
            c: np.ndarray | None = None) -> int:
        """Record one packed single-bit AND+POPC sweep."""
        self._ops.append(("bit", a_words, b_words, c))
        return len(self._ops) - 1

    def mixed(self, a: np.ndarray, b: np.ndarray,
              c: np.ndarray | None = None,
              precision: Precision = Precision.FP16) -> int:
        """Record one quantized-operand product (FP32 accumulate).

        Like :meth:`product` but through the mixed-precision MMA path —
        the Ozaki slice-pair sweeps and the low-precision Cholesky
        trailing updates express their MMA work this way.  Same-shaped
        accumulator-less products at the same precision stack into one
        batched sweep; quantization is elementwise, so stacking commutes
        with it and the fused sweep stays bit-identical.
        """
        self._ops.append(("mixed", a, b, c, precision))
        return len(self._ops) - 1


# ------------------------------------------------------------ plan cache

_BUCKET_CACHE: OrderedDict[str, tuple] = OrderedDict()
_BUCKET_CACHE_MAX = 64
_CACHE_STATS = {"hits": 0, "misses": 0}


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the ragged-bucketing plan cache."""
    return dict(_CACHE_STATS)


def clear_plan_cache() -> None:
    _BUCKET_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def _ragged_buckets(lengths: np.ndarray, offsets: np.ndarray) -> tuple:
    """Group items by chain length: ``(L, rows, gather)`` per distinct
    nonzero length, where ``gather[r, t] = offsets[rows[r]] + t``.

    The buckets are pure structure (no values), so they are cached by a
    content hash of the segment layout and shared across executions,
    variants, and sweeps over the same matrix.
    """
    key = content_key("launch-ragged-buckets", lengths, offsets)
    hit = _BUCKET_CACHE.get(key)
    if hit is not None:
        _BUCKET_CACHE.move_to_end(key)
        _CACHE_STATS["hits"] += 1
        return hit
    _CACHE_STATS["misses"] += 1
    buckets = []
    for length in np.unique(lengths):
        n = int(length)
        if n <= 0:
            continue
        rows = np.flatnonzero(lengths == length)
        gather = offsets[rows][:, None] + np.arange(n, dtype=np.int64)
        buckets.append((n, rows, gather))
    result = tuple(buckets)
    _BUCKET_CACHE[key] = result
    while len(_BUCKET_CACHE) > _BUCKET_CACHE_MAX:
        _BUCKET_CACHE.popitem(last=False)
    return result


# ------------------------------------------------------------- execution

def _fuse_steps(a_steps: np.ndarray, b_steps: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate T chain steps along k: ``(..., T, m, k) -> (..., m, T*k)``
    and ``(..., T, k, n) -> (..., T*k, n)``."""
    a_steps = np.asarray(a_steps, dtype=np.float64)
    b_steps = np.asarray(b_steps, dtype=np.float64)
    t, m, k = a_steps.shape[-3:]
    n = b_steps.shape[-1]
    batch = np.broadcast_shapes(a_steps.shape[:-3], b_steps.shape[:-3])
    a_steps = np.broadcast_to(a_steps, batch + (t, m, k))
    b_steps = np.broadcast_to(b_steps, batch + (t, k, n))
    a_fused = np.swapaxes(a_steps, -3, -2).reshape(batch + (m, t * k))
    b_fused = b_steps.reshape(batch + (t * k, n))
    return a_fused, b_fused


def _sweep_fp64(a: np.ndarray, b: np.ndarray,
                c: np.ndarray | None) -> np.ndarray:
    """One fused sweep, with the sampled warp replay the primitive's own
    (8, 4, 8) sampling would miss on generalized fused shapes."""
    if warp_events.TRACER is not None \
            and (a.shape[-2], a.shape[-1], b.shape[-1]) != (8, 4, 8):
        _emit_sampled_m8n8k4()
    return mma_fp64_batched(a, b, c)


def execute_plan(plan: LaunchPlan, label: str = "plan") -> list[np.ndarray]:
    """Execute every recorded op; returns outputs in handle order.

    Wall time is attributed per kernel: operand fusion, ragged bucketing,
    and product stacking under ``plan-build:<label>``; the batched MMA
    sweeps under ``sweep-execute:<label>`` (``repro bench --profile``).
    """
    # the label lands in stage names, where the profiler's path separator
    # is structural: a worker-side record whose *root* name contains SEP
    # would be mistaken for a nested path when the graph scheduler merges
    # worker registries, double-charging the parent frame's self time
    label = label.replace(SEP, ":")
    outputs: list[np.ndarray | None] = [None] * len(plan._ops)

    # stackable single products: same shapes, no accumulator (mixed ops
    # additionally key on their operand precision)
    stackable: dict[tuple, list[int]] = {}
    for i, op in enumerate(plan._ops):
        if op[0] == "product" and op[3] is None:
            stackable.setdefault((op[1].shape, op[2].shape), []).append(i)
        elif op[0] == "mixed" and op[3] is None:
            stackable.setdefault(
                (op[1].shape, op[2].shape, op[4]), []).append(i)

    done: set[int] = set()
    for i, op in enumerate(plan._ops):
        if i in done:
            continue
        kind = op[0]
        if kind == "chain":
            _, a_steps, b_steps, c = op
            with stage(f"plan-build:{label}"):
                a_fused, b_fused = _fuse_steps(a_steps, b_steps)
            with stage(f"sweep-execute:{label}"):
                outputs[i] = _sweep_fp64(a_fused, b_fused, c)
        elif kind == "ragged":
            _, a_tiles, b_tiles, lengths, offsets, c = op
            with stage(f"plan-build:{label}"):
                buckets = _ragged_buckets(lengths, offsets)
                m, k = a_tiles.shape[-2:]
                n = b_tiles.shape[-1]
                out = np.zeros((len(lengths), m, n)) if c is None \
                    else np.array(c, dtype=np.float64)
            for length, rows, gather in buckets:
                with stage(f"plan-build:{label}"):
                    a_fused, b_fused = _fuse_steps(a_tiles[gather],
                                                   b_tiles[gather])
                    c_rows = None if c is None else out[rows]
                with stage(f"sweep-execute:{label}"):
                    out[rows] = _sweep_fp64(a_fused, b_fused, c_rows)
            outputs[i] = out
        elif kind == "product":
            _, a, b, c = op
            group = stackable.get((a.shape, b.shape), [i]) \
                if c is None else [i]
            if len(group) > 1:
                with stage(f"plan-build:{label}"):
                    a_stack = np.stack([plan._ops[j][1] for j in group])
                    b_stack = np.stack([plan._ops[j][2] for j in group])
                with stage(f"sweep-execute:{label}"):
                    results = _sweep_fp64(a_stack, b_stack, None)
                for pos, j in enumerate(group):
                    outputs[j] = results[pos]
                    done.add(j)
            else:
                with stage(f"sweep-execute:{label}"):
                    outputs[i] = _sweep_fp64(np.asarray(a, dtype=np.float64),
                                             np.asarray(b, dtype=np.float64),
                                             c)
        elif kind == "mixed":
            _, a, b, c, precision = op
            group = stackable.get((a.shape, b.shape, precision), [i]) \
                if c is None else [i]
            if len(group) > 1:
                with stage(f"plan-build:{label}"):
                    a_stack = np.stack([plan._ops[j][1] for j in group])
                    b_stack = np.stack([plan._ops[j][2] for j in group])
                with stage(f"sweep-execute:{label}"):
                    results = mma_mixed_batched(a_stack, b_stack,
                                                precision=precision)
                for pos, j in enumerate(group):
                    outputs[j] = results[pos]
                    done.add(j)
            else:
                with stage(f"sweep-execute:{label}"):
                    outputs[i] = mma_mixed_batched(a, b, c,
                                                   precision=precision)
        elif kind == "bit":
            _, a_words, b_words, c = op
            with stage(f"sweep-execute:{label}"):
                outputs[i] = mma_b1_batched(a_words, b_words, c)
        else:  # pragma: no cover - recording API prevents this
            raise ValueError(f"unknown launch op {kind!r}")
        done.add(i)
    return outputs


# ---------------------------------------------------------- conveniences

def run_chain(a_steps: np.ndarray, b_steps: np.ndarray,
              c: np.ndarray | None = None,
              label: str = "chain") -> np.ndarray:
    """Record-and-execute one uniform chain (single-op plan)."""
    plan = LaunchPlan()
    h = plan.chain(a_steps, b_steps, c)
    return execute_plan(plan, label=label)[h]


def run_ragged(a_tiles: np.ndarray, b_tiles: np.ndarray,
               lengths: np.ndarray, offsets: np.ndarray,
               c: np.ndarray | None = None,
               label: str = "ragged") -> np.ndarray:
    """Record-and-execute one ragged chain-set (single-op plan)."""
    plan = LaunchPlan()
    h = plan.ragged(a_tiles, b_tiles, lengths, offsets, c)
    return execute_plan(plan, label=label)[h]
