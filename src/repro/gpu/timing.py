"""Analytic timing model: a dual-peak, cache-aware roofline.

Execution time for one kernel is

    t = t_launch + max(t_tensor, t_fma, t_dram, t_l1)

where each component is the work booked to that resource divided by the
resource's *sustainable* rate (peak x per-kernel issue efficiency, or
sector-quantized bandwidth).  The model deliberately has no per-workload
fudge factors beyond the two issue efficiencies carried in
:class:`~repro.gpu.counters.KernelStats`; every performance effect in the
paper's Figures 3-6 must emerge from op counts, byte counts, contiguity, and
the per-architecture peak ratios in :mod:`repro.gpu.specs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import KernelStats
from .memory import MemoryModel
from .specs import GPUSpec

__all__ = ["TimingBreakdown", "TimingModel"]


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-resource time components for one kernel execution."""

    tensor_s: float
    fma_s: float
    dram_s: float
    l1_s: float
    launch_s: float
    #: dependent-phase latency beyond the first phase
    stage_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.launch_s + self.stage_s + max(self.tensor_s, self.fma_s,
                                                  self.dram_s, self.l1_s)

    @property
    def bottleneck(self) -> str:
        """Name of the limiting resource."""
        parts = {
            "tensor": self.tensor_s,
            "fma": self.fma_s,
            "dram": self.dram_s,
            "l1": self.l1_s,
        }
        return max(parts, key=parts.get)  # type: ignore[arg-type]

    def utilization(self) -> dict[str, float]:
        """Fraction of the kernel's wall time each resource is busy."""
        t = self.total_s
        if t <= 0:
            return {"tensor": 0.0, "fma": 0.0, "dram": 0.0, "l1": 0.0}
        return {
            "tensor": self.tensor_s / t,
            "fma": self.fma_s / t,
            "dram": self.dram_s / t,
            "l1": self.l1_s / t,
        }


class TimingModel:
    """Maps :class:`KernelStats` to execution time on a :class:`GPUSpec`."""

    def __init__(self, spec: GPUSpec, memory: MemoryModel | None = None) -> None:
        self.spec = spec
        self.memory = memory if memory is not None else MemoryModel()

    # ------------------------------------------------------------------
    def tensor_time(self, stats: KernelStats) -> float:
        """Tensor-pipe busy time: FP64 MMA flops plus bit-MMA ops."""
        t = 0.0
        if stats.tc_flops > 0:
            t += stats.tc_flops / (self.spec.tc_fp64 * stats.tc_efficiency)
        if stats.tc_b1_ops > 0 and self.spec.tc_b1 > 0:
            t += stats.tc_b1_ops / (self.spec.tc_b1 * stats.tc_efficiency)
        return t

    def fma_time(self, stats: KernelStats) -> float:
        """FMA-pipe busy time: vector FP64 flops plus integer/bitwise ops
        (integer throughput modeled at the FP64 vector rate x 2, since INT32
        lanes are twice the FP64 lane count on these parts)."""
        t = 0.0
        if stats.cc_flops > 0:
            t += stats.cc_flops / (self.spec.cc_fp64 * stats.cc_efficiency)
        if stats.cc_int_ops > 0:
            int_rate = 2.0 * self.spec.cc_fp64
            t += stats.cc_int_ops / (int_rate * stats.cc_efficiency)
        return t

    def dram_time(self, stats: KernelStats) -> float:
        return self.memory.dram_time(stats, self.spec.dram_bw)

    def l1_time(self, stats: KernelStats) -> float:
        if stats.l1_bytes <= 0:
            return 0.0
        return stats.l1_bytes / self.spec.l1_bw

    # ------------------------------------------------------------------
    def breakdown(self, stats: KernelStats) -> TimingBreakdown:
        return TimingBreakdown(
            tensor_s=self.tensor_time(stats),
            fma_s=self.fma_time(stats),
            dram_s=self.dram_time(stats),
            l1_s=self.l1_time(stats),
            launch_s=self.spec.launch_overhead_s,
            stage_s=max(stats.serial_stages - 1, 0) * self.spec.stage_latency_s,
        )

    def time(self, stats: KernelStats) -> float:
        """Total kernel execution time, seconds."""
        return self.breakdown(stats).total_s

    def throughput(self, stats: KernelStats, useful_flops: float | None = None) -> float:
        """Achieved flops/s.  ``useful_flops`` defaults to the essential
        flop count when recorded (so redundant MMU padding does not inflate
        reported throughput), else to executed flops."""
        t = self.time(stats)
        if t <= 0:
            return 0.0
        if useful_flops is None:
            useful_flops = (stats.essential_flops
                            if stats.essential_flops > 0
                            else stats.total_flops)
        return useful_flops / t
