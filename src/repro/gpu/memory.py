"""Cache-line-granular memory model.

GPU DRAM traffic happens in fixed-size sectors (32 bytes on NVIDIA hardware,
grouped in 128-byte cache lines).  A kernel that gathers scattered 8-byte
doubles therefore moves a full sector per element and achieves only a small
fraction of peak bandwidth, while a kernel reading long contiguous runs
approaches peak.  This module converts the *logical* access streams recorded
in :class:`repro.gpu.counters.KernelStats` into *effective* sector traffic —
the mechanism behind the paper's Observation 8 (MMU-driven layout changes
regularize access and raise achieved bandwidth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .counters import AccessStream, KernelStats

__all__ = ["MemoryModel", "MemoryTraffic"]


@dataclass(frozen=True)
class MemoryTraffic:
    """Resolved DRAM traffic for one kernel execution."""

    logical_bytes: float
    effective_bytes: float
    read_bytes: float
    write_bytes: float

    @property
    def coalescing_efficiency(self) -> float:
        """logical / effective — 1.0 means perfectly coalesced."""
        if self.effective_bytes <= 0:
            return 1.0
        return self.logical_bytes / self.effective_bytes


class MemoryModel:
    """Sector-quantizing DRAM model.

    Parameters
    ----------
    sector_bytes:
        Minimum transfer granularity (32 B on NVIDIA GPUs).
    streaming_efficiency:
        Fraction of peak bandwidth achievable even for perfectly coalesced
        streams (DRAM page effects, refresh); ~0.85 matches measured
        STREAM-like numbers on HBM parts.
    """

    def __init__(self, sector_bytes: int = 32,
                 streaming_efficiency: float = 0.85) -> None:
        if sector_bytes <= 0:
            raise ValueError("sector_bytes must be positive")
        if not 0.0 < streaming_efficiency <= 1.0:
            raise ValueError("streaming_efficiency must be in (0, 1]")
        self.sector_bytes = sector_bytes
        self.streaming_efficiency = streaming_efficiency

    def effective_stream_bytes(self, stream: AccessStream) -> float:
        """Sector-quantized traffic for one access stream.

        Each contiguous segment of ``segment_bytes`` occupies
        ``ceil(segment/sector)`` sectors; segments are assumed unaligned on
        average half the time, adding half a sector of spill for segments
        that are not sector multiples.
        """
        seg = stream.segment_bytes
        n_segments = stream.total_bytes / seg
        sectors_per_segment = math.ceil(seg / self.sector_bytes)
        # misalignment spill: only when the segment does not tile sectors
        if seg % self.sector_bytes:
            spill = 0.5
        else:
            spill = 0.0
        return n_segments * (sectors_per_segment + spill) * self.sector_bytes

    def resolve(self, stats: KernelStats) -> MemoryTraffic:
        """Compute effective DRAM traffic for a kernel's recorded streams."""
        logical = 0.0
        effective = 0.0
        reads = 0.0
        writes = 0.0
        for s in stats.dram:
            logical += s.total_bytes
            eff = self.effective_stream_bytes(s)
            effective += eff
            if s.kind == "read":
                reads += eff
            else:
                writes += eff
        return MemoryTraffic(
            logical_bytes=logical,
            effective_bytes=effective,
            read_bytes=reads,
            write_bytes=writes,
        )

    def dram_time(self, stats: KernelStats, peak_bw: float) -> float:
        """Time to move the kernel's DRAM traffic at the achievable rate
        (sector-quantized bytes over MLP-scaled streaming bandwidth)."""
        traffic = self.resolve(stats)
        if traffic.effective_bytes <= 0:
            return 0.0
        rate = peak_bw * self.streaming_efficiency * stats.mlp
        return traffic.effective_bytes / rate

    def achieved_bandwidth(self, stats: KernelStats, peak_bw: float) -> float:
        """Logical bytes per second actually delivered (what a profiler
        would report as achieved bandwidth)."""
        t = self.dram_time(stats, peak_bw)
        if t <= 0:
            return 0.0
        return stats.dram_bytes / t
