"""GPU hardware specifications for the simulated devices.

The three devices mirror Table 5 of the paper (A100 PCIe, H200 SXM in the
GH200 platform, B200 SXM) plus the peak-throughput data behind Figure 12.
All throughput values are *theoretical peaks*; the timing model in
:mod:`repro.gpu.timing` applies per-kernel efficiencies on top.

Units used throughout the package:

* flops / second for compute peaks (not TFLOPS),
* bytes / second for bandwidths,
* watts for power,
* seconds for times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "GPUSpec",
    "A100",
    "H200",
    "B200",
    "ALL_GPUS",
    "get_gpu",
]

_TERA = 1.0e12


@dataclass(frozen=True)
class GPUSpec:
    """Specification of one simulated GPU.

    Parameters mirror the public whitepaper numbers used by the paper.  The
    fields that drive the timing model are the two FP64 compute peaks, the
    DRAM bandwidth, and the L1 bandwidth; the power model additionally uses
    ``tdp_w`` and ``idle_w``.
    """

    name: str
    architecture: str
    #: number of streaming multiprocessors
    sms: int
    #: SM clock in GHz (boost clock, used for the L1 bandwidth ceiling)
    clock_ghz: float
    #: FP64 tensor-core peak, flops/s
    tc_fp64: float
    #: FP64 CUDA-core (vector) peak, flops/s
    cc_fp64: float
    #: FP16 tensor-core peak, flops/s (dense, no sparsity) — Figure 12
    tc_fp16: float
    #: FP16 CUDA-core peak, flops/s — Figure 12
    cc_fp16: float
    #: DRAM (HBM) bandwidth, bytes/s
    dram_bw: float
    #: DRAM capacity, bytes
    dram_capacity: float
    #: aggregate L1/shared bandwidth, bytes/s (computed or whitepaper-derived)
    l1_bw: float
    #: thermal design power, watts
    tdp_w: float
    #: idle power, watts
    idle_w: float
    #: kernel launch overhead, seconds
    launch_overhead_s: float = 3.0e-6
    #: latency of one dependent execution phase (barrier + memory round
    #: trip); dominates small kernels like block Scan/Reduction
    stage_latency_s: float = 3.0e-7
    #: single-bit tensor-core peak in binary ops/s (AND+POPC), used by BFS
    tc_b1: float = field(default=0.0)

    @property
    def tc_cc_ratio(self) -> float:
        """Ratio of FP64 tensor-core peak to CUDA-core peak (2.0 on
        Ampere/Hopper, 1.0 on Blackwell — the Figure 12 regression)."""
        return self.tc_fp64 / self.cc_fp64

    def l1_bw_from_lsu(self, lsu_per_sm: int = 32, access_bytes: int = 8) -> float:
        """L1 bandwidth via the paper's Figure 9 formula
        ``BW_L1 = N_SM * N_LSU * W_access * f_clock``."""
        return self.sms * lsu_per_sm * access_bytes * self.clock_ghz * 1e9


# NVIDIA A100 PCIe 40 GB (Ampere).  19.5 / 9.7 TFLOPS FP64 TC / CC,
# 1.555 TB/s HBM2e, 312 TFLOPS FP16 TC.
A100 = GPUSpec(
    name="A100",
    architecture="Ampere",
    sms=108,
    clock_ghz=1.41,
    tc_fp64=19.5 * _TERA,
    cc_fp64=9.7 * _TERA,
    tc_fp16=312.0 * _TERA,
    cc_fp16=78.0 * _TERA,
    dram_bw=1.555e12,
    dram_capacity=40e9,
    l1_bw=108 * 32 * 8 * 1.41e9,
    tdp_w=250.0,
    idle_w=55.0,
    stage_latency_s=5.0e-7,
    tc_b1=4992.0 * _TERA,
)

# NVIDIA H200 SXM (Hopper, GH200 platform).  66.9 / 33.5 TFLOPS FP64,
# 4 TB/s HBM3e, 989.5 TFLOPS FP16 TC, TDP 750 W (per the paper, Section 7).
H200 = GPUSpec(
    name="H200",
    architecture="Hopper",
    sms=132,
    clock_ghz=1.83,
    tc_fp64=66.9 * _TERA,
    cc_fp64=33.5 * _TERA,
    tc_fp16=989.5 * _TERA,
    cc_fp16=133.8 * _TERA,
    dram_bw=4.0e12,
    dram_capacity=96e9,
    l1_bw=132 * 32 * 8 * 1.83e9,
    tdp_w=750.0,
    idle_w=75.0,
    stage_latency_s=3.0e-7,
    tc_b1=7916.0 * _TERA,
)

# NVIDIA B200 SXM (Blackwell).  FP64 TC throughput regresses to 40 TFLOPS and
# equals the CUDA-core peak (Table 5 / Figure 12); 8 TB/s HBM3e,
# 1800 TFLOPS FP16 TC.
B200 = GPUSpec(
    name="B200",
    architecture="Blackwell",
    sms=148,
    clock_ghz=1.96,
    tc_fp64=40.0 * _TERA,
    cc_fp64=40.0 * _TERA,
    tc_fp16=1800.0 * _TERA,
    cc_fp16=160.0 * _TERA,
    dram_bw=8.0e12,
    dram_capacity=180e9,
    l1_bw=148 * 32 * 8 * 1.96e9,
    tdp_w=1000.0,
    idle_w=90.0,
    stage_latency_s=2.7e-7,
    tc_b1=14400.0 * _TERA,
)

ALL_GPUS: tuple[GPUSpec, ...] = (A100, H200, B200)

_BY_NAME = {g.name.lower(): g for g in ALL_GPUS}


def get_gpu(name: str) -> GPUSpec:
    """Look a device up by name (case-insensitive): ``"A100"``, ``"H200"``,
    ``"B200"``."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown GPU {name!r}; available: {sorted(_BY_NAME)}"
        ) from None
