"""MMA instruction-set registry across precisions and GPU generations.

The paper's background section (and Figure 12) discusses how tensor-core
instruction interfaces grew across Volta/Turing/Ampere/Hopper/Blackwell.
This module catalogs the MMA shapes per precision, which generations
support them, and their per-instruction work — the information the
counters and Figure 12 reasoning rest on.  The functional emulation in
:mod:`repro.gpu.mma` implements the two shapes Cubie uses
(``FP64 m8n8k4`` and ``B1 m8n8k128``); the rest of the catalog supports
peak-throughput accounting and the flexible-MMU discussion of
Observations 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Precision", "MmaShape", "MMA_SHAPES", "shapes_for",
           "find_shape", "instruction_name"]


class Precision(str, Enum):
    """Operand precisions tensor cores accept."""

    FP64 = "f64"
    FP32 = "tf32"     # TF32: FP32 range, reduced mantissa
    FP16 = "f16"
    BF16 = "bf16"
    INT8 = "s8"
    B1 = "b1"         # single-bit (AND/XOR + POPC)

    @property
    def bits(self) -> int:
        return {"f64": 64, "tf32": 19, "f16": 16, "bf16": 16,
                "s8": 8, "b1": 1}[self.value]


@dataclass(frozen=True)
class MmaShape:
    """One MMA instruction shape."""

    precision: Precision
    m: int
    n: int
    k: int
    #: first architecture supporting it (matching GPUSpec.architecture)
    since: str

    @property
    def ops_per_instruction(self) -> int:
        """Multiply-accumulate ops (2 flops each for floating point;
        AND+POPC pairs for B1)."""
        return 2 * self.m * self.n * self.k

    @property
    def a_elements(self) -> int:
        return self.m * self.k

    @property
    def b_elements(self) -> int:
        return self.k * self.n

    @property
    def c_elements(self) -> int:
        return self.m * self.n

    @property
    def elements_per_lane(self) -> tuple[float, float, float]:
        """(A, B, C) elements each of the 32 lanes holds."""
        return (self.a_elements / 32, self.b_elements / 32,
                self.c_elements / 32)

    def name(self) -> str:
        return instruction_name(self)


def instruction_name(shape: MmaShape) -> str:
    """PTX-style mnemonic, e.g. ``mma.sync.m8n8k4.f64``."""
    return f"mma.sync.m{shape.m}n{shape.n}k{shape.k}.{shape.precision.value}"


#: generation order for support checks
_ARCH_ORDER = ("Volta", "Turing", "Ampere", "Hopper", "Blackwell")

MMA_SHAPES: tuple[MmaShape, ...] = (
    # FP64 arrives with Ampere — the paper's workhorse
    MmaShape(Precision.FP64, 8, 8, 4, "Ampere"),
    # TF32 (Ampere+)
    MmaShape(Precision.FP32, 16, 8, 4, "Ampere"),
    MmaShape(Precision.FP32, 16, 8, 8, "Ampere"),
    # FP16 from Volta, widened over time
    MmaShape(Precision.FP16, 8, 8, 4, "Volta"),
    MmaShape(Precision.FP16, 16, 8, 8, "Turing"),
    MmaShape(Precision.FP16, 16, 8, 16, "Ampere"),
    MmaShape(Precision.BF16, 16, 8, 8, "Ampere"),
    MmaShape(Precision.BF16, 16, 8, 16, "Ampere"),
    # INT8 from Turing
    MmaShape(Precision.INT8, 8, 8, 16, "Turing"),
    MmaShape(Precision.INT8, 16, 8, 32, "Ampere"),
    # single-bit from Turing — BerryBees' instruction
    MmaShape(Precision.B1, 8, 8, 128, "Turing"),
    MmaShape(Precision.B1, 16, 8, 256, "Ampere"),
)


def shapes_for(architecture: str,
               precision: Precision | None = None) -> list[MmaShape]:
    """Shapes an architecture supports (optionally one precision)."""
    if architecture not in _ARCH_ORDER:
        raise ValueError(
            f"unknown architecture {architecture!r}; "
            f"known: {_ARCH_ORDER}")
    level = _ARCH_ORDER.index(architecture)
    out = [s for s in MMA_SHAPES
           if _ARCH_ORDER.index(s.since) <= level
           and (precision is None or s.precision is precision)]
    return out


def find_shape(precision: Precision, m: int, n: int, k: int) -> MmaShape:
    """Exact shape lookup."""
    for s in MMA_SHAPES:
        if (s.precision, s.m, s.n, s.k) == (precision, m, n, k):
            return s
    raise ValueError(
        f"no {precision.value} mma with m{m}n{n}k{k} in the catalog")
