"""Simulated GPU substrate: specs, MMA emulation, counters, and models.

This package stands in for the physical A100/H200/B200 GPUs of the paper.
See DESIGN.md section 2 for the substitution rationale.
"""

from .counters import AccessStream, KernelStats
from .isa import MMA_SHAPES, MmaShape, Precision, find_shape, shapes_for
from .occupancy import (
    DEFAULT_SM,
    KernelResources,
    Occupancy,
    SmResources,
    occupancy,
)
from .device import Device, KernelResult, all_devices
from .memory import MemoryModel, MemoryTraffic
from .mma_mixed import mma_mixed_batched, quantize, unit_roundoff
from .mma import (
    mma_b1_batched,
    mma_fp64_batched,
    mma_m8n8k4,
    mma_m8n8k4_batched,
    mma_m8n8k128_b1,
    pack_bits_rows,
    warp_gemm_m8n8k4,
)
from .power import PowerModel, PowerTrace, geomean_edp
from .specs import A100, ALL_GPUS, B200, H200, GPUSpec, get_gpu
from .timing import TimingBreakdown, TimingModel
from .trace import Timeline, TimelineEvent

__all__ = [
    "AccessStream",
    "KernelStats",
    "MMA_SHAPES",
    "MmaShape",
    "Precision",
    "find_shape",
    "shapes_for",
    "DEFAULT_SM",
    "KernelResources",
    "Occupancy",
    "SmResources",
    "occupancy",
    "Device",
    "KernelResult",
    "all_devices",
    "MemoryModel",
    "MemoryTraffic",
    "mma_mixed_batched",
    "quantize",
    "unit_roundoff",
    "mma_b1_batched",
    "mma_fp64_batched",
    "mma_m8n8k4",
    "mma_m8n8k4_batched",
    "mma_m8n8k128_b1",
    "pack_bits_rows",
    "warp_gemm_m8n8k4",
    "PowerModel",
    "PowerTrace",
    "geomean_edp",
    "A100",
    "ALL_GPUS",
    "B200",
    "H200",
    "GPUSpec",
    "get_gpu",
    "TimingBreakdown",
    "TimingModel",
    "Timeline",
    "TimelineEvent",
]
