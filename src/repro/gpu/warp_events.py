"""Instrumentation hook surface for the warp-hazard sanitizer.

:mod:`repro.gpu.fragments` and :mod:`repro.gpu.mma` report per-lane
fragment and simulated shared-memory traffic through this module whenever a
tracer is installed.  With no tracer the hooks reduce to one ``is None``
check, so the hot batched paths keep their PR-1 performance.

The tracer protocol (implemented by
:class:`repro.check.hazards.WarpSanitizer`) is deliberately tiny:

* ``begin_scope(name)`` / ``end_scope()`` — one simulated kernel/warp
  program; hazard state is per scope;
* ``fragment_access(kind, op, lanes, rows, cols, reg)`` — a warp-wide
  access through an ``m8n8k4`` fragment map (``kind`` in ``A``/``B``/``C``,
  ``op`` in ``read``/``write``);
* ``shared_access(op, array, lanes, offsets, width)`` — a warp-wide access
  to a simulated shared-memory array at per-lane element offsets;
* ``sync(label)`` — a warp synchronization point (``mma.sync``,
  ``__syncwarp``); clears the hazard epoch.

``gpu`` must not import ``repro.check`` (the checker imports ``gpu``), so
this module holds only the hook slot and emit helpers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "TRACER",
    "active",
    "install",
    "uninstall",
    "scope",
    "emit_begin",
    "emit_end",
    "emit_sync",
    "emit_fragment",
    "emit_shared",
]

#: the installed tracer, or None (the common case)
TRACER: Any = None


def active() -> bool:
    return TRACER is not None


def install(tracer: Any) -> None:
    global TRACER
    if TRACER is not None:
        raise RuntimeError("a warp tracer is already installed")
    TRACER = tracer


def uninstall(tracer: Any) -> None:
    global TRACER
    if TRACER is not tracer:
        raise RuntimeError("attempt to uninstall a tracer that is not "
                           "installed")
    TRACER = None


@contextmanager
def scope(name: str) -> Iterator[None]:
    emit_begin(name)
    try:
        yield
    finally:
        emit_end()


def emit_begin(name: str) -> None:
    if TRACER is not None:
        TRACER.begin_scope(name)


def emit_end() -> None:
    if TRACER is not None:
        TRACER.end_scope()


def emit_sync(label: str = "") -> None:
    if TRACER is not None:
        TRACER.sync(label)


def emit_fragment(kind: str, op: str, lanes, rows, cols,
                  reg: int | None = None) -> None:
    if TRACER is not None:
        TRACER.fragment_access(kind, op, lanes, rows, cols, reg)


def emit_shared(op: str, array: str, lanes, offsets, width: int = 32) -> None:
    if TRACER is not None:
        TRACER.shared_access(op, array, lanes, offsets, width)
