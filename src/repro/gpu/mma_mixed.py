"""Mixed-precision MMA emulation (FP16 / BF16 / TF32 inputs, FP32
accumulate).

The paper's concluding Figure 12 contrasts the exploding FP16 tensor-core
peaks with the regressing FP64 ones.  To reason about that trade-off
quantitatively (can low-precision MMAs plus iterative refinement replace
FP64 ones?), this module emulates the reduced-precision tensor-core data
path faithfully:

* inputs are *quantized* to the operand precision (IEEE half, bfloat16's
  8-bit mantissa, or TF32's 10-bit mantissa) exactly as the hardware
  truncates them;
* products accumulate k-sequentially in FP32, each partial sum rounded to
  FP32 (the documented tensor-core accumulate behaviour);
* the result is returned in FP64 so downstream refinement arithmetic is
  exact.
"""

from __future__ import annotations

import numpy as np

from .isa import Precision

__all__ = ["quantize", "mma_mixed_batched", "unit_roundoff"]


def unit_roundoff(precision: Precision) -> float:
    """Half the spacing of the operand format at 1.0."""
    return {
        Precision.FP64: 2.0 ** -53,
        Precision.FP32: 2.0 ** -11,   # TF32: 10 explicit mantissa bits
        Precision.FP16: 2.0 ** -11,
        Precision.BF16: 2.0 ** -8,
    }[precision]


def _truncate_mantissa(x: np.ndarray, keep_bits: int) -> np.ndarray:
    """Round-to-nearest-even an FP32 array to ``keep_bits`` explicit
    mantissa bits (the bfloat16 / TF32 quantization)."""
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    drop = 23 - keep_bits
    # the classic round-to-nearest-even bias: add (half - 1) plus the
    # lowest kept bit, then mask the dropped bits away
    lsb = np.uint32(1) << np.uint32(drop)
    round_bit = np.uint32(1) << np.uint32(drop - 1)
    with np.errstate(over="ignore"):
        rounded = bits + (round_bit - np.uint32(1)) \
            + ((bits >> np.uint32(drop)) & np.uint32(1))
    keep_mask = ~np.uint32(lsb - np.uint32(1))
    return (rounded & keep_mask).view(np.float32)


def quantize(x: np.ndarray, precision: Precision) -> np.ndarray:
    """Quantize an array to an operand precision, returned as FP64."""
    x = np.asarray(x, dtype=np.float64)
    if precision is Precision.FP64:
        return x.copy()
    if precision is Precision.FP16:
        return x.astype(np.float16).astype(np.float64)
    if precision is Precision.BF16:
        return _truncate_mantissa(x, 7).astype(np.float64)
    if precision is Precision.FP32:  # TF32
        return _truncate_mantissa(x, 10).astype(np.float64)
    raise ValueError(f"no quantizer for {precision}")


def mma_mixed_batched(a: np.ndarray, b: np.ndarray,
                      c: np.ndarray | None = None,
                      precision: Precision = Precision.FP16) -> np.ndarray:
    """Batched MMA with quantized operands and FP32 accumulation.

    ``a``: (..., m, k); ``b``: (..., k, n); ``c``: (..., m, n) FP32-class
    accumulator (values treated as exactly representable).  Returns FP64.
    """
    aq = quantize(a, precision)
    bq = quantize(b, precision)
    if aq.ndim < 2 or bq.ndim < 2:
        raise ValueError("operands must be at least 2-D")
    m, k = aq.shape[-2:]
    k2, n = bq.shape[-2:]
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    batch = np.broadcast_shapes(aq.shape[:-2], bq.shape[:-2])
    if c is None:
        acc = np.zeros(batch + (m, n), dtype=np.float32)
    else:
        acc = np.broadcast_to(np.asarray(c, dtype=np.float32),
                              batch + (m, n)).copy()
    a32 = np.broadcast_to(aq.astype(np.float32), batch + (m, k))
    b32 = np.broadcast_to(bq.astype(np.float32), batch + (k, n))
    # k-sequential rank-1 updates through one reused fp32 scratch buffer:
    # the product is exact in fp32 for quantized inputs and the in-place
    # add rounds identically to the fresh-temporary formulation, so this
    # is bit-identical while allocating two buffers total instead of two
    # per k step
    scratch = np.empty(batch + (m, n), dtype=np.float32)
    for kk in range(k):
        np.multiply(a32[..., :, kk:kk + 1], b32[..., kk:kk + 1, :],
                    out=scratch)
        acc += scratch
    return acc.astype(np.float64)
