"""Power and energy model.

The paper samples board power with NVML while each kernel runs in a loop
(Section 7, Figures 7-8) and computes the energy-delay product
``EDP = average power x time^2``.  Here, instantaneous power is derived from
the timing model's per-resource utilization:

    P = P_idle + (w_t u_t + w_f u_f + w_m u_m) . (TDP - P_idle)

with activity weights calibrated once, globally, against the paper's H200
anchor points (Stencil TC ~450 W, Scan TC ~244 W, BFS TC ~375 W, baselines
340-470 W) and never per workload.  Traces are synthesized at an NVML-like
sampling cadence with a first-order thermal ramp and deterministic
measurement jitter so Figure 8's curves have realistic texture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .counters import KernelStats
from .specs import GPUSpec
from .timing import TimingModel

__all__ = ["PowerModel", "PowerTrace", "WEIGHT_TENSOR", "WEIGHT_FMA", "WEIGHT_MEM"]

#: global activity weights (fraction of dynamic power range at full usage)
WEIGHT_TENSOR = 0.55
WEIGHT_FMA = 0.42
WEIGHT_MEM = 0.30


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power trace, NVML-style."""

    times_s: np.ndarray
    power_w: np.ndarray

    @property
    def duration_s(self) -> float:
        return float(self.times_s[-1]) if len(self.times_s) else 0.0

    @property
    def average_power_w(self) -> float:
        if len(self.power_w) < 2:
            return float(self.power_w[0]) if len(self.power_w) else 0.0
        return float(np.trapezoid(self.power_w, self.times_s) / self.duration_s)

    @property
    def energy_j(self) -> float:
        """Area under the power-time curve (Figure 8's shaded area)."""
        if len(self.power_w) < 2:
            return 0.0
        return float(np.trapezoid(self.power_w, self.times_s))

    @property
    def edp(self) -> float:
        """Energy-delay product = average power x time^2 (paper Section 7)."""
        return self.average_power_w * self.duration_s ** 2


class PowerModel:
    """Derives steady-state power and synthesizes traces for a device."""

    def __init__(self, spec: GPUSpec, timing: TimingModel | None = None,
                 sample_hz: float = 20.0) -> None:
        self.spec = spec
        self.timing = timing if timing is not None else TimingModel(spec)
        self.sample_hz = sample_hz

    # ------------------------------------------------------------------
    def steady_power(self, stats: KernelStats) -> float:
        """Steady-state board power while this kernel runs back-to-back."""
        util = self.timing.breakdown(stats).utilization()
        dynamic_range = self.spec.tdp_w - self.spec.idle_w
        activity = (WEIGHT_TENSOR * util["tensor"]
                    + WEIGHT_FMA * util["fma"]
                    + WEIGHT_MEM * util["dram"])
        power = self.spec.idle_w + min(activity, 1.0) * dynamic_range
        return min(power, self.spec.tdp_w)

    def energy(self, stats: KernelStats) -> float:
        """Energy of a single kernel execution, joules."""
        return self.steady_power(stats) * self.timing.time(stats)

    def edp(self, stats: KernelStats, repeats: int = 1) -> float:
        """EDP for ``repeats`` back-to-back executions (Figure 7 executes
        each workload hundreds to millions of times)."""
        t = self.timing.time(stats) * repeats
        return self.steady_power(stats) * t * t

    # ------------------------------------------------------------------
    def trace(self, stats: KernelStats, repeats: int = 1, *,
              ramp_s: float = 0.15, jitter_w: float = 6.0,
              seed: int = 0x5EED) -> PowerTrace:
        """Synthesize an NVML-like sampled trace for a measurement loop.

        The trace starts at idle, ramps with a first-order time constant
        toward the steady-state power, and carries small deterministic
        jitter (sensor quantization plus DVFS dither).
        """
        steady = self.steady_power(stats)
        total_s = max(self.timing.time(stats) * repeats, 2.0 / self.sample_hz)
        n = max(int(total_s * self.sample_hz) + 1, 2)
        times = np.linspace(0.0, total_s, n)
        ramp = 1.0 - np.exp(-times / max(ramp_s, 1e-9))
        base = self.spec.idle_w + (steady - self.spec.idle_w) * ramp
        # deterministic jitter from a tiny LCG so traces are reproducible
        state = int(seed)
        mask = (1 << 64) - 1
        noise = np.empty(n)
        for i in range(n):
            state = (6364136223846793005 * state + 1442695040888963407) & mask
            noise[i] = ((state >> 33) / 2**31) - 1.0
        power = np.minimum(base + jitter_w * noise, self.spec.tdp_w)
        power = np.maximum(power, 0.8 * self.spec.idle_w)
        return PowerTrace(times_s=times, power_w=power)


def geomean_edp(edps: list[float]) -> float:
    """Geometric-mean EDP across workloads (Figure 7's per-quadrant bars)."""
    if not edps:
        raise ValueError("need at least one EDP value")
    if any(e <= 0 for e in edps):
        raise ValueError("EDP values must be positive")
    return math.exp(sum(math.log(e) for e in edps) / len(edps))
