"""SM occupancy model.

Memory-level parallelism in the timing model is carried as a per-kernel
MLP factor; this module provides the classical occupancy calculation that
grounds those factors: given a kernel's per-thread register count, shared
memory per block, and block size, how many warps can an SM keep resident,
and what fraction of latency-hiding capacity does that buy?

It is exposed as a diagnostic (see ``examples/characterize_custom_kernel``
-style use and the tests) rather than wired into the calibrated constants,
so the headline results stay reproducible while users can explore how
resource pressure would shift them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .specs import GPUSpec

__all__ = ["SmResources", "KernelResources", "Occupancy",
           "occupancy", "DEFAULT_SM"]


@dataclass(frozen=True)
class SmResources:
    """Per-SM schedulable resources (Ampere/Hopper-class defaults)."""

    max_warps: int = 64
    max_blocks: int = 32
    registers: int = 65536
    shared_memory: int = 164 * 1024
    warp_allocation_granularity: int = 4
    register_allocation_unit: int = 256


DEFAULT_SM = SmResources()


@dataclass(frozen=True)
class KernelResources:
    """What one block of a kernel consumes."""

    threads_per_block: int
    registers_per_thread: int = 32
    shared_per_block: int = 0

    def __post_init__(self) -> None:
        if not 32 <= self.threads_per_block <= 1024:
            raise ValueError("threads_per_block must be in [32, 1024]")
        if self.threads_per_block % 32:
            raise ValueError("threads_per_block must be a warp multiple")
        if not 16 <= self.registers_per_thread <= 255:
            raise ValueError("registers_per_thread must be in [16, 255]")
        if self.shared_per_block < 0:
            raise ValueError("shared_per_block must be non-negative")

    @property
    def warps_per_block(self) -> int:
        return self.threads_per_block // 32


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation."""

    blocks_per_sm: int
    warps_per_sm: int
    max_warps: int
    #: what capped the block count
    limiter: str

    @property
    def fraction(self) -> float:
        return self.warps_per_sm / self.max_warps

    def mlp_estimate(self, warps_to_saturate: int = 24) -> float:
        """Memory-level-parallelism proxy: resident warps relative to the
        count empirically needed to saturate HBM (~24 on these parts),
        capped at 1."""
        if warps_to_saturate <= 0:
            raise ValueError("warps_to_saturate must be positive")
        return min(self.warps_per_sm / warps_to_saturate, 1.0)


def _round_up(x: int, unit: int) -> int:
    return ((x + unit - 1) // unit) * unit


def occupancy(kernel: KernelResources,
              sm: SmResources = DEFAULT_SM) -> Occupancy:
    """Classical CUDA occupancy calculation."""
    limits: dict[str, int] = {}
    limits["blocks"] = sm.max_blocks
    limits["warps"] = sm.max_warps // kernel.warps_per_block
    regs_per_block = _round_up(
        kernel.registers_per_thread * 32,
        sm.register_allocation_unit) * kernel.warps_per_block
    limits["registers"] = (sm.registers // regs_per_block
                           if regs_per_block else sm.max_blocks)
    if kernel.shared_per_block:
        limits["shared_memory"] = sm.shared_memory // kernel.shared_per_block
    limiter = min(limits, key=limits.get)  # type: ignore[arg-type]
    blocks = max(limits[limiter], 0)
    warps = min(blocks * kernel.warps_per_block, sm.max_warps)
    return Occupancy(blocks_per_sm=blocks, warps_per_sm=warps,
                     max_warps=sm.max_warps, limiter=limiter)


def device_parallelism(spec: GPUSpec, kernel: KernelResources,
                       sm: SmResources = DEFAULT_SM) -> int:
    """Total resident warps across the device for a kernel."""
    return occupancy(kernel, sm).warps_per_sm * spec.sms
