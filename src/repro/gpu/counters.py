"""Hardware event counters collected during simulated kernel execution.

:class:`KernelStats` plays the role NCU plays in the paper: it accumulates
floating-point work per execution pipe (tensor vs FMA), instruction counts,
and byte traffic per memory level.  Memory traffic is recorded as *access
streams* — (total bytes, typical contiguous segment length) pairs — so the
memory model in :mod:`repro.gpu.memory` can derive achieved bandwidth from
coalescing behaviour rather than from a hand-tuned constant.

The counters also record MMA operand/result *utilization* (how many of the
8x4 / 4x8 / 8x8 fragment elements carry mathematically useful data), which is
the quantitative basis of the paper's four-quadrant categorization (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AccessStream", "KernelStats"]


@dataclass(frozen=True)
class AccessStream:
    """One logical stream of memory accesses.

    ``segment_bytes`` is the typical length of a contiguous run of bytes
    touched together (e.g. 8 for scattered FP64 gathers, 32 for a DASP
    4-element row slice, very large for streaming reads).
    """

    total_bytes: float
    segment_bytes: float
    kind: str = "read"  # "read" | "write"

    def __post_init__(self) -> None:
        if self.total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        if self.segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if self.kind not in ("read", "write"):
            raise ValueError(f"kind must be 'read' or 'write', got {self.kind!r}")


@dataclass
class KernelStats:
    """Event counters for one kernel execution on the simulated device."""

    # --- compute ---------------------------------------------------------
    #: FP64 flops executed on the tensor pipe (full MMA flops, incl. padding)
    tc_flops: float = 0.0
    #: FP64 flops executed on the FMA/vector pipe
    cc_flops: float = 0.0
    #: single-bit tensor ops (AND+POPC lanes of ``mma_m8n8k128``)
    tc_b1_ops: float = 0.0
    #: integer/bitwise vector ops (baseline BFS etc.)
    cc_int_ops: float = 0.0
    #: flops that are mathematically necessary for the result (no padding,
    #: no replicated operands) — drives the redundancy analysis (Obs. 5)
    essential_flops: float = 0.0

    #: number of MMA instructions issued
    mma_instructions: int = 0
    #: number of scalar/vector FMA instructions issued
    fma_instructions: int = 0

    # --- memory ----------------------------------------------------------
    dram: list[AccessStream] = field(default_factory=list)
    #: bytes moved through the L1/shared-memory level
    l1_bytes: float = 0.0
    #: bytes staged through shared memory explicitly
    smem_bytes: float = 0.0

    # --- MMA utilization (Figure 2) ---------------------------------------
    mma_input_useful: float = 0.0
    mma_input_total: float = 0.0
    mma_output_useful: float = 0.0
    mma_output_total: float = 0.0

    # --- efficiency knobs --------------------------------------------------
    #: fraction of peak the tensor pipe can sustain for this kernel's issue
    #: pattern (no software pipelining in Cubie => well below 1.0)
    tc_efficiency: float = 0.45
    #: fraction of peak the FMA pipe can sustain
    cc_efficiency: float = 0.70
    #: memory-level parallelism factor in (0, 1]: fraction of the coalesced
    #: bandwidth a kernel can actually drive.  Kernels that spend warp issue
    #: slots on expanded scalar arithmetic (the CC replacements) or suffer
    #: load imbalance keep fewer loads in flight and set this below 1.
    mlp: float = 1.0
    #: number of dependent execution phases (each costs the device's
    #: ``stage_latency_s`` beyond the first); the latency term that
    #: dominates tiny kernels such as block Scan/Reduction
    serial_stages: int = 1

    # ------------------------------------------------------------------ API
    def add_mma_fp64(self, count: float, *, m: int = 8, n: int = 8, k: int = 4,
                     input_useful: float | None = None,
                     output_useful: float | None = None) -> None:
        """Account ``count`` FP64 ``mma_m{m}n{n}k{k}`` instructions to the
        tensor pipe.  Utilization defaults to full fragments."""
        flops = 2.0 * m * n * k * count
        self.tc_flops += flops
        self.mma_instructions += int(count)
        in_total = (m * k + k * n) * count
        out_total = m * n * count
        self.mma_input_total += in_total
        self.mma_input_useful += in_total if input_useful is None else input_useful
        self.mma_output_total += out_total
        self.mma_output_useful += out_total if output_useful is None else output_useful

    def add_mma_as_fma(self, count: float, *, m: int = 8, n: int = 8,
                       k: int = 4) -> None:
        """Account the CUDA-core replacement of ``count`` MMAs: the same
        flops, booked to the FMA pipe (the CC variants of Section 5.2)."""
        flops = 2.0 * m * n * k * count
        self.cc_flops += flops
        # each thread of the 32-wide warp performs m*n*k/32 FMAs
        self.fma_instructions += int(count * m * n * k)

    def add_fma(self, flops: float) -> None:
        """Account plain FMA-pipe flops (baselines and CC-E variants)."""
        self.cc_flops += flops
        self.fma_instructions += int(flops / 2.0)

    def add_mma_b1(self, count: float, *, m: int = 8, n: int = 8,
                   k: int = 128, output_useful: float | None = None) -> None:
        """Account single-bit AND+POPC MMAs (BerryBees BFS)."""
        ops = 2.0 * m * n * k * count
        self.tc_b1_ops += ops
        self.mma_instructions += int(count)
        in_total = (m * k + k * n) * count
        out_total = m * n * count
        self.mma_input_total += in_total
        self.mma_input_useful += in_total
        self.mma_output_total += out_total
        self.mma_output_useful += out_total if output_useful is None else output_useful

    def add_int_ops(self, ops: float) -> None:
        """Account integer/bitwise vector-pipe ops (baseline BFS probes,
        suite mini-kernels)."""
        self.cc_int_ops += ops

    def add_l1(self, total_bytes: float) -> None:
        """Account bytes through the L1/shared-memory level."""
        self.l1_bytes += total_bytes

    def add_smem(self, total_bytes: float) -> None:
        """Account bytes explicitly staged through shared memory."""
        self.smem_bytes += total_bytes

    def note_mma_utilization(self, *, input_useful: float = 0.0,
                             input_total: float = 0.0,
                             output_useful: float = 0.0,
                             output_total: float = 0.0) -> None:
        """Record fragment utilization for MMA-shaped work that is *not*
        booked through ``add_mma_*`` (e.g. the CC replacement of a bit-MMA,
        whose ops land on the integer pipe but whose Figure 2 utilization
        signature must match the TC variant)."""
        self.mma_input_useful += input_useful
        self.mma_input_total += input_total
        self.mma_output_useful += output_useful
        self.mma_output_total += output_total

    def read_dram(self, total_bytes: float, segment_bytes: float = 1 << 20) -> None:
        """Record a DRAM read stream (defaults to fully streaming)."""
        if total_bytes:
            self.dram.append(AccessStream(total_bytes, segment_bytes, "read"))

    def write_dram(self, total_bytes: float, segment_bytes: float = 1 << 20) -> None:
        """Record a DRAM write stream."""
        if total_bytes:
            self.dram.append(AccessStream(total_bytes, segment_bytes, "write"))

    def merge(self, other: "KernelStats") -> None:
        """Accumulate another stats object into this one (phase merging)."""
        self.tc_flops += other.tc_flops
        self.cc_flops += other.cc_flops
        self.tc_b1_ops += other.tc_b1_ops
        self.cc_int_ops += other.cc_int_ops
        self.essential_flops += other.essential_flops
        self.mma_instructions += other.mma_instructions
        self.fma_instructions += other.fma_instructions
        self.dram.extend(other.dram)
        self.l1_bytes += other.l1_bytes
        self.smem_bytes += other.smem_bytes
        self.mma_input_useful += other.mma_input_useful
        self.mma_input_total += other.mma_input_total
        self.mma_output_useful += other.mma_output_useful
        self.mma_output_total += other.mma_output_total

    # ------------------------------------------------------------ derived
    @property
    def total_flops(self) -> float:
        return self.tc_flops + self.cc_flops

    @property
    def dram_bytes(self) -> float:
        """Total *logical* DRAM bytes (before sector quantization)."""
        return sum(s.total_bytes for s in self.dram)

    @property
    def input_utilization(self) -> float:
        """Fraction of MMA input fragment elements carrying useful data."""
        if self.mma_input_total == 0:
            return 0.0
        return self.mma_input_useful / self.mma_input_total

    @property
    def output_utilization(self) -> float:
        """Fraction of MMA output fragment elements that are consumed."""
        if self.mma_output_total == 0:
            return 0.0
        return self.mma_output_useful / self.mma_output_total

    @property
    def redundancy(self) -> float:
        """Ratio of executed flops to essential flops (>= 1 when known)."""
        if self.essential_flops <= 0:
            return 1.0
        return max(self.total_flops, self.essential_flops) / self.essential_flops

    def arithmetic_intensity(self, level: str = "dram") -> float:
        """Flops per byte at the requested memory level (Figure 9 x-axis)."""
        if level == "dram":
            b = self.dram_bytes
        elif level == "l1":
            b = self.l1_bytes
        else:
            raise ValueError(f"unknown level {level!r}")
        if b <= 0:
            return float("inf")
        ops = self.total_flops if self.total_flops > 0 else self.tc_b1_ops + self.cc_int_ops
        return ops / b
