"""Cubie reproduction: characterizing matrix multiplication units across
general parallel patterns in scientific computing (PPoPP'26).

Public API tour
---------------
* :mod:`repro.gpu` — the simulated GPU substrate (A100/H200/B200 specs,
  functional FP64/bit MMA emulation, timing/power/memory models).
* :mod:`repro.kernels` — the ten Cubie workloads, each with baseline / TC /
  CC / CC-E variants.
* :mod:`repro.sparse` — CSR, mBSR, DASP, and bitmap storage substrates.
* :mod:`repro.datasets` — deterministic input generation (LINPACK-style
  LCG, SuiteSparse stand-ins, population sweeps).
* :mod:`repro.analysis` — quadrants, accuracy, roofline, EDP, PCA, dwarfs.
* :mod:`repro.harness` — runners and report formatting for the
  figure/table regenerators in ``benchmarks/``.

Quickstart
----------
>>> from repro.gpu import Device
>>> from repro.kernels import get_workload, Variant
>>> w = get_workload("gemm")
>>> result = w.run_case(Variant.TC, w.cases()[0], Device("H200"))
>>> result.tflops > 0
True
"""

from . import analysis, datasets, gpu, harness, kernels, sparse, suites
from .gpu import Device
from .kernels import Variant, all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "datasets",
    "gpu",
    "harness",
    "kernels",
    "sparse",
    "suites",
    "Device",
    "Variant",
    "all_workloads",
    "get_workload",
    "__version__",
]
