"""Reduction workload (Quadrant III, MapReduce dwarf).

FP64 adaptation of Dakkak et al.'s tensor-core segmented reduction (ICS'19).
Each segment of the input is consumed as 8x4 value tiles; a *constant*
operand ``A1`` (a single row of ones, never loaded from memory) turns each
MMA into a column-summing step chained through the 8x8 accumulator:

    C = A1 @ V_t + C        for every tile t of the segment

after which only row 0 of C carries the eight column partials, folded by a
second constant-matrix multiply — partial input (constants), partial output
(one row, ultimately one element): Quadrant III.

The baseline models CUB ``BlockReduce``: 32-lane strided partials followed
by a shuffle tree per segment.  Test cases sweep the segment size 64..1024
(Table 2) over a fixed large array.
"""

from __future__ import annotations

import numpy as np

from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    TC_EFF_CONST,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
    ceil_div,
)

__all__ = ["ReductionWorkload", "A1_CONSTANT"]

#: the constant A operand: row 0 of ones sums the four rows of each V tile
A1_CONSTANT = np.zeros((8, 4))
A1_CONSTANT[0, :] = 1.0
A1_CONSTANT.setflags(write=False)

#: total array length at paper scale and for functional execution
N_TOTAL = 1 << 24
N_EXEC = 1 << 20

#: block-synchronous tree baselines leave bandwidth idle between stages
MLP_TREE_BASELINE = 0.75
#: the CC replacement serializes each MMA into dependent FMA chains that
#: cannot overlap loads — the paper's "CC does not leverage constant
#: operands as much as tensor cores" (Section 6.2)
MLP_CC_CONST = 0.40


class ReductionWorkload(Workload):
    """Segmented sum reduction."""

    name = "reduction"
    quadrant = Quadrant.III
    dwarf = "MapReduce"
    baseline_name = "CUB BlockReduce v2.7.0"
    has_cce = True
    edp_repeats = 50_000

    def __init__(self, n_total: int = N_TOTAL, n_exec: int = N_EXEC) -> None:
        self.n_total = n_total
        self.n_exec = n_exec

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        return [WorkloadCase(label=str(seg),
                             params={"segment": seg, "n": self.n_total})
                for seg in (64, 128, 256, 512, 1024)]

    def exec_case(self, case: WorkloadCase) -> WorkloadCase:
        return WorkloadCase(label=case.label,
                            params={"segment": case["segment"],
                                    "n": min(case["n"], self.n_exec)})

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        n, seg = case["n"], case["segment"]
        rng = Lcg(seed)
        return {"n": n, "segment": seg,
                "x": rng.uniform(n, shape=(n // seg, seg))}

    def reference(self, data: dict) -> np.ndarray:
        """Strict left-to-right serial sum per segment."""
        x = data["x"]
        out = np.zeros(x.shape[0])
        for k in range(x.shape[1]):
            out = out + x[:, k]
        return out

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        x = data["x"]
        if variant in (Variant.TC, Variant.CC):
            out = self._mma_reduce(x)
        elif variant is Variant.CCE:
            out = self._pairwise_reduce(x)
        else:
            out = self._cub_block_reduce(x)
        stats = self._stats(variant, data["n"], data["segment"])
        return device.resolve(stats, output=out)

    @staticmethod
    def _mma_reduce(x: np.ndarray) -> np.ndarray:
        """TC/CC path: chained constant-operand MMAs — recorded as one
        launch-plan chain and executed as a single fused sweep (the A1
        constant repeats per step) — then the k-ordered fold of the eight
        row-0 partials."""
        nseg, seg = x.shape
        tiles = ceil_div(seg, 32)
        pad = tiles * 32
        v = np.zeros((nseg, pad))
        v[:, :seg] = x
        # tile t of a segment is elements [32t, 32t+32) as a 4x8 block
        v = v.reshape(nseg, tiles, 4, 8)
        a1 = np.broadcast_to(A1_CONSTANT, (nseg, tiles, 8, 4))
        plan = LaunchPlan()
        h = plan.chain(a1, v)
        acc = execute_plan(plan, label="reduction")[h]
        # final fold: row 0 holds 8 column partials, combined in k order
        out = np.zeros(nseg)
        for j in range(8):
            out = out + acc[:, 0, j]
        return out

    @staticmethod
    def _pairwise_reduce(x: np.ndarray) -> np.ndarray:
        """CC-E path: a binary pairwise tree over each segment."""
        nseg, seg = x.shape
        width = 1
        while width < seg:
            width *= 2
        v = np.zeros((nseg, width))
        v[:, :seg] = x
        while width > 1:
            half = width // 2
            v = v[:, :half] + v[:, half:width]
            width = half
        return v[:, 0].copy()

    @staticmethod
    def _cub_block_reduce(x: np.ndarray, lanes: int = 32) -> np.ndarray:
        """Baseline: 32 strided lane partials, then a shuffle tree.

        One vectorized add per round of ``lanes`` elements (plus an exact
        tail slice) performs lane ``l``'s adds in the same index order as
        the scalar per-element loop it replaces."""
        nseg, seg = x.shape
        partial = np.zeros((nseg, lanes))
        full = seg // lanes
        xp = x[:, :full * lanes].reshape(nseg, full, lanes)
        for r in range(full):
            partial += xp[:, r]
        rem = seg - full * lanes
        if rem:
            partial[:, :rem] += x[:, full * lanes:]
        w = lanes
        while w > 1:
            half = w // 2
            partial[:, :half] += partial[:, half:w]
            w = half
        return partial[:, 0].copy()

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        return self._stats(variant, case["n"], case["segment"])

    def _stats(self, variant: Variant, n: int, seg: int) -> KernelStats:
        st = KernelStats()
        nseg = n // seg
        st.essential_flops = float(n)  # one add per element
        tiles_per_seg = ceil_div(seg, 32)
        mmas = nseg * (tiles_per_seg + 1)  # +1 for the final fold
        if variant in (Variant.TC, Variant.CC):
            useful_in = mmas * (32 + 4.0)     # V tile + the ones row of A1
            useful_out = mmas * 8.0           # row 0 only
            if variant is Variant.TC:
                st.add_mma_fp64(mmas, input_useful=useful_in,
                                output_useful=useful_out)
                st.tc_efficiency = TC_EFF_CONST
            else:
                st.add_mma_as_fma(mmas)
                st.cc_efficiency = CC_EFF_MMA
                st.mlp = MLP_CC_CONST
        elif variant is Variant.CCE:
            st.add_fma(float(n))
            st.cc_efficiency = CC_EFF
            # the pairwise tree stalls at each of its log-depth sync points
            st.mlp = 0.75
        else:
            st.add_fma(float(n))
            st.cc_efficiency = CC_EFF
            st.mlp = MLP_TREE_BASELINE
            # shuffle-tree stages serialize each block
            st.serial_stages = max(int(np.log2(seg)), 1)
        st.read_dram(8.0 * n, segment_bytes=1 << 16)
        st.write_dram(8.0 * nseg, segment_bytes=1 << 12)
        st.add_l1(8.0 * (n + nseg))
        if variant is Variant.BASELINE:
            # inter-warp partials bounce through shared memory per stage
            st.add_l1(16.0 * n)
        return st
