"""GEMM workload (Quadrant I, dense linear algebra dwarf).

TC variant models the CUDA Samples ``dmmaTensorCoreGEMM`` routine: each
thread block computes a 64x64 output tile with FP64 ``wmma m8n8k4``
instructions, staging A/B panels through shared memory; adjacent blocks
additionally share panel reloads through L2 (modeled as an effective reuse
width of 128 columns/rows).  The baseline is the CUDA Samples ``matrixMul``
shared-memory kernel (32x32 tiles on CUDA cores).  CC-E is identical to CC:
a full GEMM has no MMA-induced redundancy (Section 5.2).

Functional execution keeps the MMA accumulation-order contract: the TC and
CC variants call the same k-sequential primitive and produce bit-identical
outputs; the baseline accumulates in 32-wide k panels, a different rounding
order (the Table 6 mechanism).
"""

from __future__ import annotations

import numpy as np

from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import run_chain
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
    ceil_div,
)

__all__ = ["GemmWorkload"]

#: thread-block output tile of the dmma sample
TILE = 64
#: effective panel-reuse width including L2-assisted sharing between
#: adjacent blocks
REUSE_TC = 128
#: baseline matrixMul tile
TILE_BASE = 32
#: largest dimension executed functionally (larger cases are analytic-only)
MAX_EXEC = 512


class GemmWorkload(Workload):
    """Dense matrix-matrix multiplication."""

    name = "gemm"
    quadrant = Quadrant.I
    dwarf = "Dense linear algebra"
    baseline_name = "cudaSample matrixMul v12.8"
    has_cce = False
    edp_repeats = 500

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        sizes = (256, 512, 1024, 2048, 4096)
        return [WorkloadCase(label=f"{s}x{s}x{s}",
                             params={"m": s, "n": s, "k": s})
                for s in sizes]

    def exec_case(self, case: WorkloadCase) -> WorkloadCase:
        m = min(case["m"], MAX_EXEC)
        n = min(case["n"], MAX_EXEC)
        k = min(case["k"], MAX_EXEC)
        return WorkloadCase(label=f"{m}x{n}x{k}",
                            params={"m": m, "n": n, "k": k})

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        m, n, k = case["m"], case["n"], case["k"]
        rng = Lcg(seed)
        return {
            "m": m, "n": n, "k": k,
            "a": rng.uniform(m * k, shape=(m, k)),
            "b": rng.uniform(k * n, shape=(k, n)),
        }

    def reference(self, data: dict) -> np.ndarray:
        return data["a"] @ data["b"]

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        variant = self.resolve_variant(variant)
        m, n, k = data["m"], data["n"], data["k"]
        if variant is Variant.BASELINE:
            out = self._gemm_kpanel(data["a"], data["b"], TILE_BASE)
        else:
            # TC and CC share the launch engine: one single-chain plan whose
            # fused sweep applies the k-sequential rank-1 updates
            out = run_chain(data["a"][np.newaxis, np.newaxis],
                            data["b"][np.newaxis, np.newaxis],
                            label="gemm")[0]
        stats = self._stats(variant, m, n, k)
        return device.resolve(stats, output=out)

    @staticmethod
    def _gemm_kpanel(a: np.ndarray, b: np.ndarray, panel: int) -> np.ndarray:
        """k-panel accumulation: the baseline's 32-wide shared-memory tiles
        accumulate one BLAS panel product per step (distinct rounding order
        from the MMA rank-1 chain)."""
        m, k = a.shape
        out = np.zeros((m, b.shape[1]))
        for k0 in range(0, k, panel):
            out += a[:, k0:k0 + panel] @ b[k0:k0 + panel]
        return out

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        variant = self.resolve_variant(variant)
        return self._stats(variant, case["m"], case["n"], case["k"])

    def _stats(self, variant: Variant, m: int, n: int, k: int) -> KernelStats:
        st = KernelStats()
        flops = 2.0 * m * n * k
        st.essential_flops = flops
        c_bytes = 8.0 * m * n
        if variant is Variant.BASELINE:
            # 32x32 tiles: each A panel re-read n/32 times, B panel m/32
            a_bytes = 8.0 * m * k * ceil_div(n, TILE_BASE)
            b_bytes = 8.0 * k * n * ceil_div(m, TILE_BASE)
            st.add_fma(flops)
            st.cc_efficiency = CC_EFF
        else:
            # 64x64 wmma tiles with L2-assisted reuse across block pairs
            a_bytes = 8.0 * m * k * ceil_div(n, REUSE_TC)
            b_bytes = 8.0 * k * n * ceil_div(m, REUSE_TC)
            mmas = ceil_div(m, 8) * ceil_div(n, 8) * ceil_div(k, 4)
            if variant is Variant.TC:
                st.add_mma_fp64(mmas)
                st.tc_efficiency = TC_EFF
            else:  # CC replacement: identical layout, FMA pipe
                st.add_mma_as_fma(mmas)
                st.cc_efficiency = CC_EFF_MMA
        st.read_dram(a_bytes, segment_bytes=8 * min(k, TILE))
        st.read_dram(b_bytes, segment_bytes=8 * min(n, TILE))
        st.write_dram(c_bytes, segment_bytes=8 * min(n, TILE))
        # every DRAM byte passes the L1/shared level once; register blocking
        # absorbs intra-tile reuse
        st.add_l1(a_bytes + b_bytes + c_bytes)
        return st
