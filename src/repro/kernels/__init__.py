"""The ten Cubie workloads (Table 2), their variants, and the registry."""

from .base import (
    CC_EFF,
    CC_EFF_MMA,
    MLP_FULL,
    MLP_IRREGULAR,
    MLP_MMA_CC,
    TC_EFF,
    TC_EFF_CONST,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
    all_workloads,
    get_workload,
    register_workload,
    workload_names,
)
from .bfs import BfsWorkload
from .fft import FftWorkload
from .gemm import GemmWorkload
from .gemv import GemvWorkload
from .pic import PicWorkload
from .reduction import ReductionWorkload
from .scan import ScanWorkload
from .spgemm import SpgemmWorkload
from .spmv import SpmvWorkload
from .stencil import StencilWorkload

# suite order follows Table 2
register_workload(GemmWorkload())
register_workload(PicWorkload())
register_workload(FftWorkload())
register_workload(StencilWorkload())
register_workload(ScanWorkload())
register_workload(ReductionWorkload())
register_workload(BfsWorkload())
register_workload(GemvWorkload())
register_workload(SpmvWorkload())
register_workload(SpgemmWorkload())

__all__ = [
    "CC_EFF",
    "CC_EFF_MMA",
    "MLP_FULL",
    "MLP_IRREGULAR",
    "MLP_MMA_CC",
    "TC_EFF",
    "TC_EFF_CONST",
    "Quadrant",
    "Variant",
    "Workload",
    "WorkloadCase",
    "all_workloads",
    "get_workload",
    "register_workload",
    "workload_names",
    "BfsWorkload",
    "FftWorkload",
    "GemmWorkload",
    "GemvWorkload",
    "PicWorkload",
    "ReductionWorkload",
    "ScanWorkload",
    "SpgemmWorkload",
    "SpmvWorkload",
    "StencilWorkload",
]
