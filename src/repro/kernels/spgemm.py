"""SpGEMM workload (Quadrant IV, sparse linear algebra dwarf).

The TC implementation follows AmgT (Lu et al., SC'24): both operands are
stored as mBSR 4x4 blocks (:class:`repro.sparse.mbsr.MbsrMatrix`); block
pairs stack into 8x4 MMA operands so one ``mma_m8n8k4`` evaluates four
4x4 block products, and results accumulate into the *diagonal 4x4 tiles*
of the 8x8 output — full input, half-useful output (Quadrant IV, "slightly
higher utilization" per Figure 2).

The baseline models cuSPARSE SpGEMM's expand-sort-compress pipeline on
scalar CSR entries (irregular gathers, pairwise compaction sums).  CC-E
performs the essential scalar block products on the mBSR layout with a
tree-ordered k accumulation.

Functional execution computes C = A @ A on the Table 4 matrices at a
reduced ``scale`` (full-scale block expansion exceeds a Python session's
memory budget; the analytic path runs symbolically at any scale).
"""

from __future__ import annotations

import numpy as np

from ..datasets.suitesparse import SPMV_MATRICES, generate_matrix
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.mma import mma_fp64_batched
from ..sparse.csr import CsrMatrix
from ..sparse.mbsr import BLOCK, MbsrMatrix
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    MLP_IRREGULAR,
    MLP_MMA_CC,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
)

__all__ = ["SpgemmWorkload", "accumulate_sequential"]

#: default matrix scale for functional execution
EXEC_SCALE = 0.25
#: block products processed per expansion chunk
CHUNK = 1 << 19
#: fraction of repeated B-block reads that miss L2 (mBSR streams block
#: rows in 128-byte units with good spatial reuse)
TC_REUSE = 0.70
#: fraction of the baseline's scalar B-row re-reads that miss L2 (the
#: expand phase revisits rows hash-scattered, but hot rows stay cached)
BASE_REUSE = 0.15


def accumulate_sequential(keys: np.ndarray, vals: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``vals`` grouped by sorted ``keys`` with a strictly sequential
    (first-to-last) accumulation order per group — the CPU-serial
    reference order for SpGEMM.  ``keys`` must already be sorted."""
    if len(keys) == 0:
        return keys, vals
    uniq_mask = np.r_[True, keys[1:] != keys[:-1]]
    group = np.cumsum(uniq_mask) - 1
    n_groups = int(group[-1]) + 1
    out = np.zeros(n_groups)
    # np.add.at applies the unbuffered updates index-by-index in argument
    # order, which for sorted keys is exactly the first-to-last sequential
    # accumulation per group (bit-identical to an explicit Python loop,
    # unlike add.reduceat's pairwise summation).
    np.add.at(out, group, vals)
    return keys[uniq_mask], out


class SpgemmWorkload(Workload):
    """Sparse matrix-matrix multiplication C = A @ A (AmgT vs cuSPARSE)."""

    name = "spgemm"
    quadrant = Quadrant.IV
    dwarf = "Sparse linear algebra"
    baseline_name = "cuSPARSE SpGEMM v12.8"
    has_cce = True
    edp_repeats = 5_000

    def __init__(self, scale: float = 1.0,
                 exec_scale: float = EXEC_SCALE) -> None:
        self.scale = scale
        self.exec_scale = exec_scale

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        return [WorkloadCase(label=m.name, params={"matrix": m.name})
                for m in SPMV_MATRICES]

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        a = generate_matrix(case["matrix"], scale=self.exec_scale, seed=seed)
        return {"a": a, "mbsr": MbsrMatrix.from_csr(a)}

    def reference(self, data: dict) -> CsrMatrix:
        """Serial ground truth: scalar expansion in row-k order with
        strictly sequential duplicate accumulation."""
        a: CsrMatrix = data["a"]
        rows, cols, vals = self._expand_scalar(a, a)
        key = rows * np.int64(a.n_cols) + cols
        order = np.argsort(key, kind="stable")
        keys_u, sums = accumulate_sequential(key[order], vals[order])
        return CsrMatrix.from_coo(keys_u // a.n_cols, keys_u % a.n_cols,
                                  sums, (a.n_rows, a.n_cols),
                                  sum_duplicates=False)

    @staticmethod
    def _expand_scalar(a: CsrMatrix, b: CsrMatrix
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All scalar products of A @ B in (row of A, k) order."""
        b_len = b.row_lengths()
        a_rows = a.row_of_entry()
        expand = b_len[a.indices]
        prod_row = np.repeat(a_rows, expand)
        prod_aval = np.repeat(a.data, expand)
        b_start = np.repeat(b.indptr[a.indices], expand)
        within = np.arange(len(prod_row), dtype=np.int64)
        seg_begin = np.repeat(np.cumsum(expand) - expand, expand)
        b_pos = b_start + (within - seg_begin)
        return prod_row, b.indices[b_pos], prod_aval * b.data[b_pos]

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        a: CsrMatrix = data["a"]
        if variant is Variant.BASELINE:
            out = a.spgemm(a)
        else:
            out = self._block_spgemm(data["mbsr"],
                                     tree=(variant is Variant.CCE))
        stats = self._stats(variant, a, data["mbsr"])
        return device.resolve(stats, output=out)

    @staticmethod
    def _block_products(m: MbsrMatrix
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Block-level expansion of C = M @ M: for every pair of blocks
        (i,k) x (k,j) returns (out block row, out block col, A block index,
        B block index)."""
        b_len = np.diff(m.block_indptr)
        a_brow = m.block_row_of_block()
        expand = b_len[m.block_indices]
        prod_brow = np.repeat(a_brow, expand)
        prod_ablk = np.repeat(np.arange(m.n_blocks, dtype=np.int64), expand)
        b_start = np.repeat(m.block_indptr[m.block_indices], expand)
        within = np.arange(len(prod_brow), dtype=np.int64)
        seg_begin = np.repeat(np.cumsum(expand) - expand, expand)
        b_pos = b_start + (within - seg_begin)
        return prod_brow, m.block_indices[b_pos], prod_ablk, b_pos

    def _block_spgemm(self, m: MbsrMatrix, tree: bool) -> CsrMatrix:
        """TC/CC (``tree=False``) or CC-E (``tree=True``) block SpGEMM."""
        brow, bcol, ablk, bblk = self._block_products(m)
        nbc = m.n_block_cols + 1
        key = brow * np.int64(nbc) + bcol
        order = np.argsort(key, kind="stable")
        key, ablk, bblk = key[order], ablk[order], bblk[order]
        uniq_mask = np.r_[True, key[1:] != key[:-1]] if len(key) else \
            np.empty(0, dtype=bool)
        group = np.cumsum(uniq_mask) - 1 if len(key) else key
        n_out = int(group[-1]) + 1 if len(key) else 0
        acc = np.zeros((n_out, BLOCK, BLOCK))
        within = (np.arange(len(key), dtype=np.int64)
                  - np.flatnonzero(uniq_mask)[group]) if len(key) else key
        max_dup = int(within.max()) + 1 if len(key) else 0
        for i in range(max_dup):
            sel = within == i
            if not sel.any():
                continue
            lhs = m.blocks[ablk[sel]]
            rhs = m.blocks[bblk[sel]]
            if tree:
                # essential path: k pairs combined by a binary tree
                prods = lhs[:, :, :, np.newaxis] * rhs[:, np.newaxis, :, :]
                prods = np.swapaxes(prods, 2, 3)  # (p, i, j, k)
                step = (prods[..., 0] + prods[..., 2]) \
                    + (prods[..., 1] + prods[..., 3])
                acc[group[sel]] += step
            else:
                acc[group[sel]] = mma_fp64_batched(lhs, rhs, acc[group[sel]])
        # expand accumulated blocks back to scalar CSR
        out_key = key[uniq_mask] if len(key) else key
        out_brow = out_key // nbc
        out_bcol = out_key % nbc
        nz = np.nonzero(acc.reshape(n_out, -1))
        blk_idx, cell = nz
        li, lj = np.divmod(cell, BLOCK)
        rows = out_brow[blk_idx] * BLOCK + li
        cols = out_bcol[blk_idx] * BLOCK + lj
        vals = acc[blk_idx, li, lj]
        keep = (rows < m.shape[0]) & (cols < m.shape[1])
        return CsrMatrix.from_coo(rows[keep], cols[keep], vals[keep],
                                  m.shape, sum_duplicates=False)

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        a = generate_matrix(case["matrix"], scale=self.scale)
        return self._stats(variant, a, MbsrMatrix.from_csr(a))

    def _stats(self, variant: Variant, a: CsrMatrix,
               m: MbsrMatrix) -> KernelStats:
        st = KernelStats()
        # scalar expansion size (essential multiply-adds)
        b_len = a.row_lengths()
        scalar_products = float(b_len[a.indices].sum())
        st.essential_flops = 2.0 * scalar_products
        # block expansion size
        blk_len = np.diff(m.block_indptr)
        block_products = float(blk_len[m.block_indices].sum())
        c_bytes_est = 12.0 * min(scalar_products, float(a.n_rows) * 512)
        if variant is Variant.BASELINE:
            st.add_fma(2.0 * scalar_products)
            st.cc_efficiency = CC_EFF
            st.mlp = MLP_IRREGULAR
            # expand: A streams once; every product gathers one B entry
            st.read_dram(12.0 * a.nnz, segment_bytes=1 << 12)
            st.read_dram(12.0 * scalar_products * BASE_REUSE,
                         segment_bytes=12)
        else:
            block_bytes = BLOCK * BLOCK * 8.0 + 12.0   # payload + indices
            # one 8x4 x 4x8 MMA evaluates 4 quadrant products of which the
            # two diagonal tiles are consumed ("half of the 8x8 output")
            mmas = block_products / 2.0
            if variant is Variant.TC:
                st.add_mma_fp64(mmas, output_useful=32.0 * mmas)
                st.tc_efficiency = TC_EFF
            elif variant is Variant.CC:
                st.add_mma_as_fma(mmas)
                st.cc_efficiency = CC_EFF_MMA
                st.mlp = MLP_MMA_CC
            else:  # CC-E: the 4x4x4 block products without the MMA padding
                st.add_fma(2.0 * block_products * BLOCK ** 3)
                st.cc_efficiency = CC_EFF
            st.read_dram(block_bytes * m.n_blocks, segment_bytes=128)
            st.read_dram(block_bytes * block_products * TC_REUSE,
                         segment_bytes=128)
        st.write_dram(c_bytes_est, segment_bytes=1 << 10)
        st.add_l1(16.0 * scalar_products)
        return st
