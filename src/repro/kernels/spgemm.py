"""SpGEMM workload (Quadrant IV, sparse linear algebra dwarf).

The TC implementation follows AmgT (Lu et al., SC'24): both operands are
stored as mBSR 4x4 blocks (:class:`repro.sparse.mbsr.MbsrMatrix`); block
pairs stack into 8x4 MMA operands so one ``mma_m8n8k4`` evaluates four
4x4 block products, and results accumulate into the *diagonal 4x4 tiles*
of the 8x8 output — full input, half-useful output (Quadrant IV, "slightly
higher utilization" per Figure 2).

The baseline models cuSPARSE SpGEMM's expand-sort-compress pipeline on
scalar CSR entries (irregular gathers, pairwise compaction sums).  CC-E
performs the essential scalar block products on the mBSR layout with a
tree-ordered k accumulation.

Functional execution computes C = A @ A on the Table 4 matrices at a
reduced ``scale`` (full-scale block expansion exceeds a Python session's
memory budget; the analytic path runs symbolically at any scale).
"""

from __future__ import annotations

import functools

import numpy as np

from ..datasets.suitesparse import SPMV_MATRICES, generate_matrix
from ..gpu import warp_events
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from ..sparse.csr import CsrMatrix
from ..sparse.mbsr import BLOCK, MbsrMatrix
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    MLP_IRREGULAR,
    MLP_MMA_CC,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
)

__all__ = ["SpgemmWorkload", "accumulate_sequential"]

#: default matrix scale for functional execution
EXEC_SCALE = 0.25
#: block products processed per expansion chunk
CHUNK = 1 << 19
#: fraction of repeated B-block reads that miss L2 (mBSR streams block
#: rows in 128-byte units with good spatial reuse)
TC_REUSE = 0.70
#: fraction of the baseline's scalar B-row re-reads that miss L2 (the
#: expand phase revisits rows hash-scattered, but hot rows stay cached)
BASE_REUSE = 0.15


@functools.lru_cache(maxsize=32)
def _analytic_matrix(name: str, scale: float) -> tuple[CsrMatrix, MbsrMatrix]:
    """Cache the (deterministic) analytic matrix and its mBSR conversion so
    the four variants of a case do not regenerate them."""
    a = generate_matrix(name, scale=scale)
    return a, MbsrMatrix.from_csr(a)


def accumulate_sequential(keys: np.ndarray, vals: np.ndarray
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``vals`` grouped by sorted ``keys`` with a strictly sequential
    (first-to-last) accumulation order per group — the CPU-serial
    reference order for SpGEMM.  ``keys`` must already be sorted."""
    if len(keys) == 0:
        return keys, vals
    uniq_mask = np.r_[True, keys[1:] != keys[:-1]]
    group = np.cumsum(uniq_mask) - 1
    n_groups = int(group[-1]) + 1
    out = np.zeros(n_groups)
    # np.add.at applies the unbuffered updates index-by-index in argument
    # order, which for sorted keys is exactly the first-to-last sequential
    # accumulation per group (bit-identical to an explicit Python loop,
    # unlike add.reduceat's pairwise summation).
    np.add.at(out, group, vals)
    return keys[uniq_mask], out


class SpgemmWorkload(Workload):
    """Sparse matrix-matrix multiplication C = A @ A (AmgT vs cuSPARSE)."""

    name = "spgemm"
    quadrant = Quadrant.IV
    dwarf = "Sparse linear algebra"
    baseline_name = "cuSPARSE SpGEMM v12.8"
    has_cce = True
    edp_repeats = 5_000

    def __init__(self, scale: float = 1.0,
                 exec_scale: float = EXEC_SCALE) -> None:
        self.scale = scale
        self.exec_scale = exec_scale

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        return [WorkloadCase(label=m.name, params={"matrix": m.name})
                for m in SPMV_MATRICES]

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        a = generate_matrix(case["matrix"], scale=self.exec_scale, seed=seed)
        return {"a": a, "mbsr": MbsrMatrix.from_csr(a)}

    def reference(self, data: dict) -> CsrMatrix:
        """Serial ground truth: scalar expansion in row-k order with
        strictly sequential duplicate accumulation.

        The expansion is chunked at A-row boundaries (~``CHUNK`` products
        per chunk) so the sort/gather/accumulate working set stays
        cache-resident; rows never straddle a chunk, so chunk outputs are
        key-disjoint and globally sorted, and concatenating them is
        bit-identical to the single-pass expansion."""
        a: CsrMatrix = data["a"]
        b = a
        b_len = b.row_lengths()
        expand = b_len[a.indices]
        seg = np.cumsum(expand) - expand        # product offset per A entry
        total = int(seg[-1] + expand[-1]) if len(expand) else 0
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return CsrMatrix.from_coo(empty, empty, np.empty(0),
                                      (a.n_rows, a.n_cols),
                                      sum_duplicates=False)
        # b_pos for product p of entry e is start[e] + p
        start = b.indptr[a.indices] - seg
        rowkey = a.row_of_entry() * np.int64(a.n_cols)
        # key values stay below n_rows*n_cols; a 32-bit sort key halves
        # the radix passes without changing the (stable) permutation
        small = a.n_rows * a.n_cols < 2 ** 31
        row_prod = np.r_[seg, total][a.indptr]  # product offset per row
        keys_parts: list[np.ndarray] = []
        sums_parts: list[np.ndarray] = []
        for r0, r1 in self._row_chunks(row_prod, total):
            e0, e1 = int(a.indptr[r0]), int(a.indptr[r1])
            p0, p1 = int(row_prod[r0]), int(row_prod[r1])
            entry = np.repeat(np.arange(e0, e1, dtype=np.int64),
                              expand[e0:e1])
            b_pos = start[entry] + np.arange(p0, p1, dtype=np.int64)
            key = rowkey[entry] + b.indices[b_pos]
            vals = a.data[entry] * b.data[b_pos]
            order = np.argsort(key.astype(np.int32) if small else key,
                               kind="stable")
            keys_u, sums = accumulate_sequential(key[order], vals[order])
            keys_parts.append(keys_u)
            sums_parts.append(sums)
        keys_u = np.concatenate(keys_parts)
        sums = np.concatenate(sums_parts)
        return CsrMatrix.from_coo(keys_u // a.n_cols, keys_u % a.n_cols,
                                  sums, (a.n_rows, a.n_cols),
                                  sum_duplicates=False)

    @staticmethod
    def _row_chunks(row_prod: np.ndarray,
                    total: int) -> list[tuple[int, int]]:
        """Split rows into runs of ~``CHUNK`` scalar products each.

        ``row_prod`` maps row boundary -> cumulative product count; cuts
        land on row boundaries only."""
        n_rows = len(row_prod) - 1
        n_chunks = max(1, -(-total // CHUNK))
        per = -(-total // n_chunks)
        targets = np.arange(1, n_chunks, dtype=np.int64) * per
        cuts = np.unique(np.r_[0, np.searchsorted(row_prod, targets),
                               n_rows])
        return [(int(r0), int(r1)) for r0, r1 in zip(cuts[:-1], cuts[1:])
                if row_prod[r0] != row_prod[r1]]

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        a: CsrMatrix = data["a"]
        if variant is Variant.BASELINE:
            out = a.spgemm(a)
        else:
            # TC and CC run the identical block sweep (bit-identity by
            # construction), so within one prepared case the second
            # variant reuses the first's output — except under the warp
            # sanitizer, where each variant must replay its own traffic
            tree = variant is Variant.CCE
            cache_key = "_block_out_tree" if tree else "_block_out"
            audited = warp_events.TRACER is not None
            out = None if audited else data.get(cache_key)
            if out is None:
                out = self._block_spgemm(data["mbsr"], tree=tree)
                if not audited:
                    data[cache_key] = out
        stats = self._stats(variant, a, data["mbsr"])
        return device.resolve(stats, output=out)

    @staticmethod
    def _block_products(m: MbsrMatrix
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Block-level expansion of C = M @ M: for every pair of blocks
        (i,k) x (k,j) returns (out block row, out block col, A block index,
        B block index)."""
        b_len = np.diff(m.block_indptr)
        expand = b_len[m.block_indices]
        seg = np.cumsum(expand) - expand
        # B position of product j of block entry e is start[e] + j, so one
        # gather through the entry map replaces the double gather
        start = m.block_indptr[m.block_indices] - seg
        ablk = np.repeat(np.arange(m.n_blocks, dtype=np.int64), expand)
        b_pos = start[ablk] + np.arange(len(ablk), dtype=np.int64)
        return (m.block_row_of_block()[ablk], m.block_indices[b_pos],
                ablk, b_pos)

    def _block_spgemm(self, m: MbsrMatrix, tree: bool) -> CsrMatrix:
        """TC/CC (``tree=False``) or CC-E (``tree=True``) block SpGEMM."""
        brow, bcol, ablk, bblk = self._block_products(m)
        nbc = m.n_block_cols + 1
        key = brow * np.int64(nbc) + bcol
        order = np.argsort(key, kind="stable")
        key, ablk, bblk = key[order], ablk[order], bblk[order]
        uniq_mask = np.r_[True, key[1:] != key[:-1]] if len(key) else \
            np.empty(0, dtype=bool)
        group = np.cumsum(uniq_mask) - 1 if len(key) else key
        n_out = int(group[-1]) + 1 if len(key) else 0
        starts = np.flatnonzero(uniq_mask)
        if not tree:
            # TC/CC: each output block's duplicate run is one chain; the
            # sorted order makes runs contiguous, so the whole product set
            # is one ragged launch plan (bucketed by duplicate count) with
            # the same sequential per-block accumulation order as the
            # round-by-round loop it replaces.
            dup = np.diff(np.r_[starts, len(key)])
            plan = LaunchPlan()
            h = plan.ragged(m.blocks[ablk], m.blocks[bblk], dup, starts)
            acc = execute_plan(plan, label="spgemm")[h]
        else:
            acc = np.zeros((n_out, BLOCK, BLOCK))
            within = (np.arange(len(key), dtype=np.int64)
                      - starts[group]) if len(key) else key
            max_dup = int(within.max()) + 1 if len(key) else 0
            for i in range(max_dup):
                sel = within == i
                if not sel.any():
                    continue
                lhs = m.blocks[ablk[sel]]
                rhs = m.blocks[bblk[sel]]
                # essential path: k pairs combined by a binary tree
                prods = lhs[:, :, :, np.newaxis] * rhs[:, np.newaxis, :, :]
                prods = np.swapaxes(prods, 2, 3)  # (p, i, j, k)
                step = (prods[..., 0] + prods[..., 2]) \
                    + (prods[..., 1] + prods[..., 3])
                acc[group[sel]] += step
        # expand accumulated blocks back to scalar CSR
        out_key = key[uniq_mask] if len(key) else key
        out_brow = out_key // nbc
        out_bcol = out_key % nbc
        nz = np.nonzero(acc.reshape(n_out, -1))
        blk_idx, cell = nz
        li, lj = np.divmod(cell, BLOCK)
        rows = out_brow[blk_idx] * BLOCK + li
        cols = out_bcol[blk_idx] * BLOCK + lj
        vals = acc[blk_idx, li, lj]
        keep = (rows < m.shape[0]) & (cols < m.shape[1])
        return CsrMatrix.from_coo(rows[keep], cols[keep], vals[keep],
                                  m.shape, sum_duplicates=False)

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        a, m = _analytic_matrix(case["matrix"], self.scale)
        return self._stats(variant, a, m)

    def _stats(self, variant: Variant, a: CsrMatrix,
               m: MbsrMatrix) -> KernelStats:
        st = KernelStats()
        # scalar expansion size (essential multiply-adds)
        b_len = a.row_lengths()
        scalar_products = float(b_len[a.indices].sum())
        st.essential_flops = 2.0 * scalar_products
        # block expansion size
        blk_len = np.diff(m.block_indptr)
        block_products = float(blk_len[m.block_indices].sum())
        c_bytes_est = 12.0 * min(scalar_products, float(a.n_rows) * 512)
        if variant is Variant.BASELINE:
            st.add_fma(2.0 * scalar_products)
            st.cc_efficiency = CC_EFF
            st.mlp = MLP_IRREGULAR
            # expand: A streams once; every product gathers one B entry
            st.read_dram(12.0 * a.nnz, segment_bytes=1 << 12)
            st.read_dram(12.0 * scalar_products * BASE_REUSE,
                         segment_bytes=12)
        else:
            block_bytes = BLOCK * BLOCK * 8.0 + 12.0   # payload + indices
            # one 8x4 x 4x8 MMA evaluates 4 quadrant products of which the
            # two diagonal tiles are consumed ("half of the 8x8 output")
            mmas = block_products / 2.0
            if variant is Variant.TC:
                st.add_mma_fp64(mmas, output_useful=32.0 * mmas)
                st.tc_efficiency = TC_EFF
            elif variant is Variant.CC:
                st.add_mma_as_fma(mmas)
                st.cc_efficiency = CC_EFF_MMA
                st.mlp = MLP_MMA_CC
            else:  # CC-E: the 4x4x4 block products without the MMA padding
                st.add_fma(2.0 * block_products * BLOCK ** 3)
                st.cc_efficiency = CC_EFF
            st.read_dram(block_bytes * m.n_blocks, segment_bytes=128)
            st.read_dram(block_bytes * block_products * TC_REUSE,
                         segment_bytes=128)
        st.write_dram(c_bytes_est, segment_bytes=1 << 10)
        st.add_l1(16.0 * scalar_products)
        return st
