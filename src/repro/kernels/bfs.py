"""BFS workload (Quadrant IV, graph traversal dwarf).

The TC implementation follows BerryBees (Niu & Casas, PPoPP'25): the
adjacency matrix — after the degree-descending vertex relabeling BerryBees
preprocesses with — is stored as 8x128 single-bit tiles
(:class:`repro.sparse.bitmap.BitmapGraph`).  Each BFS level gathers the
tiles whose column block intersects the frontier, replicates the frontier
bits into the 8 columns of the B operand, and one ``mma_m8n8k128`` AND+POPC
instruction counts frontier neighbors for 8 vertices at once; only the
*diagonal* of the 8x8 accumulator is consumed (full input, partial output).

The baseline models Gunrock's push-style level-synchronous BFS: per level
it streams the frontier vertices' adjacency lists (4-byte column indices)
and probes/updates the visited status array with scattered accesses.

BFS performs no floating-point math; the counters carry bit-tensor ops and
integer vector ops, and Table 6 excludes it.
"""

from __future__ import annotations

import numpy as np

from ..datasets.graphs import BFS_GRAPHS, generate_graph
from ..gpu import warp_events
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from ..sparse.bitmap import SLICE_ROWS, TILE_COLS, BitmapGraph
from ..sparse.csr import CsrMatrix
from .base import (
    MLP_IRREGULAR,
    MLP_MMA_CC,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
)

__all__ = ["BfsWorkload"]


class BfsWorkload(Workload):
    """Breadth-first search from a high-degree source vertex."""

    name = "bfs"
    quadrant = Quadrant.IV
    dwarf = "Graph traversal"
    baseline_name = "Gunrock"
    has_cce = True
    edp_repeats = 2_000
    floating_point = False

    def __init__(self) -> None:
        self._prepared: dict[tuple[str, int], dict] = {}

    def _memo_state(self) -> dict:
        # BFS has no configuration attributes; exposing the lazily filled
        # ``_prepared`` cache would change the analytic-stats memo key on
        # every prepare() and force a full graph recompute per variant.
        return {}

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        return [WorkloadCase(label=g.name, params={"graph": g.name})
                for g in BFS_GRAPHS]

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        key = (case["graph"], seed)
        if key in self._prepared:
            return self._prepared[key]
        src, dst, n = generate_graph(case["graph"], seed=seed)
        # BerryBees preprocessing: reorder vertices so edges concentrate in
        # few dense bit tiles.  Degree-descending relabeling packs
        # power-law graphs; lexicographic (natural) order preserves host
        # locality in web graphs — keep whichever yields fewer tiles.
        deg = np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
        order = np.argsort(-deg, kind="stable")
        relabel = np.empty(n, dtype=np.int64)
        relabel[order] = np.arange(n)
        candidates = [(relabel[src], relabel[dst]), (src, dst)]
        bitmaps = [BitmapGraph.from_edges(d, s, n) for s, d in candidates]
        best = int(np.argmin([b.n_tiles for b in bitmaps]))
        src_r, dst_r = candidates[best]
        adj = CsrMatrix.from_coo(src_r, dst_r,
                                 np.ones(len(src_r)), (n, n))
        adj.data[:] = 1.0
        # the bitmap stores A^T: row v, column u for edge u -> v, so the
        # AND+POPC against the frontier (in columns) discovers v's whose
        # in-neighbors are on the frontier — push semantics, pull dataflow
        bitmap = bitmaps[best]
        # start from the highest out-degree vertex (deterministic, and the
        # traversal covers the giant component)
        out_deg = np.bincount(src_r, minlength=n)
        source = int(np.argmax(out_deg))
        data = {"n": n, "adj": adj, "bitmap": bitmap, "source": source,
                "n_edges": len(src_r)}
        self._prepared[key] = data
        return data

    def reference(self, data: dict) -> np.ndarray:
        """Level-synchronous BFS on the CSR adjacency (serial semantics)."""
        adj: CsrMatrix = data["adj"]
        n = data["n"]
        levels = np.full(n, -1, dtype=np.int64)
        levels[data["source"]] = 0
        frontier = np.array([data["source"]], dtype=np.int64)
        level = 0
        while len(frontier):
            level += 1
            nbrs = self._neighbors(adj, frontier)
            nxt = np.unique(nbrs[levels[nbrs] < 0])
            levels[nxt] = level
            frontier = nxt
        return levels

    @staticmethod
    def _neighbors(adj: CsrMatrix, frontier: np.ndarray) -> np.ndarray:
        counts = adj.row_lengths()[frontier]
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        starts = np.repeat(adj.indptr[frontier], counts)
        within = (np.arange(total, dtype=np.int64)
                  - np.repeat(np.cumsum(counts) - counts, counts))
        return adj.indices[starts + within]

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        if variant is Variant.BASELINE:
            levels, stats = self._gunrock_push(data)
        else:
            levels, stats = self._bitmap_bfs(data, variant)
        return device.resolve(stats, output=levels)

    # ------------------------------------------------------------------
    def _gunrock_push(self, data: dict) -> tuple[np.ndarray, KernelStats]:
        adj: CsrMatrix = data["adj"]
        n = data["n"]
        st = KernelStats()
        st.cc_efficiency = 0.5
        # push BFS resolves every discovery through atomicCAS on the
        # status array; contention on hot vertices serializes warps beyond
        # the generic irregular-baseline MLP
        st.mlp = MLP_IRREGULAR * 0.75
        levels = np.full(n, -1, dtype=np.int64)
        levels[data["source"]] = 0
        frontier = np.array([data["source"]], dtype=np.int64)
        level = 0
        stages = 1
        while len(frontier):
            level += 1
            stages += 2  # advance kernel + filter kernel per level
            inspected = int(adj.row_lengths()[frontier].sum())
            nbrs = self._neighbors(adj, frontier)
            nxt = np.unique(nbrs[levels[nbrs] < 0])
            levels[nxt] = level
            # adjacency lists stream in per-row runs of 4-byte indices
            avg_run = 4.0 * max(inspected / max(len(frontier), 1), 1.0)
            st.read_dram(4.0 * inspected, segment_bytes=avg_run)
            # status probe + atomic update per inspected edge: scattered
            st.read_dram(4.0 * inspected, segment_bytes=4)
            st.write_dram(4.0 * inspected, segment_bytes=4)
            st.write_dram(4.0 * len(nxt), segment_bytes=4)
            st.add_int_ops(3.0 * inspected)
            st.add_l1(8.0 * inspected)
            frontier = nxt
        st.serial_stages = stages
        return levels, st

    def _bitmap_bfs(self, data: dict,
                    variant: Variant) -> tuple[np.ndarray, KernelStats]:
        """TC/CC/CC-E share one traversal; only the counter attribution
        differs, so the level trace (levels, stages, per-level tile/fresh
        counts) is computed once per prepared case and the other variants
        replay the accounting.  Under the warp sanitizer every variant
        re-traverses so its MMA traffic is actually sampled."""
        audited = warp_events.TRACER is not None
        trace = None if audited else data.get("_bitmap_trace")
        if trace is None:
            trace = self._bitmap_traverse(data)
            if not audited:
                data["_bitmap_trace"] = trace
        levels, stages, level_counts = trace
        n = data["n"]
        st = KernelStats()
        if variant is Variant.CC:
            st.cc_efficiency = 0.5
            st.mlp = MLP_MMA_CC
        elif variant is Variant.CCE:
            st.cc_efficiency = 0.5
        for tiles, fresh in level_counts:
            self._account_level(st, variant, tiles, n, fresh)
        st.serial_stages = stages
        return levels, st

    def _bitmap_traverse(self, data: dict
                         ) -> tuple[np.ndarray, int, list[tuple[int, int]]]:
        g: BitmapGraph = data["bitmap"]
        n = data["n"]
        level_counts: list[tuple[int, int]] = []
        levels = np.full(n, -1, dtype=np.int64)
        levels[data["source"]] = 0
        frontier_bits = np.zeros(g.n_cblocks * TILE_COLS, dtype=bool)
        frontier_bits[data["source"]] = True
        # BerryBees skips tiles whose 8-vertex slice is fully visited
        slice_unvisited = np.full(g.n_slices, SLICE_ROWS, dtype=np.int64)
        pad = g.n_slices * SLICE_ROWS - n
        if pad:
            slice_unvisited[-1] -= pad
        slice_unvisited[data["source"] // SLICE_ROWS] -= 1
        level = 0
        stages = 1
        rows_of_slice = np.arange(SLICE_ROWS, dtype=np.int64)
        while frontier_bits.any():
            level += 1
            stages += 2
            fw = np.packbits(
                frontier_bits.reshape(g.n_cblocks, TILE_COLS),
                axis=-1, bitorder="little").view(np.uint64)
            active_cb = np.flatnonzero(
                frontier_bits.reshape(g.n_cblocks, TILE_COLS).any(axis=1))
            tile_idx, slices, cbs = g.tiles_for_cblocks(active_cb)
            live = slice_unvisited[slices] > 0
            tile_idx, slices, cbs = tile_idx[live], slices[live], cbs[live]
            nxt_bits = np.zeros_like(frontier_bits)
            if len(tile_idx):
                # B operand: frontier bits replicated into all 8 columns
                b_words = np.repeat(fw[cbs][:, np.newaxis, :], SLICE_ROWS,
                                    axis=1)
                # each level's AND+POPC sweep depends on the previous
                # frontier, so levels record as successive one-op plans
                plan = LaunchPlan()
                h = plan.bit(g.tiles[tile_idx], b_words)
                counts = execute_plan(plan, label="bfs")[h]
                diag = counts[:, rows_of_slice, rows_of_slice]
                hit_t, hit_r = np.nonzero(diag > 0)
                rows = slices[hit_t] * SLICE_ROWS + hit_r
                rows = np.unique(rows[rows < n])
                fresh = rows[levels[rows] < 0]
                levels[fresh] = level
                nxt_bits[fresh] = True
                np.subtract.at(slice_unvisited, fresh // SLICE_ROWS, 1)
                level_counts.append((len(tile_idx), len(fresh)))
            frontier_bits = nxt_bits
        return levels, stages, level_counts

    @staticmethod
    def _account_level(st: KernelStats, variant: Variant, tiles: int,
                       n: int, fresh: int) -> None:
        if variant is Variant.TC:
            st.add_mma_b1(tiles, output_useful=8.0 * tiles)
        elif variant is Variant.CC:
            # 8 rows x 2 words x (AND+POPC+merge), replicated 8 columns
            st.add_int_ops(384.0 * tiles)
            st.note_mma_utilization(
                input_useful=tiles * (8 * 128 + 128 * 8),
                input_total=tiles * (8 * 128 + 128 * 8),
                output_useful=tiles * 8,
                output_total=tiles * 64)
        else:  # CC-E: essential row AND+POPC only (no column replication)
            st.add_int_ops(48.0 * tiles)
        # tile payloads (128 B); slice/cblock metadata stays L2 resident
        # after the first sweep
        st.read_dram(128.0 * tiles, segment_bytes=128)
        # frontier words for the active blocks + visited bit updates
        st.read_dram(16.0 * tiles, segment_bytes=16)
        st.write_dram(max(fresh / 8.0, 1.0), segment_bytes=8)
        st.add_l1(160.0 * tiles)

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        data = self.prepare(case)
        if variant is Variant.BASELINE:
            _, st = self._gunrock_push(data)
        else:
            _, st = self._bitmap_bfs(data, variant)
        return st
