"""Workload framework: variants, test cases, registry, calibration.

Every Cubie workload implements :class:`Workload` with up to four variants
(Section 5.2 of the paper):

* ``baseline`` — the vendor-library / prior-art algorithm on vector units;
* ``tc``       — the MMU-optimized algorithm on tensor cores;
* ``cc``       — the *same* algorithm/data layout with every MMA replaced by
  equivalent FMA-pipe work (bit-identical outputs to ``tc`` by construction);
* ``cce``      — essential-computation-only CUDA-core code (equals ``cc``
  for Quadrant I workloads, which have no MMA-induced redundancy).

Workloads expose two evaluation paths that one set of internal stat-builders
feeds: ``execute`` runs functionally on the simulated device at a feasible
scale and returns outputs plus measured counters, while ``analytic_stats``
produces the same counters from closed-form size arithmetic at paper scale
(Table 2 cases).  A per-workload test asserts the two agree.

Calibration constants
---------------------
The sustained-efficiency and memory-level-parallelism constants below are
the model's only free parameters.  They are *global across workloads and
GPUs* — set once from the physical arguments in the comments — so every
per-workload, per-GPU effect in Figures 3-6 emerges from op/byte counts and
the spec table, not from per-experiment tuning.
"""

from __future__ import annotations

import abc
import functools
from collections import OrderedDict
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Callable, ClassVar, Mapping

from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..perf.cache import content_key

__all__ = [
    "Variant",
    "Quadrant",
    "WorkloadCase",
    "Workload",
    "register_workload",
    "get_workload",
    "all_workloads",
    "workload_names",
    # calibration
    "TC_EFF",
    "TC_EFF_CONST",
    "CC_EFF",
    "CC_EFF_MMA",
    "MLP_FULL",
    "MLP_MMA_CC",
    "MLP_IRREGULAR",
]

# --- calibration constants (see module docstring) --------------------------

#: tensor pipe sustained fraction for MMA-dense kernels without the deep
#: software pipelining of cuBLAS/CUTLASS (Cubie excludes those, Section 9)
TC_EFF = 0.55
#: tensor pipe fraction when one operand is a register-resident constant
#: matrix (Scan/Reduction): no operand reload between MMAs boosts issue rate
TC_EFF_CONST = 0.62
#: FMA pipe fraction for natural vector code (baselines, CC-E)
CC_EFF = 0.50
#: FMA pipe fraction for MMA-expanded lane code (CC variants): each MMA
#: becomes 8 dependent scalar FMAs per lane with the MMA's register layout,
#: which starves the schedulers relative to hand-shaped vector code
CC_EFF_MMA = 0.45
#: full memory-level parallelism (enough warps to saturate DRAM)
MLP_FULL = 1.0
#: MLP of CC variants in memory-bound kernels: warp issue slots diverted to
#: the expanded FMA streams keep fewer loads in flight
MLP_MMA_CC = 0.62
#: MLP of irregular baselines (CSR-vector row imbalance, one-thread-per-row
#: GEMV, push-BFS atomics)
MLP_IRREGULAR = 0.60


class Variant(str, Enum):
    """The four algorithmic implementation variants of Section 5.2."""

    BASELINE = "baseline"
    TC = "tc"
    CC = "cc"
    CCE = "cce"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Quadrant(str, Enum):
    """MMU utilization quadrants (Figure 2)."""

    I = "I"     # full input, full output     (GEMM, PiC, FFT, Stencil)
    II = "II"   # partial input, full output  (Scan)
    III = "III"  # partial input, partial output (Reduction)
    IV = "IV"   # full input, partial output  (BFS, GEMV, SpMV, SpGEMM)


@dataclass(frozen=True)
class WorkloadCase:
    """One test case of Table 2."""

    label: str
    params: Mapping[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.params[key]


# ------------------------------------------------------ stats memoization
#
# analytic_stats is a pure function of (workload config, variant, case),
# yet the characterization grid and the nine-observation audit re-evaluate
# the same triples dozens of times (once per device, once per observation).
# Every concrete workload's analytic_stats is therefore memoized behind a
# content-addressed key; hits return a defensive copy so callers that
# mutate/merge stats never corrupt the cache.  Bit-identity of memoized vs
# fresh results is guaranteed by construction (the same object's field
# values) and asserted in the perf tests.

_STATS_MEMO: OrderedDict[str, KernelStats] = OrderedDict()
_STATS_MEMO_MAX = 8192


def _copy_stats(st: KernelStats) -> KernelStats:
    # AccessStream entries are frozen; a fresh list is isolation enough
    return replace(st, dram=list(st.dram))


def _memoize_stats(impl: Callable[..., KernelStats]
                   ) -> Callable[..., KernelStats]:
    @functools.wraps(impl)
    def wrapper(self: "Workload", variant: "Variant",
                case: "WorkloadCase") -> KernelStats:
        try:
            key = content_key(type(self).__qualname__,
                              dict(self._memo_state()),
                              variant, case.label, dict(case.params))
        except TypeError:   # unkeyable workload/case state: just compute
            return impl(self, variant, case)
        hit = _STATS_MEMO.get(key)
        if hit is None:
            hit = impl(self, variant, case)
            _STATS_MEMO[key] = hit
            _STATS_MEMO.move_to_end(key)
            while len(_STATS_MEMO) > _STATS_MEMO_MAX:
                _STATS_MEMO.popitem(last=False)
        return _copy_stats(hit)

    wrapper._stats_memoized = True  # type: ignore[attr-defined]
    return wrapper


class Workload(abc.ABC):
    """Base class for the ten Cubie workloads."""

    name: ClassVar[str]
    quadrant: ClassVar[Quadrant]
    #: Berkeley dwarf this workload represents (Table 7)
    dwarf: ClassVar[str]
    #: the baseline library/method of Table 2
    baseline_name: ClassVar[str]
    #: whether a distinct CC-E variant exists (False for Quadrant I)
    has_cce: ClassVar[bool] = True
    #: Figure 7 measurement-loop repeat count for this workload
    edp_repeats: ClassVar[int] = 1000
    #: does the workload perform floating-point math (BFS does not)
    floating_point: ClassVar[bool] = True

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cases(self) -> list[WorkloadCase]:
        """The five paper-scale test cases (Table 2)."""

    def representative_case(self) -> WorkloadCase:
        """The single case used for power (Figs 7-8) and accuracy (Table 6);
        defaults to the middle case."""
        cs = self.cases()
        return cs[len(cs) // 2]

    def exec_case(self, case: WorkloadCase) -> WorkloadCase:
        """A functionally executable (possibly down-scaled) version of
        ``case``.  Defaults to the case itself."""
        return case

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        """Generate the problem inputs for a case (deterministic)."""

    @abc.abstractmethod
    def reference(self, data: dict) -> Any:
        """The CPU-serial ground-truth output (None for BFS-style kernels
        whose output is validated structurally)."""

    @abc.abstractmethod
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        """Run a variant functionally on the simulated device."""

    @abc.abstractmethod
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        """Closed-form counters for a paper-scale case.

        Concrete implementations are memoized automatically (see
        ``_memoize_stats``); they must stay pure functions of the
        workload's configuration attributes, the variant, and the case.
        """

    def _memo_state(self) -> Mapping[str, Any]:
        """Instance state that keys the ``analytic_stats`` memo.

        Defaults to all instance attributes.  Workloads that lazily attach
        derived caches to ``self`` (which would destabilize the key and
        defeat memoization) override this to return only their
        configuration attributes."""
        return vars(self)

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("analytic_stats")
        if impl is not None and not getattr(impl, "_stats_memoized", False):
            cls.analytic_stats = _memoize_stats(impl)

    # ------------------------------------------------------------------
    def variants(self) -> tuple[Variant, ...]:
        base = (Variant.BASELINE, Variant.TC, Variant.CC)
        return base + ((Variant.CCE,) if self.has_cce else ())

    def resolve_variant(self, variant: Variant) -> Variant:
        """Map CCE to CC for Quadrant I workloads (Section 5.2: 'for GEMM,
        PiC, FFT, and Stencil the CC-E version is equivalent to CC').

        Coerces strings (``"cce"``) to :class:`Variant` so external
        callers (CLI, suites) cannot bypass the equivalence mapping with a
        value the identity-based dispatch below would not recognize."""
        variant = Variant(variant)
        if variant is Variant.CCE and not self.has_cce:
            return Variant.CC
        return variant

    def run_case(self, variant: Variant, case: WorkloadCase, device: Device,
                 seed: int = 1325) -> KernelResult:
        """Convenience: prepare + execute the (down-scaled) case.

        Resolves the variant first: a CC-E request on a Quadrant I
        workload must run the CC path, not fall through ``execute``'s
        variant dispatch into whatever ``else`` branch exists."""
        data = self.prepare(self.exec_case(case), seed=seed)
        return self.execute(self.resolve_variant(variant), data, device)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workload {self.name} (Quadrant {self.quadrant.value})>"


# --------------------------------------------------------------- registry
_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload) -> Workload:
    """Register a workload instance under its class name."""
    if workload.name in _REGISTRY:
        raise ValueError(f"workload {workload.name!r} already registered")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> list[Workload]:
    """All registered workloads in suite order."""
    return list(_REGISTRY.values())


def workload_names() -> list[str]:
    return list(_REGISTRY)


def gemm_flops(m: int, n: int, k: int) -> float:
    """Essential flops of an m x n x k matrix multiplication."""
    return 2.0 * m * n * k


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)
