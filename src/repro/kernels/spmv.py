"""SpMV workload (Quadrant IV, sparse linear algebra dwarf).

The TC implementation follows DASP (Lu & Liu, SC'23): rows are length-sorted
into categories and packed into 8x4 value/index tiles
(:class:`repro.sparse.dasp.DaspMatrix`); each tile multiplies a gathered
4x8 x-block with ``mma_m8n8k4`` and the row results accumulate on the 8x8
output diagonal across a group's k-steps — full input, 1/8-useful output.

The baseline models cuSPARSE's CSR kernel: warp-per-row lane partials with a
tree combine, per-lane scattered ``x`` gathers, and the memory-level
parallelism loss of row imbalance.  CC-E keeps DASP's layout/gathers but
performs only the essential multiply-adds (lane partials + 4-wide tree),
which the paper finds *faster* than TC — the lone Observation 5 exception.
"""

from __future__ import annotations

import functools

import numpy as np

from ..datasets.suitesparse import SPMV_MATRICES, generate_matrix
from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from ..sparse.csr import CsrMatrix
from ..sparse.dasp import DaspMatrix
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    MLP_IRREGULAR,
    MLP_MMA_CC,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
)

__all__ = ["SpmvWorkload", "gather_segment_bytes"]

#: the TC tile gathers synchronize 32 lanes per MMA operand build, holding
#: achieved bandwidth slightly below the free-running scalar stream
MLP_TC_TILE = 0.90
#: CC-E's essential-only loop issues loads without the MMA staging barrier
MLP_CCE = 1.0


@functools.lru_cache(maxsize=32)
def _analytic_matrix(name: str, scale: float) -> tuple[CsrMatrix, DaspMatrix]:
    """Cache the (deterministic) analytic matrix and its DASP conversion so
    the four variants of a case do not regenerate them."""
    a = generate_matrix(name, scale=scale)
    return a, DaspMatrix.from_csr(a)


def gather_segment_bytes(a: CsrMatrix, sector: int = 32) -> float:
    """Estimate the typical contiguous segment of the x-vector gather from
    the column-index locality of ``a``.

    Consecutive nonzeros of a row whose column indices fall in the same
    32-byte sector coalesce into one transaction; the average run length of
    such entries scales the 8-byte per-element gather up to at most one
    full sector.
    """
    if a.nnz < 2:
        return 8.0
    diffs = np.diff(a.indices)
    # break runs at row boundaries
    row_starts = a.indptr[1:-1]
    same_sector = np.abs(diffs) * 8 < sector
    same_sector[np.minimum(row_starts - 1, len(diffs) - 1)] = False
    frac = float(same_sector.mean())
    avg_run = 1.0 / max(1.0 - frac, 1.0 / (sector / 8))
    return float(np.clip(8.0 * avg_run, 8.0, sector))


class SpmvWorkload(Workload):
    """Sparse matrix-vector multiplication y = A @ x (DASP vs cuSPARSE)."""

    name = "spmv"
    quadrant = Quadrant.IV
    dwarf = "Sparse linear algebra"
    baseline_name = "cuSPARSE SpMV v12.8"
    has_cce = True
    edp_repeats = 1_000_000

    #: matrix scale used for functional execution and analytic statistics
    scale: float = 1.0

    def __init__(self, scale: float = 1.0) -> None:
        self.scale = scale

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        return [WorkloadCase(label=m.name, params={"matrix": m.name})
                for m in SPMV_MATRICES]

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        a = generate_matrix(case["matrix"], scale=self.scale, seed=seed)
        rng = Lcg(seed + 17)
        return {"a": a, "dasp": DaspMatrix.from_csr(a),
                "x": rng.uniform(a.n_cols)}

    def reference(self, data: dict) -> np.ndarray:
        return data["a"].spmv_serial(data["x"])

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        a: CsrMatrix = data["a"]
        x = data["x"]
        if variant is Variant.BASELINE:
            y = a.spmv_warp_tree(x)
        elif variant in (Variant.TC, Variant.CC):
            y = self._dasp_spmv_mma(data["dasp"], x)
        else:
            y = self._dasp_spmv_essential(data["dasp"], x)
        stats = self._stats(variant, a, data["dasp"])
        return device.resolve(stats, output=y)

    @staticmethod
    def _dasp_spmv_mma(d: DaspMatrix, x: np.ndarray) -> np.ndarray:
        """TC/CC path: chain MMAs through the 8x8 accumulator per group and
        extract the diagonal at the end (exact register dataflow).  The
        per-group step chains are recorded as one ragged launch plan; the
        engine buckets groups by step count (cached per matrix structure)
        and runs one fused sweep per distinct chain length."""
        b = d.gather_b_tiles(x)
        plan = LaunchPlan()
        h = plan.ragged(d.values, b, d.group_steps, d.group_offsets[:-1])
        acc = execute_plan(plan, label="spmv")[h]
        diag = acc[:, np.arange(8), np.arange(8)].reshape(-1)
        y = np.zeros(d.shape[0])
        valid = d.row_perm
        y[valid] = diag[:len(valid)]
        return y

    @staticmethod
    def _dasp_spmv_essential(d: DaspMatrix, x: np.ndarray) -> np.ndarray:
        """CC-E path: same tiles/gathers, essential products only; per row,
        4 lane partials across k-steps combined by a binary tree — a
        different rounding order than the MMA chain."""
        b = d.gather_b_tiles(x)                       # (steps, 4, 8)
        prods = d.values * np.swapaxes(b, 1, 2)      # (steps, 8, 4)
        partial = np.zeros((d.n_groups, 8, 4))
        starts = d.group_offsets[:-1]
        max_steps = int(d.group_steps.max()) if d.n_groups else 0
        for s in range(max_steps):
            has = d.group_steps > s
            partial[has] += prods[starts[has] + s]
        tree = (partial[..., 0] + partial[..., 2]) \
            + (partial[..., 1] + partial[..., 3])
        y = np.zeros(d.shape[0])
        valid = d.row_perm
        y[valid] = tree.reshape(-1)[:len(valid)]
        return y

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        a, d = _analytic_matrix(case["matrix"], self.scale)
        return self._stats(variant, a, d)

    def _stats(self, variant: Variant, a: CsrMatrix,
               d: DaspMatrix) -> KernelStats:
        st = KernelStats()
        essential = 2.0 * a.nnz
        st.essential_flops = essential
        y_bytes = 8.0 * a.n_rows
        tile_seg = gather_segment_bytes(a)
        if variant is Variant.BASELINE:
            # CSR arrays stream; x gathers are per-lane scattered doubles
            st.add_fma(essential)
            st.cc_efficiency = CC_EFF
            st.mlp = MLP_IRREGULAR
            st.read_dram(12.0 * a.nnz + 8.0 * a.n_rows,
                         segment_bytes=1 << 12)      # values+int indices+ptr
            # per-lane x gathers coalesce only when a row's columns are
            # strictly consecutive — about half the locality the sorted
            # DASP tile gathers extract
            st.read_dram(8.0 * a.nnz, segment_bytes=max(8.0, tile_seg / 2))
        else:
            slots = d.mask.size                      # padded value slots
            tiles = d.total_tiles
            if variant is Variant.TC:
                st.add_mma_fp64(tiles, output_useful=8.0 * tiles)
                st.tc_efficiency = TC_EFF
                st.mlp = MLP_TC_TILE
            elif variant is Variant.CC:
                st.add_mma_as_fma(tiles)
                st.cc_efficiency = CC_EFF_MMA
                st.mlp = MLP_MMA_CC
            else:  # CC-E: essential products (one 8x4 sheet per tile,
                   # padding slots included) instead of the full 8x8x4 MMA
                st.add_fma(2.0 * slots)
                st.essential_flops = essential
                st.cc_efficiency = CC_EFF
                st.mlp = MLP_CCE
            st.read_dram(12.0 * slots, segment_bytes=1 << 12)
            st.read_dram(8.0 * slots, segment_bytes=tile_seg)
        st.write_dram(y_bytes, segment_bytes=1 << 12)
        st.add_l1(20.0 * a.nnz + y_bytes)
        return st
