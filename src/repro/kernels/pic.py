"""Particle-in-Cell workload (Quadrant I, N-body dwarf).

FP64 adaptation of PiCTC (Mehta, 2019): one timestep of the Boris particle
pusher over N charged particles in an electromagnetic field.  The TC
version maps batches of particles into 8x4 / 4x8 blocks: the velocity
rotation (the ``v' = v + v x t`` / ``v+ = v' x s`` steps) and the field
interpolation become small matrix products on tensor cores, repeatedly
loading particle blocks and accumulating into one result block (Figure 2's
Quadrant I "accumulate into one C" case).  Table 2 gives no baseline for
PiC, so the workload exposes only the TC and CC variants.

Physics per particle and timestep (Boris, 1970):

    v-  = v + (q dt / 2m) E
    t   = (q dt / 2m) B ;  s = 2 t / (1 + |t|^2)
    v'  = v- + v- x t
    v+  = v- + v' x s
    v_new = v+ + (q dt / 2m) E ;  x_new = x + dt v_new

The E and B fields are gathered from a small periodic grid by nearest-cell
lookup (the grid stays cache resident, as in the original's field-block
reuse).
"""

from __future__ import annotations

import numpy as np

from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from .base import (
    CC_EFF_MMA,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
)

__all__ = ["PicWorkload"]

#: field grid edge (cells); small enough to live in L2
GRID = 32
#: charge-to-mass half-step factor q dt / 2m
QDT2M = 0.05
#: timestep
DT = 0.01
#: largest particle count executed functionally
MAX_EXEC = 1 << 17

#: executed flops per particle in the MMA-blocked pusher: the trilinear
#: field-interpolation weight products (8 cells x 3 components x E and B,
#: padded into 8x4 blocks) plus the rotation matmuls, each padded to the
#: full MMA shape
FLOPS_MMA_PER_PARTICLE = 1200.0
#: mathematically essential flops per particle (interpolation + push)
FLOPS_ESSENTIAL_PER_PARTICLE = 280.0
#: particle state traffic: position + velocity read and written (6+6
#: doubles), field gathers served from cache
BYTES_PER_PARTICLE = 96.0


class PicWorkload(Workload):
    """One Boris-push timestep over N particles."""

    name = "pic"
    quadrant = Quadrant.I
    dwarf = "N-Body"
    baseline_name = "-"
    has_cce = False
    edp_repeats = 60

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        sizes = (1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20)
        labels = ("64K", "128K", "256K", "512K", "1M")
        return [WorkloadCase(label=lab, params={"n": n})
                for lab, n in zip(labels, sizes)]

    def exec_case(self, case: WorkloadCase) -> WorkloadCase:
        n = min(case["n"], MAX_EXEC)
        return WorkloadCase(label=case.label, params={"n": n})

    def variants(self) -> tuple[Variant, ...]:
        # Table 2 lists no PiC baseline
        return (Variant.TC, Variant.CC)

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        n = case["n"]
        rng = Lcg(seed)
        pos = rng.uniform(3 * n, 0.0, float(GRID), shape=(n, 3))
        vel = rng.uniform(3 * n, shape=(n, 3))
        e_field = rng.uniform(3 * GRID ** 3, shape=(GRID, GRID, GRID, 3))
        b_field = rng.uniform(3 * GRID ** 3, shape=(GRID, GRID, GRID, 3))
        return {"n": n, "pos": pos, "vel": vel,
                "e": e_field, "b": b_field}

    @staticmethod
    def _gather_fields(data: dict) -> tuple[np.ndarray, np.ndarray]:
        cell = (data["pos"].astype(np.int64)) % GRID
        e = data["e"][cell[:, 0], cell[:, 1], cell[:, 2]]
        b = data["b"][cell[:, 0], cell[:, 1], cell[:, 2]]
        return e, b

    def reference(self, data: dict) -> np.ndarray:
        """Serial-order Boris push: cross products expanded term by term
        in the canonical order; returns hstack(pos, vel)."""
        e, b = self._gather_fields(data)
        v = data["vel"]
        vm = v + QDT2M * e
        t = QDT2M * b
        t2 = t[:, 0] * t[:, 0] + t[:, 1] * t[:, 1] + t[:, 2] * t[:, 2]
        s = 2.0 * t / (1.0 + t2)[:, np.newaxis]
        vp = vm + self._cross_serial(vm, t)
        vplus = vm + self._cross_serial(vp, s)
        v_new = vplus + QDT2M * e
        x_new = data["pos"] + DT * v_new
        return np.hstack([x_new, v_new])

    @staticmethod
    def _cross_serial(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.stack([
            a[:, 1] * b[:, 2] - a[:, 2] * b[:, 1],
            a[:, 2] * b[:, 0] - a[:, 0] * b[:, 2],
            a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0],
        ], axis=1)

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        variant = self.resolve_variant(variant)
        e, b = self._gather_fields(data)
        v = data["vel"]
        vm = v + QDT2M * e
        t = QDT2M * b
        t2 = t[:, 0] * t[:, 0] + t[:, 1] * t[:, 1] + t[:, 2] * t[:, 2]
        s = 2.0 * t / (1.0 + t2)[:, np.newaxis]
        # the rotations v x t as matrix products: for each particle build
        # the skew-symmetric matrix of t (padded into the 4-wide MMA k dim)
        # and multiply the velocity row through the MMA primitive
        vp = vm + self._cross_mma(vm, t)
        vplus = vm + self._cross_mma(vp, s)
        v_new = vplus + QDT2M * e
        x_new = data["pos"] + DT * v_new
        out = np.hstack([x_new, v_new])
        stats = self._stats(variant, data["n"])
        return device.resolve(stats, output=out)

    @staticmethod
    def _cross_mma(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """a x b as batched vector-matrix products through the MMA
        primitive: a(1x4, padded) @ skew(b)(4x4, padded) per particle
        block, with the k-sequential accumulation order."""
        n = a.shape[0]
        # standard skew(b): a @ skew(b) = skew(b)^T a = -(b x a) = a x b
        skew = np.zeros((n, 4, 4))
        skew[:, 1, 2] = -b[:, 0]
        skew[:, 2, 1] = b[:, 0]
        skew[:, 2, 0] = -b[:, 1]
        skew[:, 0, 2] = b[:, 1]
        skew[:, 0, 1] = -b[:, 2]
        skew[:, 1, 0] = b[:, 2]
        row = np.zeros((n, 1, 4))
        row[:, 0, :3] = a
        # the two Boris rotations are data-dependent, so each is its own
        # single-product launch plan (no fusion possible across them)
        plan = LaunchPlan()
        h = plan.product(row, skew)
        return execute_plan(plan, label="pic")[h][:, 0, :3]

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        variant = self.resolve_variant(variant)
        return self._stats(variant, case["n"])

    def _stats(self, variant: Variant, n: int) -> KernelStats:
        st = KernelStats()
        st.essential_flops = FLOPS_ESSENTIAL_PER_PARTICLE * n
        mmas = FLOPS_MMA_PER_PARTICLE * n / 512.0
        if variant is Variant.TC:
            st.add_mma_fp64(mmas)
            st.tc_efficiency = TC_EFF
        else:
            st.add_mma_as_fma(mmas)
            st.cc_efficiency = CC_EFF_MMA
        st.read_dram(BYTES_PER_PARTICLE / 2 * n, segment_bytes=1 << 12)
        st.write_dram(BYTES_PER_PARTICLE / 2 * n, segment_bytes=1 << 12)
        # field gathers come from the cache-resident grid
        st.add_l1((BYTES_PER_PARTICLE + 48.0) * n)
        return st
