"""FFT workload (Quadrant I, spectral methods dwarf).

FP64 adaptation of tcFFT (Li et al., CLUSTER'21): batched 1-D complex FFTs
where each radix-4 stage is evaluated as small complex matrix products —
the 4-point DFT matrix is the reused *A* operand (loaded once, Figure 2's
Quadrant I "reuse A" case) and the data blocks stream through as B.  Each
complex product becomes four real MMAs, so the executed flop count exceeds
the essential ``5 n log2 n`` — the redundancy behind the paper's finding
that the TC FFT *underperforms* cuFFT (butterfly patterns resist the MMA
shape), compounded by an extra data-layout pass for the 8x4 blocking.

The baseline models cuFFT: a Stockham autosort radix-2 pipeline at vector
efficiency with a single read/write pass through the batch.
"""

from __future__ import annotations

import math

import numpy as np

from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    MLP_MMA_CC,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
)

__all__ = ["FftWorkload", "dft_matrix"]

#: paper batch size; functional execution uses a reduced batch
BATCH = 2048
BATCH_EXEC = 256


def dft_matrix(r: int) -> np.ndarray:
    """The r-point DFT matrix (complex128)."""
    j, k = np.meshgrid(np.arange(r), np.arange(r), indexing="ij")
    return np.exp(-2j * np.pi * j * k / r)


class FftWorkload(Workload):
    """Batched 1-D complex-to-complex FFTs (tcFFT vs cuFFT)."""

    name = "fft"
    quadrant = Quadrant.I
    dwarf = "Spectral methods"
    baseline_name = "cuFFT v12.8"
    has_cce = False
    edp_repeats = 400

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        shapes = ((256, 256), (256, 512), (256, 1024), (512, 256), (512, 512))
        return [WorkloadCase(label=f"{a}x{b}",
                             params={"n1": a, "n2": b, "batch": BATCH})
                for a, b in shapes]

    def exec_case(self, case: WorkloadCase) -> WorkloadCase:
        # fold n2 into the batch and cap the signal count so the analytic
        # stats of the exec case equal the executed counters exactly
        p = dict(case.params)
        p["batch"] = min(p["batch"] * p["n2"], BATCH_EXEC)
        p["n2"] = 1
        return WorkloadCase(label=case.label, params=p)

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        # an n1 x n2 case is evaluated as batch*n2 1-D transforms of length
        # n1 (the row pass of tcFFT's 2-D decomposition); functional
        # execution caps the signal count, the model uses the full product
        n = case["n1"]
        signals = min(case["batch"] * case["n2"], BATCH_EXEC)
        rng = Lcg(seed)
        re = rng.uniform(signals * n, shape=(signals, n))
        im = rng.uniform(signals * n, shape=(signals, n))
        return {"n": n, "n2": case["n2"], "batch": signals,
                "x": re + 1j * im}

    def reference(self, data: dict) -> np.ndarray:
        """Ground truth: recursive radix-2 decimation-in-time in natural
        serial order (the textbook CPU implementation)."""
        return self._radix2_dit(data["x"])

    @classmethod
    def _radix2_dit(cls, x: np.ndarray) -> np.ndarray:
        n = x.shape[-1]
        if n == 1:
            return x.copy()
        even = cls._radix2_dit(x[..., 0::2])
        odd = cls._radix2_dit(x[..., 1::2])
        tw = np.exp(-2j * np.pi * np.arange(n // 2) / n)
        t = tw * odd
        return np.concatenate([even + t, even - t], axis=-1)

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        variant = self.resolve_variant(variant)
        x = data["x"]
        if variant is Variant.BASELINE:
            out = self._stockham_radix2(x)
        else:
            out = self._mma_radix4(x)
        # counters reflect the executed signal count (n2 already folded in)
        stats = self._stats(variant, data["n"], 1, data["batch"])
        return device.resolve(stats, output=out)

    @staticmethod
    def _stockham_radix2(x: np.ndarray) -> np.ndarray:
        """Baseline cuFFT stand-in: Stockham autosort radix-2."""
        batch, n = x.shape
        y = x.copy()
        ell = 1  # transformed block length
        while ell < n:
            m = n // (2 * ell)
            a = y.reshape(batch, 2, m, ell)
            tw = np.exp(-2j * np.pi * np.arange(ell) / (2 * ell))
            t = tw * a[:, 1]
            y = np.concatenate([a[:, 0] + t, a[:, 0] - t],
                               axis=-1).reshape(batch, n)
            ell *= 2
        return y

    @classmethod
    def _mma_radix4(cls, x: np.ndarray) -> np.ndarray:
        """TC/CC path: Stockham radix-4 where every 4-point DFT is four
        real matrix products through the MMA primitive (k-sequential)."""
        batch, n = x.shape
        stages = int(round(math.log(n, 4)))
        if 4 ** stages != n:
            # fall back to radix-2 head so n need only be a power of two
            stages = 0
        d4 = dft_matrix(4)
        d4r, d4i = d4.real.copy(), d4.imag.copy()
        y = x.copy()
        ell = 1
        while ell < n:
            if n // ell >= 4 and (n // ell) % 4 == 0:
                r = 4
            else:
                r = 2
            m = n // (r * ell)
            a = y.reshape(batch, r, m, ell)
            tw = np.exp(-2j * np.pi
                        * np.arange(r)[:, None] * np.arange(ell)[None, :]
                        / (r * ell))
            at = a * tw[None, :, None, :]
            if r == 4:
                # 4-point DFT as D4 @ at over the radix axis, done with four
                # real MMA products: Yr = Dr Ar - Di Ai ; Yi = Dr Ai + Di Ar.
                # The four same-shaped products stack into one launch-plan
                # sweep per stage (they are independent of each other).
                flat = at.transpose(0, 2, 3, 1).reshape(-1, 4, 1)
                ar, ai = flat.real.copy(), flat.imag.copy()
                plan = LaunchPlan()
                handles = (plan.product(d4r[np.newaxis], ar),
                           plan.product(d4i[np.newaxis], ai),
                           plan.product(d4r[np.newaxis], ai),
                           plan.product(d4i[np.newaxis], ar))
                prod = execute_plan(plan, label="fft")
                p_rr, p_ii, p_ri, p_ir = (prod[h] for h in handles)
                yr = p_rr - p_ii
                yi = p_ri + p_ir
                out = (yr + 1j * yi).reshape(batch, m, ell, r)
                # Stockham layout: block j, then output index s, then k
                y = out.transpose(0, 1, 3, 2).reshape(batch, n)
            else:
                t0, t1 = at[:, 0], at[:, 1]
                y = np.concatenate([t0 + t1, t0 - t1],
                                   axis=-1).reshape(batch, n)
                y = y.reshape(batch, n)
            ell *= r
        return y

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        variant = self.resolve_variant(variant)
        return self._stats(variant, case["n1"], case["n2"], case["batch"])

    def _stats(self, variant: Variant, n: int, n2: int,
               batch: int) -> KernelStats:
        st = KernelStats()
        points = float(batch) * n2 * n  # total complex samples
        essential = 5.0 * points * math.log2(n)
        st.essential_flops = essential
        io_bytes = 16.0 * points  # complex128
        if variant is Variant.BASELINE:
            st.add_fma(essential)
            st.cc_efficiency = CC_EFF
            # single fused pass (smem-resident Stockham stages)
            st.read_dram(io_bytes, segment_bytes=16 * n)
            st.write_dram(io_bytes, segment_bytes=16 * n)
            st.add_l1(io_bytes * math.log2(n))
        else:
            # four real m8n8k4 products per 4-point DFT of 4 samples
            stages = math.log(n, 4)
            mmas = stages * points / 4.0 * 4.0 / 8.0  # batched rows of 8
            if variant is Variant.TC:
                st.add_mma_fp64(mmas)
                st.tc_efficiency = TC_EFF
            else:
                st.add_mma_as_fma(mmas)
                st.cc_efficiency = CC_EFF_MMA
                st.mlp = MLP_MMA_CC
            # extra pass: transform to/from the 8x4 block layout
            st.read_dram(2.0 * io_bytes, segment_bytes=16 * 8)
            st.write_dram(2.0 * io_bytes, segment_bytes=16 * 8)
            st.add_l1(io_bytes * math.log2(n))
        return st
