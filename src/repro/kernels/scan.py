"""Scan workload (Quadrant II, MapReduce dwarf).

FP64 adaptation of Dakkak et al.'s tensor-core segmented scan (ICS'19).
Each 64-element block V (8x8, row-major) becomes an inclusive prefix sum
with three constant-matrix multiplications (the paper's B1 / A2 / B3):

    P = V @ U          row-wise prefixes   (U: upper-triangular ones)
    O = L @ (V @ J)    per-row offsets     (L: strictly-lower ones,
                                            J: all ones)
    scan(V) = P + O

None of the constants is loaded from memory (partial input), but every
element of the output matrix is used (full output): Quadrant II.  Block
offsets chain sequentially within a segment.

The baseline models CUB ``BlockScan``: a work-efficient Blelloch up/down
sweep, whose log-depth stages bounce partials through shared memory.
"""

from __future__ import annotations

import numpy as np

from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    TC_EFF_CONST,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
    ceil_div,
)
from .reduction import MLP_CC_CONST, MLP_TREE_BASELINE

__all__ = ["ScanWorkload", "UPPER_ONES", "LOWER_STRICT_ONES", "ALL_ONES"]

UPPER_ONES = np.triu(np.ones((8, 8)))
UPPER_ONES.setflags(write=False)
LOWER_STRICT_ONES = np.tril(np.ones((8, 8)), k=-1)
LOWER_STRICT_ONES.setflags(write=False)
ALL_ONES = np.ones((8, 8))
ALL_ONES.setflags(write=False)

N_TOTAL = 1 << 24
N_EXEC = 1 << 20


class ScanWorkload(Workload):
    """Segmented inclusive prefix sum."""

    name = "scan"
    quadrant = Quadrant.II
    dwarf = "MapReduce"
    baseline_name = "CUB BlockScan v2.7.0"
    has_cce = True
    edp_repeats = 25_000

    def __init__(self, n_total: int = N_TOTAL, n_exec: int = N_EXEC) -> None:
        self.n_total = n_total
        self.n_exec = n_exec

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        return [WorkloadCase(label=str(seg),
                             params={"segment": seg, "n": self.n_total})
                for seg in (64, 128, 256, 512, 1024)]

    def exec_case(self, case: WorkloadCase) -> WorkloadCase:
        return WorkloadCase(label=case.label,
                            params={"segment": case["segment"],
                                    "n": min(case["n"], self.n_exec)})

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        n, seg = case["n"], case["segment"]
        rng = Lcg(seed)
        return {"n": n, "segment": seg,
                "x": rng.uniform(n, shape=(n // seg, seg))}

    def reference(self, data: dict) -> np.ndarray:
        """Strict left-to-right serial running sum per segment."""
        x = data["x"]
        out = np.empty_like(x)
        acc = np.zeros(x.shape[0])
        for k in range(x.shape[1]):
            acc = acc + x[:, k]
            out[:, k] = acc
        return out

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        x = data["x"]
        if variant in (Variant.TC, Variant.CC):
            out = self._mma_scan(x)
        elif variant is Variant.CCE:
            out = self._hillis_steele_scan(x)
        else:
            out = self._blelloch_scan(x)
        stats = self._stats(variant, data["n"], data["segment"])
        return device.resolve(stats, output=out)

    @staticmethod
    def _mma_scan(x: np.ndarray) -> np.ndarray:
        """TC/CC path: the three constant-matrix MMAs per 64-element block
        (the independent P and rowsum products stack into one launch-plan
        sweep; the offset product depends on rowsum and runs second), then
        the sequential chain of block offsets within each segment."""
        nseg, seg = x.shape
        blocks = ceil_div(seg, 64)
        pad = blocks * 64
        v = np.zeros((nseg, pad))
        v[:, :seg] = x
        v = v.reshape(nseg, blocks, 8, 8)
        plan = LaunchPlan()
        hp = plan.product(v, np.broadcast_to(UPPER_ONES, v.shape))
        hr = plan.product(v, np.broadcast_to(ALL_ONES, v.shape))
        p, rowsum = execute_plan(plan, label="scan")
        offs_plan = LaunchPlan()
        ho = offs_plan.product(np.broadcast_to(LOWER_STRICT_ONES, v.shape),
                               rowsum)
        offs = execute_plan(offs_plan, label="scan")[ho]
        blk = p + offs                                  # in-block scan
        # chain block offsets sequentially (the segmented part).  cumsum is
        # ufunc accumulate — strictly left-to-right — so the per-segment
        # carries equal the explicit Python chain bit-for-bit.
        carry = np.zeros((nseg, blocks))
        np.cumsum(blk[:, :-1, 7, 7], axis=1, out=carry[:, 1:])
        out = blk + carry[:, :, np.newaxis, np.newaxis]
        return out.reshape(nseg, pad)[:, :seg].copy()

    @staticmethod
    def _hillis_steele_scan(x: np.ndarray) -> np.ndarray:
        """CC-E path: Hillis-Steele inclusive scan (log-depth, no
        redundancy removal possible beyond dropping the MMA padding)."""
        out = x.copy()
        d = 1
        while d < x.shape[1]:
            out[:, d:] = out[:, d:] + out[:, :-d]
            d *= 2
        return out

    @staticmethod
    def _blelloch_scan(x: np.ndarray) -> np.ndarray:
        """Baseline CUB-style work-efficient up-sweep/down-sweep."""
        nseg, seg = x.shape
        width = 1
        while width < seg:
            width *= 2
        v = np.zeros((nseg, width))
        v[:, :seg] = x
        # up-sweep
        d = 1
        while d < width:
            idx = np.arange(2 * d - 1, width, 2 * d)
            v[:, idx] += v[:, idx - d]
            d *= 2
        # down-sweep (exclusive), then shift to inclusive by adding input
        v[:, -1] = 0.0
        d = width // 2
        while d >= 1:
            idx = np.arange(2 * d - 1, width, 2 * d)
            left = v[:, idx - d].copy()
            v[:, idx - d] = v[:, idx]
            v[:, idx] += left
            d //= 2
        exclusive = v[:, :seg]
        return exclusive + x

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        return self._stats(variant, case["n"], case["segment"])

    def _stats(self, variant: Variant, n: int, seg: int) -> KernelStats:
        st = KernelStats()
        nseg = n // seg
        st.essential_flops = float(n)  # ~1 add per element (work-efficient)
        blocks = nseg * ceil_div(seg, 64)
        mmas = blocks * 3 * 2          # three 8x8x8 products = 2 MMAs each
        if variant in (Variant.TC, Variant.CC):
            # constant operand not loaded: half the input fragments useful
            useful_in = mmas * 32.0
            if variant is Variant.TC:
                st.add_mma_fp64(mmas, input_useful=useful_in)
                st.tc_efficiency = TC_EFF_CONST
            else:
                st.add_mma_as_fma(mmas)
                st.cc_efficiency = CC_EFF_MMA
                st.mlp = MLP_CC_CONST
        elif variant is Variant.CCE:
            st.add_fma(float(n) * np.log2(max(seg, 2)))  # Hillis-Steele work
            st.cc_efficiency = CC_EFF
            # log-depth dependent sweeps leave DRAM idle between phases —
            # the same starvation the CC constant-operand variants show
            st.mlp = MLP_CC_CONST
        else:
            st.add_fma(2.0 * n)        # Blelloch: ~2 adds per element
            st.cc_efficiency = CC_EFF
            st.mlp = MLP_TREE_BASELINE
            st.serial_stages = max(2 * int(np.log2(seg)), 1)
        st.read_dram(8.0 * n, segment_bytes=1 << 16)
        st.write_dram(8.0 * n, segment_bytes=1 << 16)
        st.add_l1(16.0 * n)
        if variant is Variant.BASELINE:
            st.add_l1(24.0 * n)    # up+down sweeps through shared memory
        elif variant is Variant.CCE:
            # every Hillis-Steele pass re-touches the block in shared memory
            st.add_l1(8.0 * n * np.log2(max(seg, 2)))
        return st
