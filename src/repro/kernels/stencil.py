"""Stencil workload (Quadrant I, structured grids dwarf).

Follows LoRAStencil (Zhang et al., SC'24) in FP64: the stencil weight
matrix is decomposed into low-rank components so the update becomes small
dense matmuls whose *B* operand (the decomposed weights) is loaded once from
constant memory and reused for every tile — the Quadrant I "reuse B" case of
Figure 2.  For the star-shaped order-1 stencils of Table 2 the weight
matrix is exactly rank-2 (a row pass plus a column pass), which the
functional path evaluates with the MMA accumulation-order contract.

The baseline models DRStencil (You et al., HPCC'21): a register-reuse
vector stencil whose halo rows are re-read from DRAM (imperfect inter-block
reuse), costing roughly (2r+1) passes over the grid per sweep.

Test cases: star2d1r on 1K/5K/10K square grids, star3d1r on 512 and 1K
slabs (n x n x 64 — the third dimension is fixed at a slab depth that keeps
functional execution tractable; the timing model scales linearly in it).
"""

from __future__ import annotations

import numpy as np

from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    MLP_MMA_CC,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
)

__all__ = ["StencilWorkload", "STAR2D1R_WEIGHTS", "STAR3D1R_WEIGHTS"]

#: star2d1r weights: center, +-x, +-y
STAR2D1R_WEIGHTS = (0.5, 0.12, 0.13)
#: star3d1r weights: center, +-x, +-y, +-z
STAR3D1R_WEIGHTS = (0.4, 0.09, 0.10, 0.11)
#: slab depth used for the 3-D cases
SLAB = 64
#: largest 2-D grid edge executed functionally
MAX_EXEC_2D = 2048


class StencilWorkload(Workload):
    """Order-1 star stencil sweeps (LoRAStencil vs DRStencil)."""

    name = "stencil"
    quadrant = Quadrant.I
    dwarf = "Structured grids"
    baseline_name = "DRStencil"
    has_cce = False
    edp_repeats = 5_000

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        cases = []
        for n in (1024, 5120, 10240):
            cases.append(WorkloadCase(
                label=f"star2d1r:{n//1024}Kx{n//1024}K",
                params={"kind": "star2d1r", "nx": n, "ny": n, "nz": 1}))
        for n in (512, 1024):
            cases.append(WorkloadCase(
                label=f"star3d1r:{n}x{n}",
                params={"kind": "star3d1r", "nx": n, "ny": n, "nz": SLAB}))
        return cases

    def exec_case(self, case: WorkloadCase) -> WorkloadCase:
        p = dict(case.params)
        p["nx"] = min(p["nx"], MAX_EXEC_2D)
        p["ny"] = min(p["ny"], MAX_EXEC_2D)
        if p["kind"] == "star3d1r":
            p["nz"] = min(p["nz"], 16)
        return WorkloadCase(label=case.label, params=p)

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        nx, ny, nz = case["nx"], case["ny"], case["nz"]
        kind = case["kind"]
        rng = Lcg(seed)
        if kind == "star2d1r":
            grid = rng.uniform(nx * ny, shape=(nx, ny))
        else:
            grid = rng.uniform(nx * ny * nz, shape=(nz, nx, ny))
        return {"kind": kind, "grid": grid, "nx": nx, "ny": ny, "nz": nz}

    def reference(self, data: dict) -> np.ndarray:
        """Serial-order ground truth: weighted neighbor accumulation in the
        canonical (center, -x, +x, -y, +y[, -z, +z]) order."""
        return self._sweep(data, order="serial")

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        variant = self.resolve_variant(variant)
        if variant is Variant.BASELINE:
            out = self._sweep(data, order="serial")
        else:
            out = self._sweep(data, order="lowrank")
        stats = self._stats(variant, data["kind"], data["nx"], data["ny"],
                            data["nz"])
        return device.resolve(stats, output=out)

    @staticmethod
    def _sweep(data: dict, order: str) -> np.ndarray:
        """One stencil sweep with zero boundary conditions.

        ``serial``: canonical per-point accumulation order (baseline and
        ground truth).  ``lowrank``: LoRAStencil's rank-decomposed order —
        the complete row pass is accumulated first, then the column (and
        slab) passes are added, which rounds differently.
        """
        kind, grid = data["kind"], data["grid"]
        if kind == "star2d1r":
            c0, cx, cy = STAR2D1R_WEIGHTS
            g = grid
            xm = np.zeros_like(g)
            xp = np.zeros_like(g)
            ym = np.zeros_like(g)
            yp = np.zeros_like(g)
            xm[1:, :] = g[:-1, :]
            xp[:-1, :] = g[1:, :]
            ym[:, 1:] = g[:, :-1]
            yp[:, :-1] = g[:, 1:]
            if order == "serial":
                return ((((c0 * g + cx * xm) + cx * xp) + cy * ym) + cy * yp)
            row = (c0 * g + cy * ym) + cy * yp        # row-direction rank
            col = cx * xm + cx * xp                   # column-direction rank
            return row + col
        c0, cx, cy, cz = STAR3D1R_WEIGHTS
        g = grid  # (nz, nx, ny)
        out_parts = []
        for axis, w in ((1, cx), (2, cy), (0, cz)):
            minus = np.zeros_like(g)
            plus = np.zeros_like(g)
            sl_m = [slice(None)] * 3
            sl_p = [slice(None)] * 3
            sl_m[axis] = slice(1, None)
            sl_p[axis] = slice(None, -1)
            src_m = [slice(None)] * 3
            src_p = [slice(None)] * 3
            src_m[axis] = slice(None, -1)
            src_p[axis] = slice(1, None)
            minus[tuple(sl_m)] = g[tuple(src_m)]
            plus[tuple(sl_p)] = g[tuple(src_p)]
            out_parts.append((w * minus, w * plus))
        if order == "serial":
            out = c0 * g
            for minus, plus in out_parts:
                out = (out + minus) + plus
            return out
        row = (c0 * g + out_parts[1][0]) + out_parts[1][1]
        col = out_parts[0][0] + out_parts[0][1]
        slab = out_parts[2][0] + out_parts[2][1]
        return (row + col) + slab

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        variant = self.resolve_variant(variant)
        return self._stats(variant, case["kind"], case["nx"], case["ny"],
                           case["nz"])

    def _stats(self, variant: Variant, kind: str, nx: int, ny: int,
               nz: int) -> KernelStats:
        st = KernelStats()
        points = float(nx) * ny * nz
        neighbors = 5 if kind == "star2d1r" else 7
        ranks = 2 if kind == "star2d1r" else 3
        st.essential_flops = 2.0 * neighbors * points
        if variant is Variant.BASELINE:
            # DRStencil: register reuse along one axis, halo rows re-read
            # from DRAM along the others: ~(2r+1) read passes per sweep
            st.add_fma(st.essential_flops)
            st.cc_efficiency = CC_EFF
            st.read_dram(8.0 * points * 3, segment_bytes=8 * ny)
        else:
            # LoRAStencil: rank-decomposed matmuls, one MMA per rank per
            # 8x8 output tile (k=4 covers the 3-wide axis kernel + padding)
            mmas = ranks * points / 64.0
            if variant is Variant.TC:
                st.add_mma_fp64(mmas)
                st.tc_efficiency = TC_EFF
            else:
                st.add_mma_as_fma(mmas)
                st.cc_efficiency = CC_EFF_MMA
                st.mlp = MLP_MMA_CC
            # memory-efficient gathering: each point read once; the weight
            # components come from constant memory (no DRAM traffic)
            st.read_dram(8.0 * points, segment_bytes=8 * ny)
        st.write_dram(8.0 * points, segment_bytes=8 * ny)
        st.add_l1(8.0 * points * (neighbors + 1))
        return st
