"""GEMV workload (Quadrant IV, dense linear algebra dwarf).

The TC implementation follows Section 3: matrix ``A`` is partitioned into
8x4 blocks, the vector ``x`` is broadcast into 4x8 blocks (every column of
the B operand is the same x chunk), an FP64 ``mma_m8n8k4`` multiplies them,
and only the *diagonal* of each 8x8 accumulator carries the result — an 8x
computational redundancy that the full-output MMA imposes (full input,
partial output).

CC-E computes the essential ``y = A x`` with a lane-partial + tree-reduction
per row (the natural vector-unit shape), and the baseline models cuBLAS
GEMV's thread-per-row kernel, whose low thread count on these tall-skinny
shapes (N = 16-32) leaves bandwidth unsaturated.
"""

from __future__ import annotations

import numpy as np

from ..datasets.synthetic import Lcg
from ..gpu.counters import KernelStats
from ..gpu.device import Device, KernelResult
from ..gpu.launch import LaunchPlan, execute_plan
from .base import (
    CC_EFF,
    CC_EFF_MMA,
    MLP_IRREGULAR,
    MLP_MMA_CC,
    TC_EFF,
    Quadrant,
    Variant,
    Workload,
    WorkloadCase,
    ceil_div,
)

__all__ = ["GemvWorkload"]

#: CC-E keeps the blocked layout but runs scalar dots; slightly fewer warps
#: are available to stream A than in the TC version
MLP_CCE = 0.92


class GemvWorkload(Workload):
    """Dense matrix-vector multiplication y = A @ x."""

    name = "gemv"
    quadrant = Quadrant.IV
    dwarf = "Dense linear algebra"
    baseline_name = "cuBLAS GEMV v12.8"
    has_cce = True
    edp_repeats = 6_000_000

    # ------------------------------------------------------------------
    def cases(self) -> list[WorkloadCase]:
        shapes = ((4096, 16), (4096, 32), (11264, 16), (32768, 16),
                  (40960, 16))
        return [WorkloadCase(label=f"{m//1024}Kx{n}",
                             params={"m": m, "n": n}) for m, n in shapes]

    # ------------------------------------------------------------------
    def prepare(self, case: WorkloadCase, seed: int = 1325) -> dict:
        m, n = case["m"], case["n"]
        rng = Lcg(seed)
        return {"m": m, "n": n,
                "a": rng.uniform(m * n, shape=(m, n)),
                "x": rng.uniform(n)}

    def reference(self, data: dict) -> np.ndarray:
        """Serial ground truth: strict left-to-right dot products."""
        a, x = data["a"], data["x"]
        y = np.zeros(a.shape[0])
        for k in range(a.shape[1]):
            y = y + a[:, k] * x[k]
        return y

    # ------------------------------------------------------------------
    def execute(self, variant: Variant, data: dict,
                device: Device) -> KernelResult:
        a, x = data["a"], data["x"]
        m, n = data["m"], data["n"]
        if variant in (Variant.TC, Variant.CC):
            y = self._mma_gemv(a, x)
        elif variant is Variant.CCE:
            y = self._lane_tree_dot(a, x, lanes=4)
        else:  # baseline cuBLAS: two-lane partials then combine
            y = self._lane_tree_dot(a, x, lanes=2)
        stats = self._stats(variant, m, n)
        return device.resolve(stats, output=y)

    @staticmethod
    def _mma_gemv(a: np.ndarray, x: np.ndarray) -> np.ndarray:
        """TC/CC path: A in 8x4 blocks, x broadcast into every column of
        the B operand, one ``mma_m8n8k4`` per k tile chained through the
        accumulator; the accumulator diagonal carries y (full input,
        partial output).  The whole k-tile chain is recorded into a
        :class:`LaunchPlan` and executed as one fused sweep, which keeps
        the per-row sum strictly left-to-right in k, so the result is
        bit-identical to the serial reference (padding contributes exact
        ``+0.0`` terms)."""
        m, n = a.shape
        rows, ktiles = ceil_div(m, 8) * 8, ceil_div(n, 4)
        a_pad = np.zeros((rows, ktiles * 4))
        a_pad[:m, :n] = a
        x_pad = np.zeros(ktiles * 4)
        x_pad[:n] = x
        tiles = a_pad.reshape(rows // 8, 8, ktiles, 4).transpose(0, 2, 1, 3)
        b_steps = np.broadcast_to(x_pad.reshape(ktiles, 4, 1),
                                  (rows // 8, ktiles, 4, 8))
        plan = LaunchPlan()
        h = plan.chain(tiles, b_steps)
        acc = execute_plan(plan, label="gemv")[h]
        diag = np.arange(8)
        return acc[:, diag, diag].reshape(rows)[:m].copy()

    @staticmethod
    def _lane_tree_dot(a: np.ndarray, x: np.ndarray, lanes: int
                       ) -> np.ndarray:
        """Strided lane partial sums followed by a binary tree combine —
        the vector-unit reduction order (differs from the MMA chain).

        Lane ``l`` accumulates ``a[:, l], a[:, l+lanes], ...`` in index
        order, so one vectorized add per *round* of ``lanes`` columns (plus
        an exact tail slice) performs the same adds in the same order as
        the scalar per-column loop it replaces."""
        m, n = a.shape
        partial = np.zeros((m, lanes))
        full = n // lanes
        ap = a[:, :full * lanes].reshape(m, full, lanes)
        xp = x[:full * lanes].reshape(full, lanes)
        for r in range(full):
            partial += ap[:, r] * xp[r]
        rem = n - full * lanes
        if rem:
            partial[:, :rem] += a[:, full * lanes:] * x[full * lanes:]
        w = lanes
        while w > 1:
            half = w // 2
            partial[:, :half] += partial[:, half:w]
            w = half
        return partial[:, 0].copy()

    # ------------------------------------------------------------------
    def analytic_stats(self, variant: Variant,
                       case: WorkloadCase) -> KernelStats:
        return self._stats(variant, case["m"], case["n"])

    def _stats(self, variant: Variant, m: int, n: int) -> KernelStats:
        st = KernelStats()
        essential = 2.0 * m * n
        st.essential_flops = essential
        a_bytes = 8.0 * m * n
        mmas = ceil_div(m, 8) * ceil_div(n, 4)
        if variant is Variant.TC:
            st.add_mma_fp64(mmas, output_useful=8.0 * mmas)
            st.tc_efficiency = TC_EFF
        elif variant is Variant.CC:
            st.add_mma_as_fma(mmas)
            st.cc_efficiency = CC_EFF_MMA
            st.mlp = MLP_MMA_CC
        elif variant is Variant.CCE:
            st.add_fma(essential)
            st.cc_efficiency = CC_EFF
            st.mlp = MLP_CCE
        else:  # baseline: thread-per-row starves memory parallelism
            st.add_fma(essential)
            st.cc_efficiency = CC_EFF
            st.mlp = MLP_IRREGULAR
        st.read_dram(a_bytes, segment_bytes=8 * n)   # row-major streaming
        st.read_dram(8.0 * n, segment_bytes=8 * n)   # x (tiny, cached)
        st.write_dram(8.0 * m, segment_bytes=1 << 12)
        st.add_l1(a_bytes + 8.0 * (m + n))
        return st
