"""Characterization analyses: quadrants, accuracy, roofline, EDP, PCA,
feature extraction, and dwarf coverage (Sections 4 and 7-10)."""

from .accuracy import ErrorEntry, accuracy_table, error_metrics
from .dwarfs import (
    DWARF_ORDER,
    FEATURE_ORDER,
    RODINIA,
    SHOC,
    SuiteCoverage,
    coverage_table,
    cubie_coverage,
)
from .edp import EdpEntry, edp_study, power_trace_study, quadrant_geomeans
from .features import (
    GRAPH_FEATURE_NAMES,
    MATRIX_FEATURE_NAMES,
    graph_features,
    matrix_features,
)
from .mixed_precision import (
    RefinementResult,
    blocked_cholesky,
    iterative_refinement,
    modeled_factorization_time,
    solve_cholesky,
)
from .observations import ObservationResult, verify_all
from .ozaki import (
    OzakiReport,
    compare_schemes,
    modeled_ozaki_time,
    ozaki_gemm,
    split_fp64,
)
from .pca import PcaResult, coverage_stats, pca, standardize
from .representativeness import CaseProfile, Regime, classify_case, workload_regimes
from .quadrants import (
    FULL_THRESHOLD,
    UtilizationProfile,
    classify,
    classify_suite,
)
from .roofline import Roofline, RooflinePoint, suite_roofline, workload_point
from .suitability import KernelSketch, Prediction, Verdict, predict

__all__ = [
    "ErrorEntry",
    "accuracy_table",
    "error_metrics",
    "DWARF_ORDER",
    "FEATURE_ORDER",
    "RODINIA",
    "SHOC",
    "SuiteCoverage",
    "coverage_table",
    "cubie_coverage",
    "EdpEntry",
    "edp_study",
    "power_trace_study",
    "quadrant_geomeans",
    "GRAPH_FEATURE_NAMES",
    "MATRIX_FEATURE_NAMES",
    "graph_features",
    "matrix_features",
    "RefinementResult",
    "blocked_cholesky",
    "iterative_refinement",
    "modeled_factorization_time",
    "solve_cholesky",
    "ObservationResult",
    "verify_all",
    "OzakiReport",
    "compare_schemes",
    "modeled_ozaki_time",
    "ozaki_gemm",
    "split_fp64",
    "PcaResult",
    "coverage_stats",
    "pca",
    "standardize",
    "CaseProfile",
    "Regime",
    "classify_case",
    "workload_regimes",
    "FULL_THRESHOLD",
    "UtilizationProfile",
    "classify",
    "classify_suite",
    "Roofline",
    "RooflinePoint",
    "suite_roofline",
    "workload_point",
    "KernelSketch",
    "Prediction",
    "Verdict",
    "predict",
]
