"""Power and energy-delay-product study (Section 7, Figures 7-8).

Each workload's representative case runs in a measurement loop of the
paper's per-workload repeat counts; the device's power model produces an
NVML-style trace (Figure 8) and ``EDP = average power x time^2`` over the
loop (Figure 7), with per-quadrant geometric means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..gpu.device import Device
from ..gpu.power import PowerTrace
from ..kernels.base import Quadrant, Workload
from ..perf.instrument import stage


__all__ = ["EdpEntry", "edp_study", "quadrant_geomeans", "power_trace_study"]


@dataclass(frozen=True)
class EdpEntry:
    """One (workload, variant) bar of Figure 7."""

    workload: str
    quadrant: Quadrant
    variant: str
    repeats: int
    #: duration of the whole measurement loop, seconds
    loop_time_s: float
    avg_power_w: float
    energy_j: float
    edp: float


def edp_study(workload: Workload, device: Device,
              repeats: int | None = None) -> list[EdpEntry]:
    """Figure 7 entries for one workload on one device."""
    if repeats is None:
        repeats = workload.edp_repeats
    case = workload.representative_case()
    entries = []
    with stage("analysis.edp_study"):
        for variant in workload.variants():
            stats = workload.analytic_stats(variant, case)
            power = device.power.steady_power(stats)
            t_loop = device.timing.time(stats) * repeats
            entries.append(EdpEntry(
                workload=workload.name,
                quadrant=workload.quadrant,
                variant=variant.value,
                repeats=repeats,
                loop_time_s=t_loop,
                avg_power_w=power,
                energy_j=power * t_loop,
                edp=power * t_loop * t_loop,
            ))
    return entries


def quadrant_geomeans(entries: list[EdpEntry]
                      ) -> dict[Quadrant, dict[str, float]]:
    """Per-quadrant geometric-mean EDP per variant (Figure 7's summary
    bars).  Quadrants II and III are reported together, as in the paper,
    and only workloads that have a baseline enter the aggregation so that
    the variants' geomeans cover identical workload sets (PiC, which has
    no baseline, would otherwise skew Quadrant I)."""
    with_baseline = {e.workload for e in entries if e.variant == "baseline"}
    groups: dict[Quadrant, dict[str, list[float]]] = {}
    for e in entries:
        if e.workload not in with_baseline:
            continue
        q = Quadrant.II if e.quadrant is Quadrant.III else e.quadrant
        groups.setdefault(q, {}).setdefault(e.variant, []).append(e.edp)
    out: dict[Quadrant, dict[str, float]] = {}
    for q, per_variant in groups.items():
        out[q] = {v: math.exp(sum(math.log(x) for x in xs) / len(xs))
                  for v, xs in per_variant.items()}
    return out


def power_trace_study(workload: Workload, device: Device,
                      repeats: int | None = None,
                      min_duration_s: float = 5.0,
                      max_duration_s: float = 20.0
                      ) -> dict[str, PowerTrace]:
    """Figure 8: per-variant power traces over the measurement loop.

    The paper executes each kernel 'repeatedly in a loop during
    measurement to capture stable power values' — its Figure 8 windows
    span seconds.  The repeat count is therefore adjusted so every trace
    covers at least ``min_duration_s`` (amortizing the thermal ramp) and
    at most ``max_duration_s`` (bounding the sample count).
    """
    if repeats is None:
        repeats = workload.edp_repeats
    case = workload.representative_case()
    traces = {}
    for variant in workload.variants():
        stats = workload.analytic_stats(variant, case)
        t_one = device.timing.time(stats)
        reps = repeats
        if t_one * reps < min_duration_s:
            reps = int(min_duration_s / t_one) + 1
        if t_one * reps > max_duration_s:
            reps = max(int(max_duration_s / t_one), 1)
        traces[variant.value] = device.power_trace(stats, repeats=reps)
    return traces
