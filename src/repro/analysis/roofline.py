"""Cache-aware roofline model (Section 9, Figure 9).

The model plots achieved performance against arithmetic intensity under
four ceilings: FP64 tensor-core peak, FP64 CUDA-core peak, DRAM bandwidth,
and L1 bandwidth (computed with the paper's formula
``BW_L1 = N_SM x N_LSU x W_access x f_clock``).  Points come from the
workloads' modeled executions; BFS is excluded (bit-wise operations, as in
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.device import Device
from ..gpu.specs import GPUSpec
from ..kernels.base import Variant, Workload

__all__ = ["RooflinePoint", "Roofline", "suite_roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One (workload, variant) point of Figure 9."""

    workload: str
    variant: str
    #: flops per DRAM byte
    intensity: float
    #: achieved useful flops/s (essential flops over modeled time)
    performance: float
    #: which resource the timing model says limits this point
    bottleneck: str


@dataclass(frozen=True)
class Roofline:
    """Ceilings plus measured points for one device."""

    spec: GPUSpec
    points: list[RooflinePoint]

    @property
    def tc_ceiling(self) -> float:
        return self.spec.tc_fp64

    @property
    def cc_ceiling(self) -> float:
        return self.spec.cc_fp64

    def dram_roof(self, intensity: float) -> float:
        """Performance bound from DRAM bandwidth at a given intensity."""
        return self.spec.dram_bw * intensity

    def l1_roof(self, intensity: float) -> float:
        return self.spec.l1_bw * intensity

    def attainable(self, intensity: float, unit: str = "tc") -> float:
        """min(compute ceiling, DRAM roof) — the classic roofline."""
        peak = self.tc_ceiling if unit == "tc" else self.cc_ceiling
        return min(peak, self.dram_roof(intensity))

    def ridge_point(self, unit: str = "tc") -> float:
        """Intensity where the DRAM roof meets the compute ceiling."""
        peak = self.tc_ceiling if unit == "tc" else self.cc_ceiling
        return peak / self.spec.dram_bw

    def points_above_dram_roof(self) -> list[RooflinePoint]:
        """Cache-resident kernels exceed the DRAM ceiling (the paper's
        observation for Scan/Reduction)."""
        return [p for p in self.points
                if p.performance > self.dram_roof(p.intensity) * 0.999]


def workload_point(workload: Workload, variant: Variant,
                   device: Device) -> RooflinePoint:
    """Evaluate one workload variant into a roofline point."""
    case = workload.representative_case()
    stats = workload.analytic_stats(variant, case)
    result = device.resolve(stats)
    return RooflinePoint(
        workload=workload.name,
        variant=variant.value,
        intensity=stats.arithmetic_intensity("dram"),
        performance=result.flops,
        bottleneck=result.breakdown.bottleneck,
    )


def suite_roofline(workloads: list[Workload], device: Device) -> Roofline:
    """Figure 9: all floating-point workloads and variants on one device."""
    points = []
    for w in workloads:
        if not w.floating_point:
            continue  # the paper excludes BFS from the roofline
        for v in w.variants():
            points.append(workload_point(w, v, device))
    return Roofline(spec=device.spec, points=points)
