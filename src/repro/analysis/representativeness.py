"""Test-case representativeness analysis (Section 5.1).

The paper claims each workload's five cases 'span small to large problem
scales and cover the major GPU performance regimes'.  This module makes
that claim checkable: every case is classified into a *regime* by which
resource the timing model says dominates and by how much headroom the
launch overhead leaves, and the suite-level summary shows which regimes
each workload's case set touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..gpu.device import Device
from ..kernels.base import Variant, Workload

__all__ = ["Regime", "CaseProfile", "classify_case", "workload_regimes"]


class Regime(str, Enum):
    """Which part of the machine a case actually exercises."""

    LATENCY = "latency-bound"       # launch/stage overhead dominates
    MEMORY = "memory-bound"         # DRAM or L1 limited
    COMPUTE = "compute-bound"       # tensor/FMA pipe limited


@dataclass(frozen=True)
class CaseProfile:
    """Classification of one (workload, case) pair."""

    workload: str
    case: str
    regime: Regime
    bottleneck: str
    #: fraction of the modeled time spent on fixed overheads
    overhead_fraction: float
    time_s: float


def classify_case(workload: Workload, case, device: Device,
                  variant: Variant = Variant.TC,
                  latency_threshold: float = 0.33) -> CaseProfile:
    """Classify a case by its dominating resource on a device."""
    stats = workload.analytic_stats(variant, case)
    breakdown = device.timing.breakdown(stats)
    total = breakdown.total_s
    overhead = (breakdown.launch_s + breakdown.stage_s) / total
    if overhead >= latency_threshold:
        regime = Regime.LATENCY
    elif breakdown.bottleneck in ("dram", "l1"):
        regime = Regime.MEMORY
    else:
        regime = Regime.COMPUTE
    return CaseProfile(workload=workload.name, case=case.label,
                       regime=regime, bottleneck=breakdown.bottleneck,
                       overhead_fraction=overhead, time_s=total)


def workload_regimes(workload: Workload, device: Device,
                     variant: Variant = Variant.TC) -> list[CaseProfile]:
    """Classify all five Table 2 cases of a workload."""
    return [classify_case(workload, case, device, variant)
            for case in workload.cases()]
