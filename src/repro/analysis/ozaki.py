"""Ozaki-scheme FP64 GEMM on low-precision MMAs.

The paper cites Ootomo, Ozaki & Yokota's "DGEMM on integer matrix
multiplication unit" [74] as the escape hatch from the Blackwell FP64
regression: split each FP64 operand into a short sum of limited-mantissa
slices, compute all slice-pair products *exactly* on fast low-precision
MMAs, and recover the FP64 result as an exactly-representable sum.  This
module implements the error-free-splitting variant on the emulated
FP16-input/FP32-accumulate MMA path, so the accuracy-vs-slices trade-off
and the modeled B200 economics can both be measured.

Splitting: with operands pre-scaled per row/column to unit magnitude,
slice ``i`` of a value keeps mantissa bits ``[i*β, (i+1)*β)``.  β must
satisfy the error-free bound ``2β + ceil(log2 k) <= 24`` so that every
k-length inner product of two slices accumulates *exactly* in the FP32
accumulator; :func:`ozaki_gemm` derives β from k automatically (β = 9 for
k = 64, β = 8 for k <= 256, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..gpu.isa import Precision
from ..gpu.launch import LaunchPlan, execute_plan
from ..gpu.mma import mma_fp64_batched
from ..gpu.mma_mixed import mma_mixed_batched
from ..kernels.base import TC_EFF
from ..perf.instrument import stage

__all__ = ["split_fp64", "ozaki_gemm", "OzakiReport", "compare_schemes",
           "modeled_ozaki_time", "SLICE_BITS", "slice_bits_for"]

#: default mantissa bits per slice for k <= 64 (see the exactness bound)
SLICE_BITS = 9


def slice_bits_for(k: int) -> int:
    """Largest slice width keeping slice-pair inner products exact in the
    FP32 accumulator: ``2 beta + ceil(log2 k) <= 24``."""
    if k < 1:
        raise ValueError("k must be positive")
    log_k = int(np.ceil(np.log2(max(k, 2))))
    return max((24 - log_k) // 2, 4)


def split_fp64(x: np.ndarray, n_slices: int,
               slice_bits: int = SLICE_BITS
               ) -> tuple[list[np.ndarray], np.ndarray]:
    """Error-free row-wise splitting of a matrix into mantissa slices.

    Returns ``(slices, scale)``: slice ``i`` is *normalized* — an exact
    ``slice_bits``-bit value of magnitude <= 1 (so it can never underflow
    the FP16 exponent range) — and the true decomposition is

        x = scale * sum_i slices[i] * 2**(-slice_bits * i)

    which is exact once ``n_slices * slice_bits`` covers the mantissa.
    """
    x = np.asarray(x, dtype=np.float64)
    if n_slices < 1:
        raise ValueError("need at least one slice")
    # per-row power-of-two scale so |x/scale| < 1
    max_abs = np.abs(x).max(axis=-1, keepdims=True)
    max_abs = np.where(max_abs <= 0, 1.0, max_abs)
    scale = 2.0 ** np.ceil(np.log2(max_abs))
    rem = x / scale
    slices = []
    for i in range(n_slices):
        unit = 2.0 ** (-slice_bits * (i + 1))  # value of one mantissa chunk
        chunk = np.round(rem / unit)           # integer, |chunk| <= 2^bits
        slices.append(chunk * 2.0 ** (-slice_bits))   # normalized slice
        rem = rem - chunk * unit
    return slices, scale


def ozaki_gemm(a: np.ndarray, b: np.ndarray, n_slices: int = 3,
               precision: Precision = Precision.FP16) -> np.ndarray:
    """C = A @ B via slice-pair products on the low-precision MMA path.

    Slice pairs whose combined significance falls below the kept range
    are skipped, as in the published scheme: ``i + j < n_slices`` pairs
    only, giving ``n_slices (n_slices + 1) / 2`` MMA products — all of
    which are independent, so they run as *one* batched sweep through the
    launch plan instead of a Python pair loop.  The FP64 part summation
    keeps the original pair order, so the result is bit-identical to the
    looped formulation.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("need 2-D operands with matching inner dim")
    beta = slice_bits_for(a.shape[1])
    with stage("ozaki.split"):
        a_slices, a_scale = split_fp64(a, n_slices, beta)       # rows of A
        b_slices, b_scale = split_fp64(b.T, n_slices, beta)     # cols of B
        b_slices = [s.T.copy() for s in b_slices]
    pairs = [(i, j) for i in range(n_slices) for j in range(n_slices - i)]
    plan = LaunchPlan()
    handles = [plan.mixed(a_slices[i][np.newaxis], b_slices[j][np.newaxis],
                          precision=precision) for i, j in pairs]
    parts = execute_plan(plan, label="ozaki")
    with stage("ozaki.reduce"):
        c = np.zeros((a.shape[0], b.shape[1]))
        for h, (i, j) in zip(handles, pairs):
            # undo the slices' normalization, sum parts in FP64
            c = c + parts[h][0] * 2.0 ** (-beta * (i + j))
        return c * a_scale * b_scale.T


@dataclass(frozen=True)
class OzakiReport:
    """Accuracy of one scheme at one slice count."""

    n_slices: int
    max_error: float
    mma_sweeps: int


def compare_schemes(n: int = 64, max_slices: int = 5,
                    seed: int = 7) -> tuple[float, float, list[OzakiReport]]:
    """(plain FP16 error, FP64-chain error, per-slice-count Ozaki errors)
    for one random GEMM — the data behind the accuracy trade-off plot."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-2, 2, (n, n))
    b = rng.uniform(-2, 2, (n, n))
    exact = a @ b
    fp16 = mma_mixed_batched(a[np.newaxis], b[np.newaxis],
                             precision=Precision.FP16)[0]
    fp16_err = float(np.abs(fp16 - exact).max())
    fp64 = mma_fp64_batched(a[np.newaxis], b[np.newaxis])[0]
    fp64_err = float(np.abs(fp64 - exact).max())
    reports = []
    for s in range(1, max_slices + 1):
        got = ozaki_gemm(a, b, n_slices=s)
        reports.append(OzakiReport(
            n_slices=s,
            max_error=float(np.abs(got - exact).max()),
            mma_sweeps=s * (s + 1) // 2))
    return fp16_err, fp64_err, reports


def modeled_ozaki_time(n: int, device: Device, n_slices: int = 3) -> float:
    """Modeled n^3 GEMM time via the Ozaki scheme: each slice-pair sweep
    is a full GEMM on the FP16 tensor peak, plus the FP64 part summation
    (n^2 per sweep) on the vector units."""
    spec = device.spec
    sweeps = n_slices * (n_slices + 1) // 2
    t_mma = sweeps * 2.0 * n ** 3 / (spec.tc_fp16 * TC_EFF)
    t_sum = sweeps * 2.0 * n * n / (spec.cc_fp64 * 0.5)
    t_mem = (sweeps + 2.0) * 8.0 * n * n * 3 / spec.dram_bw
    return max(t_mma, t_mem) + t_sum + spec.launch_overhead_s
