"""Structural feature extraction for matrices and graphs (Figure 10).

The paper standardizes 'sparsity, row and column degree statistics, and
block structures' before its PCA of the SuiteSparse collection.  These
extractors compute that feature set from our CSR substrate.
"""

from __future__ import annotations

import numpy as np

from ..sparse.csr import CsrMatrix
from ..sparse.mbsr import MbsrMatrix

__all__ = [
    "MATRIX_FEATURE_NAMES",
    "GRAPH_FEATURE_NAMES",
    "matrix_features",
    "graph_features",
]

MATRIX_FEATURE_NAMES = (
    "log_rows",
    "log_nnz",
    "log_density",
    "row_mean",
    "row_cv",
    "row_max_ratio",
    "col_cv",
    "bandwidth_ratio",
    "block_fill",
    "diag_fraction",
)

GRAPH_FEATURE_NAMES = (
    "log_vertices",
    "log_edges",
    "avg_degree",
    "degree_cv",
    "degree_max_ratio",
    "reciprocity",
    "locality",
    "hub_mass",
)


def matrix_features(a: CsrMatrix) -> np.ndarray:
    """Feature vector of one sparse matrix (MATRIX_FEATURE_NAMES order)."""
    n_rows, n_cols = a.shape
    nnz = max(a.nnz, 1)
    row_lengths = a.row_lengths().astype(np.float64)
    row_mean = nnz / max(n_rows, 1)
    row_std = float(row_lengths.std())
    col_counts = np.bincount(a.indices, minlength=n_cols).astype(np.float64) \
        if a.nnz else np.zeros(n_cols)
    col_mean = nnz / max(n_cols, 1)
    rows_of = a.row_of_entry()
    if a.nnz:
        band = np.abs(rows_of - a.indices)
        bandwidth_ratio = float(band.max()) / max(n_cols - 1, 1)
        diag_fraction = float((band == 0).sum()) / nnz
    else:
        bandwidth_ratio = 0.0
        diag_fraction = 0.0
    block_fill = MbsrMatrix.from_csr(a).fill_ratio if a.nnz else 0.0
    return np.array([
        np.log10(max(n_rows, 1)),
        np.log10(nnz),
        np.log10(nnz / max(n_rows * n_cols, 1)),
        row_mean,
        row_std / max(row_mean, 1e-12),
        float(row_lengths.max()) / max(row_mean, 1e-12) if a.nnz else 0.0,
        float(col_counts.std()) / max(col_mean, 1e-12),
        bandwidth_ratio,
        block_fill,
        diag_fraction,
    ])


def graph_features(src: np.ndarray, dst: np.ndarray, n: int) -> np.ndarray:
    """Feature vector of one directed graph (GRAPH_FEATURE_NAMES order)."""
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    m = max(len(src), 1)
    out_deg = np.bincount(src, minlength=n).astype(np.float64)
    avg = m / max(n, 1)
    # reciprocity: fraction of edges whose reverse also exists
    key = src * np.int64(n) + dst
    rkey = dst * np.int64(n) + src
    recip = float(np.isin(rkey, key).mean()) if len(src) else 0.0
    # locality: fraction of edges staying within a 128-id neighborhood
    locality = float((np.abs(src - dst) < 128).mean()) if len(src) else 0.0
    # hub mass: fraction of edges incident to the top 1% in-degree vertices
    in_deg = np.bincount(dst, minlength=n).astype(np.float64)
    k = max(n // 100, 1)
    hubs = np.argsort(-in_deg)[:k]
    hub_mass = float(np.isin(dst, hubs).mean()) if len(src) else 0.0
    return np.array([
        np.log10(max(n, 1)),
        np.log10(m),
        avg,
        float(out_deg.std()) / max(avg, 1e-12),
        float(out_deg.max()) / max(avg, 1e-12),
        recip,
        locality,
        hub_mass,
    ])
