"""Standardization and principal component analysis, built from scratch.

The paper standardizes structural/architectural feature matrices and
extracts the top two principal components (Section 10, Figures 10-11).
This implementation uses the covariance eigendecomposition directly — no
scikit-learn — and fixes component signs deterministically so results are
reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.instrument import stage

__all__ = ["PcaResult", "standardize", "pca", "coverage_stats"]


@dataclass(frozen=True)
class PcaResult:
    """Fitted PCA: components are rows, scores are per-sample."""

    #: (k, d) principal axes, unit norm
    components: np.ndarray
    #: (k,) explained variance per component
    explained_variance: np.ndarray
    #: (k,) fraction of total variance explained
    explained_ratio: np.ndarray
    #: (n, k) projected samples
    scores: np.ndarray
    #: (d,) training mean (of the standardized data, ~0)
    mean: np.ndarray

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Project new (already standardized) samples."""
        return (np.asarray(x) - self.mean) @ self.components.T


def standardize(x: np.ndarray, eps: float = 1e-12
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zero-mean unit-variance scaling; returns (z, mean, std).

    Constant features get std 1 so they map to zero rather than NaN.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("feature matrix must be 2-D")
    mean = x.mean(axis=0)
    std = x.std(axis=0)
    std = np.where(std < eps, 1.0, std)
    return (x - mean) / std, mean, std


def pca(x: np.ndarray, n_components: int = 2) -> PcaResult:
    """PCA via eigendecomposition of the covariance matrix."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("input must be 2-D")
    n, d = x.shape
    if n < 2:
        raise ValueError("need at least two samples")
    if not 1 <= n_components <= d:
        raise ValueError(f"n_components must be in [1, {d}]")
    with stage("analysis.pca"):
        mean = x.mean(axis=0)
        centered = x - mean
        cov = centered.T @ centered / (n - 1)
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1][:n_components]
        comps = eigvecs[:, order].T
        variances = np.maximum(eigvals[order], 0.0)
        # deterministic sign: largest-magnitude coefficient positive
        for i, row in enumerate(comps):
            j = int(np.argmax(np.abs(row)))
            if row[j] < 0:
                comps[i] = -row
        total = max(eigvals.clip(min=0).sum(), 1e-300)
        return PcaResult(
            components=comps,
            explained_variance=variances,
            explained_ratio=variances / total,
            scores=centered @ comps.T,
            mean=mean,
        )


def coverage_stats(population_scores: np.ndarray,
                   selected_scores: np.ndarray) -> dict[str, float]:
    """The Figure 10 coverage metrics.

    * ``selected_dispersion`` — mean pairwise distance among the selected
      points (the paper reports 0.18 for its matrices, normalized);
    * ``nn_dispersion`` — mean pairwise distance among each selected
      point's nearest population neighbors (paper: 0.05);
    * ``range_coverage`` — fraction of the population's per-axis value
      range spanned by the selected points (paper: 81-96%);
    * ``population_near_selected`` — fraction of the population within the
      median population-scale distance of some selected point (paper:
      94.6% of graphs lie close to a representative).
    """
    pop = np.asarray(population_scores, dtype=np.float64)
    sel = np.asarray(selected_scores, dtype=np.float64)
    if pop.ndim != 2 or sel.ndim != 2:
        raise ValueError("scores must be 2-D")
    scale = max(float(np.ptp(pop, axis=0).max()), 1e-300)

    def mean_pairwise(pts: np.ndarray) -> float:
        if len(pts) < 2:
            return 0.0
        diffs = pts[:, None, :] - pts[None, :, :]
        d = np.sqrt((diffs ** 2).sum(-1))
        iu = np.triu_indices(len(pts), k=1)
        return float(d[iu].mean())

    # nearest population neighbor of each selected point
    d_sel_pop = np.sqrt(
        ((sel[:, None, :] - pop[None, :, :]) ** 2).sum(-1))
    nn_idx = np.argsort(d_sel_pop, axis=1)[:, 1:len(sel) + 1]
    nn_points = pop[nn_idx.ravel()]

    ranges_pop = np.ptp(pop, axis=0)
    ranges_pop = np.where(ranges_pop <= 0, 1.0, ranges_pop)
    range_cov = float((np.ptp(sel, axis=0) / ranges_pop).clip(0, 1).mean())

    d_pop_sel = d_sel_pop.T.min(axis=1)
    near = float((d_pop_sel <= 0.25 * scale).mean())

    return {
        "selected_dispersion": mean_pairwise(sel) / scale,
        "nn_dispersion": mean_pairwise(nn_points) / scale,
        "range_coverage": range_cov,
        "population_near_selected": near,
    }
