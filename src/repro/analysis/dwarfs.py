"""Berkeley-dwarf coverage comparison (Section 10, Table 7).

Cubie's dwarf counts are *derived* from the registered workloads' ``dwarf``
attributes; Rodinia's and SHOC's rows reproduce the paper's static
classification of those suites.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..kernels.base import Workload

__all__ = ["SuiteCoverage", "cubie_coverage", "RODINIA", "SHOC",
           "coverage_table", "DWARF_ORDER", "FEATURE_ORDER"]

DWARF_ORDER = (
    "Dense linear algebra",
    "Sparse linear algebra",
    "Spectral methods",
    "N-Body",
    "Structured grids",
    "Unstructured grids",
    "MapReduce",
    "Graph traversal",
    "Dynamic programming",
)

FEATURE_ORDER = (
    "Parallelization pattern",
    "Performance",
    "Power and energy",
    "Precision",
    "Memory bandwidth",
    "CPU-GPU data transfer",
)


@dataclass(frozen=True)
class SuiteCoverage:
    """Dwarf counts and evaluated features for one benchmark suite."""

    name: str
    dwarf_counts: dict[str, int]
    features: frozenset[str] = field(default_factory=frozenset)

    @property
    def dwarfs_covered(self) -> int:
        return sum(1 for v in self.dwarf_counts.values() if v > 0)

    @property
    def features_evaluated(self) -> int:
        return len(self.features)


#: Rodinia's classification per Table 7
RODINIA = SuiteCoverage(
    name="Rodinia",
    dwarf_counts={"Dense linear algebra": 3, "Structured grids": 4,
                  "Unstructured grids": 2, "Graph traversal": 2,
                  "Dynamic programming": 1},
    features=frozenset({"Parallelization pattern", "Performance",
                        "Power and energy", "CPU-GPU data transfer"}),
)

#: SHOC's classification per Table 7
SHOC = SuiteCoverage(
    name="SHOC",
    dwarf_counts={"Dense linear algebra": 2, "Spectral methods": 1,
                  "N-Body": 1, "Structured grids": 1, "MapReduce": 3},
    features=frozenset({"Performance", "Power and energy",
                        "Memory bandwidth", "CPU-GPU data transfer"}),
)

#: the features this reproduction of Cubie evaluates (Table 7's column)
CUBIE_FEATURES = frozenset({"Parallelization pattern", "Performance",
                            "Power and energy", "Precision",
                            "Memory bandwidth"})


def cubie_coverage(workloads: list[Workload]) -> SuiteCoverage:
    """Derive Cubie's Table 7 row from the registered workloads."""
    counts = Counter(w.dwarf for w in workloads)
    return SuiteCoverage(name="Cubie", dwarf_counts=dict(counts),
                         features=CUBIE_FEATURES)


def coverage_table(workloads: list[Workload]) -> list[SuiteCoverage]:
    """All three suites in Table 7 order."""
    return [RODINIA, SHOC, cubie_coverage(workloads)]
