"""Programmatic verification of the paper's nine key observations.

Each observation (Sections 3-10, summarized in Table 1) is implemented as
a function returning an :class:`ObservationResult` — a boolean verdict
plus the quantitative evidence that supports it — computed live from the
workloads and models.  ``verify_all`` is the one-call audit the
``bench_observations`` regenerator and the test suite run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..gpu.device import Device
from ..graph import GraphScheduler, TaskGraph, TaskNode, graph_enabled
from ..kernels.base import Quadrant, Variant, Workload
from ..kernels import all_workloads, get_workload
from ..perf.cache import content_key, default_cache, package_source_token
from ..perf.executor import ParallelExecutor
from ..perf.instrument import stage
from .accuracy import AUDIT_SEED, accuracy_table, accuracy_tables
from .edp import edp_study, quadrant_geomeans
from .quadrants import classify

__all__ = ["ObservationResult", "build_observations_graph", "verify_all",
           "OBSERVATIONS"]


@dataclass
class ObservationResult:
    """Verdict and evidence for one observation."""

    number: int
    statement: str
    holds: bool
    evidence: dict[str, object] = field(default_factory=dict)


def _speedup(w: Workload, num: Variant, den: Variant, dev: Device) -> float:
    ratios = []
    for case in w.cases():
        t_num = dev.resolve(w.analytic_stats(num, case)).time_s
        t_den = dev.resolve(w.analytic_stats(den, case)).time_s
        ratios.append(t_den / t_num)
    return float(np.mean(ratios))


def observation_1(workloads, devices) -> ObservationResult:
    """O1: non-GEMM algorithms must modify data structures and reorganize
    algorithms to exploit MMUs.  Evidence: every non-GEMM workload's TC
    variant executes more than its essential flops (the reorganization
    cost) or restructures into tile formats (redundancy > 1 / bit tiles)."""
    evidence = {}
    holds = True
    for w in workloads:
        st = w.analytic_stats(Variant.TC, w.representative_case())
        if w.name == "gemm":
            continue
        if w.floating_point:
            evidence[w.name] = f"redundancy {st.redundancy:.2f}x"
            holds &= st.redundancy > 1.0
        else:
            evidence[w.name] = "bitmap slice-set restructuring"
    return ObservationResult(1, "non-GEMM kernels modify data structures "
                             "and algorithms for MMUs", holds, evidence)


def observation_2(workloads, devices) -> ObservationResult:
    """O2: kernels exhibit four distinct utilization quadrants."""
    groups: dict[str, list[str]] = {}
    for w in workloads:
        q = classify(w).quadrant
        groups.setdefault(q.value, []).append(w.name)
    holds = set(groups) == {"I", "II", "III", "IV"}
    expected = {w.name: w.quadrant.value for w in workloads}
    measured_ok = all(w.name in groups[expected[w.name]] for w in workloads)
    return ObservationResult(2, "four utilization quadrants, matching "
                             "Figure 2", holds and measured_ok, groups)


def observation_3(workloads, devices) -> ObservationResult:
    """O3: TC outperforms baselines in most cases, portably across the
    three architectures."""
    evidence = {}
    wins = total = 0
    for w in workloads:
        if Variant.BASELINE not in w.variants():
            continue
        per_gpu = {d.spec.name: _speedup(w, Variant.TC, Variant.BASELINE, d)
                   for d in devices}
        evidence[w.name] = {g: round(s, 2) for g, s in per_gpu.items()}
        for s in per_gpu.values():
            total += 1
            wins += s > 1.0
    return ObservationResult(3, "TC consistently outperforms baselines "
                             "and is performance portable",
                             wins / total > 0.75, evidence)


def observation_4(workloads, devices) -> ObservationResult:
    """O4: isolating the compute unit (CC vs TC), MMUs account for 10% to
    200% of the gains (i.e. CC retains 1/3 to ~0.9 of TC)."""
    evidence = {}
    holds = True
    for w in workloads:
        for d in devices:
            cc = _speedup(w, Variant.CC, Variant.TC, d)
            gain = 1.0 / cc - 1.0       # MMU-attributable speedup fraction
            evidence[f"{w.name}@{d.spec.name}"] = round(gain, 2)
            holds &= -0.02 <= gain <= 2.2
    return ObservationResult(4, "MMUs account for 10%-200% of the gains "
                             "over equivalent vector execution", holds,
                             evidence)


def observation_5(workloads, devices) -> ObservationResult:
    """O5: MMU-enabling redundancy should not be removed — except SpMV."""
    evidence = {}
    holds = True
    for w in workloads:
        if not w.has_cce:
            continue
        s = np.mean([_speedup(w, Variant.CCE, Variant.TC, d)
                     for d in devices])
        evidence[w.name] = round(float(s), 2)
        if w.name == "spmv":
            holds &= s >= 1.0
        else:
            holds &= s <= 1.05
    return ObservationResult(5, "removing MMU redundancy pays off only "
                             "for SpMV", holds, evidence)


def observation_6(workloads, devices) -> ObservationResult:
    """O6: similar power, faster completion => 30-80% lower geomean EDP."""
    h200 = next(d for d in devices if d.spec.name == "H200")
    entries = []
    for w in workloads:
        entries.extend(edp_study(w, h200))
    gm = quadrant_geomeans(entries)
    evidence = {}
    holds = True
    for q, per in gm.items():
        if "baseline" not in per:
            continue
        reduction = 1.0 - per["tc"] / per["baseline"]
        evidence[f"Quadrant {q.value}"] = f"TC EDP {reduction:+.0%}"
        holds &= reduction > 0.25
    return ObservationResult(6, "TC lowers geomean EDP by 30-80% across "
                             "quadrants", holds, evidence)


def observation_7(workloads, devices) -> ObservationResult:
    """O7: TC and CC are numerically identical; the *transformations*
    (CC-E, baselines) change rounding."""
    h200 = next(d for d in devices if d.spec.name == "H200")
    evidence = {}
    holds = True
    deviates = 0
    # one batched audit call: per-workload tables fan out through the
    # executor (and hit the result cache individually) instead of looping
    tables = accuracy_tables(workloads, h200)
    for w in workloads:
        if not w.floating_point:
            continue
        by = {e.variant: e for e in tables[w.name]}
        identical = (by["tc"].avg_error == by["cc"].avg_error
                     and by["tc"].max_error == by["cc"].max_error)
        holds &= identical
        others = {v: e for v, e in by.items() if v not in ("tc", "cc")}
        diff = any(e.avg_error != by["tc"].avg_error
                   for e in others.values())
        deviates += diff
        evidence[w.name] = ("TC==CC" if identical else "TC!=CC") + \
            (", transforms deviate" if diff else "")
    return ObservationResult(7, "MMUs and vector units give equal FP64 "
                             "accuracy; algorithmic transformation shifts "
                             "it", holds and deviates >= 5, evidence)


def observation_8(workloads, devices) -> ObservationResult:
    """O8: MMU layouts regularize memory access.  Evidence: in Quadrant IV
    the TC variants' coalescing efficiency exceeds the baselines'."""
    h200 = next(d for d in devices if d.spec.name == "H200")
    evidence = {}
    holds = True
    for w in workloads:
        if w.quadrant is not Quadrant.IV:
            continue
        if Variant.BASELINE not in w.variants():
            continue
        case = w.representative_case()
        tc = h200.memory.resolve(w.analytic_stats(Variant.TC, case))
        base = h200.memory.resolve(
            w.analytic_stats(Variant.BASELINE, case))
        evidence[w.name] = (f"coalescing {base.coalescing_efficiency:.2f}"
                            f" -> {tc.coalescing_efficiency:.2f}")
        holds &= tc.coalescing_efficiency >= base.coalescing_efficiency
    return ObservationResult(8, "MMU data layouts yield more regular "
                             "memory access", holds, evidence)


def observation_9(workloads, devices) -> ObservationResult:
    """O9: Cubie spans a wider behavior space than Rodinia/SHOC."""
    from ..suites import suite_metric_points
    from .pca import pca, standardize
    h200 = next(d for d in devices if d.spec.name == "H200")
    points = suite_metric_points(workloads, h200)
    z, _, _ = standardize(np.stack([p.values for p in points]))
    res = pca(z, 2)

    def area(suite: str) -> float:
        idx = [i for i, p in enumerate(points) if p.suite == suite]
        return float(np.prod(np.ptp(res.scores[idx], axis=0)))

    areas = {s: round(area(s), 1) for s in ("Rodinia", "SHOC", "Cubie")}
    holds = areas["Cubie"] > max(areas["Rodinia"], areas["SHOC"])
    return ObservationResult(9, "Cubie covers a wider behavior space than "
                             "Rodinia and SHOC", holds, areas)


OBSERVATIONS: tuple[Callable, ...] = (
    observation_1, observation_2, observation_3, observation_4,
    observation_5, observation_6, observation_7, observation_8,
    observation_9,
)


def _run_observation(task: tuple[int, list[Workload] | None,
                                 list[Device] | None]) -> ObservationResult:
    """Worker: evaluate one observation by index.  ``None`` workloads or
    devices are reconstructed in-process, so the task pickles cheaply when
    fanned out to the default suite.

    Default-suite verdicts are content-address cached: every input is
    fixed-seed deterministic and the key carries the whole package source
    token, so a warm audit replays from the cache while any code change
    invalidates it.  Explicit workload/device lists skip the cache (their
    identity is not reliably keyable)."""
    idx, workloads, devices = task
    default_suite = workloads is None and devices is None
    if workloads is None:
        workloads = all_workloads()
    if devices is None:
        devices = [Device("A100"), Device("H200"), Device("B200")]
    if not default_suite:
        return OBSERVATIONS[idx](workloads, devices)
    key = content_key("observation", package_source_token(), idx + 1,
                      np.__version__)
    return default_cache().get_or_compute(
        "observation", key,
        lambda: OBSERVATIONS[idx](workloads, devices))


def _node_dataset(name: str) -> str:
    """Dataset-gen node: warm one workload's generator cache entry.

    Runs the exact ``prepare`` call the Table 6 audit will issue (same
    representative case, same :data:`AUDIT_SEED`), so the disk-backed
    generator cache is hot by the time the downstream accuracy node — or
    a sibling running concurrently on another workload — needs it.  The
    node's value is just the workload name: the real product is the
    cache entry, which crosses the process boundary on disk."""
    w = get_workload(name)
    w.prepare(w.exec_case(w.representative_case()), seed=AUDIT_SEED)
    return name


def _node_accuracy(name: str) -> list:
    """Accuracy-audit node: one workload's Table 6 rows on the H200.

    Content-address cached inside :func:`accuracy_table`, so the O7 node
    downstream (which calls ``accuracy_tables`` over the whole suite)
    replays these rows from the cache instead of recomputing them."""
    return accuracy_table(get_workload(name), Device("H200"))


def build_observations_graph(workloads: list[Workload] | None = None,
                             devices: list[Device] | None = None
                             ) -> TaskGraph:
    """The observation audit as an explicit dataflow graph.

    For the default suite the audit over-decomposes: per floating-point
    workload a ``dataset:<name>`` node feeds an ``accuracy:<name>``
    node, and the nine ``observation:NN`` nodes ride alongside — only
    O7 (the functional accuracy study) depends on the accuracy nodes;
    the other eight use analytic stats only and are ready immediately.
    Dataset generation for workload B therefore overlaps the accuracy
    audit of workload A *and* the analytic observations of both.

    Explicit workload/device lists skip the warm-up spine (their
    identity is not reliably keyable for the shared caches) and emit
    the nine observation nodes only.
    """
    g = TaskGraph()
    obs_deps: tuple[str, ...] = ()
    if workloads is None and devices is None:
        fp_names = [w.name for w in all_workloads() if w.floating_point]
        for name in fp_names:
            g.add(TaskNode(key=f"dataset:{name}", kind="dataset-gen",
                           fn=_node_dataset, args=(name,),
                           label=f"dataset {name}"))
            g.add(TaskNode(key=f"accuracy:{name}", kind="accuracy-audit",
                           fn=_node_accuracy, args=(name,),
                           deps=(f"dataset:{name}",),
                           label=f"accuracy {name}"))
        obs_deps = tuple(f"accuracy:{n}" for n in fp_names)
    for i in range(len(OBSERVATIONS)):
        g.add(TaskNode(key=f"observation:{i + 1:02d}",
                       kind="observation-audit",
                       fn=_run_observation,
                       args=((i, workloads, devices),),
                       deps=obs_deps if i == 6 else (),
                       label=f"observation {i + 1}"))
    return g


def verify_all(workloads: list[Workload] | None = None,
               devices: list[Device] | None = None,
               *, n_jobs: int | None = None,
               executor: ParallelExecutor | None = None,
               mode: str | None = None) -> list[ObservationResult]:
    """Evaluate all nine observations; returns them in order.

    The default path emits the audit as a task graph
    (:func:`build_observations_graph`) and drains it through the
    :class:`~repro.graph.GraphScheduler`, so dataset generation,
    accuracy audits, and analytic observations overlap instead of
    running as staged barriers.  ``mode="staged"`` (or ``REPRO_GRAPH=0``,
    or passing an ``executor``) falls back to the legacy staged fan-out
    — bit-identical by construction, asserted by ``tests/graph/``.
    Results are ordered by observation number regardless of mode or
    ``n_jobs``.
    """
    if executor is None and graph_enabled(mode):
        graph = build_observations_graph(workloads, devices)
        with stage("analysis.verify_all"):
            results = GraphScheduler(n_jobs).run(graph)
        return [results[f"observation:{i + 1:02d}"]
                for i in range(len(OBSERVATIONS))]
    ex = executor if executor is not None else ParallelExecutor(n_jobs)
    tasks = [(i, workloads, devices) for i in range(len(OBSERVATIONS))]
    with stage("analysis.verify_all"):
        return ex.map(_run_observation, tasks, chunk_size=1,
                      labels=[f"observation {i + 1}"
                              for i in range(len(OBSERVATIONS))],
                      stage_names=[f"verify.observation:{i + 1}"
                                   for i in range(len(OBSERVATIONS))])
