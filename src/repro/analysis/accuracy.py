"""FP64 accuracy study (Section 8, Table 6).

For each floating-point workload, every variant executes functionally at a
feasible scale and its output is compared against the workload's CPU-serial
reference, reporting

    Average_Error = (1/n) sum |result_gpu,i - result_cpu,i|
    Max_Error     = max    |result_gpu,i - result_cpu,i|

exactly as the paper defines them.  BFS is excluded (no floating-point
math).  The structural findings the study must reproduce: TC and CC give
*identical* errors (same data structures, algorithms, and — in this
simulation, by construction — accumulation order), while CC-E and the
baselines round differently.

Hot-path layout: the reference output is flattened once per workload (not
once per variant), sparse outputs densify into one reused buffer, and the
per-element error reduction runs in-place on a second reused buffer —
first-touch page faults on the ~quarter-GB SpGEMM comparisons dominated
the audit before, and buffer reuse removes them without changing a single
arithmetic operation (bit-identity is pinned by
``tests/kernels/accuracy_digests.json``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Workload
from ..perf.cache import content_key, default_cache, package_source_token
from ..perf.executor import ParallelExecutor
from ..perf.instrument import stage


__all__ = ["AUDIT_SEED", "ErrorEntry", "error_metrics", "accuracy_table",
           "accuracy_tables"]

#: the fixed dataset seed of the Table 6 audit — shared with the
#: observation graph's dataset-gen nodes so they warm the exact
#: generator cache entries the audit will read
AUDIT_SEED = 1325


@dataclass(frozen=True)
class ErrorEntry:
    """One (workload, variant) cell of Table 6."""

    workload: str
    variant: str
    avg_error: float
    max_error: float
    samples: int


def _flatten(output, dense_out: np.ndarray | None = None) -> np.ndarray:
    """Outputs may be arrays, complex arrays, or CSR matrices.

    ``dense_out`` is an optional preallocated buffer for sparse
    densification (same values, no fresh allocation).
    """
    if hasattr(output, "to_dense"):
        if dense_out is not None and dense_out.shape == output.shape:
            return output.to_dense(out=dense_out).ravel()
        return output.to_dense().ravel()
    arr = np.asarray(output)
    if np.iscomplexobj(arr):
        return np.concatenate([arr.real.ravel(), arr.imag.ravel()])
    return arr.astype(np.float64, copy=False).ravel()


def error_metrics(output, reference) -> tuple[float, float, int]:
    """(average, maximum, sample count) of absolute elementwise error."""
    got = _flatten(output)
    ref = _flatten(reference)
    if got.shape != ref.shape:
        raise ValueError(
            f"output shape {got.shape} != reference shape {ref.shape}")
    err = np.abs(got - ref)
    return float(err.mean()), float(err.max()), int(err.size)


def _accuracy_table_uncached(workload: Workload, device: Device,
                             seed: int = AUDIT_SEED) -> list[ErrorEntry]:
    if not workload.floating_point:
        raise ValueError(
            f"{workload.name} performs no floating-point computation "
            "(the paper excludes it from Table 6)")
    case = workload.exec_case(workload.representative_case())
    with stage("accuracy.prepare"):
        data = workload.prepare(case, seed=seed)
    with stage("accuracy.reference"):
        reference = workload.reference(data)
        ref_flat = _flatten(reference)
    err = np.empty_like(ref_flat)
    dense_buf = None
    entries = []
    for variant in workload.variants():
        with stage(f"accuracy.execute:{variant.value}"):
            result = workload.execute(variant, data, device)
        with stage("accuracy.compare"):
            out = result.output
            if hasattr(out, "to_dense") and \
                    (dense_buf is None or dense_buf.shape != out.shape):
                dense_buf = np.empty(out.shape)
            got = _flatten(out, dense_out=dense_buf)
            if got.shape != ref_flat.shape:
                raise ValueError(
                    f"output shape {got.shape} != reference shape "
                    f"{ref_flat.shape}")
            # same subtract/abs/mean/max value sequence as error_metrics,
            # routed through reused buffers
            np.subtract(got, ref_flat, out=err)
            np.abs(err, out=err)
            entries.append(ErrorEntry(
                workload=workload.name, variant=variant.value,
                avg_error=float(err.mean()), max_error=float(err.max()),
                samples=int(err.size)))
    return entries


def accuracy_table(workload: Workload, device: Device,
                   seed: int = AUDIT_SEED) -> list[ErrorEntry]:
    """Table 6 rows for one workload on one device.

    TC and CC are evaluated separately (and a caller can verify they
    coincide) rather than assumed equal.

    The functional runs behind this table are the single most expensive
    stage of the observation audit, and their inputs are fully determined
    by the fixed-seed generators, so results are content-address cached.
    The key mixes in a hash of the whole package source, invalidating
    every entry whenever any kernel/simulator code changes.
    """
    try:
        key = content_key("accuracy_table", package_source_token(),
                          type(workload).__qualname__, vars(workload),
                          device.spec, seed, np.__version__)
    except TypeError:
        return _accuracy_table_uncached(workload, device, seed)
    with stage("analysis.accuracy_table"):
        return default_cache().get_or_compute(
            "accuracy", key,
            lambda: _accuracy_table_uncached(workload, device, seed))


def _audit_one(workload: Workload, device: Device,
               seed: int) -> list[ErrorEntry]:
    return accuracy_table(workload, device, seed)


def accuracy_tables(workloads, device: Device, seed: int = AUDIT_SEED, *,
                    n_jobs: int | None = None,
                    executor: ParallelExecutor | None = None
                    ) -> dict[str, list[ErrorEntry]]:
    """The whole Table 6 audit, fanned out per floating-point workload.

    Non-floating-point workloads are skipped (the paper excludes them).
    Each workload runs under a ``accuracy.audit:<name>`` stage, so the
    profiler attributes the audit per workload even across a process-pool
    fan-out; results are returned keyed by workload name.
    """
    fp = [w for w in workloads if w.floating_point]
    ex = executor if executor is not None else ParallelExecutor(n_jobs)
    tables = ex.starmap(
        _audit_one, [(w, device, seed) for w in fp], chunk_size=1,
        labels=[f"accuracy {w.name}" for w in fp],
        stage_names=[f"accuracy.audit:{w.name}" for w in fp])
    return {w.name: t for w, t in zip(fp, tables)}
