"""FP64 accuracy study (Section 8, Table 6).

For each floating-point workload, every variant executes functionally at a
feasible scale and its output is compared against the workload's CPU-serial
reference, reporting

    Average_Error = (1/n) sum |result_gpu,i - result_cpu,i|
    Max_Error     = max    |result_gpu,i - result_cpu,i|

exactly as the paper defines them.  BFS is excluded (no floating-point
math).  The structural findings the study must reproduce: TC and CC give
*identical* errors (same data structures, algorithms, and — in this
simulation, by construction — accumulation order), while CC-E and the
baselines round differently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Workload
from ..perf.cache import content_key, default_cache, package_source_token
from ..perf.instrument import stage


__all__ = ["ErrorEntry", "error_metrics", "accuracy_table"]


@dataclass(frozen=True)
class ErrorEntry:
    """One (workload, variant) cell of Table 6."""

    workload: str
    variant: str
    avg_error: float
    max_error: float
    samples: int


def _flatten(output) -> np.ndarray:
    """Outputs may be arrays, complex arrays, or CSR matrices."""
    if hasattr(output, "to_dense"):
        return output.to_dense().ravel()
    arr = np.asarray(output)
    if np.iscomplexobj(arr):
        return np.concatenate([arr.real.ravel(), arr.imag.ravel()])
    return arr.astype(np.float64, copy=False).ravel()


def error_metrics(output, reference) -> tuple[float, float, int]:
    """(average, maximum, sample count) of absolute elementwise error."""
    got = _flatten(output)
    ref = _flatten(reference)
    if got.shape != ref.shape:
        raise ValueError(
            f"output shape {got.shape} != reference shape {ref.shape}")
    err = np.abs(got - ref)
    return float(err.mean()), float(err.max()), int(err.size)


def _accuracy_table_uncached(workload: Workload, device: Device,
                             seed: int = 1325) -> list[ErrorEntry]:
    if not workload.floating_point:
        raise ValueError(
            f"{workload.name} performs no floating-point computation "
            "(the paper excludes it from Table 6)")
    case = workload.exec_case(workload.representative_case())
    data = workload.prepare(case, seed=seed)
    reference = workload.reference(data)
    entries = []
    for variant in workload.variants():
        result = workload.execute(variant, data, device)
        avg, mx, n = error_metrics(result.output, reference)
        entries.append(ErrorEntry(workload=workload.name,
                                  variant=variant.value,
                                  avg_error=avg, max_error=mx, samples=n))
    return entries


def accuracy_table(workload: Workload, device: Device,
                   seed: int = 1325) -> list[ErrorEntry]:
    """Table 6 rows for one workload on one device.

    TC and CC are evaluated separately (and a caller can verify they
    coincide) rather than assumed equal.

    The functional runs behind this table are the single most expensive
    stage of the observation audit, and their inputs are fully determined
    by the fixed-seed generators, so results are content-address cached.
    The key mixes in a hash of the whole package source, invalidating
    every entry whenever any kernel/simulator code changes.
    """
    try:
        key = content_key("accuracy_table", package_source_token(),
                          type(workload).__qualname__, vars(workload),
                          device.spec, seed, np.__version__)
    except TypeError:
        return _accuracy_table_uncached(workload, device, seed)
    with stage("analysis.accuracy_table"):
        return default_cache().get_or_compute(
            "accuracy", key,
            lambda: _accuracy_table_uncached(workload, device, seed))
