"""Algorithm-level MMU-suitability prediction.

Section 4 of the paper closes with its open question: *can MMU
accelerability be inferred from the original algorithm, before the MMU
transformation is written?*  This module is the "first step toward
algorithm-level reasoning" the paper calls for: a kernel is described by a
small :class:`KernelSketch` — quantities readable off the untransformed
algorithm — and the same roofline machinery that times the real workloads
predicts the TC-vs-vector outcome.

A test validates the predictor against all ten Cubie workloads: sketches
derived from each workload's pre-transformation properties predict the
measured TC speedup within a factor of two, and the qualitative verdict
(beneficial / marginal / counterproductive) matches the paper's Figure 4
for every workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..gpu.counters import KernelStats
from ..gpu.specs import GPUSpec
from ..gpu.timing import TimingModel
from ..kernels.base import (
    CC_EFF,
    MLP_IRREGULAR,
    TC_EFF,
    TC_EFF_CONST,
)

__all__ = ["KernelSketch", "Verdict", "Prediction", "predict"]


class Verdict(str, Enum):
    """Qualitative recommendation."""

    STRONG = "strongly beneficial"      # expect > 1.8x
    BENEFICIAL = "beneficial"           # 1.15x - 1.8x
    MARGINAL = "marginal"               # 0.9x - 1.15x
    COUNTERPRODUCTIVE = "counterproductive"  # < 0.9x


@dataclass(frozen=True)
class KernelSketch:
    """Algorithm-level description of a kernel, pre-MMU-transformation.

    All quantities are readable off the original (vector) algorithm:

    * ``essential_flops`` / ``bytes_moved`` — the work and traffic of one
      execution (arithmetic intensity follows);
    * ``mma_redundancy`` — executed/essential flop ratio once the kernel
      is forced into full MMA tiles (e.g. 8 for a dot-product kernel that
      only uses the output diagonal, ~1 for GEMM-like kernels);
    * ``constant_operand`` — whether one MMA operand would be a compile-
      time constant (scan/reduction matrices of ones): such operands are
      never loaded and boost sustained MMA issue;
    * ``layout_traffic_factor`` — bytes the MMU data layout moves relative
      to the vector layout (<1 when blocking regularizes gathers, >1 when
      extra layout passes appear, e.g. FFT's block transposes);
    * ``scattered_byte_fraction`` — share of the vector implementation's
      traffic that is scattered sub-sector gathers (CSR SpMV's x lookups,
      push BFS's status probes); beyond ~20%% it also costs memory-level
      parallelism through load imbalance;
    * ``serial_fraction`` — fraction of the vector algorithm's time spent
      in dependent stages an MMU version would collapse (tree reductions).
    """

    name: str
    essential_flops: float
    bytes_moved: float
    mma_redundancy: float = 1.0
    constant_operand: bool = False
    layout_traffic_factor: float = 1.0
    scattered_byte_fraction: float = 0.0
    serial_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.essential_flops < 0 or self.bytes_moved <= 0:
            raise ValueError("need non-negative flops and positive bytes")
        if self.mma_redundancy < 1.0:
            raise ValueError("mma_redundancy is executed/essential, >= 1")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")
        if not 0.0 <= self.scattered_byte_fraction <= 1.0:
            raise ValueError("scattered_byte_fraction must be in [0, 1]")

    @property
    def baseline_irregular(self) -> bool:
        """Load imbalance sets in once scattered traffic is significant."""
        return self.scattered_byte_fraction > 0.2

    @property
    def arithmetic_intensity(self) -> float:
        return self.essential_flops / self.bytes_moved


@dataclass(frozen=True)
class Prediction:
    """Predicted outcome of an MMU port."""

    sketch: KernelSketch
    gpu: str
    tc_time_s: float
    baseline_time_s: float
    speedup: float
    verdict: Verdict
    #: which resource limits the predicted TC version
    tc_bottleneck: str


def _verdict(speedup: float) -> Verdict:
    if speedup > 1.8:
        return Verdict.STRONG
    if speedup > 1.15:
        return Verdict.BENEFICIAL
    if speedup > 0.9:
        return Verdict.MARGINAL
    return Verdict.COUNTERPRODUCTIVE


def predict(sketch: KernelSketch, spec: GPUSpec) -> Prediction:
    """Predict the TC-vs-vector outcome of MMU-porting a kernel."""
    timing = TimingModel(spec)

    # hypothetical TC version: essential flops x redundancy on the tensor
    # pipe, traffic scaled by the layout factor, full MLP (regular tiles)
    tc = KernelStats()
    tc.add_mma_fp64(sketch.essential_flops * sketch.mma_redundancy / 512.0)
    tc.tc_efficiency = TC_EFF_CONST if sketch.constant_operand else TC_EFF
    tc_bytes = sketch.bytes_moved * sketch.layout_traffic_factor
    tc.read_dram(tc_bytes, segment_bytes=1 << 12)
    tc_time = timing.time(tc)
    tc_bottleneck = timing.breakdown(tc).bottleneck

    # the existing vector version: essential flops on the FMA pipe;
    # irregularity costs MLP, dependent stages inflate the critical path
    base = KernelStats()
    base.add_fma(sketch.essential_flops)
    base.cc_efficiency = CC_EFF
    if sketch.baseline_irregular:
        base.mlp = MLP_IRREGULAR
    scattered = sketch.bytes_moved * sketch.scattered_byte_fraction
    if scattered:
        base.read_dram(scattered, segment_bytes=8)
    base.read_dram(sketch.bytes_moved - scattered, segment_bytes=1 << 12)
    base_time = timing.time(base) / max(1.0 - sketch.serial_fraction, 1e-3)

    speedup = base_time / tc_time
    return Prediction(sketch=sketch, gpu=spec.name, tc_time_s=tc_time,
                      baseline_time_s=base_time, speedup=speedup,
                      verdict=_verdict(speedup),
                      tc_bottleneck=tc_bottleneck)
