"""Mixed-precision Cholesky with iterative refinement.

The paper's conclusion worries that Blackwell's FP64 tensor-core
regression "directly undermines FP64 MMU adoption".  The counter-argument
vendors make is that low-precision MMAs plus iterative refinement recover
FP64 accuracy (the paper cites tensor-core factorizations [39, 101]).
This module implements that pipeline so the trade-off can be measured:

* a right-looking *blocked Cholesky* whose trailing-matrix updates run
  through the MMA emulation at a chosen operand precision (FP64 chains or
  quantized FP16/BF16/TF32 with FP32 accumulate);
* triangular solves in FP64;
* classical iterative refinement: factor once in low precision, iterate
  ``x += L^-T L^-1 (b - A x)`` with FP64 residuals.

The companion benchmark regenerates the time-to-solution comparison: on a
simulated B200, FP16-factorization + refinement beats the FP64 tensor-core
factorization for well-conditioned systems — exactly the roadmap argument
the paper contests for *general* scientific workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.counters import KernelStats
from ..gpu.device import Device
from ..gpu.isa import Precision
from ..gpu.launch import LaunchPlan, execute_plan

from ..kernels.base import TC_EFF
from ..perf.instrument import stage

__all__ = ["blocked_cholesky", "solve_cholesky", "RefinementResult",
           "iterative_refinement", "modeled_factorization_time"]


def _mma_gemm(a: np.ndarray, b: np.ndarray,
              precision: Precision) -> np.ndarray:
    """C = A @ B through the launch plan at the given precision."""
    plan = LaunchPlan()
    if precision is Precision.FP64:
        h = plan.product(a[np.newaxis], b[np.newaxis])
    else:
        h = plan.mixed(a[np.newaxis], b[np.newaxis], precision=precision)
    return execute_plan(plan, label="refine")[h][0]


def blocked_cholesky(a: np.ndarray, block: int = 32,
                     precision: Precision = Precision.FP64) -> np.ndarray:
    """Right-looking blocked Cholesky, L L^T = A.

    Panel factorizations and triangular solves stay in FP64 (they are
    O(n b^2)); the O(n^3) trailing update ``A22 -= L21 L21^T`` runs
    through the MMA path at ``precision`` — the tensor-core Cholesky
    structure of the cited factorization papers.
    """
    a = np.asarray(a, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    work = a.copy()
    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # diagonal block: unblocked FP64 Cholesky
        work[k0:k1, k0:k1] = np.linalg.cholesky(work[k0:k1, k0:k1])
        if k1 < n:
            # panel: solve L21 L11^T = A21 (FP64 substitution)
            l11 = work[k0:k1, k0:k1]
            work[k1:, k0:k1] = _tri_solve_right(work[k1:, k0:k1], l11)
            # trailing update through the MMA path
            l21 = work[k1:, k0:k1]
            update = _mma_gemm(l21, l21.T.copy(), precision)
            work[k1:, k1:] -= update
    return np.tril(work)


def _tri_solve_right(b: np.ndarray, l11: np.ndarray) -> np.ndarray:
    """Solve X L11^T = B for X (forward substitution over columns)."""
    x = np.zeros_like(b)
    nb = l11.shape[0]
    for j in range(nb):
        x[:, j] = (b[:, j] - x[:, :j] @ l11[j, :j]) / l11[j, j]
    return x


def solve_cholesky(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve L L^T x = b by forward/back substitution (FP64)."""
    n = l.shape[0]
    y = np.zeros(n)
    for i in range(n):
        y[i] = (b[i] - l[i, :i] @ y[:i]) / l[i, i]
    x = np.zeros(n)
    for i in range(n - 1, -1, -1):
        x[i] = (y[i] - l[i + 1:, i] @ x[i + 1:]) / l[i, i]
    return x


@dataclass
class RefinementResult:
    x: np.ndarray
    residuals: list[float]
    iterations: int
    converged: bool
    precision: Precision


def iterative_refinement(a: np.ndarray, b: np.ndarray, *,
                         precision: Precision = Precision.FP16,
                         tol: float = 1e-12, max_iter: int = 30,
                         block: int = 32) -> RefinementResult:
    """Factor once at ``precision``, refine to FP64 accuracy."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with stage("refine.factor"):
        l = blocked_cholesky(a, block=block, precision=precision)
    # NOTE: the substitution loops in solve_cholesky stay row-wise on
    # purpose — BLAS dot-product partial-sum grouping changes with vector
    # length, so any "vectorized" restructuring would break the
    # bit-identity the recorded digests pin.
    with stage("refine.iterate"):
        x = solve_cholesky(l, b)
        b_norm = float(np.linalg.norm(b)) or 1.0
        residuals = [float(np.linalg.norm(b - a @ x)) / b_norm]
        for it in range(1, max_iter + 1):
            if residuals[-1] < tol:
                return RefinementResult(x, residuals, it - 1, True,
                                        precision)
            r = b - a @ x                  # FP64 residual
            x = x + solve_cholesky(l, r)   # low-precision-factor solve
            residuals.append(float(np.linalg.norm(b - a @ x)) / b_norm)
    return RefinementResult(x, residuals, max_iter,
                            residuals[-1] < tol, precision)


def modeled_factorization_time(n: int, device: Device,
                               precision: Precision,
                               refinement_iters: int = 0) -> float:
    """Modeled time of an n x n tensor-core Cholesky plus refinement.

    The n^3/3 trailing-update flops run at the device's tensor peak for
    the chosen precision; each refinement iteration adds an O(n^2)
    triangular-solve pass at the FP64 vector rate.
    """
    spec = device.spec
    peak = {Precision.FP64: spec.tc_fp64,
            Precision.FP16: spec.tc_fp16,
            Precision.BF16: spec.tc_fp16,
            Precision.FP32: spec.tc_fp16 / 2.0}[precision]
    st = KernelStats()
    factor_flops = n ** 3 / 3.0
    t_factor = factor_flops / (peak * TC_EFF)
    st.read_dram(8.0 * n * n, segment_bytes=1 << 16)
    t_mem = device.memory.dram_time(st, spec.dram_bw)
    solve_flops = 2.0 * n * n
    t_refine = refinement_iters * (
        solve_flops / (spec.cc_fp64 * 0.5) + 16.0 * n * n / spec.dram_bw)
    return max(t_factor, t_mem) + t_refine + spec.launch_overhead_s
