"""Quadrant categorization of MMU utilization patterns (Section 4, Fig. 2).

The paper classifies workloads along two axes — input-matrix utilization
and output-matrix utilization, each *full* or *partial* — yielding four
quadrants.  Here the classification is **measured**, not asserted: each
workload's TC variant is evaluated and the fragment-utilization counters
decide the quadrant.  A test then confirms the measured quadrants equal the
paper's Figure 2 assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..kernels.base import Quadrant, Variant, Workload

__all__ = ["UtilizationProfile", "classify", "classify_suite",
           "FULL_THRESHOLD"]

#: utilization at or above this fraction counts as "full"
FULL_THRESHOLD = 0.95


@dataclass(frozen=True)
class UtilizationProfile:
    """Measured MMA input/output utilization for one workload."""

    workload: str
    input_utilization: float
    output_utilization: float
    quadrant: Quadrant

    @property
    def input_full(self) -> bool:
        return self.input_utilization >= FULL_THRESHOLD

    @property
    def output_full(self) -> bool:
        return self.output_utilization >= FULL_THRESHOLD


def _quadrant_of(input_full: bool, output_full: bool) -> Quadrant:
    if input_full and output_full:
        return Quadrant.I
    if not input_full and output_full:
        return Quadrant.II
    if not input_full and not output_full:
        return Quadrant.III
    return Quadrant.IV


def classify(workload: Workload) -> UtilizationProfile:
    """Measure a workload's MMA utilization and place it in a quadrant."""
    case = workload.representative_case()
    stats = workload.analytic_stats(Variant.TC, case)
    if stats.mma_input_total == 0:
        raise ValueError(
            f"workload {workload.name!r} issued no MMA instructions")
    iu = stats.input_utilization
    ou = stats.output_utilization
    return UtilizationProfile(
        workload=workload.name,
        input_utilization=iu,
        output_utilization=ou,
        quadrant=_quadrant_of(iu >= FULL_THRESHOLD, ou >= FULL_THRESHOLD),
    )


def classify_suite(workloads: list[Workload]) -> dict[Quadrant, list[str]]:
    """Group a suite into the four quadrants (the Figure 2 layout)."""
    groups: dict[Quadrant, list[str]] = {q: [] for q in Quadrant}
    for w in workloads:
        groups[classify(w).quadrant].append(w.name)
    return groups
