"""Layer 1, part two: Workload contract and MMA call-graph verification.

* ``R004`` workload-contract — every :class:`Workload` subclass implements
  the full contract (``cases``/``prepare``/``reference``/``execute``/
  ``analytic_stats``) and declares its identity class attributes.
* ``R005`` mma-callgraph — the TC *and* CC execute paths of every workload
  must reach one of the shared MMA primitives in ``gpu/mma.py`` or the
  launch-plan entry points in ``gpu/launch.py`` (which fuse chains into the
  same primitives), and must share at least one such callee.  This is the
  structural backing of the Table 6 TC≡CC bit-identity claim (DESIGN.md
  §6.1): identical outputs hold *by construction* only if both variants
  route through the same k-sequential accumulation code.
* ``R006`` resolve-variant — Quadrant I workloads (``has_cce = False``)
  must call ``self.resolve_variant`` in ``execute`` and ``analytic_stats``;
  otherwise a CC-E request silently falls through the variant dispatch into
  whatever ``else`` branch exists (usually the baseline), bypassing the
  CC-E≡CC contract instead of enforcing it.

The call-graph analysis is branch-sensitive over the ``variant`` parameter:
``if variant is Variant.TC`` / ``elif variant in (Variant.TC, Variant.CC)``
chains narrow the variant domain per branch, helpers taking a ``variant``
parameter are analyzed under the caller's domain, and every other condition
is treated as potentially true (a sound over-approximation of reachability,
paired with an emptiness check per variant that keeps it useful).
"""

from __future__ import annotations

import ast
from pathlib import Path

from .findings import Finding
from .dataflow import ImportResolver as _ImportResolver
from .dataflow import resolve_dotted as _resolve_dotted

__all__ = ["contract_findings", "contracts_tree", "MMA_PRIMITIVES",
           "LAUNCH_PRIMITIVES"]

#: the shared functional primitives of gpu/mma.py
MMA_PRIMITIVES = frozenset({
    "mma_m8n8k4", "mma_m8n8k4_batched", "mma_fp64_batched",
    "warp_gemm_m8n8k4", "mma_m8n8k128_b1", "mma_b1_batched",
})

#: launch-plan entry points of gpu/launch.py — every executed op funnels
#: into the MMA_PRIMITIVES above, so reaching the engine preserves the
#: shared-accumulation-order property R005 certifies
LAUNCH_PRIMITIVES = frozenset({
    "execute_plan", "run_chain", "run_ragged",
})

REQUIRED_METHODS = ("cases", "prepare", "reference", "execute",
                    "analytic_stats")
REQUIRED_CLASS_ATTRS = ("name", "quadrant", "dwarf", "baseline_name")

_ALL_VARIANTS = frozenset({"baseline", "tc", "cc", "cce"})


def _variant_literal(node: ast.expr) -> frozenset[str] | None:
    """``Variant.TC`` → {"tc"}; None if not a Variant member access."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "Variant":
        member = node.attr.lower()
        return frozenset({member}) if member in _ALL_VARIANTS else None
    return None


def _eval_variant_test(test: ast.expr, var_name: str | None
                       ) -> tuple[frozenset[str], frozenset[str]] | None:
    """(variants where test holds, where it fails), or None if the test
    does not constrain the variant parameter."""
    if var_name is None or not isinstance(test, ast.Compare) \
            or len(test.ops) != 1:
        return None
    if not (isinstance(test.left, ast.Name) and test.left.id == var_name):
        return None
    op, rhs = test.ops[0], test.comparators[0]
    if isinstance(op, (ast.Is, ast.Eq, ast.IsNot, ast.NotEq)):
        s = _variant_literal(rhs)
        if s is None:
            return None
        return (s, _ALL_VARIANTS - s) if isinstance(op, (ast.Is, ast.Eq)) \
            else (_ALL_VARIANTS - s, s)
    if isinstance(op, (ast.In, ast.NotIn)) \
            and isinstance(rhs, (ast.Tuple, ast.List, ast.Set)):
        members = [_variant_literal(e) for e in rhs.elts]
        if any(m is None for m in members):
            return None
        s = frozenset().union(*members)
        return (s, _ALL_VARIANTS - s) if isinstance(op, ast.In) \
            else (_ALL_VARIANTS - s, s)
    return None


class _ModuleIndex:
    """Functions and methods of one module, plus resolved import names."""

    def __init__(self, tree: ast.Module) -> None:
        resolver = _ImportResolver()
        resolver.visit(tree)
        self.names = resolver.names
        self.functions: dict[str, ast.FunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node

    def methods_of(self, cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
        return {n.name: n for n in cls.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}

    def is_primitive(self, call: ast.Call) -> str | None:
        """Name of the gpu.mma primitive or gpu.launch entry point a call
        resolves to, if any."""
        full = _resolve_dotted(call.func, self.names)
        if full is None:
            return None
        leaf = full.rsplit(".", 1)[-1]
        if leaf in MMA_PRIMITIVES and "gpu.mma" in full:
            return leaf
        if leaf in LAUNCH_PRIMITIVES and "gpu.launch" in full:
            return leaf
        return None


def _live_calls(func: ast.FunctionDef, variant: str
                ) -> list[ast.Call]:
    """All Call nodes reachable when the ``variant`` parameter equals
    ``variant``, honouring variant-dispatch branches."""
    params = {a.arg for a in func.args.args + func.args.kwonlyargs}
    var_name = "variant" if "variant" in params else None
    out: list[ast.Call] = []

    def calls_in(node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                out.append(sub)

    def visit_block(stmts: list[ast.stmt], live: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                calls_in(stmt.test)
                gate = _eval_variant_test(stmt.test, var_name)
                if gate is None:
                    visit_block(stmt.body, live)
                    visit_block(stmt.orelse, live)
                else:
                    true_set, false_set = gate
                    visit_block(stmt.body, live and variant in true_set)
                    visit_block(stmt.orelse, live and variant in false_set)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                if live:
                    calls_in(stmt.iter)
                visit_block(stmt.body, live)
                visit_block(stmt.orelse, live)
            elif isinstance(stmt, ast.While):
                if live:
                    calls_in(stmt.test)
                visit_block(stmt.body, live)
                visit_block(stmt.orelse, live)
            elif isinstance(stmt, ast.Try):
                visit_block(stmt.body, live)
                for h in stmt.handlers:
                    visit_block(h.body, live)
                visit_block(stmt.orelse, live)
                visit_block(stmt.finalbody, live)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                if live:
                    for item in stmt.items:
                        calls_in(item.context_expr)
                visit_block(stmt.body, live)
            elif live:
                calls_in(stmt)

    visit_block(func.body, True)
    return out


def _reachable_primitives(index: _ModuleIndex,
                          methods: dict[str, ast.FunctionDef],
                          func: ast.FunctionDef, variant: str,
                          seen: set[str]) -> set[str]:
    """Primitive names reachable from ``func`` under ``variant``."""
    if func.name in seen:
        return set()
    seen.add(func.name)
    prims: set[str] = set()
    for call in _live_calls(func, variant):
        leaf = index.is_primitive(call)
        if leaf is not None:
            prims.add(leaf)
            continue
        callee: ast.FunctionDef | None = None
        f = call.func
        if isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name) \
                and f.value.id in ("self", "cls"):
            callee = methods.get(f.attr)
        elif isinstance(f, ast.Name):
            callee = index.functions.get(f.id)
            if callee is None and f.id in index.classes:
                callee = None  # constructor: not followed
        if callee is not None:
            prims |= _reachable_primitives(index, methods, callee,
                                           variant, seen)
    return prims


def _is_workload_class(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = base.attr if isinstance(base, ast.Attribute) else \
            base.id if isinstance(base, ast.Name) else None
        if name == "Workload":
            return True
    return False


def _class_attr_names(cls: ast.ClassDef) -> set[str]:
    out: set[str] = set()
    for node in cls.body:
        if isinstance(node, ast.Assign):
            out |= {t.id for t in node.targets if isinstance(t, ast.Name)}
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.value is not None:
            out.add(node.target.id)
    return out


def _has_cce_false(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Name) and t.id == "has_cce":
                    return isinstance(node.value, ast.Constant) \
                        and node.value.value is False
    return False


def _calls_resolve_variant(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "resolve_variant":
            return True
    return False


def contract_findings(tree: ast.Module, relpath: str) -> list[Finding]:
    """R004/R005/R006 over one kernels module."""
    index = _ModuleIndex(tree)
    findings: list[Finding] = []
    for cls in index.classes.values():
        if not _is_workload_class(cls):
            continue
        methods = index.methods_of(cls)

        # R004: full contract
        missing = [m for m in REQUIRED_METHODS if m not in methods]
        attrs = _class_attr_names(cls)
        missing_attrs = [a for a in REQUIRED_CLASS_ATTRS if a not in attrs]
        if missing or missing_attrs:
            parts = []
            if missing:
                parts.append(f"methods {', '.join(missing)}")
            if missing_attrs:
                parts.append(f"class attrs {', '.join(missing_attrs)}")
            findings.append(Finding(
                rule="R004", severity="error", path=relpath,
                symbol=cls.name, line=cls.lineno,
                message=f"Workload contract incomplete: missing "
                        f"{'; '.join(parts)}"))

        # R005: TC/CC must share an MMA primitive
        execute = methods.get("execute")
        if execute is not None:
            reach = {v: _reachable_primitives(index, methods, execute,
                                              v, set())
                     for v in ("tc", "cc")}
            for v in ("tc", "cc"):
                if not reach[v]:
                    findings.append(Finding(
                        rule="R005", severity="error", path=relpath,
                        symbol=cls.name, line=execute.lineno,
                        message=f"{v.upper()} execute path never reaches a "
                                "shared gpu.mma/gpu.launch primitive; the "
                                "Table 6 "
                                "TC≡CC bit-identity cannot hold by "
                                "construction (DESIGN.md §6.1)"))
            if reach["tc"] and reach["cc"] \
                    and not (reach["tc"] & reach["cc"]):
                findings.append(Finding(
                    rule="R005", severity="error", path=relpath,
                    symbol=cls.name, line=execute.lineno,
                    message="TC and CC reach disjoint MMA primitives "
                            f"({sorted(reach['tc'])} vs "
                            f"{sorted(reach['cc'])}); they must share the "
                            "accumulation-order primitive"))

        # R006: Quadrant I CC-E fallback must be explicit
        if _has_cce_false(cls):
            for mname in ("execute", "analytic_stats"):
                m = methods.get(mname)
                if m is not None and not _calls_resolve_variant(m):
                    findings.append(Finding(
                        rule="R006", severity="error", path=relpath,
                        symbol=f"{cls.name}.{mname}", line=m.lineno,
                        message="has_cce=False workload must call "
                                "self.resolve_variant here; otherwise a "
                                "CC-E request silently falls through the "
                                "variant dispatch (CC-E≡CC, Section 5.2)"))
    return findings


def contracts_tree(root: str | Path) -> list[Finding]:
    """Run the contract rules over ``kernels/`` beneath the package root."""
    root = Path(root)
    findings: list[Finding] = []
    kernels = root / "kernels"
    if not kernels.is_dir():
        return findings
    for path in sorted(kernels.glob("*.py")):
        relpath = path.relative_to(root).as_posix()
        if relpath == "kernels/base.py":
            continue
        tree = ast.parse(path.read_text(), filename=relpath)
        findings.extend(contract_findings(tree, relpath))
    findings.sort(key=lambda f: (f.path, f.line or 0, f.rule))
    return findings
