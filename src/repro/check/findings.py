"""Structured findings and the suppression baseline.

Every rule in both analysis layers reports :class:`Finding` records with a
stable fingerprint (rule id, path, symbol).  Fingerprints deliberately
exclude line numbers and message text, so a checked-in suppression baseline
survives unrelated edits to the suppressed file.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = [
    "SEVERITIES",
    "Finding",
    "Suppression",
    "Baseline",
    "apply_baseline",
    "dedupe_findings",
]

#: ordered from most to least severe
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``path`` is package-relative for lint findings (``kernels/gemv.py``)
    and a ``warp://scope/array`` site for sanitizer findings.  ``symbol``
    names the class/function (lint) or the accessed array (sanitizer).
    """

    rule: str
    severity: str
    path: str
    symbol: str
    message: str
    line: int | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict:
        return asdict(self)

    def format(self, prefix: str = "") -> str:
        loc = f"{prefix}{self.path}"
        if self.line is not None:
            loc += f":{self.line}"
        return f"{loc}: {self.rule} [{self.severity}] {self.symbol}: " \
               f"{self.message}"


@dataclass(frozen=True)
class Suppression:
    """One baseline entry.  ``justification`` is mandatory: the baseline is
    a record of *accepted* deviations, not a mute button."""

    rule: str
    path: str
    symbol: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        return (self.rule == finding.rule and self.path == finding.path
                and self.symbol == finding.symbol)


@dataclass
class Baseline:
    """The checked-in suppression set (``check_baseline.json``)."""

    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        raw = json.loads(path.read_text())
        entries = raw.get("suppressions", []) if isinstance(raw, dict) else raw
        sups = []
        for e in entries:
            if not e.get("justification"):
                raise ValueError(
                    f"baseline entry {e.get('rule')}:{e.get('path')} has no "
                    "justification; every suppression must explain itself")
            sups.append(Suppression(rule=e["rule"], path=e["path"],
                                    symbol=e.get("symbol", ""),
                                    justification=e["justification"]))
        return cls(sups)

    def save(self, path: str | Path) -> None:
        payload = {"version": 1,
                   "suppressions": [asdict(s) for s in self.suppressions]}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def match(self, finding: Finding) -> Suppression | None:
        for s in self.suppressions:
            if s.matches(finding):
                return s
        return None

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      justification: str = "TODO: justify") -> "Baseline":
        seen: dict[tuple, Suppression] = {}
        for f in findings:
            seen.setdefault(f.fingerprint, Suppression(
                rule=f.rule, path=f.path, symbol=f.symbol,
                justification=justification))
        return cls(list(seen.values()))


def dedupe_findings(findings: list[Finding]) -> list[Finding]:
    """Drop findings identical on (rule, path, line, symbol), keeping the
    first.  Interprocedural rules can reach one defect along several
    call-graph paths; the defect is one finding, not one per path."""
    seen: set[tuple] = set()
    out: list[Finding] = []
    for f in findings:
        key = (f.rule, f.path, f.line, f.symbol)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out


def apply_baseline(findings: list[Finding], baseline: Baseline
                   ) -> tuple[list[Finding], list[Finding], list[Suppression]]:
    """Split findings into (active, suppressed); also return baseline
    entries that matched nothing (stale suppressions worth pruning)."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[Suppression] = set()
    for f in findings:
        s = baseline.match(f)
        if s is None:
            active.append(f)
        else:
            suppressed.append(f)
            used.add(s)
    unused = [s for s in baseline.suppressions if s not in used]
    return active, suppressed, unused
