"""Orchestrates all three analysis layers and applies the baseline.

:func:`run_check` is the engine behind ``repro check`` and the CI ``check``
job: it lints the ``repro`` package (R00x rules), verifies the Workload
contracts and the TC/CC MMA call graph (R004-R006), optionally runs the
interprocedural determinism proof engine (D001-D006 plus the
``determinism_facts.json`` artifact), runs the dynamic warp-hazard battery
(H00x rules), folds the checked-in baseline in, and returns a
:class:`CheckReport` that renders to text or JSON.

Per-file lint parses independently, so it fans out through
:class:`~repro.perf.executor.ParallelExecutor` (``repro check --jobs N``);
results merge in (path, line, rule, symbol) order and dedupe on
(rule, path, line, symbol), so check output is bit-stable regardless of
job count — the same serial==parallel contract the executor gives every
other subsystem.

Exit-code contract: the check *fails* (``report.ok is False``) iff any
error-severity finding is not covered by the baseline.  Warnings are
reported but do not gate.  Stale baseline entries do not flip ``ok`` (the
report stays a faithful description of findings) but the CLI exits
nonzero on them unless ``--prune-baseline`` rewrites the baseline —
see :func:`repro.cli.cmd_check`.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..perf.executor import ParallelExecutor
from .contracts import contract_findings
from .determinism import analyze_package
from .dynamic import run_dynamic
from .findings import (
    Baseline,
    Finding,
    Suppression,
    apply_baseline,
    dedupe_findings,
)
from .lint import lint_source

__all__ = ["CheckReport", "run_check", "default_baseline_path",
           "package_root"]


def package_root() -> Path:
    """The installed ``repro`` package directory (lint root)."""
    import repro
    return Path(repro.__file__).resolve().parent


def default_baseline_path() -> Path:
    """``check_baseline.json`` at the repository root (``src/../..``)."""
    return package_root().parents[1] / "check_baseline.json"


def _check_file(task: tuple[str, str]) -> list[Finding]:
    """Static findings of one module: lint rules plus (for kernels/)
    the contract rules.  Module-level and picklable — this is the
    function ``--jobs`` dispatches through the process pool."""
    root_str, relpath = task
    source = (Path(root_str) / relpath).read_text()
    findings = lint_source(source, relpath)
    if relpath.startswith("kernels/") and relpath != "kernels/base.py" \
            and "/" not in relpath[len("kernels/"):]:
        try:
            tree = ast.parse(source, filename=relpath)
        except SyntaxError:
            pass  # lint_source already reported R000
        else:
            findings.extend(contract_findings(tree, relpath))
    return findings


def _static_findings(root: Path, n_jobs: int | None) -> list[Finding]:
    """Lint + contracts over every module, optionally through the pool.

    Findings merge in deterministic (path, line, rule, symbol) order and
    are deduped, so output is identical for any job count.
    """
    tasks = [(str(root), p.relative_to(root).as_posix())
             for p in sorted(root.rglob("*.py"))]
    if n_jobs is None or n_jobs == 1:
        per_file = [_check_file(t) for t in tasks]
    else:
        ex = ParallelExecutor(n_jobs)
        per_file = ex.map(_check_file, tasks,
                          labels=[t[1] for t in tasks],
                          stage_names=[f"check/{t[1]}" for t in tasks])
    findings = [f for fs in per_file for f in fs]
    findings.sort(key=lambda f: (f.path, f.line or 0, f.rule, f.symbol))
    return dedupe_findings(findings)


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[Suppression] = field(default_factory=list)
    #: dynamic-battery coverage counters (0 when the battery was skipped)
    sanitized_accesses: int = 0
    sanitized_syncs: int = 0
    #: ``determinism_facts.json`` payload (None when the layer was skipped)
    facts: dict | None = None
    determinism_functions: int = 0
    determinism_modules: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.active)

    @property
    def all_findings(self) -> list[Finding]:
        return self.active + self.suppressed

    def to_dict(self) -> dict:
        out = {
            "ok": self.ok,
            "active": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "unused_suppressions": [
                {"rule": s.rule, "path": s.path, "symbol": s.symbol,
                 "justification": s.justification}
                for s in self.unused_suppressions],
            "sanitized_accesses": self.sanitized_accesses,
            "sanitized_syncs": self.sanitized_syncs,
        }
        if self.facts is not None:
            out["determinism"] = {
                "modules_analyzed": self.determinism_modules,
                "functions_analyzed": self.determinism_functions,
                "impure_functions": sorted(
                    fid for fid, e in self.facts["purity"].items()
                    if not e["pure"]),
            }
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def to_text(self) -> str:
        lines: list[str] = []
        for f in self.active:
            lines.append(f.format())
        for f in self.suppressed:
            lines.append(f.format(prefix="[baselined] "))
        for s in self.unused_suppressions:
            lines.append(f"{s.path}: {s.rule} [info] {s.symbol}: stale "
                         "baseline entry matched no finding; prune it")
        n_err = sum(f.severity == "error" for f in self.active)
        n_warn = sum(f.severity == "warning" for f in self.active)
        lines.append(
            f"{'OK' if self.ok else 'FAIL'}: {n_err} error(s), "
            f"{n_warn} warning(s), {len(self.suppressed)} baselined, "
            f"{len(self.unused_suppressions)} stale suppression(s); "
            f"sanitized {self.sanitized_accesses} warp accesses across "
            f"{self.sanitized_syncs} sync epochs")
        if self.facts is not None:
            impure = sum(1 for e in self.facts["purity"].values()
                         if not e["pure"])
            lines.append(
                f"determinism: {self.determinism_functions} functions "
                f"across {self.determinism_modules} modules analyzed, "
                f"{impure} impure (facts exportable via --facts)")
        return "\n".join(lines)


def run_check(root: str | Path | None = None,
              baseline: Baseline | str | Path | None = None,
              lint: bool = True,
              dynamic: bool = True,
              workloads: list[str] | None = None,
              determinism: bool = False,
              n_jobs: int | None = None) -> CheckReport:
    """Run the full analysis.

    ``root`` is the ``repro`` package directory (defaults to the installed
    one); ``baseline`` is a :class:`Baseline`, a path, or None for the
    checked-in default.  ``workloads`` restricts the dynamic battery.
    ``determinism`` adds the interprocedural D-rule layer and populates
    ``report.facts``.  ``n_jobs`` fans per-file static analysis out
    through :class:`~repro.perf.executor.ParallelExecutor` (None/1 =
    serial in-process).
    """
    root = package_root() if root is None else Path(root)
    if baseline is None:
        baseline = Baseline.load(default_baseline_path())
    elif not isinstance(baseline, Baseline):
        baseline = Baseline.load(baseline)

    findings: list[Finding] = []
    report = CheckReport()
    if lint:
        findings.extend(_static_findings(root, n_jobs))
    if determinism:
        det = analyze_package(root)
        findings.extend(det.findings)
        report.facts = det.facts
        report.determinism_functions = det.functions_analyzed
        report.determinism_modules = det.modules_analyzed
    if dynamic:
        sanitizer = run_dynamic(workloads)
        findings.extend(sanitizer.findings())
        report.sanitized_accesses = sanitizer.accesses
        report.sanitized_syncs = sanitizer.syncs

    findings = dedupe_findings(findings)
    active, suppressed, unused = apply_baseline(findings, baseline)
    report.active = active
    report.suppressed = suppressed
    report.unused_suppressions = unused
    return report
