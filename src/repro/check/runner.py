"""Orchestrates both analysis layers and applies the suppression baseline.

:func:`run_check` is the engine behind ``repro check`` and the CI ``check``
job: it lints the ``repro`` package (R00x rules), verifies the Workload
contracts and the TC/CC MMA call graph (R004-R006), runs the dynamic
warp-hazard battery (H00x rules), folds the checked-in baseline in, and
returns a :class:`CheckReport` that renders to text or JSON.

Exit-code contract: the check *fails* (``report.ok is False``) iff any
error-severity finding is not covered by the baseline.  Warnings and stale
baseline entries are reported but do not gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .contracts import contracts_tree
from .dynamic import run_dynamic
from .findings import Baseline, Finding, Suppression, apply_baseline
from .lint import lint_tree

__all__ = ["CheckReport", "run_check", "default_baseline_path",
           "package_root"]


def package_root() -> Path:
    """The installed ``repro`` package directory (lint root)."""
    import repro
    return Path(repro.__file__).resolve().parent


def default_baseline_path() -> Path:
    """``check_baseline.json`` at the repository root (``src/../..``)."""
    return package_root().parents[1] / "check_baseline.json"


@dataclass
class CheckReport:
    """Everything one ``repro check`` run produced."""

    active: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[Suppression] = field(default_factory=list)
    #: dynamic-battery coverage counters (0 when the battery was skipped)
    sanitized_accesses: int = 0
    sanitized_syncs: int = 0

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.active)

    @property
    def all_findings(self) -> list[Finding]:
        return self.active + self.suppressed

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "active": [f.to_dict() for f in self.active],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "unused_suppressions": [
                {"rule": s.rule, "path": s.path, "symbol": s.symbol,
                 "justification": s.justification}
                for s in self.unused_suppressions],
            "sanitized_accesses": self.sanitized_accesses,
            "sanitized_syncs": self.sanitized_syncs,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def to_text(self) -> str:
        lines: list[str] = []
        for f in self.active:
            lines.append(f.format())
        for f in self.suppressed:
            lines.append(f.format(prefix="[baselined] "))
        for s in self.unused_suppressions:
            lines.append(f"{s.path}: {s.rule} [info] {s.symbol}: stale "
                         "baseline entry matched no finding; prune it")
        n_err = sum(f.severity == "error" for f in self.active)
        n_warn = sum(f.severity == "warning" for f in self.active)
        lines.append(
            f"{'OK' if self.ok else 'FAIL'}: {n_err} error(s), "
            f"{n_warn} warning(s), {len(self.suppressed)} baselined, "
            f"{len(self.unused_suppressions)} stale suppression(s); "
            f"sanitized {self.sanitized_accesses} warp accesses across "
            f"{self.sanitized_syncs} sync epochs")
        return "\n".join(lines)


def run_check(root: str | Path | None = None,
              baseline: Baseline | str | Path | None = None,
              lint: bool = True,
              dynamic: bool = True,
              workloads: list[str] | None = None) -> CheckReport:
    """Run the full analysis.

    ``root`` is the ``repro`` package directory (defaults to the installed
    one); ``baseline`` is a :class:`Baseline`, a path, or None for the
    checked-in default.  ``workloads`` restricts the dynamic battery.
    """
    root = package_root() if root is None else Path(root)
    if baseline is None:
        baseline = Baseline.load(default_baseline_path())
    elif not isinstance(baseline, Baseline):
        baseline = Baseline.load(baseline)

    findings: list[Finding] = []
    report = CheckReport()
    if lint:
        findings.extend(lint_tree(root))
        findings.extend(contracts_tree(root))
    if dynamic:
        sanitizer = run_dynamic(workloads)
        findings.extend(sanitizer.findings())
        report.sanitized_accesses = sanitizer.accesses
        report.sanitized_syncs = sanitizer.syncs

    active, suppressed, unused = apply_baseline(findings, baseline)
    report.active = active
    report.suppressed = suppressed
    report.unused_suppressions = unused
    return report
