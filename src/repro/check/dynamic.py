"""The dynamic sanitizer battery behind ``repro check``.

Runs the instrumented warp-level paths under a :class:`WarpSanitizer`:

1. Algorithm 1 literally — ``warp_gemm_m8n8k4`` on LCG data;
2. fragment distribute/collect round trips for all three fragment kinds;
3. every execute path (all variants) of each selected workload at its
   smallest (down-scaled) case.  Batched ``m8n8k4``-shaped MMA calls replay one
   representative warp's fragment traffic per call (sampled sanitization),
   and the launch-plan engine (``gpu/launch.py``) replays the same sampled
   warp once per fused fp64 sweep — so kernels that record their chains
   into plans (GEMV, SpMV, Reduction, SpGEMM, ...) are audited at the same
   sampling rate as the per-tile code they replaced, and battery 1 still
   exercises the exact unsampled path.

Everything is deterministic: data comes from the LCG, and the battery runs
on the simulated H200 (any device would do — hazards are device-blind).
"""

from __future__ import annotations

from ..datasets.synthetic import Lcg
from ..gpu.device import Device
from ..gpu.fragments import (
    collect_c,
    distribute_a,
    distribute_b,
    distribute_c,
)
from ..gpu.mma import warp_gemm_m8n8k4
from ..kernels import all_workloads, get_workload
from .hazards import WarpSanitizer

__all__ = ["run_dynamic"]


def _battery_warp_gemm(rng: Lcg) -> None:
    a = rng.uniform(32, shape=(8, 4))
    b = rng.uniform(32, shape=(4, 8))
    warp_gemm_m8n8k4(a, b)


def _battery_roundtrips(rng: Lcg) -> None:
    distribute_a(rng.uniform(32, shape=(8, 4)))
    distribute_b(rng.uniform(32, shape=(4, 8)))
    collect_c(distribute_c(rng.uniform(64, shape=(8, 8))))


def _battery_workloads(names: list[str] | None) -> None:
    device = Device("H200")
    workloads = all_workloads() if not names \
        else [get_workload(n) for n in names]
    for w in workloads:
        case = w.exec_case(w.cases()[0])
        data = w.prepare(case)
        for variant in w.variants():
            w.execute(variant, data, device)


def run_dynamic(workloads: list[str] | None = None,
                include_workloads: bool = True) -> WarpSanitizer:
    """Run the battery; returns the sanitizer holding its findings."""
    rng = Lcg(1325)
    with WarpSanitizer() as san:
        _battery_warp_gemm(rng)
        _battery_roundtrips(rng)
        if include_workloads:
            _battery_workloads(workloads)
    if san.accesses == 0:
        # instrumentation went dark: that is itself a finding, not a pass
        raise RuntimeError(
            "warp sanitizer observed zero instrumented accesses; the "
            "gpu.warp_events hooks are disconnected")
    return san
