"""The determinism proof engine: interprocedural taint analysis (D-rules).

Every subsystem added since the perf cache is constrained to be
bit-identical to the seed digests, but the digest tests are dynamic: they
tell you *that* a run was deterministic, never *why*, nor which edit would
break it.  This engine proves the three structural properties the
bit-identity contract rests on, statically, over the whole ``repro``
package:

**Sources** (nondeterminism entering a function):

========== ==========================================================
``rng``     unseeded ``random``/``numpy.random`` draws (R001's source
            set, now propagated interprocedurally)
``clock``   wall-clock reads (``time.*``, ``datetime.now``) outside the
            sanctioned ``perf.instrument`` wrappers
``fs-order`` unsorted filesystem enumeration (``os.listdir``,
            ``os.scandir``, ``glob.*``, ``Path.iterdir/glob/rglob``)
            whose result is not immediately ``sorted(...)``
``set-order`` iteration over a set-typed expression (set literals,
            ``set(...)``, unions of those) — ordering depends on
            insertion/hash history, not on value
``id-hash`` ``id(...)`` / ``hash(...)`` of objects — per-process values
========== ==========================================================

**Ambient inputs** (deterministic per-process but invisible to content
keys): ``env`` (``os.environ``/``os.getenv``), ``file`` (``open``/
``read_text``/``read_bytes``), ``global`` (reads of module globals
rebound via ``global`` statements).

**Sinks** (where taint breaks a contract):

* ``D001`` cache-value-taint — the compute callable of a
  ``ResultCache.get_or_compute`` reaches a source: the cached value could
  differ from a recomputation, voiding the cache's bit-identity contract.
* ``D002`` serve-payload-taint — a ``serve/queries.py`` resolver reaches
  a source: a served answer could differ from the direct invocation.
* ``D003`` dispatch-mutable-state — a function dispatched through
  :class:`~repro.perf.executor.ParallelExecutor` reads a module global
  that is rebound elsewhere: worker processes see a fork-time snapshot,
  so serial and parallel runs can diverge.
* ``D004`` dispatch-picklable — a dispatched callable is a lambda,
  nested function, or bound method: not top-level picklable, so the pool
  path dies (or silently degrades) where the serial path works.
* ``D005`` key-env-read — a content-key constructor reads an environment
  variable that is not part of the key: two processes with different
  environments share one cache entry (the exact gap delta-invalidation
  must close).
* ``D006`` key-ambient-read — a content-key constructor reads a file or
  a mutated module global outside the key, same consequence as D005.
* ``R009`` graph-node-ambient — a :class:`~repro.graph.TaskNode`
  callable transitively reads unkeyed ambient state (env/file/global):
  the graph scheduler may run it concurrently with writers of that
  state, so either the read is folded into the node's arguments or the
  concurrency policy serializes the node.

Propagation is a fixpoint over the :class:`~repro.check.dataflow.
PackageGraph` call graph.  Calls into the measurement/fault/scheduling
infrastructure (``perf/``, ``faults/``, ``graph/``,
``serve/telemetry.py``) are not followed: their clock reads feed
telemetry and bookkeeping, never the values they return — the same
scoping the R001/R002 lint rules encode.
Findings carry a witness chain (``f -> g -> time.perf_counter``) naming
the path by which the taint reaches the sink.

The computed facts — per-function purity, content-key sites and their
ambient reads, cache/serve/pool sink verdicts — export as a
machine-readable ``determinism_facts.json`` whose bytes depend only on
package sources, so CI asserts two consecutive exports compare equal.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from .dataflow import (
    FunctionInfo,
    ModuleInfo,
    PackageGraph,
    iter_scope,
    resolve_dotted,
)
from .findings import Finding
from .lint import _CLOCK_CALLS, _RNG_ALLOWED_TAILS

__all__ = [
    "FACTS_VERSION",
    "DeterminismReport",
    "TaintSource",
    "analyze_package",
    "determinism_findings",
    "export_facts",
]

FACTS_VERSION = 2

#: measurement/fault infrastructure whose clock/env reads feed telemetry
#: and bookkeeping, not returned values — calls into these are not
#: followed and sources inside them are not collected
_BARRIER_PREFIXES = ("perf/", "faults/", "graph/")
_BARRIER_FILES = frozenset({"serve/telemetry.py"})

#: source kinds that taint a *value* (sink classes D001/D002)
VALUE_KINDS = ("rng", "clock", "fs-order", "set-order", "id-hash")

_FS_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_METHOD_ATTRS = frozenset({"iterdir", "glob", "rglob"})
_FILE_READ_ATTRS = frozenset({"read_text", "read_bytes"})


def _is_barrier(relpath: str) -> bool:
    return relpath.startswith(_BARRIER_PREFIXES) \
        or relpath in _BARRIER_FILES


@dataclass(frozen=True)
class TaintSource:
    """One direct nondeterminism source (or ambient input) in a scope."""

    kind: str
    symbol: str
    line: int


@dataclass
class _Facts:
    """Per-function scan results."""

    info: FunctionInfo
    sources: list[TaintSource] = field(default_factory=list)
    #: ambient inputs with the AST node they were read from (the node is
    #: needed to decide whether the read sits inside content-key args)
    ambient: list[tuple[TaintSource, ast.AST]] = field(
        default_factory=list)
    #: resolved package callees as (fid, call line)
    callees: list[tuple[str, int]] = field(default_factory=list)
    #: ParallelExecutor dispatch sites: (line, kind, fn expr node)
    dispatches: list[tuple[int, str, ast.expr]] = field(default_factory=list)
    #: get_or_compute sites: (line, compute expr node or None)
    cache_stores: list[tuple[int, ast.expr | None]] = field(
        default_factory=list)
    #: content_key call nodes
    key_calls: list[ast.Call] = field(default_factory=list)
    #: TaskNode construction sites: (line, fn expr node or None)
    graph_nodes: list[tuple[int, ast.expr | None]] = field(
        default_factory=list)


# ----------------------------------------------------------------- scanning

def _sorted_wrapped(nodes: list[ast.AST]) -> set[int]:
    """ids of nodes appearing as the first argument of ``sorted(...)``."""
    out: set[int] = set()
    for n in nodes:
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Name) \
                and n.func.id == "sorted" and n.args:
            out.add(id(n.args[0]))
    return out


def _set_typed(expr: ast.expr, set_names: set[str]) -> bool:
    """Conservatively: does this expression evaluate to a set?"""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) \
            and expr.func.id in ("set", "frozenset"):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_names
    if isinstance(expr, ast.BinOp) \
            and isinstance(expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor,
                                     ast.Sub)):
        return _set_typed(expr.left, set_names) \
            or _set_typed(expr.right, set_names)
    return False


def _env_read(node: ast.AST, imports: dict[str, str]) -> str | None:
    """``os.environ[...]`` / ``os.environ.get(...)`` / ``os.getenv(...)``."""
    if isinstance(node, ast.Call):
        full = resolve_dotted(node.func, imports)
        if full in ("os.getenv", "os.environ.get"):
            return full
    if isinstance(node, ast.Subscript):
        full = resolve_dotted(node.value, imports)
        if full == "os.environ":
            return full
    return None


def _scan_function(graph: PackageGraph, minfo: ModuleInfo,
                   finfo: FunctionInfo) -> _Facts:
    facts = _Facts(info=finfo)
    if _is_barrier(minfo.relpath):
        return facts
    imports = minfo.imports
    nodes = list(iter_scope(finfo.node))
    wrapped = _sorted_wrapped(nodes)

    # set-typed and executor-typed local names (forward pass over assigns)
    set_names: set[str] = set()
    executor_names: set[str] = set()
    for n in nodes:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(n, ast.Assign):
            targets, value = n.targets, n.value
        elif isinstance(n, ast.AnnAssign) and n.value is not None:
            targets, value = [n.target], n.value
        if value is None:
            continue
        for t in targets:
            if not isinstance(t, ast.Name):
                continue
            if _set_typed(value, set_names):
                set_names.add(t.id)
            for sub in ast.walk(value):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Name) \
                        and sub.func.id == "ParallelExecutor":
                    executor_names.add(t.id)

    for n in nodes:
        # --- sources and ambient reads -------------------------------
        if isinstance(n, ast.Call):
            full = resolve_dotted(n.func, imports)
            if full is not None:
                if full.startswith(("numpy.random.", "random.")):
                    tail = full.rsplit(".", 1)[-1]
                    if not (tail in _RNG_ALLOWED_TAILS and n.args):
                        facts.sources.append(
                            TaintSource("rng", full, n.lineno))
                elif full in _CLOCK_CALLS:
                    facts.sources.append(
                        TaintSource("clock", full, n.lineno))
                elif full in _FS_CALLS and id(n) not in wrapped:
                    facts.sources.append(
                        TaintSource("fs-order", full, n.lineno))
            if isinstance(n.func, ast.Attribute) \
                    and n.func.attr in _FS_METHOD_ATTRS \
                    and id(n) not in wrapped \
                    and resolve_dotted(n.func, imports) not in _FS_CALLS:
                facts.sources.append(TaintSource(
                    "fs-order", f".{n.func.attr}()", n.lineno))
            if isinstance(n.func, ast.Name) and n.func.id in ("id", "hash") \
                    and n.func.id not in imports:
                facts.sources.append(
                    TaintSource("id-hash", f"{n.func.id}()", n.lineno))
            env = _env_read(n, imports)
            if env is not None:
                facts.ambient.append(
                    (TaintSource("env", env, n.lineno), n))
            if isinstance(n.func, ast.Name) and n.func.id == "open" \
                    and "open" not in imports:
                facts.ambient.append(
                    (TaintSource("file", "open()", n.lineno), n))
            if isinstance(n.func, ast.Attribute) \
                    and n.func.attr in _FILE_READ_ATTRS:
                facts.ambient.append((TaintSource(
                    "file", f".{n.func.attr}()", n.lineno), n))
        elif isinstance(n, ast.Subscript):
            env = _env_read(n, imports)
            if env is not None:
                facts.ambient.append(
                    (TaintSource("env", env, n.lineno), n))
        elif isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load) \
                and n.id in minfo.mutated_globals:
            facts.ambient.append(
                (TaintSource("global", n.id, n.lineno), n))

        # set-order: iterating a set-typed expression
        iters: list[ast.expr] = []
        if isinstance(n, (ast.For, ast.AsyncFor)):
            iters.append(n.iter)
        elif isinstance(n, (ast.ListComp, ast.SetComp, ast.DictComp,
                            ast.GeneratorExp)):
            iters.extend(g.iter for g in n.generators)
        for it in iters:
            if _set_typed(it, set_names):
                facts.sources.append(
                    TaintSource("set-order", ast.unparse(it)[:40],
                                n.lineno))

        # --- sinks and edges -----------------------------------------
        if not isinstance(n, ast.Call):
            continue
        func = n.func
        if isinstance(func, ast.Attribute):
            if func.attr == "get_or_compute":
                compute = n.args[2] if len(n.args) >= 3 else None
                facts.cache_stores.append((n.lineno, compute))
            elif func.attr in ("map", "starmap") and n.args:
                recv = func.value
                dispatched = (isinstance(recv, ast.Name)
                              and recv.id in executor_names)
                if not dispatched and isinstance(recv, ast.Call):
                    for sub in ast.walk(recv):
                        if isinstance(sub, ast.Call) \
                                and isinstance(sub.func, ast.Name) \
                                and sub.func.id == "ParallelExecutor":
                            dispatched = True
                            break
                if dispatched:
                    facts.dispatches.append((n.lineno, func.attr,
                                             n.args[0]))
        full = resolve_dotted(func, imports)
        if full is not None and (full == "content_key"
                                 or full.endswith(".content_key")):
            facts.key_calls.append(n)
        if full is not None and (full == "TaskNode"
                                 or full.endswith(".TaskNode")):
            fn_expr: ast.expr | None = None
            for kw in n.keywords:
                if kw.arg == "fn":
                    fn_expr = kw.value
                    break
            if fn_expr is None and len(n.args) >= 3:
                fn_expr = n.args[2]
            facts.graph_nodes.append((n.lineno, fn_expr))

        # call-graph edges (barrier modules are not followed)
        for callee in graph.resolve_call(minfo, n, finfo):
            if _is_barrier(callee.module):
                continue
            facts.callees.append((callee.fid, n.lineno))

    # dispatched callables and compute closures are edges too: the value
    # they produce flows back to the dispatch/store site
    for line, _, fn_expr in facts.dispatches:
        target = _resolve_callable(graph, minfo, finfo, fn_expr)
        if target is not None and not _is_barrier(target.module):
            facts.callees.append((target.fid, line))
    for line, compute in facts.cache_stores:
        if compute is not None:
            target = _resolve_callable(graph, minfo, finfo, compute)
            if target is not None and not _is_barrier(target.module):
                facts.callees.append((target.fid, line))
    for line, node_fn in facts.graph_nodes:
        if node_fn is not None:
            target = _resolve_callable(graph, minfo, finfo, node_fn)
            if target is not None and not _is_barrier(target.module):
                facts.callees.append((target.fid, line))
    return facts


def _resolve_callable(graph: PackageGraph, minfo: ModuleInfo,
                      finfo: FunctionInfo,
                      expr: ast.expr) -> FunctionInfo | None:
    """The function a callable-valued *expression* denotes (not a call)."""
    if isinstance(expr, ast.Lambda):
        for qual, info in minfo.functions.items():
            if info.node is expr:
                return info
        return None
    if isinstance(expr, ast.Call):
        # functools.partial(f, ...) and _Star(f)-style adapters: resolve
        # the first argument when the call wraps another callable
        full = resolve_dotted(expr.func, minfo.imports)
        if full is not None and full.endswith("partial") and expr.args:
            return _resolve_callable(graph, minfo, finfo, expr.args[0])
        return None
    fake = ast.Call(func=expr, args=[], keywords=[])
    ast.copy_location(fake, expr)
    hits = graph.resolve_call(minfo, fake, finfo)
    return hits[0] if hits else None


# -------------------------------------------------------------- propagation

def _propagate(all_facts: dict[str, _Facts]
               ) -> dict[str, dict[str, tuple[str | None, str, int]]]:
    """Fixpoint taint closure.

    Returns ``{fid: {kind: (via_fid | None, symbol, line)}}`` — for each
    function, the source kinds reachable from it and one witness step:
    either a direct source (``via_fid`` None) or the callee that carries
    the taint in.

    Ambient inputs propagate alongside the value kinds under
    ``ambient-env`` / ``ambient-file`` / ``ambient-global`` — seeded only
    by *unkeyed* reads (reads inside ``content_key`` arguments are part
    of the key, not hidden state).  They do not flip ``pure`` (the value
    is still deterministic per process) but they do make a function
    unsafe to schedule concurrently against writers of the same state,
    which is what the graph scheduler's concurrency policy and rule R009
    consume them for.
    """
    taint: dict[str, dict[str, tuple[str | None, str, int]]] = {}
    callers: dict[str, list[tuple[str, int]]] = {}
    for fid in sorted(all_facts):
        f = all_facts[fid]
        mine: dict[str, tuple[str | None, str, int]] = {}
        for src in f.sources:
            mine.setdefault(src.kind, (None, src.symbol, src.line))
        for amb, node in f.ambient:
            if not _inside_key_args(f.key_calls, node):
                mine.setdefault(f"ambient-{amb.kind}",
                                (None, amb.symbol, amb.line))
        taint[fid] = mine
        for callee_fid, line in f.callees:
            callers.setdefault(callee_fid, []).append((fid, line))
    work = [fid for fid in sorted(taint) if taint[fid]]
    while work:
        fid = work.pop()
        kinds = taint.get(fid, {})
        for caller_fid, line in callers.get(fid, ()):
            mine = taint[caller_fid]
            grew = False
            for kind in kinds:
                if kind not in mine:
                    mine[kind] = (fid, fid, line)
                    grew = True
            if grew:
                work.append(caller_fid)
    return taint


def _witness(taint, fid: str, kind: str, limit: int = 12) -> str:
    """Render the taint path ``f -> g -> time.perf_counter (g:42)``."""
    chain: list[str] = []
    cur = fid
    for _ in range(limit):
        entry = taint.get(cur, {}).get(kind)
        if entry is None:
            break
        via, symbol, line = entry
        if via is None:
            chain.append(f"{symbol} ({cur.split('::')[0]}:{line})")
            return " -> ".join(chain)
        chain.append(via)
        cur = via
    chain.append("...")
    return " -> ".join(chain)


# ------------------------------------------------------------------- rules

def _value_taint(taint, fid: str) -> list[str]:
    return sorted(k for k in taint.get(fid, {}) if k in VALUE_KINDS)


def _ambient_taint(taint, fid: str) -> list[str]:
    """Ambient-input kinds (``env``/``file``/``global``) reachable from
    ``fid`` through unkeyed reads."""
    return sorted(k.split("-", 1)[1] for k in taint.get(fid, {})
                  if k.startswith("ambient-"))


def _inside_key_args(key_calls: list[ast.Call], node: ast.AST) -> bool:
    for call in key_calls:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if sub is node:
                    return True
    return False


@dataclass
class DeterminismReport:
    """Findings plus the exportable facts of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    facts: dict = field(default_factory=dict)
    functions_analyzed: int = 0
    modules_analyzed: int = 0


def analyze_package(root: str | Path | None = None, *,
                    graph: PackageGraph | None = None
                    ) -> DeterminismReport:
    """Run the taint engine over a package tree and produce findings and
    machine-readable facts."""
    if graph is None:
        graph = PackageGraph.build(Path(root))
    all_facts: dict[str, _Facts] = {}
    for finfo in graph.sorted_functions():
        minfo = graph.modules[finfo.module]
        all_facts[finfo.fid] = _scan_function(graph, minfo, finfo)
    taint = _propagate(all_facts)

    report = DeterminismReport(
        functions_analyzed=len(all_facts),
        modules_analyzed=len(graph.modules))
    findings = report.findings
    fact_cache: list[dict] = []
    fact_serve: list[dict] = []
    fact_pool: list[dict] = []
    fact_keys: list[dict] = []
    fact_graph: list[dict] = []

    for fid in sorted(all_facts):
        f = all_facts[fid]
        minfo = graph.modules[f.info.module]

        # D001: tainted value stored under a ResultCache content key
        for line, compute in f.cache_stores:
            target = None if compute is None else \
                _resolve_callable(graph, minfo, f.info, compute)
            tainted_kinds = _value_taint(taint, target.fid) if target \
                else []
            fact_cache.append({
                "module": f.info.module, "function": f.info.qualname,
                "line": line,
                "compute": target.fid if target else None,
                "tainted": sorted(tainted_kinds),
            })
            if target and tainted_kinds:
                kind = tainted_kinds[0]
                findings.append(Finding(
                    rule="D001", severity="error", path=f.info.module,
                    symbol=f.info.qualname, line=line,
                    message=f"value cached under a content key is "
                            f"{kind}-tainted: "
                            f"{_witness(taint, target.fid, kind)}; a "
                            "cached entry and a recomputation could "
                            "differ, voiding the bit-identity contract"))

        # D003/D004: ParallelExecutor dispatch purity
        if not f.info.module.startswith("perf/"):
            for line, how, fn_expr in f.dispatches:
                target = _resolve_callable(graph, minfo, f.info, fn_expr)
                problem = _dispatch_problem(graph, minfo, f.info,
                                            fn_expr, target)
                mutable = [] if target is None else \
                    _closed_over_mutable(graph, target)
                fact_pool.append({
                    "module": f.info.module, "function": f.info.qualname,
                    "line": line, "via": how,
                    "target": target.fid if target else
                    ast.unparse(fn_expr)[:60],
                    "picklable": problem is None,
                    "mutable_globals": mutable,
                })
                if problem is not None:
                    findings.append(Finding(
                        rule="D004", severity="error",
                        path=f.info.module, symbol=f.info.qualname,
                        line=line,
                        message=f"function dispatched through "
                                f"ParallelExecutor.{how} is {problem}; "
                                "workers need a top-level picklable "
                                "callable, or the pool path dies where "
                                "the serial path works"))
                if mutable:
                    findings.append(Finding(
                        rule="D003", severity="error",
                        path=f.info.module, symbol=f.info.qualname,
                        line=line,
                        message=f"dispatched function {target.qualname} "
                                f"reads mutable module state "
                                f"{', '.join(mutable)}; worker processes "
                                "see a fork-time snapshot, so serial and "
                                "parallel runs can diverge"))

        # R009: task-graph node callables must be safe to run concurrently
        for line, node_fn in f.graph_nodes:
            target = None if node_fn is None else \
                _resolve_callable(graph, minfo, f.info, node_fn)
            ambient = _ambient_taint(taint, target.fid) if target else []
            value_kinds = _value_taint(taint, target.fid) if target else []
            fact_graph.append({
                "module": f.info.module, "function": f.info.qualname,
                "line": line,
                "target": target.fid if target else (
                    None if node_fn is None
                    else ast.unparse(node_fn)[:60]),
                "ambient": ambient,
                "tainted": value_kinds,
            })
            if target and ambient:
                first = f"ambient-{ambient[0]}"
                findings.append(Finding(
                    rule="R009", severity="error", path=f.info.module,
                    symbol=f.info.qualname, line=line,
                    message=f"graph node callable {target.qualname} reads "
                            f"unkeyed ambient state "
                            f"({', '.join(ambient)}: "
                            f"{_witness(taint, target.fid, first)}) yet "
                            "the scheduler may run it concurrently; fold "
                            "the read into the node's arguments/content "
                            "key, or the concurrency policy will "
                            "serialize it against every sibling"))

        # D005/D006: content-key completeness
        if f.key_calls:
            for amb, node in f.ambient:
                if _inside_key_args(f.key_calls, node):
                    continue
                rule = "D005" if amb.kind == "env" else "D006"
                what = {"env": "environment variable",
                        "file": "file content",
                        "global": "mutated module global"}[amb.kind]
                findings.append(Finding(
                    rule=rule, severity="error", path=f.info.module,
                    symbol=f.info.qualname, line=amb.line,
                    message=f"content-key constructor reads a {what} "
                            f"({amb.symbol}) that is not part of the "
                            "key; entries computed under different "
                            f"{amb.kind} state would share one cache "
                            "slot — fold the input into the key or hoist "
                            "the read out"))
            fact_keys.append({
                "module": f.info.module, "function": f.info.qualname,
                "lines": sorted(c.lineno for c in f.key_calls),
                "ambient_reads": sorted(
                    {f"{a.kind}:{a.symbol}" for a, _ in f.ambient}),
            })

    # D002: serve resolver payload purity
    queries = graph.modules.get("serve/queries.py")
    if queries is not None:
        for qual in sorted(queries.functions):
            info = queries.functions[qual]
            if "." in qual or not (qual.startswith("resolve_")
                                   or qual.startswith("_resolve")):
                continue
            kinds = _value_taint(taint, info.fid)
            fact_serve.append({"function": info.fid,
                               "tainted": kinds})
            if kinds:
                kind = kinds[0]
                findings.append(Finding(
                    rule="D002", severity="error",
                    path=info.module, symbol=qual, line=info.lineno,
                    message=f"serve resolver payload is {kind}-tainted: "
                            f"{_witness(taint, info.fid, kind)}; a "
                            "served answer could differ from the direct "
                            "invocation it must be bit-identical to"))

    findings.sort(key=lambda fd: (fd.path, fd.line or 0, fd.rule,
                                  fd.symbol))
    report.facts = export_facts(graph, all_facts, taint,
                                cache=fact_cache, serve=fact_serve,
                                pool=fact_pool, keys=fact_keys,
                                graph_nodes=fact_graph)
    return report


def _dispatch_problem(graph: PackageGraph, minfo: ModuleInfo,
                      finfo: FunctionInfo, fn_expr: ast.expr,
                      target: FunctionInfo | None) -> str | None:
    """Why a dispatched callable is not top-level picklable, or None."""
    if isinstance(fn_expr, ast.Lambda):
        return "a lambda"
    if isinstance(fn_expr, ast.Attribute):
        if isinstance(fn_expr.value, ast.Name) \
                and fn_expr.value.id in ("self", "cls"):
            return "a bound method"
        dotted = resolve_dotted(fn_expr, minfo.imports)
        if dotted is None or graph.resolve_symbol(
                minfo.relpath, dotted) is None:
            # unknown attribute of a local object: assume bound method
            root = fn_expr.value
            if isinstance(root, ast.Name) and root.id not in minfo.imports:
                return "a bound method"
        return None
    if isinstance(fn_expr, ast.Name):
        local = minfo.local_defs.get(finfo.qualname, {})
        if fn_expr.id in local:
            return "a nested function"
        return None
    if target is not None and "." in target.qualname \
            and "<lambda" not in target.qualname:
        return "a nested function"
    return None


def _closed_over_mutable(graph: PackageGraph,
                         target: FunctionInfo) -> list[str]:
    """Mutated module globals a dispatched function reads directly."""
    minfo = graph.modules.get(target.module)
    if minfo is None or not minfo.mutated_globals:
        return []
    hits: set[str] = set()
    for n in iter_scope(target.node):
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load) \
                and n.id in minfo.mutated_globals:
            hits.add(n.id)
    return sorted(hits)


# ------------------------------------------------------------------- facts

def export_facts(graph: PackageGraph, all_facts: dict[str, _Facts],
                 taint, *, cache: list[dict], serve: list[dict],
                 pool: list[dict], keys: list[dict],
                 graph_nodes: list[dict] | None = None) -> dict:
    """The machine-readable artifact (``determinism_facts.json``).

    Derived purely from package sources and emitted in sorted order, so
    byte-identity across runs holds by construction (asserted in CI) —
    the analyzer satisfies its own determinism contract.  Consumers:
    delta-invalidated sweeps (which functions feed which content keys)
    and the graph scheduler's :class:`~repro.graph.policy.
    ConcurrencyPolicy` (version 2: each purity entry's ``ambient`` list
    names the unkeyed env/file/global inputs reachable from the
    function — the facts that decide a node's concurrency eligibility).
    """
    purity: dict[str, dict] = {}
    for fid in sorted(all_facts):
        kinds = _value_taint(taint, fid)
        entry: dict = {"pure": not kinds}
        if kinds:
            entry["taint"] = kinds
            entry["witness"] = _witness(taint, fid, kinds[0])
        ambient = _ambient_taint(taint, fid)
        if ambient:
            entry["ambient"] = ambient
            entry["ambient_witness"] = _witness(
                taint, fid, f"ambient-{ambient[0]}")
        direct = sorted(
            {f"{s.kind}:{s.symbol}" for s in all_facts[fid].sources})
        if direct:
            entry["direct_sources"] = direct
        purity[fid] = entry
    return {
        "version": FACTS_VERSION,
        "modules": sorted(graph.modules),
        "functions_analyzed": len(all_facts),
        "barriers": {"prefixes": sorted(_BARRIER_PREFIXES),
                     "files": sorted(_BARRIER_FILES)},
        "purity": purity,
        "cache_values": sorted(
            cache, key=lambda e: (e["module"], e["line"])),
        "serve_payloads": sorted(serve, key=lambda e: e["function"]),
        "pool_dispatch": sorted(
            pool, key=lambda e: (e["module"], e["line"])),
        "content_keys": sorted(
            keys, key=lambda e: (e["module"], e["function"])),
        "graph_nodes": sorted(
            graph_nodes or [], key=lambda e: (e["module"], e["line"])),
    }


def facts_to_json(facts: dict) -> str:
    """Canonical byte form of the facts artifact."""
    return json.dumps(facts, indent=2, sort_keys=True) + "\n"


def determinism_findings(root: str | Path) -> list[Finding]:
    """Just the findings (the runner uses :func:`analyze_package`)."""
    return analyze_package(root).findings
