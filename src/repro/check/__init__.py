"""``repro.check`` — static and dynamic correctness tooling for the suite.

The headline results of the reproduction rest on invariants that ordinary
tests cannot see from the outside:

* TC and CC variants must route through the *same* batched ``mma_m8n8k4``
  primitive so the Table 6 TC≡CC bit-identity holds by construction
  (DESIGN.md §6.1);
* fragment and lane ownership must follow the PTX ``m8n8k4`` layout
  (Figure 1b);
* kernel/model code must be deterministic (DESIGN.md §6.4) and FP64-pure
  outside the mixed-precision spec code;
* :class:`~repro.gpu.counters.KernelStats` counters must be built through
  the counter API so the execute/analytic agreement tests stay meaningful.

This package enforces them with three layers:

* **Layer 1 — AST lint** (:mod:`repro.check.lint`,
  :mod:`repro.check.contracts`): codebase-specific rules ``R001``-``R008``
  over ``src/repro``.
* **Layer 2 — determinism proof engine** (:mod:`repro.check.dataflow`,
  :mod:`repro.check.determinism`): an interprocedural taint analysis over
  the whole-package call graph proving the three structural properties
  the bit-identity contract rests on — cache/serve value purity, pool
  dispatch purity, and content-key completeness; rules ``D001``-``D006``
  plus the machine-readable ``determinism_facts.json`` artifact.
* **Layer 3 — warp-hazard sanitizer** (:mod:`repro.check.hazards`,
  :mod:`repro.check.dynamic`): a compute-sanitizer/racecheck analog for the
  emulated warp, fed by the instrumentation hooks in
  :mod:`repro.gpu.warp_events`; rules ``H001``-``H004``.

All layers emit structured :class:`~repro.check.findings.Finding` records,
honour a checked-in suppression baseline (``check_baseline.json``), and are
wired into CI through the ``repro check`` CLI subcommand.
"""

from .dataflow import PackageGraph
from .determinism import analyze_package
from .findings import (
    Baseline,
    Finding,
    Suppression,
    apply_baseline,
    dedupe_findings,
)
from .hazards import WarpSanitizer
from .runner import CheckReport, default_baseline_path, run_check

__all__ = [
    "Finding",
    "Suppression",
    "Baseline",
    "apply_baseline",
    "dedupe_findings",
    "PackageGraph",
    "analyze_package",
    "WarpSanitizer",
    "CheckReport",
    "run_check",
    "default_baseline_path",
]
