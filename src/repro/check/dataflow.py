"""Whole-package call graph: the structural substrate of the D-rules.

The call-resolution machinery here began life private to the R005
MMA call-graph rule (``contracts.py``); the determinism proof engine
(:mod:`repro.check.determinism`) needs the same resolution *across* module
boundaries, so it is extracted and generalized here:

* :class:`ImportResolver` / :func:`resolve_dotted` — map local names to
  fully qualified dotted paths (shared with ``lint.py``/``contracts.py``).
* :class:`PackageGraph` — parses every ``.py`` under the package root once
  and indexes functions (top-level, methods, nested defs, lambdas),
  classes and their bases, import maps, module-level *dispatch tables*
  (tuples/dicts of function references such as ``OBSERVATIONS`` or
  ``_RESOLVERS``), and module globals rebound through ``global``
  statements.
* :meth:`PackageGraph.resolve_call` — best-effort resolution of one
  ``ast.Call`` to the :class:`FunctionInfo` it invokes, following local
  defs, ``self.method`` (with one level of base-class lookup), imported
  package symbols (including ``__init__`` re-exports), class constructors
  (to ``__init__``), and ``TABLE[i](...)`` dispatch through indexed
  tables.

Everything is derived from source text alone and iterated in sorted
order, so two runs over identical sources produce identical graphs — a
property the determinism engine inherits and CI asserts byte-for-byte on
its exported facts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "ImportResolver",
    "resolve_dotted",
    "FunctionInfo",
    "ModuleInfo",
    "PackageGraph",
    "iter_scope",
]


class ImportResolver(ast.NodeVisitor):
    """Map local names to fully qualified module paths.

    ``import numpy as np`` → ``np: numpy``;
    ``from datetime import datetime`` → ``datetime: datetime.datetime``.
    Relative imports resolve to ``.``-prefixed paths, which never collide
    with the absolute stdlib/numpy prefixes the rules look for.
    """

    def __init__(self) -> None:
        self.names: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            self.names[local] = alias.name if alias.asname else \
                alias.name.split(".", 1)[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = ("." * node.level) + (node.module or "")
        for alias in node.names:
            local = alias.asname or alias.name
            self.names[local] = f"{base}.{alias.name}" if base else alias.name


def resolve_dotted(node: ast.expr, names: dict[str, str]) -> str | None:
    """Best-effort fully qualified name of an attribute chain."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = names.get(cur.id, cur.id)
    return ".".join([root] + list(reversed(parts)))


def iter_scope(node: ast.AST):
    """Yield the nodes of one function/lambda/module scope in AST order,
    without descending into nested function or lambda scopes (those are
    indexed as their own :class:`FunctionInfo` and analyzed separately)."""
    todo = list(ast.iter_child_nodes(node))
    i = 0
    while i < len(todo):
        n = todo[i]
        i += 1
        yield n
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda)):
            continue
        todo.extend(ast.iter_child_nodes(n))


@dataclass(frozen=True, eq=False)
class FunctionInfo:
    """One indexed function-like scope (def, method, nested def, lambda)."""

    fid: str            #: stable id ``<module relpath>::<qualname>``
    module: str         #: package-relative path, forward slashes
    qualname: str       #: ``func`` / ``Cls.method`` / ``outer.inner``
    lineno: int
    class_name: str | None
    node: ast.AST       #: FunctionDef | AsyncFunctionDef | Lambda


@dataclass
class ModuleInfo:
    """Everything the graph knows about one parsed module."""

    relpath: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    #: qualname -> info, every function-like scope at any nesting
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: class name -> local/imported base names
    class_bases: dict[str, list[str]] = field(default_factory=dict)
    #: per enclosing function qualname: local name -> callee qualname
    local_defs: dict[str, dict[str, str]] = field(default_factory=dict)
    #: module-level names bound to tuples/lists/dicts of local functions
    dispatch_tables: dict[str, list[str]] = field(default_factory=dict)
    #: names assigned at module level
    module_globals: set[str] = field(default_factory=set)
    #: module globals rebound via a ``global`` statement in some function
    mutated_globals: set[str] = field(default_factory=set)


def _base_names(cls: ast.ClassDef) -> list[str]:
    out = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            out.append(base.id)
        elif isinstance(base, ast.Attribute):
            out.append(base.attr)
    return out


class _Indexer:
    """Recursive walk recording every function-like scope of a module."""

    def __init__(self, minfo: ModuleInfo) -> None:
        self.m = minfo

    def _record(self, qualname: str, node: ast.AST,
                class_name: str | None) -> FunctionInfo:
        info = FunctionInfo(fid=f"{self.m.relpath}::{qualname}",
                            module=self.m.relpath, qualname=qualname,
                            lineno=node.lineno, class_name=class_name,
                            node=node)
        self.m.functions[qualname] = info
        return info

    def walk(self, node: ast.AST, prefix: str,
             class_name: str | None, enclosing: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                self._record(qual, child, class_name)
                if enclosing is not None:
                    self.m.local_defs.setdefault(
                        enclosing, {})[child.name] = qual
                self.walk(child, f"{qual}.", None, qual)
            elif isinstance(child, ast.ClassDef):
                if enclosing is None and class_name is None:
                    self.m.classes[child.name] = child
                    self.m.class_bases[child.name] = _base_names(child)
                self.walk(child, f"{prefix}{child.name}.",
                          child.name, enclosing)
            elif isinstance(child, ast.Lambda):
                qual = f"{prefix}<lambda:{child.lineno}>"
                self._record(qual, child, class_name)
                if enclosing is not None:
                    self.m.local_defs.setdefault(enclosing, {})
                self.walk(child, f"{qual}.", None, qual)
            else:
                # name = lambda ... binds a resolvable local callee
                if isinstance(child, ast.Assign) \
                        and isinstance(child.value, ast.Lambda) \
                        and enclosing is not None:
                    for t in child.targets:
                        if isinstance(t, ast.Name):
                            self.m.local_defs.setdefault(
                                enclosing, {})[t.id] = \
                                f"{prefix}<lambda:{child.value.lineno}>"
                self.walk(child, prefix, class_name, enclosing)


def _collect_globals(minfo: ModuleInfo) -> None:
    for node in minfo.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name):
                minfo.module_globals.add(t.id)
    for node in ast.walk(minfo.tree):
        if isinstance(node, ast.Global):
            minfo.mutated_globals.update(node.names)


def _collect_dispatch_tables(minfo: ModuleInfo) -> None:
    """Module-level ``NAME = (f, g, ...)`` / ``{...: f}`` tables whose
    members are local module-level functions."""
    for node in minfo.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name, value = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.value is not None:
            name, value = node.target.id, node.value
        else:
            continue
        if not isinstance(value, (ast.Tuple, ast.List, ast.Dict)):
            continue
        members = []
        for sub in ast.walk(value):
            if isinstance(sub, ast.Name) and sub.id in minfo.functions:
                members.append(sub.id)
        if members:
            minfo.dispatch_tables[name] = sorted(set(members))


class PackageGraph:
    """Parsed modules of one package plus cross-module call resolution."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.modules: dict[str, ModuleInfo] = {}

    # ------------------------------------------------------------- build
    @classmethod
    def build(cls, root: str | Path) -> "PackageGraph":
        graph = cls(Path(root))
        for path in sorted(graph.root.rglob("*.py")):
            relpath = path.relative_to(graph.root).as_posix()
            try:
                tree = ast.parse(path.read_text(), filename=relpath)
            except SyntaxError:
                continue  # R000 reports it; nothing to index
            graph._index_module(relpath, tree)
        return graph

    @classmethod
    def from_sources(cls, sources: dict[str, str],
                     root: str | Path = ".") -> "PackageGraph":
        """Build from in-memory ``{relpath: source}`` (tests)."""
        graph = cls(Path(root))
        for relpath in sorted(sources):
            try:
                tree = ast.parse(sources[relpath], filename=relpath)
            except SyntaxError:
                continue
            graph._index_module(relpath, tree)
        return graph

    def _index_module(self, relpath: str, tree: ast.Module) -> None:
        resolver = ImportResolver()
        resolver.visit(tree)
        minfo = ModuleInfo(relpath=relpath, tree=tree,
                           imports=resolver.names)
        _Indexer(minfo).walk(tree, "", None, None)
        _collect_globals(minfo)
        _collect_dispatch_tables(minfo)
        self.modules[relpath] = minfo

    # --------------------------------------------------------- resolution
    def _normalize(self, dotted: str, module_relpath: str
                   ) -> list[str] | None:
        """Dotted import path -> package-relative parts, or None if the
        target lives outside this package."""
        if dotted.startswith("."):
            level = len(dotted) - len(dotted.lstrip("."))
            rest = [p for p in dotted.lstrip(".").split(".") if p]
            pkg_parts = module_relpath.split("/")[:-1]
            up = level - 1
            if up > len(pkg_parts):
                return None
            return pkg_parts[:len(pkg_parts) - up] + rest
        parts = dotted.split(".")
        if parts[0] == "repro":
            return parts[1:]
        return None

    def _find_module(self, parts: list[str]
                     ) -> tuple[str, list[str]] | None:
        """Longest prefix of ``parts`` naming a module; rest is a symbol
        path within it."""
        for cut in range(len(parts), 0, -1):
            stem = "/".join(parts[:cut])
            for candidate in (f"{stem}.py", f"{stem}/__init__.py"):
                if candidate in self.modules:
                    return candidate, parts[cut:]
        if parts:  # symbols of the package root __init__
            if "__init__.py" in self.modules:
                return "__init__.py", parts
        return None

    def _symbol_in(self, relpath: str, sym_parts: list[str],
                   depth: int = 0) -> FunctionInfo | None:
        """A function/class-constructor named by ``sym_parts`` inside the
        module at ``relpath``, following one re-export hop per level."""
        if not sym_parts or depth > 8:
            return None
        minfo = self.modules.get(relpath)
        if minfo is None:
            return None
        qual = ".".join(sym_parts)
        hit = minfo.functions.get(qual)
        if hit is not None:
            return hit
        head = sym_parts[0]
        if head in minfo.classes:
            init = minfo.functions.get(f"{head}.__init__")
            if len(sym_parts) == 1:
                return init
            meth = minfo.functions.get(qual)
            return meth
        # re-export: the module imported the symbol from elsewhere
        if head in minfo.imports:
            dotted = minfo.imports[head]
            parts = self._normalize(dotted, relpath)
            if parts is None:
                return None
            found = self._find_module(parts + sym_parts[1:])
            if found is None:
                return None
            target, rest = found
            if not rest:
                return None
            return self._symbol_in(target, rest, depth + 1)
        return None

    def resolve_symbol(self, module_relpath: str,
                       dotted: str) -> FunctionInfo | None:
        """Resolve a fully qualified dotted name (as produced by
        :func:`resolve_dotted` against a module's import map) to a package
        function, or None for external/unresolvable names."""
        parts = self._normalize(dotted, module_relpath)
        if parts is None:
            return None
        found = self._find_module(parts)
        if found is None:
            return None
        relpath, sym = found
        if not sym:
            return None
        return self._symbol_in(relpath, sym)

    def _method_on(self, minfo: ModuleInfo, class_name: str,
                   attr: str, depth: int = 0) -> FunctionInfo | None:
        """``self.attr`` lookup on a class, with base-class fallback."""
        if depth > 4:
            return None
        hit = minfo.functions.get(f"{class_name}.{attr}")
        if hit is not None:
            return hit
        for base in minfo.class_bases.get(class_name, ()):
            if base in minfo.classes:
                hit = self._method_on(minfo, base, attr, depth + 1)
                if hit is not None:
                    return hit
            elif base in minfo.imports:
                parts = self._normalize(minfo.imports[base], minfo.relpath)
                if parts is None:
                    continue
                found = self._find_module(parts)
                if found is None or not found[1]:
                    continue
                target = self.modules.get(found[0])
                if target is not None:
                    hit = self._method_on(target, found[1][0], attr,
                                          depth + 1)
                    if hit is not None:
                        return hit
        return None

    def resolve_call(self, minfo: ModuleInfo, call: ast.Call,
                     enclosing: FunctionInfo | None
                     ) -> list[FunctionInfo]:
        """The package functions one call may invoke (empty if external or
        unresolvable).  ``TABLE[i](...)`` dispatch returns every member."""
        func = call.func
        # dispatch through a module-level table of functions
        if isinstance(func, ast.Subscript) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in minfo.dispatch_tables:
            out = []
            for qual in minfo.dispatch_tables[func.value.id]:
                info = minfo.functions.get(qual)
                if info is not None:
                    out.append(info)
            return out
        if isinstance(func, ast.Name):
            name = func.id
            if enclosing is not None:
                local = minfo.local_defs.get(enclosing.qualname, {})
                if name in local:
                    hit = minfo.functions.get(local[name])
                    return [hit] if hit else []
            if name in minfo.functions:
                return [minfo.functions[name]]
            if name in minfo.classes:
                hit = minfo.functions.get(f"{name}.__init__")
                return [hit] if hit else []
            if name in minfo.imports:
                hit = self.resolve_symbol(minfo.relpath,
                                          minfo.imports[name])
                return [hit] if hit else []
            return []
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) \
                    and func.value.id in ("self", "cls") \
                    and enclosing is not None \
                    and enclosing.class_name is not None:
                hit = self._method_on(minfo, enclosing.class_name,
                                      func.attr)
                return [hit] if hit else []
            dotted = resolve_dotted(func, minfo.imports)
            if dotted is not None:
                hit = self.resolve_symbol(minfo.relpath, dotted)
                return [hit] if hit else []
        return []

    # --------------------------------------------------------- iteration
    def sorted_functions(self) -> list[FunctionInfo]:
        """Every indexed function, ordered by (module, qualname) — the
        canonical iteration order that keeps derived artifacts stable."""
        out: list[FunctionInfo] = []
        for relpath in sorted(self.modules):
            minfo = self.modules[relpath]
            for qual in sorted(minfo.functions):
                out.append(minfo.functions[qual])
        return out
