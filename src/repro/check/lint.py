"""Layer 1, part one: per-file AST lint rules.

Rules are specific to this codebase's invariants (see docs/CHECK.md):

* ``R001`` no-unseeded-rng — model/kernel code may not draw from global or
  unseeded RNG state; all randomness flows from the LINPACK-style LCG or an
  explicitly seeded generator (DESIGN.md §6.4).
* ``R002`` no-wall-clock — model/kernel code may not read wall-clock time;
  modeled time is pure arithmetic, so reruns reproduce identical tables.
* ``R003`` fp64-purity — kernel math paths are FP64 end-to-end; reduced
  precision lives only in the mixed-precision spec code
  (``gpu/mma_mixed.py``).
* ``R007`` kernelstats-api — outside ``gpu/``, :class:`KernelStats`
  counters are built through the counter API (``add_*``/``read_dram``/
  ``note_*``), never by direct field assignment, so the execute vs
  analytic-stats agreement tests check real accounting code.
* ``R008`` fault-site-registry — every ``faults.site(...)`` call names a
  string literal declared in :mod:`repro.faults.registry`, so the
  registry stays the complete, auditable inventory of what a chaos run
  can inject (docs/ROBUSTNESS.md).

Rule scoping is by path relative to the ``repro`` package root, which lets
tests lint synthetic package trees laid out the same way.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from ..faults.registry import SITE_NAMES
from .dataflow import ImportResolver, resolve_dotted
from .findings import Finding

__all__ = [
    "LintRule",
    "LINT_RULES",
    "lint_source",
    "lint_file",
    "lint_tree",
    "MODEL_PACKAGES",
    "FP64_SCOPE",
    "COUNTER_FIELDS",
    "KNOB_FIELDS",
]

#: packages holding model/kernel code — deterministic, clock-free by
#: contract.  ``perf/`` and ``harness/`` are measurement infrastructure and
#: legitimately read timers; the CLI is interactive glue.
MODEL_PACKAGES = ("kernels", "gpu", "sparse", "datasets", "analysis",
                  "apps", "suites")

#: packages whose math must stay FP64, with per-file allowlist
FP64_SCOPE = ("kernels", "gpu", "sparse")
FP64_ALLOWED_FILES = ("gpu/mma_mixed.py",)

#: KernelStats fields that are *counters*: mutable only through the API
COUNTER_FIELDS = frozenset({
    "tc_flops", "cc_flops", "tc_b1_ops", "cc_int_ops",
    "mma_instructions", "fma_instructions", "dram", "l1_bytes",
    "smem_bytes", "mma_input_useful", "mma_input_total",
    "mma_output_useful", "mma_output_total",
})

#: KernelStats fields that are declared model knobs/configuration — direct
#: assignment is the intended interface
KNOB_FIELDS = frozenset({
    "tc_efficiency", "cc_efficiency", "mlp", "serial_stages",
    "essential_flops",
})

_RNG_ALLOWED_TAILS = ("default_rng", "Random", "seed", "SeedSequence")
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})
_LOW_PRECISION_ATTRS = frozenset({"float32", "float16", "half", "single"})
_LOW_PRECISION_STRINGS = frozenset({"float32", "float16", "f4", "f2",
                                    "<f4", "<f2"})


def _in_packages(relpath: str, packages: Iterable[str]) -> bool:
    top = relpath.split("/", 1)[0]
    return top in packages


@dataclass(frozen=True)
class LintRule:
    """One AST rule: an id, an invariant, a path scope, and a checker."""

    rule: str
    title: str
    severity: str
    applies: Callable[[str], bool]
    check: Callable[[ast.Module, str], list[Finding]]


# Import/attribute resolution moved to dataflow.py (the call-graph layer
# shares it with contracts.py and the determinism engine); aliases keep
# the historical private names importable.
_ImportResolver = ImportResolver
_resolve_dotted = resolve_dotted


def _check_rng_and_clock(tree: ast.Module, relpath: str) -> list[Finding]:
    resolver = _ImportResolver()
    resolver.visit(tree)
    names = resolver.names
    out: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        full = _resolve_dotted(node.func, names)
        if full is None:
            continue
        if full.startswith("numpy.random.") or full.startswith("random."):
            tail = full.rsplit(".", 1)[-1]
            if tail in _RNG_ALLOWED_TAILS and node.args:
                continue  # explicitly seeded
            out.append(Finding(
                rule="R001", severity="error", path=relpath,
                symbol=full, line=node.lineno,
                message="unseeded/global RNG in model code; draw from the "
                        "LCG (datasets.synthetic) or pass an explicit seed"))
        elif full in _CLOCK_CALLS:
            out.append(Finding(
                rule="R002", severity="error", path=relpath,
                symbol=full, line=node.lineno,
                message="wall-clock read in model code; modeled time must "
                        "be pure arithmetic (DESIGN.md §6.4)"))
    return out


def _check_fp64_purity(tree: ast.Module, relpath: str) -> list[Finding]:
    resolver = _ImportResolver()
    resolver.visit(tree)
    names = resolver.names
    out: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Attribute, ast.Name)):
            full = _resolve_dotted(node, names)
            if full and full.startswith("numpy.") \
                    and full.rsplit(".", 1)[-1] in _LOW_PRECISION_ATTRS:
                out.append(Finding(
                    rule="R003", severity="error", path=relpath,
                    symbol=full, line=node.lineno,
                    message="reduced-precision dtype in an FP64 kernel "
                            "path; only gpu/mma_mixed.py may quantize"))
        elif isinstance(node, ast.Constant) \
                and isinstance(node.value, str) \
                and node.value in _LOW_PRECISION_STRINGS:
            out.append(Finding(
                rule="R003", severity="error", path=relpath,
                symbol=node.value, line=node.lineno,
                message="reduced-precision dtype string in an FP64 kernel "
                        "path; only gpu/mma_mixed.py may quantize"))
    # attribute chains visit their sub-nodes too; dedupe by location
    seen: set[tuple] = set()
    deduped = []
    for f in out:
        key = (f.line, f.symbol)
        if key not in seen:
            seen.add(key)
            deduped.append(f)
    return deduped


def _check_kernelstats_api(tree: ast.Module, relpath: str) -> list[Finding]:
    out: list[Finding] = []

    def flag(node: ast.AST, attr: str, how: str) -> None:
        out.append(Finding(
            rule="R007", severity="error", path=relpath,
            symbol=attr, line=node.lineno,
            message=f"KernelStats counter {attr!r} {how} outside gpu/; "
                    "use the counter API (add_*/read_dram/write_dram/"
                    "note_mma_utilization) so accounting stays auditable"))

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for t in targets:
                if isinstance(t, ast.Attribute) and t.attr in COUNTER_FIELDS:
                    flag(node, t.attr, "assigned directly")
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("append", "extend", "insert", "pop",
                                       "clear") \
                and isinstance(node.func.value, ast.Attribute) \
                and node.func.value.attr == "dram":
            flag(node, "dram", f"mutated via .{node.func.attr}()")
    return out


#: how a resolved call name can end and still be the fault-site probe
_FAULT_SITE_TAILS = ("faults.site", "faults.plan.site")


def _check_fault_sites(tree: ast.Module, relpath: str) -> list[Finding]:
    resolver = _ImportResolver()
    resolver.visit(tree)
    names = resolver.names
    out: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        full = _resolve_dotted(node.func, names)
        if full is None or not full.endswith(_FAULT_SITE_TAILS):
            continue
        arg = node.args[0] if node.args else None
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            out.append(Finding(
                rule="R008", severity="error", path=relpath,
                symbol=full, line=node.lineno,
                message="fault-site name must be a string literal so the "
                        "registry check (and chaos-plan audit) can see it"))
            continue
        if arg.value not in SITE_NAMES:
            out.append(Finding(
                rule="R008", severity="error", path=relpath,
                symbol=arg.value, line=node.lineno,
                message=f"fault site {arg.value!r} is not declared in "
                        "repro.faults.registry; add a FaultSite entry "
                        "(name, layer, description) first"))
    return out


LINT_RULES: tuple[LintRule, ...] = (
    LintRule("R001", "no-unseeded-rng", "error",
             lambda p: _in_packages(p, MODEL_PACKAGES),
             _check_rng_and_clock),
    LintRule("R003", "fp64-purity", "error",
             lambda p: _in_packages(p, FP64_SCOPE)
             and p not in FP64_ALLOWED_FILES,
             _check_fp64_purity),
    LintRule("R007", "kernelstats-api", "error",
             lambda p: not p.startswith("gpu/"),
             _check_kernelstats_api),
    LintRule("R008", "fault-site-registry", "error",
             lambda p: True,
             _check_fault_sites),
)
# R002 shares R001's checker (one resolution pass emits both rule ids);
# both are scoped by MODEL_PACKAGES through the R001 entry above.


def lint_source(source: str, relpath: str) -> list[Finding]:
    """Lint one module's source; ``relpath`` is package-relative with
    forward slashes (e.g. ``kernels/gemv.py``)."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return [Finding(rule="R000", severity="error", path=relpath,
                        symbol="<parse>", line=exc.lineno,
                        message=f"syntax error: {exc.msg}")]
    findings: list[Finding] = []
    for rule in LINT_RULES:
        if rule.applies(relpath):
            findings.extend(rule.check(tree, relpath))
    return findings


def lint_file(path: Path, root: Path) -> list[Finding]:
    relpath = path.relative_to(root).as_posix()
    return lint_source(path.read_text(), relpath)


def lint_tree(root: str | Path) -> list[Finding]:
    """Lint every ``.py`` file under the package root (``src/repro``)."""
    root = Path(root)
    findings: list[Finding] = []
    for path in sorted(root.rglob("*.py")):
        findings.extend(lint_file(path, root))
    findings.sort(key=lambda f: (f.path, f.line or 0, f.rule))
    return findings
