"""Layer 2: the warp-hazard sanitizer (a racecheck analog for the emulated
warp).

:class:`WarpSanitizer` installs itself as the :mod:`repro.gpu.warp_events`
tracer and audits the per-lane traffic the instrumented fragment and MMA
paths report:

* ``H001`` write-write hazard — two lanes write the same simulated
  shared-memory cell with no intervening warp sync;
* ``H002`` read-write hazard — a lane reads a cell another lane wrote (or
  writes a cell another lane read) in the same sync epoch;
* ``H003`` bank conflict (warning) — within one warp-wide access, two lanes
  of the same half-warp touch different addresses in the same bank.  The
  model is 32 banks of one FP64 word, evaluated per 16-lane half: 64-bit
  shared accesses issue as two half-warp transactions on real hardware, so
  cross-half collisions are not conflicts;
* ``H004`` lane-ownership violation — a fragment access whose (lane, row,
  col) does not match the PTX ``m8n8k4`` layout of Figure 1b
  (``gpu/fragments.py``).

Hazard state is kept per scope (one simulated kernel / warp program) and
cleared at every ``sync``.  Findings are deduplicated by (rule, scope,
array): a racy loop reports once, not once per iteration.
"""

from __future__ import annotations

import numpy as np

from ..gpu import fragments, warp_events
from .findings import Finding

__all__ = ["WarpSanitizer", "N_BANKS", "HALF_WARP"]

#: shared-memory banks in the FP64-word model
N_BANKS = 32
#: 64-bit accesses issue per half-warp
HALF_WARP = 16

_FRAGMENT_WIDTH = {"A": 4, "B": 8, "C": 8}


class _Epoch:
    """Read/write sets since the last sync, per simulated array."""

    def __init__(self) -> None:
        # (array, offset) -> (set of writer lanes, set of reader lanes)
        self.cells: dict[tuple[str, int], tuple[set[int], set[int]]] = {}

    def cell(self, array: str, offset: int) -> tuple[set[int], set[int]]:
        key = (array, int(offset))
        if key not in self.cells:
            self.cells[key] = (set(), set())
        return self.cells[key]

    def clear(self) -> None:
        self.cells.clear()


class WarpSanitizer:
    """Collects hazard findings from instrumented warp-level code.

    Use as a context manager::

        with WarpSanitizer() as san:
            warp_gemm_m8n8k4(a, b)
        assert not san.findings()
    """

    def __init__(self, check_bank_conflicts: bool = True) -> None:
        self.check_bank_conflicts = check_bank_conflicts
        self._findings: list[Finding] = []
        self._emitted: set[tuple[str, str, str]] = set()
        self._scopes: list[tuple[str, _Epoch]] = []
        self._global_epoch = _Epoch()
        #: total instrumented warp-wide accesses observed (lets callers
        #: assert the instrumentation actually fired)
        self.accesses = 0
        self.syncs = 0

    # ------------------------------------------------------ install
    def __enter__(self) -> "WarpSanitizer":
        warp_events.install(self)
        return self

    def __exit__(self, *exc: object) -> None:
        warp_events.uninstall(self)

    # ------------------------------------------------------ tracer protocol
    def begin_scope(self, name: str) -> None:
        self._scopes.append((name, _Epoch()))

    def end_scope(self) -> None:
        if self._scopes:
            self._scopes.pop()

    def sync(self, label: str = "") -> None:
        self.syncs += 1
        self._current_epoch().clear()

    def fragment_access(self, kind: str, op: str, lanes, rows, cols,
                        reg: int | None = None) -> None:
        lanes = np.asarray(lanes)
        rows = np.asarray(rows)
        cols = np.asarray(cols)
        self._check_ownership(kind, lanes, rows, cols, reg)
        width = _FRAGMENT_WIDTH.get(kind, 32)
        self.shared_access(op, kind, lanes, rows * width + cols, width)

    def shared_access(self, op: str, array: str, lanes, offsets,
                      width: int = 32) -> None:
        lanes = np.asarray(lanes)
        offsets = np.asarray(offsets)
        self.accesses += 1
        if self.check_bank_conflicts:
            self._check_banks(array, lanes, offsets)
        epoch = self._current_epoch()
        for lane, off in zip(lanes.tolist(), offsets.tolist()):
            writers, readers = epoch.cell(array, off)
            if op == "write":
                if writers - {lane}:
                    self._emit("H001", "error", array,
                               f"lanes {sorted(writers - {lane})} and "
                               f"{lane} write cell {off} of {array!r} with "
                               "no intervening warp sync")
                elif readers - {lane}:
                    self._emit("H002", "error", array,
                               f"lane {lane} writes cell {off} of "
                               f"{array!r} read by lanes "
                               f"{sorted(readers - {lane})} in the same "
                               "sync epoch")
                writers.add(lane)
            else:
                if writers - {lane}:
                    self._emit("H002", "error", array,
                               f"lane {lane} reads cell {off} of {array!r} "
                               f"written by lanes "
                               f"{sorted(writers - {lane})} in the same "
                               "sync epoch")
                readers.add(lane)

    # ------------------------------------------------------ checks
    def _check_ownership(self, kind: str, lanes, rows, cols,
                         reg: int | None) -> None:
        if kind == "A":
            exp_r = fragments.A_FRAGMENT_ROWS[lanes]
            exp_c = fragments.A_FRAGMENT_COLS[lanes]
        elif kind == "B":
            exp_r = fragments.B_FRAGMENT_ROWS[lanes]
            exp_c = fragments.B_FRAGMENT_COLS[lanes]
        elif kind == "C":
            r = 0 if reg is None else reg
            exp_r = fragments.C_FRAGMENT_ROWS[lanes, r]
            exp_c = fragments.C_FRAGMENT_COLS[lanes, r]
        else:
            return
        bad = (rows != exp_r) | (cols != exp_c)
        if np.any(bad):
            lane = int(np.asarray(lanes)[bad][0])
            self._emit(
                "H004", "error", kind,
                f"lane {lane} accesses {kind}[{int(np.asarray(rows)[bad][0])},"
                f"{int(np.asarray(cols)[bad][0])}] but the PTX m8n8k4 "
                f"layout assigns it {kind}"
                f"[{int(np.asarray(exp_r)[bad][0])},"
                f"{int(np.asarray(exp_c)[bad][0])}] (Figure 1b)")

    def _check_banks(self, array: str, lanes, offsets) -> None:
        for half in (lanes < HALF_WARP, lanes >= HALF_WARP):
            offs = offsets[half]
            if len(offs) < 2:
                continue
            banks = offs % N_BANKS
            for b in np.unique(banks):
                distinct = np.unique(offs[banks == b])
                if len(distinct) > 1:
                    self._emit(
                        "H003", "warning", array,
                        f"{len(distinct)}-way bank conflict on bank "
                        f"{int(b)} of {array!r} (offsets "
                        f"{[int(x) for x in distinct[:4]]}"
                        f"{'…' if len(distinct) > 4 else ''}) within one "
                        "half-warp access")

    # ------------------------------------------------------ bookkeeping
    def _current_epoch(self) -> _Epoch:
        return self._scopes[-1][1] if self._scopes else self._global_epoch

    def _scope_name(self) -> str:
        return self._scopes[-1][0] if self._scopes else "<global>"

    def _emit(self, rule: str, severity: str, array: str,
              message: str) -> None:
        scope = self._scope_name()
        key = (rule, scope, array)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self._findings.append(Finding(
            rule=rule, severity=severity, path=f"warp://{scope}/{array}",
            symbol=array, message=message))

    def findings(self) -> list[Finding]:
        return sorted(self._findings,
                      key=lambda f: (f.rule, f.path, f.symbol))

    def errors(self) -> list[Finding]:
        return [f for f in self.findings() if f.severity == "error"]
