"""Content-addressed two-tier result cache.

Keys are SHA-256 digests of a canonical byte encoding of (qualname,
params, library version, relevant source code), so they are stable across
processes and machines — Python's salted ``hash()`` is never used.  Values
live in an in-memory LRU (same-object returns within a process) backed by
an on-disk pickle store under :func:`default_cache_dir` (``REPRO_CACHE_DIR``
or ``~/.cache/repro``).

The determinism guarantee that makes this sound: every expensive artifact
in the pipeline flows from the fixed-seed LCG (DESIGN.md decision 4), so a
cache entry and a fresh recomputation are required to be *bit-identical* —
a property the test suite asserts for matrices, graphs, and functional
kernel executions.

Invalidation is automatic where it matters: generator keys mix in a hash
of the generating modules' source (:func:`source_token`), and functional
execution keys mix in a hash of the whole package
(:func:`package_source_token`), so editing code never serves stale
results.  ``REPRO_CACHE=0`` disables the disk tier entirely.

Integrity (docs/ROBUSTNESS.md): every disk entry carries a checksum
trailer (magic + SHA-256 of the pickled payload) written with the entry.
A load whose trailer does not verify — bit rot, torn write, or an
injected ``cache.read_corrupt`` fault — is *quarantined*: the file moves
to ``_quarantine/`` (outside the size ledger and the ``*.pkl`` glob, so
it can never be served or counted again) and the value is recomputed from
seeds, which by the determinism guarantee reproduces it bit-identically.
``cache.write_fail`` exercises the other contract: a dropped write is
silently absorbed because caching is best-effort — correctness never
depends on a write landing.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import tempfile
import time
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from pathlib import Path
from types import ModuleType
from typing import Any, Callable, TypeVar

import numpy as np

try:  # POSIX advisory locking for the cross-process size ledger
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from .. import faults

__all__ = [
    "CacheStats",
    "DiskStats",
    "PruneResult",
    "ResultCache",
    "cache_enabled",
    "content_key",
    "default_cache",
    "default_cache_dir",
    "default_max_disk_bytes",
    "package_source_token",
    "set_default_cache",
    "source_token",
]

T = TypeVar("T")

#: bump when the on-disk entry format changes (invalidates every entry)
CACHE_SCHEMA = 2

#: trailer = magic + first 16 bytes of SHA-256 over the pickled payload
_TRAILER_MAGIC = b"RPRC\x02"
_TRAILER_DIGEST_LEN = 16
_TRAILER_LEN = len(_TRAILER_MAGIC) + _TRAILER_DIGEST_LEN

#: quarantined entries kept for post-mortem before rotation drops the oldest
_QUARANTINE_KEEP = 32

#: orphaned ``*.tmp`` files (a writer died mid-write) older than this are
#: swept during pruning; young ones may still be racing toward os.replace
_STALE_TMP_S = 3600.0


def _seal(payload: bytes) -> bytes:
    """Append the integrity trailer to a pickled payload."""
    digest = hashlib.sha256(payload).digest()[:_TRAILER_DIGEST_LEN]
    return payload + _TRAILER_MAGIC + digest


def _unseal(blob: bytes) -> bytes:
    """Verify and strip the trailer; raises ``ValueError`` on any mismatch."""
    if len(blob) <= _TRAILER_LEN:
        raise ValueError("cache entry shorter than its integrity trailer")
    payload, trailer = blob[:-_TRAILER_LEN], blob[-_TRAILER_LEN:]
    if trailer[:len(_TRAILER_MAGIC)] != _TRAILER_MAGIC:
        raise ValueError("cache entry missing integrity trailer magic")
    digest = hashlib.sha256(payload).digest()[:_TRAILER_DIGEST_LEN]
    if trailer[len(_TRAILER_MAGIC):] != digest:
        raise ValueError("cache entry failed checksum verification")
    return payload


def cache_enabled() -> bool:
    """Whether the on-disk tier is enabled (``REPRO_CACHE=0`` turns it off)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "off", "no")


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def default_max_disk_bytes() -> int | None:
    """On-disk size cap from ``REPRO_CACHE_MAX_BYTES`` (None = unbounded).

    Accepts a plain byte count or a ``K``/``M``/``G`` suffix; ``0`` and
    unparseable values mean unbounded.
    """
    env = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip().lower()
    if not env:
        return None
    scale = 1
    for suffix, s in (("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30)):
        if env.endswith(suffix):
            env, scale = env[:-1], s
            break
    try:
        cap = int(float(env) * scale)
    except ValueError:
        return None
    return cap if cap > 0 else None


# ------------------------------------------------------------------ hashing

def _encode(obj: Any, h) -> None:
    """Feed a canonical byte encoding of ``obj`` into hasher ``h``.

    Only value-like inputs are accepted; arbitrary objects raise TypeError
    so cache keys never silently depend on object identity.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"i" + repr(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"f" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"s" + repr(len(raw)).encode() + b":" + raw)
    elif isinstance(obj, bytes):
        h.update(b"y" + repr(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, Enum):
        h.update(b"e")
        _encode(type(obj).__name__, h)
        _encode(obj.value, h)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"a" + arr.dtype.str.encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"d" + type(obj).__qualname__.encode())
        for f in fields(obj):
            _encode(f.name, h)
            _encode(getattr(obj, f.name), h)
    elif isinstance(obj, Mapping):
        h.update(b"m")
        for k in sorted(obj, key=repr):
            _encode(k, h)
            _encode(obj[k], h)
    elif isinstance(obj, (Sequence, frozenset, set)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) \
            else obj
        h.update(b"l" + repr(len(items)).encode())
        for item in items:
            _encode(item, h)
    else:
        raise TypeError(
            f"cannot derive a stable cache key from {type(obj).__name__!r}")


def content_key(*parts: Any) -> str:
    """Stable hex digest of the canonical encoding of ``parts``.

    Identical inputs give identical keys in every process (asserted by a
    cross-process test) — the content address of a cached artifact.
    """
    h = hashlib.sha256()
    h.update(b"repro-cache" + repr(CACHE_SCHEMA).encode())
    for part in parts:
        h.update(b"|")
        _encode(part, h)
    return h.hexdigest()


_SOURCE_TOKENS: dict[str, str] = {}


def source_token(*modules: ModuleType) -> str:
    """Digest of the given modules' source files.

    Mixing this into a generator's cache key makes invalidation automatic:
    editing the generator changes the key, so stale artifacts are never
    served across code changes.
    """
    h = hashlib.sha256()
    for mod in modules:
        name = mod.__name__
        tok = _SOURCE_TOKENS.get(name)
        if tok is None:
            path = getattr(mod, "__file__", None)
            try:
                data = Path(path).read_bytes() if path else name.encode()
            except OSError:  # pragma: no cover - sourceless module
                data = name.encode()
            tok = hashlib.sha256(data).hexdigest()
            _SOURCE_TOKENS[name] = tok
        h.update(tok.encode())
    return h.hexdigest()


_PACKAGE_TOKEN: str | None = None


def package_source_token() -> str:
    """Digest of every ``.py`` file in the ``repro`` package.

    Functional kernel executions depend on code spread across the whole
    package, so their cache keys use this: any code change invalidates
    them (computed once per process; ~milliseconds).
    """
    global _PACKAGE_TOKEN
    if _PACKAGE_TOKEN is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            try:
                h.update(hashlib.sha256(path.read_bytes()).digest())
            except OSError:  # pragma: no cover - unreadable file
                pass
        _PACKAGE_TOKEN = h.hexdigest()
    return _PACKAGE_TOKEN


# ------------------------------------------------------------------ store

@dataclass(frozen=True)
class DiskStats:
    """On-disk footprint of one cache directory."""

    directory: str
    total_entries: int
    total_bytes: int
    #: per-kind (subdirectory) entry and byte counts
    kinds: dict[str, tuple[int, int]]
    max_disk_bytes: int | None
    #: corrupt entries parked in ``_quarantine/`` — outside the ledger above
    quarantined_entries: int = 0
    quarantined_bytes: int = 0


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one LRU pruning pass."""

    removed_entries: int
    removed_bytes: int
    remaining_entries: int
    remaining_bytes: int


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    #: entries whose pickled payload failed to decode (=> recompute)
    load_errors: int = 0
    #: entries whose checksum trailer failed to verify (=> recompute)
    integrity_failures: int = 0
    #: corrupt entries moved aside to ``_quarantine/``
    quarantined: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


#: schema of the ``_ledger.json`` size ledger (bump on format change)
_LEDGER_SCHEMA = 1


class _SizeLedger:
    """Lock-guarded ``_ledger.json``: relative path -> [bytes, mtime].

    The ledger lets concurrent pruners (serve-fabric shards sharing one
    store directory) evict by size without each re-statting every entry
    on every pass.  The hot path never touches it — loads and stores
    record into an in-memory pending set that :meth:`ResultCache.prune`
    merges under the lock.  A missing or corrupt ledger degrades to a
    full directory scan (the pre-ledger behavior), never to an error.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self.path = directory / "_ledger.json"
        self._lock_path = directory / "_ledger.lock"

    @contextlib.contextmanager
    def locked(self):
        """Cross-process exclusive section (flock on ``_ledger.lock``)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:  # pragma: no cover - unwritable store
            yield
            return
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            with contextlib.suppress(OSError):
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def read(self) -> dict[str, list[float]] | None:
        """The ledger contents, or None when absent/corrupt (=> rescan)."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) \
                or payload.get("schema") != _LEDGER_SCHEMA:
            return None
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            return None
        out: dict[str, list[float]] = {}
        for rel, rec in entries.items():
            if not (isinstance(rel, str) and isinstance(rec, list)
                    and len(rec) == 2
                    and all(isinstance(x, (int, float))
                            and not isinstance(x, bool) for x in rec)):
                return None
            out[rel] = [int(rec[0]), float(rec[1])]
        return out

    def write(self, entries: dict[str, list[float]]) -> None:
        """Atomically replace the ledger (best-effort, like the store)."""
        blob = json.dumps(
            {"schema": _LEDGER_SCHEMA,
             "entries": {rel: entries[rel] for rel in sorted(entries)}},
            separators=(",", ":"))
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(blob)
            os.replace(tmp, self.path)
        except OSError:  # pragma: no cover - unwritable store
            if tmp is not None:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)


class ResultCache:
    """Two-tier (memory LRU + on-disk pickle) content-addressed store.

    The memory tier returns the *same object* on repeated lookups within a
    process; the disk tier survives processes and returns bit-identical
    values (pickle round-trips of numpy arrays are exact).  A truncated or
    otherwise corrupt disk entry is treated as a miss: the value is
    recomputed and the entry rewritten.  Writes are atomic (temp file +
    ``os.replace``) so concurrent processes never observe partial entries.
    """

    #: prune at most once per this many disk writes (keeps the directory
    #: scan off the per-entry hot path)
    PRUNE_EVERY = 16

    def __init__(self, directory: str | Path | None = None, *,
                 memory_items: int = 512, disk: bool | None = None,
                 max_disk_bytes: int | None = None) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.disk = cache_enabled() if disk is None else disk
        self.memory_items = memory_items
        self.max_disk_bytes = max_disk_bytes if max_disk_bytes is not None \
            else default_max_disk_bytes()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._writes_since_prune = 0
        self._ledger = _SizeLedger(self.directory)
        #: entries this process wrote/touched since the last prune,
        #: rel path -> [size, mtime]; merged into the ledger under lock
        self._pending_ledger: dict[str, list[float]] = {}
        #: entries this process removed (quarantine) since the last prune
        self._pending_drops: set[str] = set()
        self.stats = CacheStats()

    # -------------------------------------------------------------- tiers
    def _entry_path(self, kind: str, key: str) -> Path:
        return self.directory / kind / f"{key}.pkl"

    def _rel(self, path: Path) -> str:
        return f"{path.parent.name}/{path.name}"

    def _note_entry(self, path: Path, size: int) -> None:
        rel = self._rel(path)
        self._pending_drops.discard(rel)
        self._pending_ledger[rel] = [int(size), time.time()]

    def _note_drop(self, path: Path) -> None:
        rel = self._rel(path)
        self._pending_ledger.pop(rel, None)
        self._pending_drops.add(rel)

    def _memory_put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    def _quarantine(self, path: Path) -> None:
        """Park a corrupt entry under ``_quarantine/`` for post-mortem.

        The ``.quar`` suffix and the reserved directory keep quarantined
        files out of the ``*/*.pkl`` entry glob — they are never served
        again and never count toward the size ledger.  Best-effort: if the
        move fails the file is deleted instead (a corrupt entry must not
        survive in place, or every future lookup re-fails on it).
        """
        dest_dir = self.directory / "_quarantine"
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest_dir / f"{path.parent.name}__{path.stem}.quar")
            self.stats.quarantined += 1
        except OSError:  # pragma: no cover - raced deletion / odd fs
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self._note_drop(path)

    def _disk_load(self, path: Path) -> tuple[bool, Any]:
        if not self.disk:
            return False, None
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return False, None
        except OSError:  # pragma: no cover - unreadable store
            self.stats.load_errors += 1
            return False, None
        if faults.site("cache.read_corrupt", key=path.stem) and blob:
            mid = len(blob) // 2  # injected bit rot: flip one payload byte
            blob = blob[:mid] + bytes([blob[mid] ^ 0xFF]) + blob[mid + 1:]
        try:
            payload = _unseal(blob)
        except ValueError:  # failed checksum: quarantine and recompute
            self.stats.integrity_failures += 1
            self._quarantine(path)
            return False, None
        try:
            value = pickle.loads(payload)
        except Exception:  # verified bytes that won't decode: stale schema
            self.stats.load_errors += 1
            self._quarantine(path)
            return False, None
        try:
            os.utime(path)  # refresh mtime: the LRU recency for pruning
        except OSError:  # pragma: no cover - read-only store
            pass
        self._note_entry(path, len(blob))
        return True, value

    def _disk_store(self, path: Path, value: Any) -> None:
        if not self.disk:
            return
        if faults.site("cache.write_fail", key=path.stem):
            return  # injected full/failing disk: drop the write
        try:
            blob = _seal(pickle.dumps(value,
                                      protocol=pickle.HIGHEST_PROTOCOL))
        except (pickle.PicklingError, TypeError, AttributeError):
            return  # unpicklable: caching is best-effort
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return  # unwritable: caching is best-effort
        self._note_entry(path, len(blob))
        if self.max_disk_bytes is not None:
            self._writes_since_prune += 1
            if self._writes_since_prune >= self.PRUNE_EVERY:
                self._writes_since_prune = 0
                self.prune()

    # ---------------------------------------------------------------- API
    def get_or_compute(self, kind: str, key: str,
                       compute: Callable[[], T]) -> T:
        """Return the cached value for ``(kind, key)``, computing on miss."""
        mem_key = f"{kind}/{key}"
        if mem_key in self._memory:
            self.stats.memory_hits += 1
            self._memory.move_to_end(mem_key)
            return self._memory[mem_key]
        path = self._entry_path(kind, key)
        found, value = self._disk_load(path)
        if found:
            self.stats.disk_hits += 1
            self._memory_put(mem_key, value)
            return value
        self.stats.misses += 1
        value = compute()
        self._disk_store(path, value)
        self._memory_put(mem_key, value)
        return value

    def peek(self, kind: str, key: str) -> tuple[bool, Any]:
        """Lookup without computing: (found, value).

        Promotes a disk hit into the memory tier like
        :meth:`get_or_compute`, but a miss stays a miss — the primitive
        the serve fabric's persistent served-result store needs (the
        answer may not be worth computing synchronously here).
        """
        mem_key = f"{kind}/{key}"
        if mem_key in self._memory:
            self.stats.memory_hits += 1
            self._memory.move_to_end(mem_key)
            return True, self._memory[mem_key]
        found, value = self._disk_load(self._entry_path(kind, key))
        if found:
            self.stats.disk_hits += 1
            self._memory_put(mem_key, value)
            return True, value
        self.stats.misses += 1
        return False, None

    def put(self, kind: str, key: str, value: Any) -> None:
        """Store a value computed elsewhere under ``(kind, key)``.

        Write-through to both tiers, same best-effort contract as
        :meth:`get_or_compute` (an injected or real disk failure drops
        the write silently).
        """
        self._disk_store(self._entry_path(kind, key), value)
        self._memory_put(f"{kind}/{key}", value)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier is untouched)."""
        self._memory.clear()

    # ------------------------------------------------------------- pruning
    def _disk_entries(self) -> list[tuple[Path, int, float]]:
        """Every on-disk entry as (path, size, mtime); best-effort."""
        entries = []
        if not self.directory.is_dir():
            return entries
        for path in self.directory.glob("*/*.pkl"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - raced deletion
                continue
            entries.append((path, st.st_size, st.st_mtime))
        return entries

    def _quarantine_entries(self) -> list[tuple[Path, int, float]]:
        entries = []
        for path in (self.directory / "_quarantine").glob("*.quar"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - raced deletion
                continue
            entries.append((path, st.st_size, st.st_mtime))
        return entries

    def disk_stats(self) -> DiskStats:
        """Size and entry counts of the on-disk tier, per kind.

        Quarantined files are reported separately and excluded from the
        entry/byte ledger: they are dead weight awaiting post-mortem, not
        servable cache contents.
        """
        kinds: dict[str, tuple[int, int]] = {}
        total_entries = total_bytes = 0
        for path, size, _ in self._disk_entries():
            kind = path.parent.name
            n, b = kinds.get(kind, (0, 0))
            kinds[kind] = (n + 1, b + size)
            total_entries += 1
            total_bytes += size
        quarantined = self._quarantine_entries()
        return DiskStats(directory=str(self.directory),
                         total_entries=total_entries,
                         total_bytes=total_bytes,
                         kinds=dict(sorted(kinds.items())),
                         max_disk_bytes=self.max_disk_bytes,
                         quarantined_entries=len(quarantined),
                         quarantined_bytes=sum(s for _, s, _ in quarantined))

    def prune(self, max_bytes: int | None = None, *,
              rebuild_ledger: bool = False) -> PruneResult:
        """Evict least-recently-used entries until the store fits.

        Recency is the entry's mtime, refreshed on every disk hit, so
        eviction order approximates true LRU across processes.  With no
        cap configured and no ``max_bytes`` given, eviction is a no-op —
        but every pass still sweeps crash debris: orphaned ``*.tmp``
        files from writers that died mid-write (older than an hour, so
        in-flight writes are never raced), and quarantined entries beyond
        the newest :data:`_QUARANTINE_KEEP`.

        Sizes come from the cross-process ``_ledger.json`` when present:
        each pruner merges its own pending writes/touches under the
        ledger lock instead of re-statting the whole disk tier, so N
        concurrent shard pruners cost one directory scan total, not N per
        pass.  ``rebuild_ledger=True`` forces a full rescan (resyncing
        after out-of-band deletions); a missing or corrupt ledger
        rebuilds the same way automatically.
        """
        self._sweep_debris()
        cap = self.max_disk_bytes if max_bytes is None else max_bytes
        with self._ledger.locked():
            entries = None if rebuild_ledger else self._ledger.read()
            if entries is None:
                # scan and start fresh: the scan's mtimes are newer truth
                # than any pending touch recorded before it ran
                entries = {self._rel(p): [size, mtime]
                           for p, size, mtime in self._disk_entries()}
                self._pending_ledger.clear()
            else:
                for rel in self._pending_drops:
                    entries.pop(rel, None)
                for rel, rec in self._pending_ledger.items():
                    old = entries.get(rel)
                    mtime = rec[1] if old is None else max(rec[1], old[1])
                    entries[rel] = [rec[0], mtime]
                self._pending_ledger.clear()
            self._pending_drops.clear()
            total = int(sum(rec[0] for rec in entries.values()))
            removed_entries = removed_bytes = 0
            if cap is not None:
                for rel in sorted(entries, key=lambda r: entries[r][1]):
                    if total <= cap:
                        break
                    size = int(entries[rel][0])
                    try:
                        (self.directory / rel).unlink()
                    except FileNotFoundError:
                        # removed out-of-band (another pruner, a manual
                        # rm): drop the ghost without counting it
                        entries.pop(rel)
                        total -= size
                        continue
                    except OSError:  # pragma: no cover - raced deletion
                        continue
                    entries.pop(rel)
                    total -= size
                    removed_entries += 1
                    removed_bytes += size
            self._ledger.write(entries)
        return PruneResult(
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            remaining_entries=len(entries),
            remaining_bytes=total,
        )

    def _sweep_debris(self) -> None:
        """Crash-safe cleanup: stale temp files and excess quarantine."""
        if not self.directory.is_dir():
            return
        cutoff = time.time() - _STALE_TMP_S
        for tmp in self.directory.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
            except OSError:  # pragma: no cover - raced deletion
                continue
        quarantined = sorted(self._quarantine_entries(),
                             key=lambda e: e[2], reverse=True)
        for path, _, _ in quarantined[_QUARANTINE_KEEP:]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced deletion
                continue

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultCache({str(self.directory)!r}, disk={self.disk}, "
                f"stats={self.stats})")


_DEFAULT: ResultCache | None = None


def default_cache() -> ResultCache:
    """The process-wide cache (created lazily from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ResultCache()
    return _DEFAULT


def set_default_cache(cache: ResultCache | None) -> ResultCache | None:
    """Replace the process-wide cache (tests); returns the previous one."""
    global _DEFAULT
    previous, _DEFAULT = _DEFAULT, cache
    return previous
