"""Content-addressed two-tier result cache.

Keys are SHA-256 digests of a canonical byte encoding of (qualname,
params, library version, relevant source code), so they are stable across
processes and machines — Python's salted ``hash()`` is never used.  Values
live in an in-memory LRU (same-object returns within a process) backed by
an on-disk pickle store under :func:`default_cache_dir` (``REPRO_CACHE_DIR``
or ``~/.cache/repro``).

The determinism guarantee that makes this sound: every expensive artifact
in the pipeline flows from the fixed-seed LCG (DESIGN.md decision 4), so a
cache entry and a fresh recomputation are required to be *bit-identical* —
a property the test suite asserts for matrices, graphs, and functional
kernel executions.

Invalidation is automatic where it matters: generator keys mix in a hash
of the generating modules' source (:func:`source_token`), and functional
execution keys mix in a hash of the whole package
(:func:`package_source_token`), so editing code never serves stale
results.  ``REPRO_CACHE=0`` disables the disk tier entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from pathlib import Path
from types import ModuleType
from typing import Any, Callable, TypeVar

import numpy as np

__all__ = [
    "CacheStats",
    "DiskStats",
    "PruneResult",
    "ResultCache",
    "cache_enabled",
    "content_key",
    "default_cache",
    "default_cache_dir",
    "default_max_disk_bytes",
    "package_source_token",
    "set_default_cache",
    "source_token",
]

T = TypeVar("T")

#: bump when the on-disk entry format changes (invalidates every entry)
CACHE_SCHEMA = 1


def cache_enabled() -> bool:
    """Whether the on-disk tier is enabled (``REPRO_CACHE=0`` turns it off)."""
    return os.environ.get("REPRO_CACHE", "1").lower() not in ("0", "off", "no")


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


def default_max_disk_bytes() -> int | None:
    """On-disk size cap from ``REPRO_CACHE_MAX_BYTES`` (None = unbounded).

    Accepts a plain byte count or a ``K``/``M``/``G`` suffix; ``0`` and
    unparseable values mean unbounded.
    """
    env = os.environ.get("REPRO_CACHE_MAX_BYTES", "").strip().lower()
    if not env:
        return None
    scale = 1
    for suffix, s in (("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30)):
        if env.endswith(suffix):
            env, scale = env[:-1], s
            break
    try:
        cap = int(float(env) * scale)
    except ValueError:
        return None
    return cap if cap > 0 else None


# ------------------------------------------------------------------ hashing

def _encode(obj: Any, h) -> None:
    """Feed a canonical byte encoding of ``obj`` into hasher ``h``.

    Only value-like inputs are accepted; arbitrary objects raise TypeError
    so cache keys never silently depend on object identity.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"i" + repr(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"f" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"s" + repr(len(raw)).encode() + b":" + raw)
    elif isinstance(obj, bytes):
        h.update(b"y" + repr(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, Enum):
        h.update(b"e")
        _encode(type(obj).__name__, h)
        _encode(obj.value, h)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"a" + arr.dtype.str.encode() + repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"d" + type(obj).__qualname__.encode())
        for f in fields(obj):
            _encode(f.name, h)
            _encode(getattr(obj, f.name), h)
    elif isinstance(obj, Mapping):
        h.update(b"m")
        for k in sorted(obj, key=repr):
            _encode(k, h)
            _encode(obj[k], h)
    elif isinstance(obj, (Sequence, frozenset, set)):
        items = sorted(obj, key=repr) if isinstance(obj, (set, frozenset)) \
            else obj
        h.update(b"l" + repr(len(items)).encode())
        for item in items:
            _encode(item, h)
    else:
        raise TypeError(
            f"cannot derive a stable cache key from {type(obj).__name__!r}")


def content_key(*parts: Any) -> str:
    """Stable hex digest of the canonical encoding of ``parts``.

    Identical inputs give identical keys in every process (asserted by a
    cross-process test) — the content address of a cached artifact.
    """
    h = hashlib.sha256()
    h.update(b"repro-cache" + repr(CACHE_SCHEMA).encode())
    for part in parts:
        h.update(b"|")
        _encode(part, h)
    return h.hexdigest()


_SOURCE_TOKENS: dict[str, str] = {}


def source_token(*modules: ModuleType) -> str:
    """Digest of the given modules' source files.

    Mixing this into a generator's cache key makes invalidation automatic:
    editing the generator changes the key, so stale artifacts are never
    served across code changes.
    """
    h = hashlib.sha256()
    for mod in modules:
        name = mod.__name__
        tok = _SOURCE_TOKENS.get(name)
        if tok is None:
            path = getattr(mod, "__file__", None)
            try:
                data = Path(path).read_bytes() if path else name.encode()
            except OSError:  # pragma: no cover - sourceless module
                data = name.encode()
            tok = hashlib.sha256(data).hexdigest()
            _SOURCE_TOKENS[name] = tok
        h.update(tok.encode())
    return h.hexdigest()


_PACKAGE_TOKEN: str | None = None


def package_source_token() -> str:
    """Digest of every ``.py`` file in the ``repro`` package.

    Functional kernel executions depend on code spread across the whole
    package, so their cache keys use this: any code change invalidates
    them (computed once per process; ~milliseconds).
    """
    global _PACKAGE_TOKEN
    if _PACKAGE_TOKEN is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            try:
                h.update(hashlib.sha256(path.read_bytes()).digest())
            except OSError:  # pragma: no cover - unreadable file
                pass
        _PACKAGE_TOKEN = h.hexdigest()
    return _PACKAGE_TOKEN


# ------------------------------------------------------------------ store

@dataclass(frozen=True)
class DiskStats:
    """On-disk footprint of one cache directory."""

    directory: str
    total_entries: int
    total_bytes: int
    #: per-kind (subdirectory) entry and byte counts
    kinds: dict[str, tuple[int, int]]
    max_disk_bytes: int | None


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one LRU pruning pass."""

    removed_entries: int
    removed_bytes: int
    remaining_entries: int
    remaining_bytes: int


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    #: on-disk entries that failed to load (corruption => recompute)
    load_errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ResultCache:
    """Two-tier (memory LRU + on-disk pickle) content-addressed store.

    The memory tier returns the *same object* on repeated lookups within a
    process; the disk tier survives processes and returns bit-identical
    values (pickle round-trips of numpy arrays are exact).  A truncated or
    otherwise corrupt disk entry is treated as a miss: the value is
    recomputed and the entry rewritten.  Writes are atomic (temp file +
    ``os.replace``) so concurrent processes never observe partial entries.
    """

    #: prune at most once per this many disk writes (keeps the directory
    #: scan off the per-entry hot path)
    PRUNE_EVERY = 16

    def __init__(self, directory: str | Path | None = None, *,
                 memory_items: int = 512, disk: bool | None = None,
                 max_disk_bytes: int | None = None) -> None:
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.disk = cache_enabled() if disk is None else disk
        self.memory_items = memory_items
        self.max_disk_bytes = max_disk_bytes if max_disk_bytes is not None \
            else default_max_disk_bytes()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._writes_since_prune = 0
        self.stats = CacheStats()

    # -------------------------------------------------------------- tiers
    def _entry_path(self, kind: str, key: str) -> Path:
        return self.directory / kind / f"{key}.pkl"

    def _memory_put(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_items:
            self._memory.popitem(last=False)

    def _disk_load(self, path: Path) -> tuple[bool, Any]:
        if not self.disk:
            return False, None
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            return False, None
        except Exception:  # truncated/corrupt entry: recompute
            self.stats.load_errors += 1
            return False, None
        try:
            os.utime(path)  # refresh mtime: the LRU recency for pruning
        except OSError:  # pragma: no cover - read-only store
            pass
        return True, value

    def _disk_store(self, path: Path, value: Any) -> None:
        if not self.disk:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except (OSError, pickle.PicklingError):
            return  # unwritable/unpicklable: caching is best-effort
        if self.max_disk_bytes is not None:
            self._writes_since_prune += 1
            if self._writes_since_prune >= self.PRUNE_EVERY:
                self._writes_since_prune = 0
                self.prune()

    # ---------------------------------------------------------------- API
    def get_or_compute(self, kind: str, key: str,
                       compute: Callable[[], T]) -> T:
        """Return the cached value for ``(kind, key)``, computing on miss."""
        mem_key = f"{kind}/{key}"
        if mem_key in self._memory:
            self.stats.memory_hits += 1
            self._memory.move_to_end(mem_key)
            return self._memory[mem_key]
        path = self._entry_path(kind, key)
        found, value = self._disk_load(path)
        if found:
            self.stats.disk_hits += 1
            self._memory_put(mem_key, value)
            return value
        self.stats.misses += 1
        value = compute()
        self._disk_store(path, value)
        self._memory_put(mem_key, value)
        return value

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier is untouched)."""
        self._memory.clear()

    # ------------------------------------------------------------- pruning
    def _disk_entries(self) -> list[tuple[Path, int, float]]:
        """Every on-disk entry as (path, size, mtime); best-effort."""
        entries = []
        if not self.directory.is_dir():
            return entries
        for path in self.directory.glob("*/*.pkl"):
            try:
                st = path.stat()
            except OSError:  # pragma: no cover - raced deletion
                continue
            entries.append((path, st.st_size, st.st_mtime))
        return entries

    def disk_stats(self) -> DiskStats:
        """Size and entry counts of the on-disk tier, per kind."""
        kinds: dict[str, tuple[int, int]] = {}
        total_entries = total_bytes = 0
        for path, size, _ in self._disk_entries():
            kind = path.parent.name
            n, b = kinds.get(kind, (0, 0))
            kinds[kind] = (n + 1, b + size)
            total_entries += 1
            total_bytes += size
        return DiskStats(directory=str(self.directory),
                         total_entries=total_entries,
                         total_bytes=total_bytes,
                         kinds=dict(sorted(kinds.items())),
                         max_disk_bytes=self.max_disk_bytes)

    def prune(self, max_bytes: int | None = None) -> PruneResult:
        """Evict least-recently-used entries until the store fits.

        Recency is the entry's mtime, refreshed on every disk hit, so
        eviction order approximates true LRU across processes.  With no
        cap configured and no ``max_bytes`` given this is a no-op.
        """
        cap = self.max_disk_bytes if max_bytes is None else max_bytes
        entries = self._disk_entries()
        total = sum(size for _, size, _ in entries)
        removed_entries = removed_bytes = 0
        if cap is not None:
            for path, size, _ in sorted(entries, key=lambda e: e[2]):
                if total <= cap:
                    break
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced deletion
                    continue
                total -= size
                removed_entries += 1
                removed_bytes += size
        return PruneResult(
            removed_entries=removed_entries,
            removed_bytes=removed_bytes,
            remaining_entries=len(entries) - removed_entries,
            remaining_bytes=total,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ResultCache({str(self.directory)!r}, disk={self.disk}, "
                f"stats={self.stats})")


_DEFAULT: ResultCache | None = None


def default_cache() -> ResultCache:
    """The process-wide cache (created lazily from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ResultCache()
    return _DEFAULT


def set_default_cache(cache: ResultCache | None) -> ResultCache | None:
    """Replace the process-wide cache (tests); returns the previous one."""
    global _DEFAULT
    previous, _DEFAULT = _DEFAULT, cache
    return previous
