"""Cross-cutting evaluation-engine layer: parallel fan-out,
content-addressed result caching, and per-stage instrumentation.

The characterization pipeline is an embarrassingly parallel grid
(workload x variant x case x GPU) built from deterministic generators, so
two orthogonal mechanisms cover almost all of its cost:

* :class:`ParallelExecutor` — deterministic, order-preserving fan-out of
  independent evaluation tasks over a process pool (with an in-process
  fallback for ``n_jobs=1`` that produces identical results in identical
  order);
* :class:`ResultCache` — a two-tier (in-memory LRU + on-disk) store keyed
  by a stable content hash of (qualname, params, library version, source
  code), exploiting the fixed-seed LCG determinism guarantee (DESIGN.md
  decision 4): cached and freshly computed artifacts are bit-identical.

:mod:`repro.perf.instrument` records per-stage wall-clock so regressions
are visible, and :mod:`repro.perf.bench` measures cold/warm pipeline
wall-clock into ``BENCH_perf.json`` for the perf trajectory across PRs.
"""

from .cache import (
    CacheStats,
    DiskStats,
    PruneResult,
    ResultCache,
    cache_enabled,
    content_key,
    default_cache,
    default_cache_dir,
    default_max_disk_bytes,
    package_source_token,
    set_default_cache,
    source_token,
)
from .executor import ParallelExecutor, WorkerTaskError, resolve_n_jobs
from .instrument import (
    StageTiming,
    record_stage,
    reset_stage_timings,
    stage,
    stage_timings,
)

__all__ = [
    "CacheStats",
    "DiskStats",
    "PruneResult",
    "ResultCache",
    "cache_enabled",
    "content_key",
    "default_cache",
    "default_cache_dir",
    "default_max_disk_bytes",
    "package_source_token",
    "set_default_cache",
    "source_token",
    "ParallelExecutor",
    "WorkerTaskError",
    "resolve_n_jobs",
    "StageTiming",
    "record_stage",
    "reset_stage_timings",
    "stage",
    "stage_timings",
]
