"""Per-stage wall-clock instrumentation with nested attribution.

Pipeline stages (dataset generation, grid evaluation, observation audit,
functional accuracy runs, report assembly) record their wall-clock into a
process-global registry via the :func:`stage` context manager.  Stages
nest: entering ``stage("analysis.accuracy_table")`` inside
``stage("analysis.verify_all")`` records the child under the path
``analysis.verify_all/analysis.accuracy_table``, and every entry tracks
both *inclusive* seconds (the whole span) and *self* seconds (the span
minus enclosed child spans).  Self seconds partition wall-clock without
double counting, which is what makes the profiler's ``coverage`` ratio
(attributed / wall) well defined — the metric ``repro bench --profile``
reports and the CI gate bounds.

The harness report layer formats the registry into the run report,
``repro ... --timings`` prints it, and the ``REPRO_STAGE_JSON`` hook dumps
it for the cross-process bench profiler.  Worker processes return their
registries to the parent through :class:`~repro.perf.executor.ParallelExecutor`,
which merges them under the stage active at the call site via
:func:`merge_stage_timings` — so fan-out never loses attribution.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["StageTiming", "stage", "record_stage", "stage_timings",
           "reset_stage_timings", "reset_stage_stack",
           "snapshot_stage_timings", "merge_stage_timings",
           "current_stage_path", "note_worker_count", "note_graph_run",
           "stage_meta", "SEP"]

#: path separator between nested stage names (stage names must not use it)
SEP = "/"


@dataclass
class StageTiming:
    """Accumulated wall-clock for one named pipeline stage.

    ``name`` is the full nesting path (``SEP``-joined); ``seconds`` is
    inclusive wall-clock, ``self_seconds`` excludes enclosed child stages.
    """

    name: str
    seconds: float = 0.0
    calls: int = 0
    self_seconds: float = 0.0

    @property
    def leaf(self) -> str:
        """The stage's own name, without the nesting path."""
        return self.name.rsplit(SEP, 1)[-1]

    @property
    def depth(self) -> int:
        return self.name.count(SEP)


_REGISTRY: dict[str, StageTiming] = {}
#: run metadata the executor annotates (e.g. the effective worker count)
_META: dict[str, object] = {}
# the nesting stack is per-thread (the serve pool runs queries on
# threads); each frame is [name, child_seconds_accumulator]
_LOCAL = threading.local()


def _stack() -> list[list]:
    st = getattr(_LOCAL, "stack", None)
    if st is None:
        st = _LOCAL.stack = []
    return st


def current_stage_path() -> str:
    """The ``SEP``-joined path of the stages active on this thread."""
    return SEP.join(frame[0] for frame in _stack())


def record_stage(name: str, seconds: float,
                 self_seconds: float | None = None,
                 calls: int = 1) -> None:
    """Accumulate ``seconds`` of wall-clock under the full path ``name``.

    Direct calls (no active :func:`stage` scope) count the whole span as
    self time.
    """
    entry = _REGISTRY.get(name)
    if entry is None:
        entry = _REGISTRY[name] = StageTiming(name)
    entry.seconds += seconds
    entry.self_seconds += seconds if self_seconds is None else self_seconds
    entry.calls += calls


@contextmanager
def stage(name: str):
    """Context manager timing one stage execution into the registry.

    Nested scopes record under their parent's path, and the parent's
    self time excludes the child's span.
    """
    stack = _stack()
    path = f"{current_stage_path()}{SEP}{name}" if stack else name
    frame = [name, 0.0]
    stack.append(frame)
    t0 = time.perf_counter()
    try:
        yield
    finally:
        dt = time.perf_counter() - t0
        stack.pop()
        record_stage(path, dt, self_seconds=max(dt - frame[1], 0.0))
        if stack:
            stack[-1][1] += dt


def stage_timings() -> list[StageTiming]:
    """All recorded stages in first-recorded order."""
    return list(_REGISTRY.values())


def snapshot_stage_timings() -> list[dict]:
    """The registry as plain dicts (picklable; worker -> parent hand-off)."""
    return [{"name": t.name, "seconds": t.seconds, "calls": t.calls,
             "self_seconds": t.self_seconds} for t in _REGISTRY.values()]


def merge_stage_timings(records: list[dict], prefix: str | None = None) -> None:
    """Merge a worker registry snapshot into this process's registry.

    ``prefix`` (default: the stage path active on this thread) is
    prepended to every record, so a fan-out inside
    ``stage("analysis.verify_all")`` files worker stages as that stage's
    children.  The merged roots' inclusive time is charged against the
    current stage frame, keeping the parent's self time exclusive.
    """
    if prefix is None:
        prefix = current_stage_path()
    stack = _stack()
    for rec in records:
        name = f"{prefix}{SEP}{rec['name']}" if prefix else rec["name"]
        record_stage(name, float(rec["seconds"]),
                     self_seconds=float(rec.get("self_seconds",
                                                rec["seconds"])),
                     calls=int(rec.get("calls", 1)))
        if stack and SEP not in rec["name"]:
            # a worker-side root: its span elapsed inside the current
            # frame, so discount it from the frame's self time
            stack[-1][1] += float(rec["seconds"])


def note_worker_count(n: int) -> None:
    """Record the widest effective fan-out of the run (``--timings``)."""
    _META["max_workers"] = max(int(n), int(_META.get("max_workers", 0)))


def note_graph_run(nodes: int, node_wall_s: float, makespan_s: float, *,
                   workers: int = 1) -> None:
    """Accumulate one task-graph execution into the run metadata.

    ``overlap_ratio`` — summed node wall over summed makespan — is the
    graph scheduler's figure of merit: 1.0 means stages ran back to
    back (no overlap), above 1.0 means independent nodes genuinely
    overlapped.  The bench profiler lifts it from the ``REPRO_STAGE_JSON``
    meta into ``BENCH_perf.json``, where ``repro bench --check`` gates
    it (the ``min_overlap_ratio`` budget applies only to multi-worker
    runs — a serial schedule cannot overlap).
    """
    g = _META.get("graph")
    if not isinstance(g, dict):
        g = _META["graph"] = {"runs": 0, "nodes": 0, "workers": 1,
                              "node_wall_s": 0.0, "makespan_s": 0.0,
                              "overlap_ratio": 1.0}
    g["runs"] += 1
    g["nodes"] += int(nodes)
    g["workers"] = max(int(workers), g["workers"])
    g["node_wall_s"] = round(g["node_wall_s"] + float(node_wall_s), 6)
    g["makespan_s"] = round(g["makespan_s"] + float(makespan_s), 6)
    g["overlap_ratio"] = round(g["node_wall_s"] / g["makespan_s"], 3) \
        if g["makespan_s"] > 0 else 1.0


def stage_meta() -> dict[str, object]:
    """Run metadata recorded alongside the stage registry."""
    return dict(_META)


def reset_stage_timings() -> None:
    """Clear the registry (tests and repeated in-process runs)."""
    _REGISTRY.clear()
    _META.clear()


def reset_stage_stack() -> None:
    """Drop stage frames this thread inherited across a ``fork``.

    A pool worker forked inside a ``stage(...)`` scope inherits the
    parent's nesting stack, but the scopes that pushed those frames only
    exit in the parent — left in place they prefix every worker record
    with the parent's path, so :func:`merge_stage_timings` (which
    prepends that path itself) doubled it and its worker-root discount
    never fired.  Worker entry points clear the stack next to
    :func:`reset_stage_timings`; worker-side scopes are symmetric, so
    the stack returns to empty between chunks.
    """
    _stack().clear()
