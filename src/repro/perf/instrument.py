"""Per-stage wall-clock instrumentation.

Pipeline stages (dataset generation, grid evaluation, observation audit,
functional accuracy runs) record their wall-clock into a process-global
registry via the :func:`stage` context manager.  The harness report layer
formats the registry into the run report, and ``repro ... --timings``
prints it, so the cost structure of every invocation is visible and the
speedup from caching/parallelism is tracked across PRs (see
:mod:`repro.perf.bench`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["StageTiming", "stage", "record_stage", "stage_timings",
           "reset_stage_timings"]


@dataclass
class StageTiming:
    """Accumulated wall-clock for one named pipeline stage."""

    name: str
    seconds: float = 0.0
    calls: int = 0


_REGISTRY: dict[str, StageTiming] = {}


def record_stage(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` of wall-clock under ``name``."""
    entry = _REGISTRY.get(name)
    if entry is None:
        entry = _REGISTRY[name] = StageTiming(name)
    entry.seconds += seconds
    entry.calls += 1


@contextmanager
def stage(name: str):
    """Context manager timing one stage execution into the registry."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        record_stage(name, time.perf_counter() - t0)


def stage_timings() -> list[StageTiming]:
    """All recorded stages in first-recorded order."""
    return list(_REGISTRY.values())


def reset_stage_timings() -> None:
    """Clear the registry (tests and repeated in-process runs)."""
    _REGISTRY.clear()
