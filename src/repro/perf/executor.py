"""Deterministic parallel fan-out over a process pool, with recovery.

:class:`ParallelExecutor` is the one execution primitive the evaluation
grid routes through: ``map`` preserves input order exactly, chunks work
deterministically (boundaries depend only on item count and chunk size),
and falls back to a plain in-process loop for ``n_jobs=1`` — so the serial
and parallel paths produce identical results in identical order, which the
test suite asserts.

Recovery (docs/ROBUSTNESS.md): a crashed pool (``BrokenProcessPool``) or a
chunk that exceeds the per-chunk timeout no longer aborts the map.
Completed chunk results are harvested and kept; the pool is rebuilt and
only the unfinished chunks are retried, with capped exponential backoff
between rounds; after ``max_retries`` failed rounds the remaining chunks
degrade to the in-process serial path.  Every retry replays the *same*
deterministic chunk, so the assembled output is bit-identical to a
fault-free run regardless of how many workers died along the way.
Task-level exceptions (:class:`WorkerTaskError`) are deterministic and
propagate immediately — retrying them would fail identically.

Worker functions must be module-level (picklable); items are sent to
workers in contiguous chunks to amortize process overhead.  ``n_jobs``
defaults to ``REPRO_JOBS`` or the machine's CPU count; the per-chunk
timeout to ``REPRO_CHUNK_TIMEOUT_S`` (unset = wait forever) and the retry
cap to ``REPRO_EXECUTOR_RETRIES``.

Stage attribution survives the fan-out: pass ``stage_names`` (one stage
name per item) and each item runs under :func:`repro.perf.instrument.stage`.
Pool workers snapshot their stage registry per chunk and ship it back with
the results; the parent merges the records under whatever stage is active
at the ``map`` call site, so ``analysis.verify_all`` decomposes into
per-item children whether the work ran in-process or across processes.

Chaos hooks: the ``executor.worker_crash`` and ``executor.worker_hang``
fault sites fire at pool-chunk start, keyed by (chunk bounds, attempt) so
an injected crash does not re-fire on the retry.  They are injected only
on the pool path — the serial path (and the degrade-to-serial fallback)
never self-destructs.
"""

from __future__ import annotations

import math
import os
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence, TypeVar

from .. import faults
from .instrument import (merge_stage_timings, note_worker_count,
                         reset_stage_stack, reset_stage_timings,
                         snapshot_stage_timings, stage)

__all__ = ["ParallelExecutor", "WorkerTaskError", "resolve_n_jobs"]

T = TypeVar("T")
R = TypeVar("R")


class WorkerTaskError(RuntimeError):
    """A task failed inside a worker, annotated with which one.

    A bare exception crossing the process boundary loses all context about
    *which* grid point died; this wrapper names the failing item (the
    workload/variant label the caller supplied) and carries the worker-side
    traceback in the message.  Single string argument so it pickles
    losslessly back to the parent.  Task errors are deterministic — the
    retry machinery never retries them, and the label survives however
    many pool rounds happened before the failing chunk ran.
    """

    @property
    def label(self) -> str:
        return str(self.args[0]).split(":", 1)[0] if self.args else ""


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_JOBS`` > CPU count."""
    if n_jobs is not None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        return n_jobs
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return os.cpu_count() or 1


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return max(int(raw), 0)
    except ValueError:
        return default


def _chunk_bounds(n_items: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous (start, stop) chunk boundaries — a pure function of the
    item count and chunk size, so task decomposition is deterministic."""
    return [(lo, min(lo + chunk_size, n_items))
            for lo in range(0, n_items, chunk_size)]


def _run_chunk(payload: tuple[Callable[[T], R], list[T], list[str] | None,
                              list[str] | None]) -> list[R]:
    fn, chunk, labels, stage_names = payload
    out: list[R] = []
    for i, item in enumerate(chunk):
        try:
            if stage_names:
                with stage(stage_names[i]):
                    out.append(fn(item))
            else:
                out.append(fn(item))
        except Exception as exc:
            label = labels[i] if labels else f"item {i}"
            raise WorkerTaskError(
                f"{label}: {type(exc).__name__}: {exc}\n"
                f"--- worker traceback ---\n{traceback.format_exc()}"
            ) from exc
    return out


def _run_chunk_remote(payload: tuple[Callable[[T], R], list[T],
                                     list[str] | None, list[str] | None,
                                     str, float]
                      ) -> tuple[list[R], list[dict]]:
    """Pool-worker entry: run a chunk and ship its stage registry back.

    Workers are reused across chunks, so the registry is reset per chunk
    — the snapshot is exactly this chunk's delta, and the parent's merge
    is additive across chunks.

    ``fault_key`` names this (chunk, attempt) so injected crashes/hangs
    are deterministic and do not re-fire on the retry; ``hang_s`` is how
    long an injected hang stalls (sized past the parent's chunk timeout).
    """
    fn, chunk, labels, stage_names, fault_key, hang_s = payload
    if faults.site("executor.worker_crash", key=fault_key):
        os._exit(17)  # abrupt death: no cleanup, breaks the pool
    if faults.site("executor.worker_hang", key=fault_key):
        time.sleep(hang_s)
    reset_stage_timings()
    reset_stage_stack()
    out = _run_chunk((fn, chunk, labels, stage_names))
    return out, snapshot_stage_timings()


class ParallelExecutor:
    """Order-preserving map over a process pool (or in-process for 1 job).

    ``chunk_timeout_s`` bounds how long the parent waits on one chunk's
    result once every earlier chunk has been collected (None = forever);
    ``max_retries`` caps the failed pool rounds before the remaining
    chunks degrade to the serial path; backoff between rounds grows
    ``backoff_base_s * 2**round`` up to ``backoff_cap_s``.
    """

    def __init__(self, n_jobs: int | None = None, *,
                 chunk_size: int | None = None,
                 chunk_timeout_s: float | None = None,
                 max_retries: int | None = None,
                 backoff_base_s: float = 0.05,
                 backoff_cap_s: float = 2.0) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.chunk_size = chunk_size
        self.chunk_timeout_s = chunk_timeout_s if chunk_timeout_s is not None \
            else _env_float("REPRO_CHUNK_TIMEOUT_S")
        self.max_retries = max_retries if max_retries is not None \
            else _env_int("REPRO_EXECUTOR_RETRIES", 3)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: pool rounds that failed during the last map (observability)
        self.last_failed_rounds = 0
        #: chunks the last map degraded to the serial path (observability)
        self.last_degraded_chunks = 0

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T], *,
            chunk_size: int | None = None,
            labels: Sequence[str] | Callable[[T], str] | None = None,
            stage_names: Sequence[str] | Callable[[T], str] | None = None
            ) -> list[R]:
        """``[fn(x) for x in items]``, fanned out across processes.

        Results are returned in input order regardless of completion
        order.  A worker exception propagates as :class:`WorkerTaskError`
        naming the failing item (``labels`` — a string per item or a
        callable applied in the parent — gives the name; the index is
        used otherwise).  A broken pool or a hung chunk is survived:
        completed chunk results are kept, the pool is rebuilt, and only
        unfinished chunks are retried (capped exponential backoff),
        degrading to the in-process serial path after repeated failures —
        so the output matches the fault-free run exactly.
        ``KeyboardInterrupt`` cancels pending chunks and retries and
        re-raises cleanly instead of dumping a pool traceback.

        ``stage_names`` (a name per item, or a callable) runs each item
        under that instrumentation stage; pool-worker timings are merged
        back under the stage active at this call site.
        """
        items = list(items)
        if callable(labels):
            labels = [labels(item) for item in items]
        elif labels is not None:
            labels = list(labels)
            if len(labels) != len(items):
                raise ValueError(
                    f"{len(labels)} labels for {len(items)} items")
        if callable(stage_names):
            stage_names = [stage_names(item) for item in items]
        elif stage_names is not None:
            stage_names = list(stage_names)
            if len(stage_names) != len(items):
                raise ValueError(
                    f"{len(stage_names)} stage names for {len(items)} items")
        workers = min(self.n_jobs, len(items))
        note_worker_count(max(workers, 1))
        if workers <= 1:
            return _run_chunk((fn, items, labels, stage_names))
        size = chunk_size or self.chunk_size
        if size is None:
            # a few chunks per worker bounds imbalance without flooding
            # the pool with tiny tasks
            size = max(1, math.ceil(len(items) / (4 * workers)))
        bounds = _chunk_bounds(len(items), size)
        results = self._run_pool_rounds(fn, items, labels, stage_names,
                                        bounds, workers)
        out: list[R] = []
        for idx in range(len(bounds)):
            chunk, timings = results[idx]
            out.extend(chunk)
            merge_stage_timings(timings)
        return out

    # ------------------------------------------------------- pool rounds
    def _payload(self, fn, items, labels, stage_names,
                 bounds: tuple[int, int], attempt: int):
        lo, hi = bounds
        hang_s = 2.0 * self.chunk_timeout_s if self.chunk_timeout_s else 2.0
        return (fn, items[lo:hi],
                labels[lo:hi] if labels else None,
                stage_names[lo:hi] if stage_names else None,
                f"{lo}-{hi}:{attempt}", hang_s)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers."""
        pool.shutdown(wait=False, cancel_futures=True)
        procs = list((getattr(pool, "_processes", None) or {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        for proc in procs:
            try:
                proc.join(timeout=5)
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass

    def _run_pool_rounds(self, fn, items, labels, stage_names,
                         bounds: list[tuple[int, int]], workers: int
                         ) -> dict[int, tuple[list, list[dict]]]:
        """Run every chunk to completion across pool rounds.

        One *round* submits all pending chunks to a (fresh) pool and
        collects results in chunk order.  A pool-level failure — broken
        pool, hung chunk — ends the round: done futures are harvested,
        the pool is killed and rebuilt, and the survivors are retried
        with backoff.  Returns ``{chunk_index: (results, timings)}``.
        """
        results: dict[int, tuple[list, list[dict]]] = {}
        pending = set(range(len(bounds)))
        attempts = {idx: 0 for idx in pending}
        failed_rounds = 0
        self.last_failed_rounds = 0
        self.last_degraded_chunks = 0
        pool: ProcessPoolExecutor | None = None
        try:
            while pending and failed_rounds <= self.max_retries:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(workers, len(pending)))
                order = sorted(pending)
                futures: dict[int, Future] = {
                    idx: pool.submit(
                        _run_chunk_remote,
                        self._payload(fn, items, labels, stage_names,
                                      bounds[idx], attempts[idx]))
                    for idx in order}
                round_failure: str | None = None
                for idx in order:
                    try:
                        results[idx] = futures[idx].result(
                            timeout=self.chunk_timeout_s)
                        pending.discard(idx)
                    except FuturesTimeoutError:
                        round_failure = (
                            f"chunk {idx} produced no result within "
                            f"{self.chunk_timeout_s}s")
                        break
                    except (BrokenProcessPool, OSError) as exc:
                        round_failure = f"pool failure: {exc}"
                        break
                if round_failure is None:
                    break
                # harvest chunks that completed before the failure; a
                # deterministic task error propagates immediately
                task_error: WorkerTaskError | None = None
                for idx, fut in futures.items():
                    if idx not in pending or not fut.done() \
                            or fut.cancelled():
                        continue
                    exc = fut.exception()
                    if exc is None:
                        results[idx] = fut.result()
                        pending.discard(idx)
                    elif isinstance(exc, WorkerTaskError):
                        task_error = exc
                if task_error is not None:
                    raise task_error
                self._kill_pool(pool)
                pool = None
                failed_rounds += 1
                self.last_failed_rounds = failed_rounds
                for idx in pending:
                    attempts[idx] += 1
                if pending and failed_rounds <= self.max_retries:
                    time.sleep(min(
                        self.backoff_base_s * (2 ** (failed_rounds - 1)),
                        self.backoff_cap_s))
        except KeyboardInterrupt:
            if pool is not None:
                self._kill_pool(pool)
            raise KeyboardInterrupt(
                "interrupted; cancelled pending worker chunks and "
                "retries") from None
        except BaseException:
            # a task failure: don't hang on the remaining chunks
            if pool is not None:
                self._kill_pool(pool)
            raise
        if pool is not None:
            pool.shutdown(wait=True)
        if pending:
            # repeated pool failures: finish in-process — completed chunk
            # results are reused, never recomputed
            self.last_degraded_chunks = len(pending)
            for idx in sorted(pending):
                lo, hi = bounds[idx]
                chunk_out = _run_chunk(
                    (fn, items[lo:hi],
                     labels[lo:hi] if labels else None,
                     stage_names[lo:hi] if stage_names else None))
                results[idx] = (chunk_out, [])
        return results

    # ------------------------------------------------------------------
    def starmap(self, fn: Callable[..., R],
                items: Iterable[Sequence[Any]], *,
                chunk_size: int | None = None,
                labels: Sequence[str] | Callable[[Sequence[Any]], str]
                | None = None,
                stage_names: Sequence[str]
                | Callable[[Sequence[Any]], str] | None = None) -> list[R]:
        """Like :meth:`map` but unpacks each item as ``fn(*item)``."""
        return self.map(_Star(fn), items, chunk_size=chunk_size,
                        labels=labels, stage_names=stage_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(n_jobs={self.n_jobs})"


class _Star:
    """Picklable ``fn(*args)`` adapter for :meth:`ParallelExecutor.starmap`."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)
