"""Deterministic parallel fan-out over a process pool.

:class:`ParallelExecutor` is the one execution primitive the evaluation
grid routes through: ``map`` preserves input order exactly, chunks work
deterministically (boundaries depend only on item count and chunk size),
and falls back to a plain in-process loop for ``n_jobs=1`` — so the serial
and parallel paths produce identical results in identical order, which the
test suite asserts.

Worker functions must be module-level (picklable); items are sent to
workers in contiguous chunks to amortize process overhead.  ``n_jobs``
defaults to ``REPRO_JOBS`` or the machine's CPU count.

Stage attribution survives the fan-out: pass ``stage_names`` (one stage
name per item) and each item runs under :func:`repro.perf.instrument.stage`.
Pool workers snapshot their stage registry per chunk and ship it back with
the results; the parent merges the records under whatever stage is active
at the ``map`` call site, so ``analysis.verify_all`` decomposes into
per-item children whether the work ran in-process or across processes.
"""

from __future__ import annotations

import math
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence, TypeVar

from .instrument import (merge_stage_timings, note_worker_count,
                         reset_stage_timings, snapshot_stage_timings, stage)

__all__ = ["ParallelExecutor", "WorkerTaskError", "resolve_n_jobs"]

T = TypeVar("T")
R = TypeVar("R")


class WorkerTaskError(RuntimeError):
    """A task failed inside a worker, annotated with which one.

    A bare exception crossing the process boundary loses all context about
    *which* grid point died; this wrapper names the failing item (the
    workload/variant label the caller supplied) and carries the worker-side
    traceback in the message.  Single string argument so it pickles
    losslessly back to the parent.
    """

    @property
    def label(self) -> str:
        return str(self.args[0]).split(":", 1)[0] if self.args else ""


def resolve_n_jobs(n_jobs: int | None = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_JOBS`` > CPU count."""
    if n_jobs is not None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        return n_jobs
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(int(env), 1)
        except ValueError:
            pass
    return os.cpu_count() or 1


def _chunk_bounds(n_items: int, chunk_size: int) -> list[tuple[int, int]]:
    """Contiguous (start, stop) chunk boundaries — a pure function of the
    item count and chunk size, so task decomposition is deterministic."""
    return [(lo, min(lo + chunk_size, n_items))
            for lo in range(0, n_items, chunk_size)]


def _run_chunk(payload: tuple[Callable[[T], R], list[T], list[str] | None,
                              list[str] | None]) -> list[R]:
    fn, chunk, labels, stage_names = payload
    out: list[R] = []
    for i, item in enumerate(chunk):
        try:
            if stage_names:
                with stage(stage_names[i]):
                    out.append(fn(item))
            else:
                out.append(fn(item))
        except Exception as exc:
            label = labels[i] if labels else f"item {i}"
            raise WorkerTaskError(
                f"{label}: {type(exc).__name__}: {exc}\n"
                f"--- worker traceback ---\n{traceback.format_exc()}"
            ) from exc
    return out


def _run_chunk_remote(payload: tuple[Callable[[T], R], list[T],
                                     list[str] | None, list[str] | None]
                      ) -> tuple[list[R], list[dict]]:
    """Pool-worker entry: run a chunk and ship its stage registry back.

    Workers are reused across chunks, so the registry is reset per chunk
    — the snapshot is exactly this chunk's delta, and the parent's merge
    is additive across chunks.
    """
    reset_stage_timings()
    out = _run_chunk(payload)
    return out, snapshot_stage_timings()


class ParallelExecutor:
    """Order-preserving map over a process pool (or in-process for 1 job)."""

    def __init__(self, n_jobs: int | None = None, *,
                 chunk_size: int | None = None) -> None:
        self.n_jobs = resolve_n_jobs(n_jobs)
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Iterable[T], *,
            chunk_size: int | None = None,
            labels: Sequence[str] | Callable[[T], str] | None = None,
            stage_names: Sequence[str] | Callable[[T], str] | None = None
            ) -> list[R]:
        """``[fn(x) for x in items]``, fanned out across processes.

        Results are returned in input order regardless of completion
        order.  A worker exception propagates as :class:`WorkerTaskError`
        naming the failing item (``labels`` — a string per item or a
        callable applied in the parent — gives the name; the index is
        used otherwise); a broken pool (e.g. a sandbox that forbids
        subprocesses) degrades to the in-process path rather than
        failing the evaluation.  ``KeyboardInterrupt`` cancels pending
        chunks and re-raises cleanly instead of dumping a pool traceback.

        ``stage_names`` (a name per item, or a callable) runs each item
        under that instrumentation stage; pool-worker timings are merged
        back under the stage active at this call site.
        """
        items = list(items)
        if callable(labels):
            labels = [labels(item) for item in items]
        elif labels is not None:
            labels = list(labels)
            if len(labels) != len(items):
                raise ValueError(
                    f"{len(labels)} labels for {len(items)} items")
        if callable(stage_names):
            stage_names = [stage_names(item) for item in items]
        elif stage_names is not None:
            stage_names = list(stage_names)
            if len(stage_names) != len(items):
                raise ValueError(
                    f"{len(stage_names)} stage names for {len(items)} items")
        workers = min(self.n_jobs, len(items))
        note_worker_count(max(workers, 1))
        if workers <= 1:
            return _run_chunk((fn, items, labels, stage_names))
        size = chunk_size or self.chunk_size
        if size is None:
            # a few chunks per worker bounds imbalance without flooding
            # the pool with tiny tasks
            size = max(1, math.ceil(len(items) / (4 * workers)))
        bounds = _chunk_bounds(len(items), size)
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [
                pool.submit(_run_chunk_remote,
                            (fn, items[lo:hi],
                             labels[lo:hi] if labels else None,
                             stage_names[lo:hi] if stage_names else None))
                for lo, hi in bounds]
            chunks = [f.result() for f in futures]
        except KeyboardInterrupt:
            pool.shutdown(wait=False, cancel_futures=True)
            raise KeyboardInterrupt(
                "interrupted; cancelled pending worker chunks") from None
        except (BrokenProcessPool, OSError):
            pool.shutdown(wait=False, cancel_futures=True)
            return _run_chunk((fn, items, labels, stage_names))
        except BaseException:
            # a worker failure: don't hang on the remaining chunks
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        out: list[R] = []
        for chunk, timings in chunks:
            out.extend(chunk)
            merge_stage_timings(timings)
        return out

    # ------------------------------------------------------------------
    def starmap(self, fn: Callable[..., R],
                items: Iterable[Sequence[Any]], *,
                chunk_size: int | None = None,
                labels: Sequence[str] | Callable[[Sequence[Any]], str]
                | None = None,
                stage_names: Sequence[str]
                | Callable[[Sequence[Any]], str] | None = None) -> list[R]:
        """Like :meth:`map` but unpacks each item as ``fn(*item)``."""
        return self.map(_Star(fn), items, chunk_size=chunk_size,
                        labels=labels, stage_names=stage_names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelExecutor(n_jobs={self.n_jobs})"


class _Star:
    """Picklable ``fn(*args)`` adapter for :meth:`ParallelExecutor.starmap`."""

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, args: Sequence[Any]) -> Any:
        return self.fn(*args)
