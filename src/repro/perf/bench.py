"""Cold/warm pipeline benchmarking — the ``BENCH_perf.json`` emitter.

Each named bench is one CLI invocation (a fresh interpreter, so in-memory
memoization never leaks between measurements).  *Cold* runs against an
empty cache directory; *warm* repeats the identical invocation against the
directory the cold run populated.  The resulting JSON records absolute
wall-clock plus the warm/cold ratio so future PRs can track the perf
trajectory of the evaluation engine.

With ``profile=True`` the cold invocation additionally dumps its per-stage
wall-clock registry (via the ``REPRO_STAGE_JSON`` hook in the CLI) and the
result carries a ``profile`` block: the raw stages plus sums grouped into
``plan-build`` / ``sweep-execute`` / ``model-resolve`` / ``other`` — the
attribution surface of ``repro bench --profile``.  :func:`check_regression`
compares cold times against a checked-in baseline with a tolerance, the CI
perf gate.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = ["BENCHES", "run_bench", "write_bench_json", "check_regression"]

#: bench name -> ``python -m repro`` argument list.  ``observations`` is
#: the nine-observation audit, ``perf`` the Figures 3-6 grid
#: (``run_performance``), ``power`` the Figure 7 EDP figure bench.
BENCHES: dict[str, tuple[str, ...]] = {
    "observations": ("observations",),
    "run_performance": ("perf",),
    "fig7_edp": ("power", "--gpu", "H200"),
}


def _invoke(args: tuple[str, ...], cache_dir: str,
            stage_json: str | None = None) -> float:
    """Run one CLI invocation in a fresh interpreter; returns wall-clock."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    if stage_json is not None:
        env["REPRO_STAGE_JSON"] = stage_json
    else:
        env.pop("REPRO_STAGE_JSON", None)
    src = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    t0 = time.perf_counter()
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                         env=env, capture_output=True, text=True)
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench command {' '.join(args)!r} failed "
            f"(rc={proc.returncode}):\n{proc.stderr[-2000:]}")
    return wall


#: stage-name prefixes summed into their own profile group; everything
#: else (dataset generation, audits, ...) lands in ``other``
_PROFILE_GROUPS = ("plan-build", "sweep-execute", "model-resolve")


def _group_stages(stages: dict[str, dict]) -> dict[str, float]:
    """Sum raw stage seconds into the coarse attribution groups."""
    groups = dict.fromkeys(_PROFILE_GROUPS + ("other",), 0.0)
    for name, rec in stages.items():
        head = name.split(":", 1)[0]
        key = head if head in _PROFILE_GROUPS else "other"
        groups[key] += float(rec.get("seconds", 0.0))
    return {k: round(v, 3) for k, v in groups.items()}


def run_bench(names: list[str] | None = None,
              cache_dir: str | Path | None = None,
              profile: bool = False) -> dict[str, dict]:
    """Measure cold and warm wall-clock for the selected benches.

    With no ``cache_dir`` a fresh temporary directory is used (true cold
    start) and removed afterwards.  ``profile=True`` attaches the cold
    run's per-stage wall-clock to each result.
    """
    names = list(BENCHES) if names is None else names
    for name in names:
        if name not in BENCHES:
            raise ValueError(
                f"unknown bench {name!r}; available: {sorted(BENCHES)}")
    results: dict[str, dict] = {}
    ctx = tempfile.TemporaryDirectory(prefix="repro-bench-") \
        if cache_dir is None else None
    root = Path(ctx.name) if ctx else Path(cache_dir)
    try:
        for name in names:
            bench_cache = root / name
            bench_cache.mkdir(parents=True, exist_ok=True)
            stage_json = bench_cache / "stages_cold.json" if profile \
                else None
            cold = _invoke(BENCHES[name], str(bench_cache),
                           stage_json=str(stage_json) if stage_json
                           else None)
            warm = _invoke(BENCHES[name], str(bench_cache))
            results[name] = {
                "args": list(BENCHES[name]),
                "cold_s": round(cold, 3),
                "warm_s": round(warm, 3),
                "warm_speedup": round(cold / warm, 2) if warm > 0 else None,
            }
            if stage_json is not None and stage_json.exists():
                stages = json.loads(stage_json.read_text(encoding="utf-8"))
                results[name]["profile"] = {
                    "groups": _group_stages(stages),
                    "stages": {n: {"seconds": round(r["seconds"], 3),
                                   "calls": r["calls"]}
                               for n, r in sorted(stages.items())},
                }
    finally:
        if ctx:
            ctx.cleanup()
    return results


def check_regression(results: dict[str, dict],
                     baseline_path: str | Path,
                     tolerance: float = 0.25) -> list[str]:
    """Compare cold times against a checked-in bench baseline.

    Returns one message per bench whose cold wall-clock exceeds the
    baseline by more than ``tolerance`` (fractional).  Benches absent from
    the baseline pass (new benches cannot regress); a missing baseline
    file is itself an issue so CI cannot silently skip the gate.
    """
    path = Path(baseline_path)
    if not path.exists():
        return [f"bench baseline {path} not found"]
    base = json.loads(path.read_text(encoding="utf-8")).get("benches", {})
    issues: list[str] = []
    for name in sorted(results):
        ref = base.get(name, {}).get("cold_s")
        if ref is None:
            continue
        limit = float(ref) * (1.0 + tolerance)
        cold = float(results[name]["cold_s"])
        if cold > limit:
            issues.append(
                f"{name}: cold {cold:.1f}s exceeds baseline {ref:.1f}s "
                f"by more than {tolerance:.0%} (limit {limit:.1f}s)")
    return issues


def write_bench_json(path: str | Path, results: dict[str, dict],
                     baseline: dict | None = None) -> Path:
    """Write ``BENCH_perf.json``: host metadata + bench results."""
    payload = {
        "schema": 1,
        "suite": "repro evaluation engine",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "benches": results,
    }
    if baseline:
        payload["seed_baseline"] = baseline
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return out
