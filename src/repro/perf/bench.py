"""Cold/warm pipeline benchmarking — the ``BENCH_perf.json`` emitter.

Each named bench is one CLI invocation (a fresh interpreter, so in-memory
memoization never leaks between measurements).  *Cold* runs against an
empty cache directory; *warm* repeats the identical invocation against the
directory the cold run populated.  The resulting JSON records absolute
wall-clock plus the warm/cold ratio so future PRs can track the perf
trajectory of the evaluation engine.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = ["BENCHES", "run_bench", "write_bench_json"]

#: bench name -> ``python -m repro`` argument list.  ``observations`` is
#: the nine-observation audit, ``perf`` the Figures 3-6 grid
#: (``run_performance``), ``power`` the Figure 7 EDP figure bench.
BENCHES: dict[str, tuple[str, ...]] = {
    "observations": ("observations",),
    "run_performance": ("perf",),
    "fig7_edp": ("power", "--gpu", "H200"),
}


def _invoke(args: tuple[str, ...], cache_dir: str) -> float:
    """Run one CLI invocation in a fresh interpreter; returns wall-clock."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    src = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    t0 = time.perf_counter()
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                         env=env, capture_output=True, text=True)
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench command {' '.join(args)!r} failed "
            f"(rc={proc.returncode}):\n{proc.stderr[-2000:]}")
    return wall


def run_bench(names: list[str] | None = None,
              cache_dir: str | Path | None = None) -> dict[str, dict]:
    """Measure cold and warm wall-clock for the selected benches.

    With no ``cache_dir`` a fresh temporary directory is used (true cold
    start) and removed afterwards.
    """
    names = list(BENCHES) if names is None else names
    for name in names:
        if name not in BENCHES:
            raise ValueError(
                f"unknown bench {name!r}; available: {sorted(BENCHES)}")
    results: dict[str, dict] = {}
    ctx = tempfile.TemporaryDirectory(prefix="repro-bench-") \
        if cache_dir is None else None
    root = Path(ctx.name) if ctx else Path(cache_dir)
    try:
        for name in names:
            bench_cache = root / name
            bench_cache.mkdir(parents=True, exist_ok=True)
            cold = _invoke(BENCHES[name], str(bench_cache))
            warm = _invoke(BENCHES[name], str(bench_cache))
            results[name] = {
                "args": list(BENCHES[name]),
                "cold_s": round(cold, 3),
                "warm_s": round(warm, 3),
                "warm_speedup": round(cold / warm, 2) if warm > 0 else None,
            }
    finally:
        if ctx:
            ctx.cleanup()
    return results


def write_bench_json(path: str | Path, results: dict[str, dict],
                     baseline: dict | None = None) -> Path:
    """Write ``BENCH_perf.json``: host metadata + bench results."""
    payload = {
        "schema": 1,
        "suite": "repro evaluation engine",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "benches": results,
    }
    if baseline:
        payload["seed_baseline"] = baseline
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return out
