"""Cold/warm pipeline benchmarking — the ``BENCH_perf.json`` emitter.

Each named bench is one CLI invocation (a fresh interpreter, so in-memory
memoization never leaks between measurements).  *Cold* runs against an
empty cache directory; *warm* repeats the identical invocation against the
directory the cold run populated.  The resulting JSON records absolute
wall-clock plus the warm/cold ratio so future PRs can track the perf
trajectory of the evaluation engine.

With ``profile=True`` the cold invocation additionally dumps its per-stage
wall-clock registry (via the ``REPRO_STAGE_JSON`` hook in the CLI) and the
result carries a ``profile`` block: the raw nested stages, per-group sums
of *self* seconds (``plan-build`` / ``sweep-execute`` / ``dataset-gen`` /
``accuracy-audit`` / ``observation-audit`` / ...), and a ``coverage``
ratio — attributed self-seconds over the subprocess's whole wall-clock.
Self seconds partition time exactly (children are excluded from their
parents), so ``other = wall - attributed`` is genuinely unattributed work:
interpreter startup not captured by ``cli.startup``, CLI glue, and any
code path still missing a ``stage(...)`` scope.  :func:`check_regression`
compares cold times against a checked-in baseline with a tolerance and
enforces the baseline's absolute ``budgets`` (max cold/warm seconds,
minimum coverage) — the CI perf gate.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = ["BENCHES", "PROFILE_GROUPS", "run_bench", "write_bench_json",
           "check_regression", "profile_coverage"]

#: bench name -> ``python -m repro`` argument list.  ``observations`` is
#: the nine-observation audit, ``perf`` the Figures 3-6 grid
#: (``run_performance``), ``power`` the Figure 7 EDP figure bench.
BENCHES: dict[str, tuple[str, ...]] = {
    "observations": ("observations",),
    "run_performance": ("perf",),
    "fig7_edp": ("power", "--gpu", "H200"),
}


def _invoke(args: tuple[str, ...], cache_dir: str,
            stage_json: str | None = None,
            jobs: int | None = None) -> float:
    """Run one CLI invocation in a fresh interpreter; returns wall-clock."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    if jobs is not None:
        env["REPRO_JOBS"] = str(jobs)
    if stage_json is not None:
        env["REPRO_STAGE_JSON"] = stage_json
    else:
        env.pop("REPRO_STAGE_JSON", None)
    src = str(Path(__file__).resolve().parent.parent.parent)
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    # spawn timestamp: the CLI charges spawn -> main() as ``cli.startup``
    # (time.time(), not perf_counter — it must compare across processes)
    env["REPRO_BENCH_T0"] = repr(time.time())
    t0 = time.perf_counter()
    proc = subprocess.run([sys.executable, "-m", "repro", *args],
                         env=env, capture_output=True, text=True)
    wall = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench command {' '.join(args)!r} failed "
            f"(rc={proc.returncode}):\n{proc.stderr[-2000:]}")
    return wall


#: profile group -> leaf-stage-name prefixes whose *self* seconds it sums.
#: First match wins; stage paths are matched on their leaf name, so a
#: ``datasets.generate_matrix`` nested anywhere still lands in
#: ``dataset-gen``.  Anything unmatched is attributed under ``attributed``
#: but grouped as ``misc``; ``other`` is wall minus all attributed time.
PROFILE_GROUPS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("plan-build", ("plan-build",)),
    ("sweep-execute", ("sweep-execute", "sweep-point")),
    ("model-resolve", ("model-resolve",)),
    ("dataset-gen", ("datasets.", "dataset-gen")),
    ("accuracy-audit", ("accuracy.", "analysis.accuracy_table",
                        "accuracy-audit")),
    ("observation-audit", ("verify.", "analysis.verify_all",
                           "observation-audit")),
    ("refinement", ("refine.",)),
    ("ozaki", ("ozaki.",)),
    ("analysis", ("analysis.",)),
    ("harness", ("harness.", "perf-grid")),
    ("graph", ("graph",)),
    ("startup", ("cli.startup",)),
)


def _group_of(leaf: str) -> str:
    for group, prefixes in PROFILE_GROUPS:
        if any(leaf.startswith(p) for p in prefixes):
            return group
    return "misc"


def _group_stages(stages: dict[str, dict],
                  wall: float | None = None) -> dict[str, float]:
    """Sum per-stage *self* seconds into the attribution groups.

    Self seconds partition wall-clock, so the groups are additive and
    ``other`` (``wall`` minus everything attributed) is real unattributed
    time, not double-counted nesting.
    """
    groups = dict.fromkeys([g for g, _ in PROFILE_GROUPS] + ["misc"], 0.0)
    for name, rec in stages.items():
        leaf = name.rsplit("/", 1)[-1]
        own = float(rec.get("self_seconds", rec.get("seconds", 0.0)))
        groups[_group_of(leaf)] += own
    attributed = sum(groups.values())
    if wall is not None:
        groups["other"] = max(wall - attributed, 0.0)
    return {k: round(v, 3) for k, v in groups.items() if v > 0.0
            or k == "other"}


def profile_coverage(stages: dict[str, dict], wall: float) -> float:
    """Attributed self-seconds over subprocess wall-clock, in [0, 1]."""
    attributed = sum(
        float(rec.get("self_seconds", rec.get("seconds", 0.0)))
        for rec in stages.values())
    return min(attributed / wall, 1.0) if wall > 0 else 0.0


def run_bench(names: list[str] | None = None,
              cache_dir: str | Path | None = None,
              profile: bool = False,
              jobs: int | None = None) -> dict[str, dict]:
    """Measure cold and warm wall-clock for the selected benches.

    With no ``cache_dir`` a fresh temporary directory is used (true cold
    start) and removed afterwards.  ``profile=True`` attaches the cold
    run's per-stage wall-clock to each result.  ``jobs`` pins the bench
    subprocesses' worker count (exported as ``REPRO_JOBS``), and when the
    invocation executed a task graph, the graph meta — including the
    ``overlap_ratio`` figure of merit — is lifted to the result's top
    level for the ``--check`` gate.
    """
    names = list(BENCHES) if names is None else names
    for name in names:
        if name not in BENCHES:
            raise ValueError(
                f"unknown bench {name!r}; available: {sorted(BENCHES)}")
    results: dict[str, dict] = {}
    ctx = tempfile.TemporaryDirectory(prefix="repro-bench-") \
        if cache_dir is None else None
    root = Path(ctx.name) if ctx else Path(cache_dir)
    try:
        for name in names:
            bench_cache = root / name
            bench_cache.mkdir(parents=True, exist_ok=True)
            stage_json = bench_cache / "stages_cold.json" if profile \
                else None
            cold = _invoke(BENCHES[name], str(bench_cache),
                           stage_json=str(stage_json) if stage_json
                           else None, jobs=jobs)
            warm = _invoke(BENCHES[name], str(bench_cache), jobs=jobs)
            results[name] = {
                "args": list(BENCHES[name]),
                "cold_s": round(cold, 3),
                "warm_s": round(warm, 3),
                "warm_speedup": round(cold / warm, 2) if warm > 0 else None,
            }
            if stage_json is not None and stage_json.exists():
                dump = json.loads(stage_json.read_text(encoding="utf-8"))
                stages = dump.get("stages", dump)
                results[name]["profile"] = {
                    "coverage": round(profile_coverage(stages, cold), 3),
                    "groups": _group_stages(stages, wall=cold),
                    "stages": {
                        n: {"seconds": round(float(r["seconds"]), 3),
                            "self_seconds": round(
                                float(r.get("self_seconds",
                                            r["seconds"])), 3),
                            "calls": r["calls"]}
                        for n, r in sorted(stages.items())},
                }
                meta = dump.get("meta")
                if meta:
                    results[name]["profile"]["meta"] = meta
                    graph = meta.get("graph")
                    if isinstance(graph, dict):
                        results[name]["overlap_ratio"] = \
                            graph.get("overlap_ratio")
                        results[name]["graph_workers"] = \
                            graph.get("workers")
    finally:
        if ctx:
            ctx.cleanup()
    return results


def check_regression(results: dict[str, dict],
                     baseline_path: str | Path,
                     tolerance: float = 0.25,
                     require_budgets: bool = False) -> list[str]:
    """Compare cold times against a checked-in bench baseline.

    Returns one message per bench whose cold wall-clock exceeds the
    baseline by more than ``tolerance`` (fractional).  Benches absent from
    the baseline pass (new benches cannot regress); a missing baseline
    file is itself an issue so CI cannot silently skip the gate.

    The baseline's optional ``budgets`` block adds absolute bounds per
    bench: ``cold_max_s`` / ``warm_max_s`` caps, ``min_coverage``
    (enforced only when the run carries a profile — coverage needs
    ``--profile``'s stage dump to exist), and ``min_overlap_ratio`` (the
    task-graph figure of merit; enforced only when the run recorded an
    overlap *and* the graph actually had multiple workers — a serial
    schedule cannot overlap).  Every budget violation reports the budget,
    the measured value, and the delta, so a red gate reads without
    cross-referencing the baseline.

    ``require_budgets=True`` (the ``repro bench --check`` default) adds a
    diagnostic for every measured bench with no budgets entry — a gate
    that silently bounds nothing is itself a regression.
    """
    path = Path(baseline_path)
    if not path.exists():
        return [f"bench baseline {path} not found"]
    doc = json.loads(path.read_text(encoding="utf-8"))
    base = doc.get("benches", {})
    budgets = doc.get("budgets", {})
    issues: list[str] = []
    for name in sorted(results):
        ref = base.get(name, {}).get("cold_s")
        cold = float(results[name]["cold_s"])
        if ref is not None:
            limit = float(ref) * (1.0 + tolerance)
            if cold > limit:
                issues.append(
                    f"{name}: cold {cold:.1f}s exceeds baseline {ref:.1f}s "
                    f"by more than {tolerance:.0%} (limit {limit:.1f}s, "
                    f"delta {cold - limit:+.1f}s)")
        budget = budgets.get(name, {})
        if require_budgets and not budget:
            issues.append(
                f"{name}: no budgets defined in {path} — the gate bounds "
                f"nothing for this bench (add a budgets.{name} block)")
        cold_max = budget.get("cold_max_s")
        if cold_max is not None and cold > float(cold_max):
            issues.append(
                f"{name}: cold {cold:.1f}s over the {float(cold_max):.1f}s "
                f"budget (delta {cold - float(cold_max):+.1f}s)")
        warm_max = budget.get("warm_max_s")
        warm = results[name].get("warm_s")
        if warm_max is not None and warm is not None \
                and float(warm) > float(warm_max):
            issues.append(
                f"{name}: warm {float(warm):.1f}s over the "
                f"{float(warm_max):.1f}s budget "
                f"(delta {float(warm) - float(warm_max):+.1f}s)")
        min_cov = budget.get("min_coverage")
        coverage = results[name].get("profile", {}).get("coverage")
        if min_cov is not None and coverage is not None \
                and float(coverage) < float(min_cov):
            issues.append(
                f"{name}: profile coverage {float(coverage):.2f} below "
                f"the {float(min_cov):.2f} floor "
                f"(delta {float(coverage) - float(min_cov):+.2f}) — stage "
                f"attribution regressed")
        min_overlap = budget.get("min_overlap_ratio")
        overlap = results[name].get("overlap_ratio")
        workers = results[name].get("graph_workers")
        if min_overlap is not None and overlap is not None \
                and workers is not None and int(workers) > 1 \
                and float(overlap) < float(min_overlap):
            issues.append(
                f"{name}: graph overlap {float(overlap):.2f}x below the "
                f"{float(min_overlap):.2f}x floor "
                f"(delta {float(overlap) - float(min_overlap):+.2f}) with "
                f"{int(workers)} workers — pipeline stages stopped "
                f"overlapping")
    return issues


def write_bench_json(path: str | Path, results: dict[str, dict],
                     baseline: dict | None = None,
                     budgets: dict | None = None) -> Path:
    """Write ``BENCH_perf.json``: host metadata + bench results.

    The checked-in file doubles as the ``--check`` baseline, so the
    hand-maintained ``budgets`` block survives a rewrite: when the target
    already exists, its budgets carry over unless new ones are passed.
    """
    out = Path(path)
    if budgets is None and out.exists():
        try:
            budgets = json.loads(
                out.read_text(encoding="utf-8")).get("budgets")
        except (OSError, json.JSONDecodeError):
            budgets = None
    payload = {
        "schema": 2,
        "suite": "repro evaluation engine",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
        },
        "benches": results,
    }
    if budgets:
        payload["budgets"] = budgets
    if baseline:
        payload["seed_baseline"] = baseline
    out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return out
