"""Multi-step plasma simulation on the PiC kernel.

Drives the Boris pusher of the PiC workload over many timesteps in a
static electromagnetic field, tracking the diagnostics plasma codes watch:
kinetic energy, gyration (a charged particle in a uniform B field must
orbit, a property the Boris scheme preserves exactly in magnitude), and
the modeled device cost per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.device import Device
from ..kernels.base import Variant, WorkloadCase
from ..kernels.pic import DT, GRID, QDT2M, PicWorkload

__all__ = ["PlasmaSimulation"]


@dataclass
class PlasmaSimulation:
    """N charged particles pushed with the PiC workload's Boris step."""

    n_particles: int
    seed: int = 1325

    def __post_init__(self) -> None:
        if self.n_particles < 8:
            raise ValueError("need at least 8 particles")
        self._workload = PicWorkload()
        case = WorkloadCase(label="sim", params={"n": self.n_particles})
        self.data = self._workload.prepare(case, seed=self.seed)
        self.steps_taken = 0

    # ------------------------------------------------------------------
    def set_uniform_fields(self, e: tuple[float, float, float],
                           b: tuple[float, float, float]) -> None:
        """Replace the random fields with uniform E and B."""
        self.data["e"] = np.broadcast_to(
            np.asarray(e, dtype=float),
            (GRID, GRID, GRID, 3)).copy()
        self.data["b"] = np.broadcast_to(
            np.asarray(b, dtype=float),
            (GRID, GRID, GRID, 3)).copy()

    def step(self, n_steps: int = 1,
             device: Device | None = None) -> None:
        """Advance the ensemble; uses the workload's TC path."""
        dev = device if device is not None else Device("H200")
        for _ in range(n_steps):
            out = self._workload.execute(Variant.TC, self.data, dev).output
            self.data["pos"] = out[:, :3] % GRID
            self.data["vel"] = out[:, 3:]
            self.steps_taken += 1

    # ------------------------------------------------------------ physics
    def kinetic_energy(self) -> float:
        return float(0.5 * (self.data["vel"] ** 2).sum())

    def mean_speed(self) -> float:
        return float(np.linalg.norm(self.data["vel"], axis=1).mean())

    def gyration_check(self, b_mag: float, steps: int = 50) -> float:
        """Push in a pure magnetic field and return the relative drift of
        |v| (the Boris rotation is norm-preserving: this should be ~0)."""
        self.set_uniform_fields((0.0, 0.0, 0.0), (0.0, 0.0, b_mag))
        before = np.linalg.norm(self.data["vel"], axis=1)
        self.step(steps)
        after = np.linalg.norm(self.data["vel"], axis=1)
        return float(np.abs(after - before).max() / before.max())

    # ------------------------------------------------------------ costing
    def modeled_step_cost(self, device: Device,
                          variant: Variant = Variant.TC
                          ) -> dict[str, float]:
        case = WorkloadCase(label="sim", params={"n": self.n_particles})
        r = device.resolve(self._workload.analytic_stats(variant, case))
        return {"step_s": r.time_s, "power_w": r.power_w,
                "energy_j": r.energy_j,
                "particles_per_s": self.n_particles / r.time_s}

    @property
    def timestep(self) -> float:
        return DT

    @property
    def charge_to_mass_halfstep(self) -> float:
        return QDT2M
